//! Tape vs tape-free equivalence: the inference engine must be
//! **byte-identical** to the autodiff `Graph` path — same kernels, same
//! floating-point operation order — across every mask strategy, batch size
//! and model geometry the pipeline ships.
//!
//! Also proves the `ScratchArena` steady state allocates nothing and the
//! decoder's `DecodePlan` cache behaves (one plan per effective mask).

use easz::codecs::{JpegLikeCodec, Quality};
use easz::core::{
    DecodeEngine, DecodePlan, EaszConfig, EaszDecoder, EaszEncoder, EraseMask, MaskKind,
    Reconstructor, ReconstructorConfig, RowSamplerConfig, TokenBatch,
};
use easz::data::Dataset;
use easz::tensor::ScratchArena;

/// The two model geometries under test: the pipeline default (n=32, b=4)
/// and the small-tile ablation geometry (n=16, b=2).
fn geometries() -> [ReconstructorConfig; 2] {
    [
        ReconstructorConfig::fast(),
        ReconstructorConfig {
            n: 16,
            b: 2,
            d_model: 32,
            heads: 2,
            ffn: 64,
            ..ReconstructorConfig::fast()
        },
    ]
}

/// Every shipped mask family at the given grid size.
fn mask_strategies(grid: usize, seed: u64) -> Vec<(&'static str, EraseMask)> {
    vec![
        (
            "row_conditional",
            MaskKind::RowConditional(RowSamplerConfig::with_ratio(grid, 0.25)).generate(seed),
        ),
        ("random_row", MaskKind::RandomRow { n_grid: grid, t: grid / 4 }.generate(seed)),
        ("diagonal", MaskKind::Diagonal { n_grid: grid }.generate(seed)),
    ]
}

fn random_batch(cfg: &ReconstructorConfig, bsz: usize, seed: u64) -> TokenBatch {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let (seq, dim) = (cfg.seq_len(), cfg.token_dim());
    let patches: Vec<Vec<Vec<f32>>> = (0..bsz)
        .map(|_| {
            (0..seq)
                .map(|_| {
                    (0..dim)
                        .map(|_| {
                            s ^= s << 13;
                            s ^= s >> 7;
                            s ^= s << 17;
                            ((s >> 40) as f32 / (1u64 << 24) as f32).clamp(0.0, 1.0)
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    TokenBatch::from_patches(&patches)
}

fn to_bits(tokens: &[Vec<Vec<f32>>]) -> Vec<u32> {
    tokens.iter().flatten().flatten().map(|v| v.to_bits()).collect()
}

#[test]
fn tape_free_is_byte_identical_across_masks_batches_and_geometries() {
    for cfg in geometries() {
        let model = Reconstructor::new(cfg);
        let grid = cfg.geometry().grid();
        for (strategy, mask) in mask_strategies(grid, 7) {
            for bsz in [1usize, 4, 8] {
                let batch = random_batch(&cfg, bsz, 1000 + bsz as u64);
                let tape = model.reconstruct_tokens_graph(&batch, &mask);
                let free = model.reconstruct_tokens(&batch, &mask);
                assert_eq!(
                    to_bits(&tape),
                    to_bits(&free),
                    "engines diverge: n={} b={} strategy={strategy} batch={bsz}",
                    cfg.n,
                    cfg.b,
                );
            }
        }
    }
}

#[test]
fn decode_engines_produce_byte_identical_images() {
    let model = Reconstructor::new(ReconstructorConfig::fast());
    let decoder = EaszDecoder::new(&model);
    let encoder = EaszEncoder::new(EaszConfig::default()).expect("encoder");
    let codec = JpegLikeCodec::new();
    for (i, side) in [(1usize, 32usize), (2, 64)] {
        let img = Dataset::KodakLike.image(i).crop(0, 0, side, side);
        let enc = encoder.compress(&img, &codec, Quality::new(80)).expect("compress");
        let graph = decoder.decode_with_engine(&enc, &codec, DecodeEngine::Graph).expect("graph");
        let free = decoder.decode_with_engine(&enc, &codec, DecodeEngine::TapeFree).expect("free");
        let gb: Vec<u32> = graph.data().iter().map(|v| v.to_bits()).collect();
        let fb: Vec<u32> = free.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, fb, "decoded tile{side} images must match bit-for-bit");
    }
}

#[test]
fn scratch_arena_steady_state_allocates_nothing() {
    let cfg = ReconstructorConfig::fast();
    let model = Reconstructor::new(cfg);
    let mask = EaszConfig::default().make_mask();
    let plan = DecodePlan::new(&mask);
    let batch = random_batch(&cfg, 4, 42);
    let mut arena = ScratchArena::new();
    let first = model.infer_tokens(&batch, &plan, &mut arena);
    let (buffers, bytes) = (arena.allocated_buffers(), arena.allocated_bytes());
    assert!(buffers > 0, "the first forward must warm the arena");
    for _ in 0..5 {
        let again = model.infer_tokens(&batch, &plan, &mut arena);
        assert_eq!(to_bits(&first), to_bits(&again), "repeated forwards must be identical");
    }
    assert_eq!(
        (arena.allocated_buffers(), arena.allocated_bytes()),
        (buffers, bytes),
        "repeated forwards must not grow the arena"
    );
}

#[test]
fn decoder_caches_one_plan_per_effective_mask() {
    let model = Reconstructor::new(ReconstructorConfig::fast());
    let decoder = EaszDecoder::new(&model);
    let codec = JpegLikeCodec::new();
    let img = Dataset::KodakLike.image(3).crop(0, 0, 64, 64);
    let enc_a = EaszEncoder::new(EaszConfig::default())
        .expect("encoder")
        .compress(&img, &codec, Quality::new(75))
        .expect("compress");
    let enc_b = EaszEncoder::new(EaszConfig { mask_seed: 99, ..EaszConfig::default() })
        .expect("encoder")
        .compress(&img, &codec, Quality::new(75))
        .expect("compress");
    assert_eq!(decoder.cached_plans(), 0);
    decoder.decode(&enc_a).expect("decode a");
    decoder.decode(&enc_a).expect("decode a again");
    assert_eq!(decoder.cached_plans(), 1, "same mask must reuse one plan");
    decoder.decode(&enc_b).expect("decode b");
    assert_eq!(decoder.cached_plans(), 2, "distinct masks get distinct plans");
    decoder.decode_batch(&[enc_a, enc_b]).into_iter().for_each(|r| {
        r.expect("batch decode");
    });
    assert_eq!(decoder.cached_plans(), 2, "decode_batch reuses the serial-path plans");
}

//! Tape vs tape-free equivalence: the inference engine must be
//! **byte-identical** to the autodiff `Graph` path — same kernels, same
//! floating-point operation order — across every mask strategy, batch size
//! and model geometry the pipeline ships.
//!
//! Also proves the `ScratchArena` steady state allocates nothing and the
//! decoder's `DecodePlan` cache behaves (one plan per effective mask).

use easz::codecs::{JpegLikeCodec, Quality};
use easz::core::{
    DecodeEngine, DecodePlan, EaszConfig, EaszDecoder, EaszEncoder, EraseMask, MaskKind,
    MultiMaskPlan, Reconstructor, ReconstructorConfig, RowSamplerConfig, TokenBatch,
};
use easz::data::Dataset;
use easz::tensor::ScratchArena;

/// The two model geometries under test: the pipeline default (n=32, b=4)
/// and the small-tile ablation geometry (n=16, b=2).
fn geometries() -> [ReconstructorConfig; 2] {
    [
        ReconstructorConfig::fast(),
        ReconstructorConfig {
            n: 16,
            b: 2,
            d_model: 32,
            heads: 2,
            ffn: 64,
            ..ReconstructorConfig::fast()
        },
    ]
}

/// Every shipped mask family at the given grid size.
fn mask_strategies(grid: usize, seed: u64) -> Vec<(&'static str, EraseMask)> {
    vec![
        (
            "row_conditional",
            MaskKind::RowConditional(RowSamplerConfig::with_ratio(grid, 0.25)).generate(seed),
        ),
        ("random_row", MaskKind::RandomRow { n_grid: grid, t: grid / 4 }.generate(seed)),
        ("diagonal", MaskKind::Diagonal { n_grid: grid }.generate(seed)),
    ]
}

fn random_patches(cfg: &ReconstructorConfig, bsz: usize, seed: u64) -> Vec<Vec<Vec<f32>>> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let (seq, dim) = (cfg.seq_len(), cfg.token_dim());
    (0..bsz)
        .map(|_| {
            (0..seq)
                .map(|_| {
                    (0..dim)
                        .map(|_| {
                            s ^= s << 13;
                            s ^= s >> 7;
                            s ^= s << 17;
                            ((s >> 40) as f32 / (1u64 << 24) as f32).clamp(0.0, 1.0)
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn random_batch(cfg: &ReconstructorConfig, bsz: usize, seed: u64) -> TokenBatch {
    TokenBatch::from_patches(&random_patches(cfg, bsz, seed))
}

fn to_bits(tokens: &[Vec<Vec<f32>>]) -> Vec<u32> {
    tokens.iter().flatten().flatten().map(|v| v.to_bits()).collect()
}

#[test]
fn tape_free_is_byte_identical_across_masks_batches_and_geometries() {
    for cfg in geometries() {
        let model = Reconstructor::new(cfg);
        let grid = cfg.geometry().grid();
        for (strategy, mask) in mask_strategies(grid, 7) {
            for bsz in [1usize, 4, 8] {
                let batch = random_batch(&cfg, bsz, 1000 + bsz as u64);
                let tape = model.reconstruct_tokens_graph(&batch, &mask);
                let free = model.reconstruct_tokens(&batch, &mask);
                assert_eq!(
                    to_bits(&tape),
                    to_bits(&free),
                    "engines diverge: n={} b={} strategy={strategy} batch={bsz}",
                    cfg.n,
                    cfg.b,
                );
            }
        }
    }
}

#[test]
fn multi_mask_fused_forward_is_byte_identical_to_per_stream_serial() {
    // The mixed-fleet contract: streams sharing a geometry and erase
    // *count* but not erase positions are fused into one forward, and each
    // stream's output must match — bit for bit — what its own serial
    // forward produces (tape-free and, transitively, the Graph tape, which
    // the serial sweep above pins).
    for cfg in geometries() {
        let model = Reconstructor::new(cfg);
        let grid = cfg.geometry().grid();
        // Three distinct masks of the same family and ratio (same count),
        // with different per-stream patch counts.
        let masks: Vec<EraseMask> = [3u64, 17, 91]
            .iter()
            .map(|&seed| {
                MaskKind::RowConditional(RowSamplerConfig::with_ratio(grid, 0.25)).generate(seed)
            })
            .collect();
        assert!(masks.windows(2).all(|w| w[0] != w[1]), "seeds must yield distinct masks");
        let counts = [2usize, 1, 3];
        let plans: Vec<DecodePlan> = masks.iter().map(DecodePlan::new).collect();
        let streams: Vec<(&DecodePlan, usize)> = plans.iter().zip(counts).collect();
        let fused_plan = MultiMaskPlan::new(&streams);

        // Per-stream patch lists and one fused batch built from the same
        // raw values, so both paths centre bit-identically.
        let stream_patches: Vec<Vec<Vec<Vec<f32>>>> = counts
            .iter()
            .enumerate()
            .map(|(si, &c)| random_patches(&cfg, c, 500 + si as u64))
            .collect();
        let all_patches: Vec<Vec<Vec<f32>>> = stream_patches.iter().flatten().cloned().collect();
        let fused_batch = TokenBatch::from_patches(&all_patches);

        let mut arena = ScratchArena::new();
        let fused = model.infer_tokens_multi(&fused_batch, &fused_plan, &mut arena);
        let mut offset = 0usize;
        for (si, &c) in counts.iter().enumerate() {
            let serial = model
                .reconstruct_tokens(&TokenBatch::from_patches(&stream_patches[si]), &masks[si]);
            assert_eq!(
                to_bits(&serial),
                to_bits(&fused[offset..offset + c]),
                "mixed-mask fusion diverges from serial: n={} b={} stream={si}",
                cfg.n,
                cfg.b,
            );
            offset += c;
        }

        // Steady state: repeating the fused forward allocates nothing new.
        let (buffers, bytes) = (arena.allocated_buffers(), arena.allocated_bytes());
        let again = model.infer_tokens_multi(&fused_batch, &fused_plan, &mut arena);
        assert_eq!(to_bits(&fused), to_bits(&again), "fused forward must be deterministic");
        assert_eq!(
            (arena.allocated_buffers(), arena.allocated_bytes()),
            (buffers, bytes),
            "repeated fused forwards must not grow the arena"
        );
    }
}

#[test]
fn mixed_mask_decode_batch_is_byte_identical_end_to_end() {
    // Decode-level twin of the forward test: containers with distinct mask
    // seeds (and mixed canvas sizes) through one decode_batch, each image
    // compared bit-for-bit against its serial decode.
    let model = Reconstructor::new(ReconstructorConfig::fast());
    let decoder = EaszDecoder::new(&model);
    let codec = JpegLikeCodec::new();
    let containers: Vec<_> = [(1usize, 5u64, 32usize), (2, 55, 64), (3, 555, 96)]
        .iter()
        .map(|&(i, seed, side)| {
            let enc = EaszEncoder::new(EaszConfig { mask_seed: seed, ..EaszConfig::default() })
                .expect("encoder");
            let img = Dataset::KodakLike.image(i).crop(0, 0, side, side);
            enc.compress(&img, &codec, Quality::new(80)).expect("compress")
        })
        .collect();
    let batched = decoder.decode_batch(&containers);
    for (c, b) in containers.iter().zip(&batched) {
        let serial = decoder.decode(c).expect("serial decode");
        let b = b.as_ref().expect("batched decode");
        let sb: Vec<u32> = serial.data().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(sb, bb, "mixed-mask decode_batch must match serial decode bit-for-bit");
    }
}

#[test]
fn decode_engines_produce_byte_identical_images() {
    let model = Reconstructor::new(ReconstructorConfig::fast());
    let decoder = EaszDecoder::new(&model);
    let encoder = EaszEncoder::new(EaszConfig::default()).expect("encoder");
    let codec = JpegLikeCodec::new();
    for (i, side) in [(1usize, 32usize), (2, 64)] {
        let img = Dataset::KodakLike.image(i).crop(0, 0, side, side);
        let enc = encoder.compress(&img, &codec, Quality::new(80)).expect("compress");
        let graph = decoder.decode_with_engine(&enc, &codec, DecodeEngine::Graph).expect("graph");
        let free = decoder.decode_with_engine(&enc, &codec, DecodeEngine::TapeFree).expect("free");
        let gb: Vec<u32> = graph.data().iter().map(|v| v.to_bits()).collect();
        let fb: Vec<u32> = free.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, fb, "decoded tile{side} images must match bit-for-bit");
    }
}

#[test]
fn scratch_arena_steady_state_allocates_nothing() {
    let cfg = ReconstructorConfig::fast();
    let model = Reconstructor::new(cfg);
    let mask = EaszConfig::default().make_mask();
    let plan = DecodePlan::new(&mask);
    let batch = random_batch(&cfg, 4, 42);
    let mut arena = ScratchArena::new();
    let first = model.infer_tokens(&batch, &plan, &mut arena);
    let (buffers, bytes) = (arena.allocated_buffers(), arena.allocated_bytes());
    assert!(buffers > 0, "the first forward must warm the arena");
    for _ in 0..5 {
        let again = model.infer_tokens(&batch, &plan, &mut arena);
        assert_eq!(to_bits(&first), to_bits(&again), "repeated forwards must be identical");
    }
    assert_eq!(
        (arena.allocated_buffers(), arena.allocated_bytes()),
        (buffers, bytes),
        "repeated forwards must not grow the arena"
    );
}

#[test]
fn decoder_caches_one_plan_per_effective_mask() {
    let model = Reconstructor::new(ReconstructorConfig::fast());
    let decoder = EaszDecoder::new(&model);
    let codec = JpegLikeCodec::new();
    let img = Dataset::KodakLike.image(3).crop(0, 0, 64, 64);
    let enc_a = EaszEncoder::new(EaszConfig::default())
        .expect("encoder")
        .compress(&img, &codec, Quality::new(75))
        .expect("compress");
    let enc_b = EaszEncoder::new(EaszConfig { mask_seed: 99, ..EaszConfig::default() })
        .expect("encoder")
        .compress(&img, &codec, Quality::new(75))
        .expect("compress");
    assert_eq!(decoder.cached_plans(), 0);
    decoder.decode(&enc_a).expect("decode a");
    decoder.decode(&enc_a).expect("decode a again");
    assert_eq!(decoder.cached_plans(), 1, "same mask must reuse one plan");
    decoder.decode(&enc_b).expect("decode b");
    assert_eq!(decoder.cached_plans(), 2, "distinct masks get distinct plans");
    decoder.decode_batch(&[enc_a, enc_b]).into_iter().for_each(|r| {
        r.expect("batch decode");
    });
    assert_eq!(decoder.cached_plans(), 2, "decode_batch reuses the serial-path plans");
}

//! Chaos soak for the serving stack: seeded fault schedules (torn writes,
//! EINTR storms, aborted accepts, short reads, stalled / panicking decodes,
//! refused gateway submissions) against both front ends, asserting the
//! failure-model contract end to end — no hangs, one typed reply per
//! request, exact metrics reconciliation, and every successful reply
//! byte-identical to a fault-free local decode.
//!
//! Faults come from `easz_server::fault` (compiled in via the test-only
//! `fault-injection` feature): every schedule is a pure function of its
//! seed, so a failing run reproduces from the seed in the assertion
//! message. The reactor front end is Linux-only (epoll), so this suite is
//! too.
#![cfg(target_os = "linux")]

use easz::codecs::{JpegLikeCodec, Quality};
use easz::core::{EaszConfig, EaszDecoder, EaszEncoder, Reconstructor, ReconstructorConfig};
use easz::data::Dataset;
use easz::image::ImageU8;
use easz::server::fault::{self, FaultCounters, FaultPlan};
use easz::server::{
    protocol, ClientError, EaszClient, EaszServer, ErrorCode, GatewayConfig, ReactorConfig,
    RetryPolicy, ServerHandle,
};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Weights don't matter for wire-level behaviour; the untrained (seeded,
/// deterministic) model keeps the soak fast.
fn model() -> Arc<Reconstructor> {
    Arc::new(Reconstructor::new(ReconstructorConfig::fast()))
}

/// One container per mask seed — concurrent clients with distinct seeds
/// make the gateway actually fuse multi-mask windows.
fn fleet_containers(seeds: &[u64]) -> Vec<Vec<u8>> {
    let codec = JpegLikeCodec::new();
    seeds
        .iter()
        .map(|&seed| {
            let enc = EaszEncoder::new(EaszConfig { mask_seed: seed, ..EaszConfig::default() })
                .expect("encoder");
            let img = Dataset::KodakLike.image(seed as usize % 8).crop(0, 0, 96, 64);
            enc.compress(&img, &codec, Quality::new(80)).expect("compress").to_bytes()
        })
        .collect()
}

/// The fault-free ground truth every successful reply must match, byte for
/// byte (local decoding never passes through the fault hooks).
fn local_references(model: &Arc<Reconstructor>, wires: &[Vec<u8>]) -> Vec<ImageU8> {
    let local = EaszDecoder::new(model);
    wires.iter().map(|w| local.decode_bytes(w).expect("local decode").to_u8()).collect()
}

/// The serving topologies under chaos. `ThreadedInline` (no gateway)
/// exists to drive the handler-thread isolation boundary rather than the
/// worker-pool one.
#[derive(Clone, Copy, Debug)]
enum Front {
    ThreadedGateway,
    Reactor,
    ThreadedInline,
}

fn spawn(front: Front, model: &Arc<Reconstructor>, gateway: GatewayConfig) -> ServerHandle {
    let server = EaszServer::new(model.clone());
    match front {
        Front::ThreadedGateway => server.with_gateway(gateway),
        Front::Reactor => server.with_gateway(gateway).with_reactor(ReactorConfig::default()),
        Front::ThreadedInline => server,
    }
    .spawn("127.0.0.1:0")
    .expect("spawn server")
}

/// A client whose reads time out: the no-hang gate. A request the server
/// never answers trips the 60 s timeout and fails the test instead of
/// wedging the suite.
fn chaos_client(addr: SocketAddr, retry: Option<RetryPolicy>) -> EaszClient {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("read timeout");
    let client = EaszClient::from_stream(stream);
    match retry {
        Some(policy) => client.with_retry(policy),
        None => client,
    }
}

/// The only errors the failure model may produce for a *pristine*
/// container: a shed (35), an isolated panic (37), a swept deadline (38).
/// Anything else — container-class codes, protocol errors, closes — means
/// a fault corrupted server state.
fn assert_degraded_only(code: ErrorCode, context: &str) {
    assert!(
        matches!(code, ErrorCode::Busy | ErrorCode::Internal | ErrorCode::DeadlineExceeded),
        "{context}: pristine container answered with {code:?}"
    );
}

fn reconcile(stats: &easz::server::ServerStats, context: &str) {
    assert_eq!(
        stats.decode_requests,
        stats.decode_ok + stats.decode_err + stats.requests_shed,
        "{context}: every admitted decode must be answered exactly once \
         (ok + typed error + shed must account for all requests)"
    );
}

fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        read_interrupt_permille: 80,
        write_split_permille: 120,
        accept_abort_permille: 15,
        epoll_spurious_permille: 80,
        short_read_permille: 100,
        decode_delay_permille: 60,
        decode_delay_us: 3_000,
        decode_panic_permille: 40,
        submit_refuse_permille: 60,
        ..FaultPlan::default()
    }
}

/// One seeded schedule: install the plan, serve, hammer with concurrent
/// retrying clients, reconcile the metrics, shut down under fire. Returns
/// the schedule's fault counters and how many replies decoded successfully.
fn run_schedule(
    seed: u64,
    front: Front,
    model: &Arc<Reconstructor>,
    wires: &[Vec<u8>],
    references: &[ImageU8],
) -> (FaultCounters, usize) {
    let guard = fault::install(chaos_plan(seed));
    let gateway = GatewayConfig {
        max_batch: 4,
        max_wait_us: 2_000,
        workers: 2,
        queue_depth: 32,
        adaptive_wait: false,
        deadline_us: 2_000_000,
    };
    let handle = spawn(front, model, gateway);
    let context = format!("seed {seed} front {front:?}");

    let successes: usize = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..2u64)
            .map(|client_idx| {
                let (wires, context, addr) = (wires, &context, handle.addr());
                scope.spawn(move || {
                    let policy = RetryPolicy {
                        max_retries: 6,
                        base_delay: Duration::from_millis(2),
                        max_delay: Duration::from_millis(20),
                        jitter_seed: seed ^ client_idx,
                    };
                    let mut client = chaos_client(addr, Some(policy));
                    let mut ok = 0usize;
                    for _pass in 0..2 {
                        for (i, wire) in wires.iter().enumerate() {
                            match client.decode(wire) {
                                Ok(img) => {
                                    assert_eq!(
                                        img.data(),
                                        references[i].data(),
                                        "{context}: reply under faults != fault-free decode"
                                    );
                                    ok += 1;
                                }
                                Err(ClientError::Remote(err)) => {
                                    assert_degraded_only(err.code, context);
                                }
                                Err(e) => panic!("{context}: transport failed past retries: {e}"),
                            }
                        }
                    }
                    // One batch over everything: the positional contract
                    // must hold under faults — a panicking or shed batchmate
                    // fails its own slot only.
                    let refs: Vec<&[u8]> = wires.iter().map(Vec::as_slice).collect();
                    let results = client
                        .decode_batch(&refs)
                        .unwrap_or_else(|e| panic!("{context}: batch envelope failed: {e}"));
                    for (i, result) in results.into_iter().enumerate() {
                        match result {
                            Ok(img) => {
                                assert_eq!(
                                    img.data(),
                                    references[i].data(),
                                    "{context}: batch slot {i} != fault-free decode"
                                );
                                ok += 1;
                            }
                            Err(err) => assert_degraded_only(err.code, context),
                        }
                    }
                    ok
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().expect("client thread")).sum()
    });

    // Settle and reconcile on fresh probes (a probe connection can itself
    // be killed by an injected accept abort, so a few attempts are fair).
    let mut stats = None;
    for _ in 0..10 {
        let mut probe = chaos_client(handle.addr(), None);
        if let Ok(s) = probe.stats() {
            if probe.ping().is_ok() {
                stats = Some(s);
                break;
            }
        }
    }
    let stats = stats.unwrap_or_else(|| panic!("{context}: stats probe never settled"));
    reconcile(&stats, &context);

    // Shutdown still under the fault plan: the drain invariant must hold
    // with faults firing.
    handle.shutdown().unwrap_or_else(|e| panic!("{context}: shutdown under faults: {e}"));
    let counters = fault::counters();
    drop(guard);
    (counters, successes)
}

#[test]
fn chaos_soak_holds_the_failure_model_on_both_front_ends() {
    let model = model();
    let wires = fleet_containers(&[21, 22, 23]);
    let references = local_references(&model, &wires);

    let mut total = FaultCounters::default();
    let mut successes = 0usize;
    for seed in 0..8u64 {
        for front in [Front::Reactor, Front::ThreadedGateway] {
            let (counters, ok) = run_schedule(seed, front, &model, &wires, &references);
            successes += ok;
            total = FaultCounters {
                read_interrupts: total.read_interrupts + counters.read_interrupts,
                write_splits: total.write_splits + counters.write_splits,
                accept_aborts: total.accept_aborts + counters.accept_aborts,
                epoll_spurious: total.epoll_spurious + counters.epoll_spurious,
                short_reads: total.short_reads + counters.short_reads,
                decode_delays: total.decode_delays + counters.decode_delays,
                decode_panics: total.decode_panics + counters.decode_panics,
                submit_refusals: total.submit_refusals + counters.submit_refusals,
            };
        }
    }

    assert!(successes > 0, "no request ever succeeded: the soak shed everything");
    // The schedules must actually have injected faults, or the soak passed
    // vacuously (each line names the layer whose hook went dead).
    assert!(total.read_interrupts > 0, "protocol read hook never fired: {total:?}");
    assert!(total.write_splits > 0, "protocol write hook never fired: {total:?}");
    assert!(total.epoll_spurious > 0, "epoll shim hook never fired: {total:?}");
    assert!(total.short_reads > 0, "reactor read hook never fired: {total:?}");
    assert!(total.decode_delays > 0, "decode stall hook never fired: {total:?}");
    assert!(total.decode_panics > 0, "decode panic hook never fired: {total:?}");
    assert!(total.submit_refusals > 0, "gateway submit hook never fired: {total:?}");
}

#[test]
fn a_forced_decode_panic_fails_one_request_and_the_pool_recovers() {
    let model = model();
    let wires = fleet_containers(&[31, 32]);
    let references = local_references(&model, &wires);
    for front in [Front::ThreadedGateway, Front::Reactor, Front::ThreadedInline] {
        let _guard = fault::install(FaultPlan { decode_panic_oneshot: 1, ..FaultPlan::default() });
        let gateway = GatewayConfig {
            max_batch: 4,
            max_wait_us: 2_000,
            workers: 2,
            ..GatewayConfig::default()
        };
        let handle = spawn(front, &model, gateway);
        let mut client = chaos_client(handle.addr(), None);

        // The poisoned decode answers with INTERNAL and nothing else dies.
        match client.decode(&wires[0]) {
            Err(ClientError::Remote(err)) => {
                assert_eq!(err.code, ErrorCode::Internal, "{front:?}");
                assert!(
                    err.message.contains("injected decode panic"),
                    "{front:?}: the caught panic's message must round-trip, got {:?}",
                    err.message
                );
            }
            other => panic!("{front:?}: expected INTERNAL, got {other:?}"),
        }

        // Same connection, post-panic: the worker was respawned (or the
        // handler survived), and replies are byte-identical again.
        for (i, wire) in wires.iter().enumerate() {
            let img = client.decode(wire).unwrap_or_else(|e| {
                panic!("{front:?}: decode {i} after the panic must succeed: {e}")
            });
            assert_eq!(img.data(), references[i].data(), "{front:?}: post-panic byte identity");
        }

        let stats = client.stats().expect("stats");
        assert!(stats.panics_caught >= 1, "{front:?}: {stats:?}");
        assert_eq!(stats.error_count(ErrorCode::Internal), 1, "{front:?}");
        match front {
            Front::ThreadedInline => {
                assert_eq!(stats.worker_respawns, 0, "{front:?}: no pool, no respawn")
            }
            _ => assert_eq!(stats.worker_respawns, 1, "{front:?}: one poisoning, one respawn"),
        }
        reconcile(&stats, &format!("{front:?}"));
        drop(client);
        handle.shutdown().expect("shutdown");
    }
}

#[test]
fn a_stalled_worker_expires_queued_deadlines_instead_of_parking_handlers() {
    let model = model();
    let wires = fleet_containers(&[41]);
    let references = local_references(&model, &wires);
    for front in [Front::ThreadedGateway, Front::Reactor] {
        let _guard = fault::install(FaultPlan {
            decode_delay_oneshot: 1,
            decode_delay_us: 1_500_000,
            ..FaultPlan::default()
        });
        // One worker, windows of one, 50 ms scheduling deadline: the first
        // request monopolises the worker for 1.5 s, so everything queued
        // behind it must be swept and answered — not parked until the
        // worker frees up.
        let gateway = GatewayConfig {
            max_batch: 1,
            max_wait_us: 1_000,
            workers: 1,
            queue_depth: 8,
            adaptive_wait: false,
            deadline_us: 50_000,
        };
        let handle = spawn(front, &model, gateway);
        let addr = handle.addr();
        let wire = &wires[0];

        std::thread::scope(|scope| {
            // The deadline bounds *scheduling*, not decode duration: the
            // stalled request was dispatched in time and must still finish.
            let slow = scope.spawn(move || {
                let mut client = chaos_client(addr, None);
                let started = Instant::now();
                let img = client.decode(wire).expect("stalled decode still completes");
                (img, started.elapsed())
            });
            // Let the slow request reach the worker before queuing behind it.
            std::thread::sleep(Duration::from_millis(150));
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(move || {
                        let mut client = chaos_client(addr, None);
                        let started = Instant::now();
                        (client.decode(wire), started.elapsed())
                    })
                })
                .collect();

            for waiter in waiters {
                let (result, elapsed) = waiter.join().expect("waiter thread");
                match result {
                    Err(ClientError::Remote(err)) => {
                        assert_eq!(err.code, ErrorCode::DeadlineExceeded, "{front:?}")
                    }
                    other => panic!("{front:?}: expected DEADLINE_EXCEEDED, got {other:?}"),
                }
                // The sweep must answer within deadline + tick slack — far
                // before the stalled worker would have freed up.
                assert!(
                    elapsed < Duration::from_millis(1_000),
                    "{front:?}: swept reply took {elapsed:?}, deadline is 50 ms"
                );
            }
            let (img, slow_elapsed) = slow.join().expect("slow client");
            assert_eq!(img.data(), references[0].data(), "{front:?}");
            assert!(
                slow_elapsed >= Duration::from_millis(500),
                "{front:?}: the injected stall must actually stall, took {slow_elapsed:?}"
            );
        });

        let stats = handle.metrics().snapshot();
        assert_eq!(stats.deadlines_expired, 2, "{front:?}: {stats:?}");
        assert_eq!(stats.error_count(ErrorCode::DeadlineExceeded), 2, "{front:?}");
        reconcile(&stats, &format!("{front:?}"));
        handle.shutdown().expect("shutdown");
    }
}

/// Deterministic per-case PRNG and the container mutator, mirroring
/// `tests/parse_fuzz.rs` (test binaries cannot share code without a
/// support crate; the duplication is the lesser evil).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x0123_4567_89AB_CDEF))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

fn mutate(rng: &mut Rng, base: &[u8], other: &[u8]) -> Vec<u8> {
    let mut bytes = base.to_vec();
    match rng.below(7) {
        0 | 1 => {
            for _ in 0..=rng.below(8) {
                let at = rng.below(bytes.len());
                bytes[at] ^= (rng.next() as u8).max(1);
            }
        }
        2 => bytes.truncate(rng.below(bytes.len() + 1)),
        3 => bytes.extend((0..=rng.below(64)).map(|_| rng.next() as u8)),
        4 => {
            let cut = rng.below(bytes.len());
            bytes.truncate(cut);
            let from = rng.below(other.len());
            bytes.extend_from_slice(&other[from..]);
        }
        5 => {
            let (w, h) = ((1u32 << (10 + rng.below(10))), (1u32 << (10 + rng.below(10))));
            bytes[14..18].copy_from_slice(&w.to_le_bytes());
            bytes[18..22].copy_from_slice(&h.to_le_bytes());
        }
        _ => {
            bytes[9] = rng.next() as u8;
            if rng.below(2) == 0 {
                bytes[4] = 1 + (rng.next() % 3) as u8;
            }
        }
    }
    bytes
}

#[test]
fn mutated_container_replay_stays_typed_and_the_connection_survives() {
    let model = model();
    let wires = fleet_containers(&[51, 52, 53]);
    let references = local_references(&model, &wires);
    for front in [Front::ThreadedGateway, Front::Reactor] {
        // A neutral plan injects nothing but holds the fault serialization
        // lock, so a concurrently running chaos test cannot leak injected
        // faults into this sweep's accounting.
        let _guard = fault::install(FaultPlan::default());
        let gateway = GatewayConfig {
            max_batch: 4,
            max_wait_us: 2_000,
            workers: 2,
            ..GatewayConfig::default()
        };
        let handle = spawn(front, &model, gateway);
        let mut client = chaos_client(handle.addr(), None);

        let (mut typed_errors, mut decoded) = (0u64, 0u64);
        for case in 0..150u64 {
            let mut rng = Rng::new(0xC4A0_5000 + case);
            let base = &wires[rng.below(wires.len())];
            let other = &wires[rng.below(wires.len())];
            let mutant = mutate(&mut rng, base, other);
            match client.decode(&mutant) {
                Ok(_) => decoded += 1,
                // Remote means the reply parsed as a typed WireError — the
                // uniform contract for untrusted bytes, now including
                // mutants that panic the decoder (isolated to INTERNAL).
                Err(ClientError::Remote(_)) => typed_errors += 1,
                Err(e) => panic!("{front:?} case {case}: non-typed failure: {e}"),
            }
            if case % 25 == 0 {
                // The connection must stay in sync mid-sweep.
                assert_eq!(client.ping().expect("ping"), protocol::PROTOCOL_VERSION);
            }
        }
        assert!(typed_errors > 0, "mutation sweep too gentle to mean anything");

        // The same connection still serves pristine containers,
        // byte-identical to local decodes.
        for (i, wire) in wires.iter().enumerate() {
            let img = client.decode(wire).expect("pristine decode after the sweep");
            assert_eq!(img.data(), references[i].data(), "{front:?}");
        }

        let stats = client.stats().expect("stats");
        reconcile(&stats, &format!("{front:?}"));
        assert_eq!(stats.decode_ok, decoded + wires.len() as u64, "{front:?}");
        assert_eq!(stats.decode_err, typed_errors, "{front:?}");
        drop(client);
        handle.shutdown().expect("shutdown");
    }
}

//! Protocol-hardening tests for `easz-server` over real loopback sockets:
//! malformed, truncated and oversized frames must come back as typed error
//! frames without killing the server, and concurrent clients must decode
//! byte-identically to a serial one.

use easz::codecs::{JpegLikeCodec, Quality};
use easz::core::{
    EaszConfig, EaszDecoder, EaszEncoded, EaszEncoder, Reconstructor, ReconstructorConfig,
};
use easz::data::Dataset;
use easz::image::ImageU8;
use easz::server::{
    protocol, ClientError, EaszClient, EaszServer, EngineTier, ErrorCode, GatewayConfig,
    ServerConfig,
};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Weights don't matter for wire-level behaviour, so an untrained (seeded,
/// deterministic) model keeps these tests fast.
fn model() -> Arc<Reconstructor> {
    Arc::new(Reconstructor::new(ReconstructorConfig::fast()))
}

fn containers() -> Vec<Vec<u8>> {
    let encoder = EaszEncoder::new(EaszConfig::default()).expect("encoder");
    let codec = JpegLikeCodec::new();
    [(1usize, 96, 64), (3, 64, 64), (5, 128, 96)]
        .iter()
        .map(|&(i, w, h)| {
            let img = Dataset::KodakLike.image(i).crop(0, 0, w, h);
            encoder.compress(&img, &codec, Quality::new(80)).expect("compress").to_bytes()
        })
        .collect()
}

#[test]
fn single_decode_matches_local_decode_bit_for_bit() {
    let model = model();
    let handle = EaszServer::new(model.clone()).spawn("127.0.0.1:0").expect("spawn");
    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    assert_eq!(client.ping().expect("ping"), protocol::PROTOCOL_VERSION);

    let wire = &containers()[0];
    let remote = client.decode(wire).expect("remote decode");
    let local = EaszDecoder::new(&model).decode_bytes(wire).expect("local decode").to_u8();
    assert_eq!(remote.data(), local.data(), "server must reproduce the local decode exactly");
    drop(client);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn malformed_containers_are_typed_errors_not_connection_deaths() {
    let handle = EaszServer::new(model()).spawn("127.0.0.1:0").expect("spawn");
    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    let good = containers().remove(0);

    // Header-sized garbage: rejected at the magic. Shorter garbage is a
    // length problem before the magic is even looked at.
    match client.decode(&[b'X'; 64]) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::BadMagic),
        other => panic!("expected BadMagic, got {other:?}"),
    }
    match client.decode(b"too short to be a container") {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Truncated),
        other => panic!("expected Truncated, got {other:?}"),
    }
    // A truncated but genuine container: typed truncation report.
    match client.decode(&good[..good.len() / 2]) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Truncated),
        other => panic!("expected Truncated, got {other:?}"),
    }
    // A genuine container whose geometry the model does not serve.
    let foreign_cfg = EaszConfig::builder().n(16).b(2).build().expect("cfg");
    let foreign = EaszEncoder::new(foreign_cfg)
        .expect("encoder")
        .compress(
            &Dataset::KodakLike.image(2).crop(0, 0, 64, 64),
            &JpegLikeCodec::new(),
            Quality::new(70),
        )
        .expect("compress")
        .to_bytes();
    match client.decode(&foreign) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::GeometryMismatch),
        other => panic!("expected GeometryMismatch, got {other:?}"),
    }
    // The same connection still decodes fine afterwards.
    assert!(client.decode(&good).is_ok(), "connection must survive typed errors");
    drop(client);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn framing_violations_answer_once_and_close() {
    let config = ServerConfig { max_frame_len: 4096, ..ServerConfig::default() };
    let handle = EaszServer::new(model()).with_config(config).spawn("127.0.0.1:0").expect("spawn");

    // An unknown frame type: one UnknownFrame error, then EOF.
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    protocol::write_frame(&mut raw, 0x7f, b"??").expect("write");
    let (ty, payload) = protocol::read_frame(&mut raw, 1 << 20).expect("read").expect("frame");
    assert_eq!(ty, protocol::ERROR);
    let err = protocol::WireError::from_payload(&payload).expect("error payload");
    assert_eq!(err.code, ErrorCode::UnknownFrame);
    assert!(
        protocol::read_frame(&mut raw, 1 << 20).expect("post-error read").is_none(),
        "server must close after an unknown frame type"
    );

    // A frame announcing more than the server's limit: Oversize, then EOF.
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    let mut header = vec![protocol::DECODE];
    header.extend_from_slice(&(1u32 << 24).to_le_bytes());
    std::io::Write::write_all(&mut raw, &header).expect("write oversize header");
    let (ty, payload) = protocol::read_frame(&mut raw, 1 << 20).expect("read").expect("frame");
    assert_eq!(ty, protocol::ERROR);
    let err = protocol::WireError::from_payload(&payload).expect("error payload");
    assert_eq!(err.code, ErrorCode::Oversize);
    assert!(
        protocol::read_frame(&mut raw, 1 << 20).expect("post-error read").is_none(),
        "server must close after an oversize announcement"
    );

    // A mid-frame disconnect: no reply owed, and the server survives.
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    std::io::Write::write_all(&mut raw, &[protocol::DECODE, 100, 0, 0, 0, 1, 2, 3])
        .expect("write partial frame");
    drop(raw);

    // A bad ping is a well-framed request: error frame, connection lives.
    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    {
        let mut raw = TcpStream::connect(handle.addr()).expect("connect");
        protocol::write_frame(&mut raw, protocol::PING, b"four").expect("write");
        let (ty, payload) = protocol::read_frame(&mut raw, 1 << 20).expect("read").expect("frame");
        assert_eq!(ty, protocol::ERROR);
        let err = protocol::WireError::from_payload(&payload).expect("error payload");
        assert_eq!(err.code, ErrorCode::Protocol);
        protocol::write_frame(&mut raw, protocol::PING, &[protocol::PROTOCOL_VERSION])
            .expect("write");
        let (ty, _) = protocol::read_frame(&mut raw, 1 << 20).expect("read").expect("frame");
        assert_eq!(ty, protocol::PONG, "connection must survive a bad ping");
    }
    // After all of the above, fresh connections still decode.
    assert!(client.decode(&containers()[1]).is_ok(), "server must outlive abusive peers");
    drop(client);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn batch_mixes_results_in_request_order() {
    let config = ServerConfig { max_batch: 4, ..ServerConfig::default() };
    let handle = EaszServer::new(model()).with_config(config).spawn("127.0.0.1:0").expect("spawn");
    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    let wires = containers();

    let garbage = [b'X'; 64];
    let batch: Vec<&[u8]> = vec![&wires[0], &garbage, &wires[1], &wires[2]];
    let results = client.decode_batch(&batch).expect("batch call");
    assert_eq!(results.len(), 4);
    assert!(results[0].is_ok());
    assert_eq!(results[1].as_ref().expect_err("garbage entry").code, ErrorCode::BadMagic);
    assert!(results[2].is_ok() && results[3].is_ok());
    // Each batch entry must be byte-identical to its single-decode twin.
    for (wire, result) in [(&wires[0], &results[0]), (&wires[1], &results[2])] {
        let single = client.decode(wire).expect("single decode");
        assert_eq!(result.as_ref().expect("batch decode").data(), single.data());
    }

    // One container over the limit: the whole request is rejected with a
    // protocol-class error, and the connection stays usable.
    let oversized: Vec<&[u8]> = wires.iter().map(Vec::as_slice).cycle().take(5).collect();
    match client.decode_batch(&oversized) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Protocol),
        other => panic!("expected batch-limit rejection, got {other:?}"),
    }
    assert!(client.ping().is_ok(), "connection must survive a rejected batch");
    drop(client);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn concurrent_clients_decode_byte_identically_to_serial() {
    let handle = EaszServer::new(model()).spawn("127.0.0.1:0").expect("spawn");
    let wires = containers();

    // Serial reference, one client, one request at a time.
    let mut serial_client = EaszClient::connect(handle.addr()).expect("connect");
    let serial: Vec<ImageU8> =
        wires.iter().map(|w| serial_client.decode(w).expect("serial decode")).collect();
    drop(serial_client);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (wires, addr) = (&wires, handle.addr());
                scope.spawn(move || {
                    let mut client = EaszClient::connect(addr).expect("connect");
                    let batch: Vec<&[u8]> = wires.iter().map(Vec::as_slice).collect();
                    let batched: Vec<ImageU8> = client
                        .decode_batch(&batch)
                        .expect("batch call")
                        .into_iter()
                        .map(|r| r.expect("batch decode"))
                        .collect();
                    let singles: Vec<ImageU8> =
                        wires.iter().map(|w| client.decode(w).expect("decode")).collect();
                    (batched, singles)
                })
            })
            .collect();
        for h in handles {
            let (batched, singles) = h.join().expect("client thread");
            for ((b, s), reference) in batched.iter().zip(&singles).zip(&serial) {
                assert_eq!(b.data(), reference.data(), "batched != serial reference");
                assert_eq!(s.data(), reference.data(), "concurrent single != serial reference");
            }
        }
    });
    handle.shutdown().expect("clean shutdown");
}

/// One container per mask seed: the mixed-fleet shape where every edge
/// sender rolls its own mask, so pre-gateway batching never fused them.
fn fleet_containers(seeds: &[u64]) -> Vec<Vec<u8>> {
    let codec = JpegLikeCodec::new();
    seeds
        .iter()
        .map(|&seed| {
            let enc = EaszEncoder::new(EaszConfig { mask_seed: seed, ..EaszConfig::default() })
                .expect("encoder");
            let img = Dataset::KodakLike.image(seed as usize % 8).crop(0, 0, 96, 64);
            enc.compress(&img, &codec, Quality::new(80)).expect("compress").to_bytes()
        })
        .collect()
}

#[test]
fn gateway_fuses_concurrent_mixed_mask_clients_byte_identically() {
    // K concurrent clients, each with a distinct mask seed, decode through
    // the cross-connection gateway; every reply must be byte-identical to
    // a local serial decode. The generous window wait makes the clients
    // overwhelmingly likely to share windows, but correctness here must
    // not depend on how the windows actually formed.
    let model = model();
    let gateway =
        GatewayConfig { max_batch: 4, max_wait_us: 50_000, workers: 2, ..GatewayConfig::default() };
    let handle =
        EaszServer::new(model.clone()).with_gateway(gateway).spawn("127.0.0.1:0").expect("spawn");
    let wires = fleet_containers(&[11, 22, 33, 44]);
    let local = EaszDecoder::new(&model);
    let references: Vec<ImageU8> =
        wires.iter().map(|w| local.decode_bytes(w).expect("local decode").to_u8()).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = wires
            .iter()
            .zip(&references)
            .map(|(wire, reference)| {
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut client = EaszClient::connect(addr).expect("connect");
                    for _ in 0..3 {
                        let remote = client.decode(wire).expect("gateway decode");
                        assert_eq!(
                            remote.data(),
                            reference.data(),
                            "gateway decode must be byte-identical to local serial decode"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    // The gateway must have actually batched: all 12 decodes succeeded and
    // were dispatched through windows (not the inline fallback, whose
    // queue never filled here).
    let stats = handle.metrics().snapshot();
    assert_eq!(stats.decode_ok, 12, "every request must decode");
    assert_eq!(stats.decode_requests, 12);
    assert!(stats.batches_dispatched >= 1, "windows must dispatch through the gateway");
    let histogram_total: u64 = stats.batch_widths.iter().sum();
    assert_eq!(histogram_total, stats.batches_dispatched, "histogram covers every window");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn gateway_stress_mixed_tiers_abusive_peers_and_disconnects_reconcile() {
    // The gateway under fire: concurrent clients mixing engine tiers
    // (whose windows must group but never fuse across tiers), an abusive
    // peer sending malformed containers and a reserved tier byte, and
    // clients that disconnect mid-decode without reading their reply.
    // Afterwards the server-side counters must reconcile *exactly* with
    // what the clients observed, and a final parked burst must be flushed
    // by shutdown rather than dropped.
    let model = model();
    let gateway = GatewayConfig {
        max_batch: 4,
        max_wait_us: 150_000,
        workers: 2,
        ..GatewayConfig::default()
    };
    let server = EaszServer::new(model.clone()).with_gateway(gateway);
    let metrics = server.metrics();
    let handle = server.spawn("127.0.0.1:0").expect("spawn");
    let wires = fleet_containers(&[101, 202, 303, 404]);

    // Per-tier local references: the f32 tier is bit-exact, and the
    // quantized tier is deterministic, so both compare byte-for-byte.
    let local = EaszDecoder::new(&model);
    let reference = |wire: &[u8], tier: EngineTier| -> ImageU8 {
        let encoded = EaszEncoded::from_bytes(wire).expect("parse");
        local.decode_as(&encoded, tier.engine()).expect("local decode").to_u8()
    };
    let refs_f32: Vec<ImageU8> =
        wires.iter().map(|w| reference(w, EngineTier::Reference)).collect();
    let refs_quant: Vec<ImageU8> =
        wires.iter().map(|w| reference(w, EngineTier::QuantizedInt8)).collect();
    assert!(
        refs_f32.iter().zip(&refs_quant).any(|(a, b)| a.data() != b.data()),
        "tiers must be distinguishable for this test to mean anything"
    );

    let mut observed_ok = 0u64;
    std::thread::scope(|scope| {
        // Four tier-mixing clients: three singles alternating tiers, then
        // one whole-batch request pinned to the client's tier.
        let tier_clients: Vec<_> = (0..4usize)
            .map(|c| {
                let (wires, refs_f32, refs_quant) = (&wires, &refs_f32, &refs_quant);
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut client = EaszClient::connect(addr).expect("connect");
                    let mut ok = 0u64;
                    for i in 0..3usize {
                        let tier = if (c + i) % 2 == 0 {
                            EngineTier::Reference
                        } else {
                            EngineTier::QuantizedInt8
                        };
                        let img = client.decode_tiered(&wires[i], tier).expect("tiered decode");
                        let expect = if tier == EngineTier::Reference {
                            &refs_f32[i]
                        } else {
                            &refs_quant[i]
                        };
                        assert_eq!(img.data(), expect.data(), "client {c} single {i} on {tier:?}");
                        ok += 1;
                    }
                    let tier =
                        if c % 2 == 0 { EngineTier::QuantizedInt8 } else { EngineTier::Reference };
                    let batch: Vec<&[u8]> = wires.iter().map(Vec::as_slice).collect();
                    let results = client.decode_batch_tiered(&batch, tier).expect("tiered batch");
                    let expect = if tier == EngineTier::Reference { refs_f32 } else { refs_quant };
                    for (i, (r, e)) in results.iter().zip(expect).enumerate() {
                        let img = r.as_ref().expect("batch member decode");
                        assert_eq!(img.data(), e.data(), "client {c} batch member {i} on {tier:?}");
                        ok += 1;
                    }
                    ok
                })
            })
            .collect();

        // One abusive peer: a garbage container (typed decode error), a
        // reserved tier byte (protocol error, connection survives), then a
        // good tiered decode on the *same* connection.
        let abusive = {
            let (wires, refs_quant) = (&wires, &refs_quant);
            let addr = handle.addr();
            scope.spawn(move || {
                let mut client = EaszClient::connect(addr).expect("connect");
                match client.decode(&[b'X'; 64]) {
                    Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::BadMagic),
                    other => panic!("expected BadMagic, got {other:?}"),
                }
                let mut raw = TcpStream::connect(addr).expect("connect");
                let mut payload = vec![7u8]; // reserved tier byte
                payload.extend_from_slice(&wires[0]);
                protocol::write_frame(&mut raw, protocol::DECODE_TIERED, &payload).expect("write");
                let (ty, reply) =
                    protocol::read_frame(&mut raw, 1 << 24).expect("read").expect("frame");
                assert_eq!(ty, protocol::ERROR);
                let err = protocol::WireError::from_payload(&reply).expect("error payload");
                assert_eq!(err.code, ErrorCode::Protocol, "reserved tier byte is protocol-class");
                // The same raw connection still serves a correct quantized
                // decode afterwards.
                let mut payload = vec![EngineTier::QuantizedInt8.wire_byte()];
                payload.extend_from_slice(&wires[0]);
                protocol::write_frame(&mut raw, protocol::DECODE_TIERED, &payload).expect("write");
                let (ty, reply) =
                    protocol::read_frame(&mut raw, 1 << 24).expect("read").expect("frame");
                assert_eq!(ty, protocol::IMAGE, "connection must survive the reserved byte");
                let img = protocol::decode_image(&reply).expect("image payload");
                assert_eq!(img.data(), refs_quant[0].data());
                1u64 // one client-observed OK decode
            })
        };

        // Two clients that request a decode and vanish without reading the
        // reply — the mid-decode disconnect. The server still decodes (the
        // frame was complete) and must absorb the failed reply write.
        let disconnectors: Vec<_> = (0..2usize)
            .map(|i| {
                let wires = &wires;
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut raw = TcpStream::connect(addr).expect("connect");
                    protocol::write_frame(&mut raw, protocol::DECODE, &wires[i]).expect("write");
                    drop(raw); // vanish mid-decode
                })
            })
            .collect();

        for h in tier_clients {
            observed_ok += h.join().expect("tier client");
        }
        observed_ok += abusive.join().expect("abusive client");
        for h in disconnectors {
            h.join().expect("disconnector");
        }
    });

    // Final burst: three well-formed requests parked in the gateway with
    // nobody reading — shutdown must flush them through decode (a dropped
    // window would leave decode_ok short and fail the reconciliation).
    let parked: Vec<TcpStream> = (0..3usize)
        .map(|i| {
            let mut raw = TcpStream::connect(handle.addr()).expect("connect");
            protocol::write_frame(&mut raw, protocol::DECODE, &wires[i]).expect("write");
            raw
        })
        .collect();
    // Wait until the burst is inside the decode path (requests are counted
    // before parking), so shutdown races against parked jobs, not reads.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while handle.metrics().snapshot().decode_requests < 35 {
        assert!(std::time::Instant::now() < deadline, "burst never reached the decode path");
        std::thread::sleep(Duration::from_millis(1));
    }
    handle.shutdown().expect("clean shutdown");
    drop(parked);

    // Reconciliation. Client-observed OKs: 4 tier clients x (3 singles +
    // 4 batch members) + 1 abusive good decode = 29. The server counts
    // those plus 2 disconnected decodes and 3 flushed parked jobs.
    let stats = metrics.snapshot();
    assert_eq!(observed_ok, 29, "clients must have observed every good reply");
    assert_eq!(stats.decode_requests, 35, "28 tiered + 1 garbage + 1 good + 2 vanished + 3 parked");
    assert_eq!(stats.decode_ok, observed_ok + 2 + 3, "server OKs = observed + vanished + flushed");
    assert_eq!(stats.decode_err, 1, "exactly the garbage container fails decode");
    assert_eq!(stats.error_count(ErrorCode::BadMagic), 1);
    assert_eq!(stats.error_count(ErrorCode::Protocol), 1, "the reserved tier byte");
    let histogram_total: u64 = stats.batch_widths.iter().sum();
    assert_eq!(histogram_total, stats.batches_dispatched, "histogram covers every window");
    assert!(stats.batches_dispatched >= 1, "the storm must have dispatched through windows");
}

/// One container per zoo model id, all sharing one mask seed and geometry:
/// every stream is fusable with every other by shape, so the *only* thing
/// keeping them out of a shared forward is the model id in the gateway's
/// fusion key.
fn zoo_containers(model_ids: &[u8]) -> Vec<Vec<u8>> {
    let codec = JpegLikeCodec::new();
    model_ids
        .iter()
        .map(|&id| {
            let enc = EaszEncoder::new(EaszConfig {
                mask_seed: 77,
                model_id: id,
                ..EaszConfig::default()
            })
            .expect("encoder");
            let img = Dataset::KodakLike.image(id as usize % 8).crop(0, 0, 96, 64);
            enc.compress(&img, &codec, Quality::new(80)).expect("compress").to_bytes()
        })
        .collect()
}

/// Distinctly seeded (so behaviourally distinct) zoo models for ids 1..=3.
fn zoo_models() -> Vec<Arc<Reconstructor>> {
    [91u64, 92, 93]
        .iter()
        .map(|&seed| {
            Arc::new(Reconstructor::new(ReconstructorConfig {
                seed,
                ..ReconstructorConfig::fast()
            }))
        })
        .collect()
}

#[test]
fn gateway_routes_models_exactly_and_never_fuses_across_ids() {
    // K concurrent clients, each pinned to a different zoo model id, decode
    // through the cross-connection gateway. Every reply must be
    // byte-identical to a local per-model serial decode, and the
    // batch-width histogram must show that no window fused containers
    // across model ids: with one in-flight request per client and all ids
    // distinct, every fused forward group has width exactly 1.
    let generic = model();
    let zoo = zoo_models();
    let gateway =
        GatewayConfig { max_batch: 4, max_wait_us: 50_000, workers: 2, ..GatewayConfig::default() };
    let mut server = EaszServer::new(generic.clone()).with_gateway(gateway);
    for (i, m) in zoo.iter().enumerate() {
        server = server.with_model(i as u8 + 1, m.clone());
    }
    let handle = server.spawn("127.0.0.1:0").expect("spawn");

    let wires = zoo_containers(&[0, 1, 2, 3]);
    let mut local = EaszDecoder::new(&generic);
    for (i, m) in zoo.iter().enumerate() {
        local.add_model(i as u8 + 1, m);
    }
    let references: Vec<ImageU8> =
        wires.iter().map(|w| local.decode_bytes(w).expect("local decode").to_u8()).collect();
    // The models must actually disagree, or routing bugs would be invisible.
    assert!(
        references.windows(2).any(|p| p[0].data() != p[1].data()),
        "zoo models must reconstruct differently for this test to mean anything"
    );

    std::thread::scope(|scope| {
        let handles: Vec<_> = wires
            .iter()
            .zip(&references)
            .map(|(wire, reference)| {
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut client = EaszClient::connect(addr).expect("connect");
                    for _ in 0..3 {
                        let remote = client.decode(wire).expect("zoo decode");
                        assert_eq!(
                            remote.data(),
                            reference.data(),
                            "gateway decode must match the per-model local serial decode"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    let stats = handle.metrics().snapshot();
    assert_eq!(stats.decode_ok, 12, "every request must decode");
    let histogram_total: u64 = stats.batch_widths.iter().sum();
    assert_eq!(histogram_total, stats.batches_dispatched, "histogram covers every group");
    assert!(stats.batches_dispatched >= 1, "windows must dispatch through the gateway");
    assert_eq!(
        stats.batch_widths[0], histogram_total,
        "all-distinct model ids must make every fused forward group width 1 \
         (a wider group means the gateway fused across models)"
    );

    // An id nobody mounted is the typed UnknownModel error, not a wrong
    // reconstruction — and the connection survives it.
    let stray = zoo_containers(&[9]).remove(0);
    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    match client.decode(&stray) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::UnknownModel),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    assert!(client.decode(&wires[1]).is_ok(), "connection must survive an unknown model id");
    drop(client);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn stats_frame_round_trips_and_counts_errors() {
    let handle = EaszServer::new(model()).spawn("127.0.0.1:0").expect("spawn");
    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    let wire = containers().remove(0);

    let before = client.stats().expect("stats");
    assert_eq!(before.decode_requests, 0);
    assert_eq!(before.error_count(ErrorCode::BadMagic), 0);

    // One good decode, one malformed container.
    client.decode(&wire).expect("decode");
    match client.decode(&[b'X'; 64]) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::BadMagic),
        other => panic!("expected BadMagic, got {other:?}"),
    }

    let after = client.stats().expect("stats");
    assert_eq!(after.decode_requests, 2);
    assert_eq!(after.decode_ok, 1);
    assert_eq!(after.decode_err, 1);
    assert_eq!(after.error_count(ErrorCode::BadMagic), 1, "malformed frame must be counted");

    // A malformed STATS request (non-empty payload) is a protocol error —
    // and itself lands in the counters.
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    protocol::write_frame(&mut raw, protocol::STATS, b"x").expect("write");
    let (ty, payload) = protocol::read_frame(&mut raw, 1 << 20).expect("read").expect("frame");
    assert_eq!(ty, protocol::ERROR);
    let err = protocol::WireError::from_payload(&payload).expect("error payload");
    assert_eq!(err.code, ErrorCode::Protocol);
    let last = client.stats().expect("stats");
    assert_eq!(last.error_count(ErrorCode::Protocol), 1);

    // The wire snapshot and the in-process registry agree.
    assert_eq!(handle.metrics().snapshot(), last);
    drop((client, raw));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn idle_connections_are_disconnected_by_the_read_timeout() {
    let handle = EaszServer::new(model())
        .with_read_timeout(Duration::from_millis(100))
        .spawn("127.0.0.1:0")
        .expect("spawn");
    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    assert!(client.ping().is_ok(), "live connection answers before the timeout");
    // Stay idle past the timeout: the server must close the connection, so
    // the next read observes EOF instead of hanging.
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).expect("client timeout");
    let mut buf = [0u8; 1];
    match std::io::Read::read(&mut raw, &mut buf) {
        Ok(0) => {} // server closed the idle connection
        other => panic!("expected EOF from the idle timeout, got {other:?}"),
    }
    drop((client, raw));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn shutdown_unblocks_idle_connections() {
    // An idle keep-alive client must not pin shutdown: the handler thread
    // is blocked in read, and shutdown has to wake it (the scope join
    // would otherwise never complete and this test would time out).
    let handle = EaszServer::new(model()).spawn("127.0.0.1:0").expect("spawn");
    let mut idle = EaszClient::connect(handle.addr()).expect("connect");
    assert!(idle.ping().is_ok(), "connection is live before shutdown");
    handle.shutdown().expect("shutdown with an idle connection open");
    // The forcibly closed connection now fails cleanly client-side.
    assert!(idle.ping().is_err(), "socket must be dead after server shutdown");
}

#[test]
fn client_poisons_itself_on_an_over_limit_reply() {
    // A reply announcing more than the client's limit leaves unread bytes
    // on the stream; the client must refuse further requests (reconnect is
    // the only safe recovery) instead of parsing pixels as frame headers.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let fake_server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        // Read the ping, reply with a frame announcing 1 GiB.
        protocol::read_frame(&mut conn, 1 << 20).expect("read ping");
        std::io::Write::write_all(&mut conn, &[protocol::PONG, 0, 0, 0, 0x40])
            .expect("oversize announce");
        conn
    });
    let mut client = EaszClient::connect(addr).expect("connect").with_max_reply_len(1 << 20);
    match client.ping() {
        Err(ClientError::Protocol(_)) => {}
        other => panic!("expected a protocol error, got {other:?}"),
    }
    match client.ping() {
        Err(ClientError::Protocol(m)) => {
            assert!(m.contains("poisoned"), "second call must fail fast, got {m:?}")
        }
        other => panic!("expected fail-fast poisoning, got {other:?}"),
    }
    drop(fake_server.join().expect("fake server"));
}

#[test]
fn decode_bomb_container_is_rejected_not_allocated() {
    // A container whose header (or inner bitstream) declares a
    // per-side-legal but terabyte-scale canvas must come back as a typed
    // error frame; the 2^26-pixel budget is enforced before any buffer is
    // sized from untrusted fields.
    let handle = EaszServer::new(model()).spawn("127.0.0.1:0").expect("spawn");
    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    let mut bomb = containers().remove(0);
    bomb[14..18].copy_from_slice(&(1u32 << 14).to_le_bytes());
    bomb[18..22].copy_from_slice(&(1u32 << 13).to_le_bytes());
    match client.decode(&bomb) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    assert!(client.ping().is_ok(), "connection survives the bomb");
    drop(client);
    handle.shutdown().expect("clean shutdown");
}

//! Integration-level checks of the *shape* claims the paper's evaluation
//! rests on: codec quality tiers, metric reactions, and the SR comparison.

use easz::codecs::sr::{EnhancedUpscaler, Upscaler};
use easz::codecs::{
    encode_to_bpp, BpgLikeCodec, ImageCodec, JpegLikeCodec, NeuralSimCodec, NeuralTier, Quality,
};
mod common;

use easz::core::{EaszConfig, EaszDecoder, EaszEncoder};
use easz::data::Dataset;
use easz::image::resample::downsample2;
use easz::metrics::{brisque, ms_ssim, psnr};

fn scene() -> easz::image::ImageF32 {
    Dataset::KodakLike.image(55).crop(64, 64, 192, 128)
}

#[test]
fn brisque_tracks_jpeg_quality() {
    // The Fig. 7a/8a premise: lower rate -> more artefacts -> higher score.
    let img = scene();
    let codec = JpegLikeCodec::new();
    let score = |q: u8| {
        let bytes = codec.encode(&img, Quality::new(q)).expect("encode");
        brisque(&codec.decode(&bytes).expect("decode"))
    };
    let bad = score(5);
    let good = score(90);
    assert!(bad > good + 3.0, "q5 ({bad:.1}) should score clearly worse than q90 ({good:.1})");
}

#[test]
fn codec_tiers_order_as_in_the_paper() {
    // JPEG <= BPG <= MBT <= Cheng in PSNR at a matched rate (with slack for
    // per-image noise). 1.2 bpp sits inside every codec's reachable range
    // on the detail-heavy synthetic scenes.
    let img = scene();
    let (w, h) = (img.width(), img.height());
    let jpeg = JpegLikeCodec::new();
    let bpg = BpgLikeCodec::new();
    let cheng = NeuralSimCodec::new(NeuralTier::ChengAnchor);
    let at_rate = |codec: &dyn ImageCodec| {
        let (_, enc) = encode_to_bpp(codec, &img, 1.2, w, h, 8).expect("rate");
        psnr(&img, &codec.decode(&enc.bytes).expect("decode"))
    };
    let pj = at_rate(&jpeg);
    let pc = at_rate(&cheng);
    let pb = at_rate(&bpg);
    assert!(pc > pj, "cheng ({pc:.2}) must beat jpeg ({pj:.2}) at 1.2bpp");
    assert!(pc >= pb - 0.3, "cheng ({pc:.2}) should not lose to bpg ({pb:.2})");
}

#[test]
fn easz_beats_2x_super_resolution_in_psnr_and_ms_ssim() {
    // Table I's headline at integration level. The GAN-SR stand-in trades
    // PSNR for invented texture like the published models do; Easz at a
    // light erase ratio keeps 87.5% of pixels exactly.
    let model = common::quick_model();
    let cfg =
        EaszConfig::builder().erase_ratio(0.125).synthesize_grain(false).build().expect("cfg");
    let encoder = EaszEncoder::new(cfg).expect("encoder");
    let decoder = EaszDecoder::new(&model);
    let img = scene();
    let codec = JpegLikeCodec::new();
    let enc = encoder.compress(&img, &codec, Quality::new(95)).expect("compress");
    let easz_out = decoder.decode(&enc).expect("decode");

    let sr = EnhancedUpscaler::real_esrgan_sim();
    let sr_out = sr.upscale(&downsample2(&img), img.width(), img.height());

    assert!(
        psnr(&img, &easz_out) > psnr(&img, &sr_out),
        "easz {:.2} dB vs SR {:.2} dB",
        psnr(&img, &easz_out),
        psnr(&img, &sr_out)
    );
    assert!(
        ms_ssim(&img, &easz_out) > ms_ssim(&img, &sr_out) - 0.02,
        "easz {:.4} vs SR {:.4}",
        ms_ssim(&img, &easz_out),
        ms_ssim(&img, &sr_out)
    );
}

#[test]
fn easz_improves_jpeg_brisque_at_comparable_rate() {
    // Table II's enhancement claim for the JPEG row.
    let model = common::quick_model();
    let cfg = EaszConfig::builder().mask_seed(4).build().expect("cfg");
    let encoder = EaszEncoder::new(cfg).expect("encoder");
    let decoder = EaszDecoder::new(&model);
    let img = scene();
    let codec = JpegLikeCodec::new();

    // Plain JPEG at ~1.8 bpp (a reachable mid rate on this content).
    let target = 1.8;
    let (_, plain) =
        encode_to_bpp(&codec, &img, target, img.width(), img.height(), 8).expect("rate");
    let plain_dec = codec.decode(&plain.bytes).expect("decode");

    // JPEG+Easz rate-targeted on total transmitted bits.
    let (_, enc) = encoder.compress_to_bpp(&img, &codec, target, 8).expect("rate");
    assert!(
        enc.bpp() <= plain.bpp() * 1.15,
        "easz rate {:.3} should be comparable to plain {:.3}",
        enc.bpp(),
        plain.bpp()
    );
    let easz_dec = decoder.decode(&enc).expect("decode");

    let b_plain = brisque(&plain_dec);
    let b_easz = brisque(&easz_dec);
    assert!(
        b_easz < b_plain + 1.0,
        "+easz brisque {b_easz:.1} should be at or below plain jpeg {b_plain:.1} \
         (plain {:.3} bpp, easz {:.3} bpp)",
        plain.bpp(),
        enc.bpp()
    );
}

//! Property-style integration tests of the metric stack against the
//! synthetic datasets: polarity, ranges and distortion monotonicity that
//! the paper's tables rely on.

use easz::data::Dataset;
use easz::image::ImageF32;
use easz::metrics::{brisque, lpips_sim, ma_sim, ms_ssim, niqe, pi, psnr, ssim, tres};

fn probe(i: usize) -> ImageF32 {
    Dataset::KodakLike.image(80 + i).crop(96, 96, 160, 128)
}

fn degrade(img: &ImageF32) -> ImageF32 {
    // Blur + blockiness, the classic compression artefact cocktail.
    let mut out = img.clone();
    let cc = img.channels().count();
    for by in (0..img.height()).step_by(8) {
        for bx in (0..img.width()).step_by(8) {
            for c in 0..cc {
                let mut acc = 0.0;
                let mut n = 0usize;
                for y in by..(by + 8).min(img.height()) {
                    for x in bx..(bx + 8).min(img.width()) {
                        acc += img.get(x, y, c);
                        n += 1;
                    }
                }
                let m = acc / n as f32;
                for y in by..(by + 8).min(img.height()) {
                    for x in bx..(bx + 8).min(img.width()) {
                        out.set(x, y, c, 0.5 * out.get(x, y, c) + 0.5 * m);
                    }
                }
            }
        }
    }
    out
}

#[test]
fn full_reference_metrics_agree_on_ordering() {
    for i in 0..3 {
        let img = probe(i);
        let bad = degrade(&img);
        assert!(psnr(&img, &img).is_infinite());
        assert!(psnr(&img, &bad).is_finite());
        assert!(ssim(&img, &bad) < 1.0);
        assert!(ms_ssim(&img, &bad) < 1.0);
        assert!(lpips_sim(&img, &bad) > 0.0);
    }
}

#[test]
fn no_reference_metrics_have_documented_polarity() {
    for i in 0..2 {
        let img = probe(i);
        let bad = degrade(&img);
        assert!(brisque(&bad) > brisque(&img), "brisque: higher = worse (image {i})");
        assert!(niqe(&bad) > niqe(&img), "niqe: higher = worse (image {i})");
        assert!(pi(&bad) > pi(&img), "pi: higher = worse (image {i})");
        assert!(tres(&bad) < tres(&img), "tres: higher = better (image {i})");
    }
}

#[test]
fn no_reference_scores_live_in_published_ranges() {
    let img = probe(0);
    let b = brisque(&img);
    assert!((0.0..=60.0).contains(&b), "pristine brisque {b}");
    let t = tres(&img);
    assert!((30.0..=100.0).contains(&t), "pristine tres {t}");
    let p = pi(&img);
    assert!((0.0..=10.0).contains(&p), "pristine pi {p}");
    let m = ma_sim(&img);
    assert!((0.0..=10.0).contains(&m), "ma {m}");
}

#[test]
fn metrics_are_deterministic() {
    let img = probe(1);
    assert_eq!(brisque(&img), brisque(&img));
    assert_eq!(tres(&img), tres(&img));
    let other = probe(2);
    assert_eq!(lpips_sim(&img, &other), lpips_sim(&img, &other));
}

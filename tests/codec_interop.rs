//! Cross-codec interoperability and robustness: bitstreams are
//! self-identifying, codecs reject each other's streams, and rate
//! targeting lands near its goal across content types.

use easz::codecs::{
    encode_to_bpp, BpgLikeCodec, ImageCodec, JpegLikeCodec, NeuralSimCodec, NeuralTier, Quality,
};
use easz::data::Dataset;

#[test]
fn codecs_reject_each_others_bitstreams() {
    let img = Dataset::KodakLike.image(2).crop(0, 0, 64, 64);
    let jpeg = JpegLikeCodec::new();
    let bpg = BpgLikeCodec::new();
    let mbt = NeuralSimCodec::new(NeuralTier::Mbt);
    let jpeg_bytes = jpeg.encode(&img, Quality::new(70)).expect("jpeg encode");
    let bpg_bytes = bpg.encode(&img, Quality::new(70)).expect("bpg encode");
    assert!(bpg.decode(&jpeg_bytes).is_err(), "bpg must reject jpeg streams");
    assert!(jpeg.decode(&bpg_bytes).is_err(), "jpeg must reject bpg streams");
    assert!(mbt.decode(&bpg_bytes).is_err(), "mbt must reject bpg streams");
}

#[test]
fn truncated_streams_fail_gracefully() {
    let img = Dataset::KodakLike.image(3).crop(0, 0, 64, 64);
    let jpeg = JpegLikeCodec::new();
    let bpg = BpgLikeCodec::new();
    for codec in [&jpeg as &dyn ImageCodec, &bpg] {
        let bytes = codec.encode(&img, Quality::new(60)).expect("encode");
        // Header-only truncation must error, not panic.
        assert!(codec.decode(&bytes[..10.min(bytes.len())]).is_err(), "{}", codec.name());
    }
    // Range-coded payload truncation cannot always be detected (the coder
    // pads with zeros), but it must never panic.
    let bytes = bpg.encode(&img, Quality::new(60)).expect("encode");
    let _ = bpg.decode(&bytes[..bytes.len() / 2]);
}

#[test]
fn rate_targeting_lands_within_tolerance() {
    let img = Dataset::KodakLike.image(4).crop(0, 0, 128, 96);
    let jpeg = JpegLikeCodec::new();
    for target in [0.9f64, 1.4, 2.2] {
        let (q, enc) =
            encode_to_bpp(&jpeg, &img, target, img.width(), img.height(), 8).expect("rate");
        let got = enc.bpp();
        assert!((got - target).abs() / target < 0.6, "target {target} got {got:.3} at {q}");
    }
}

#[test]
fn all_codecs_handle_tiny_and_odd_images() {
    let img = Dataset::KodakLike.image(5).crop(0, 0, 19, 13);
    let jpeg = JpegLikeCodec::new();
    let bpg = BpgLikeCodec::new();
    let cheng = NeuralSimCodec::new(NeuralTier::ChengAnchor);
    for codec in [&jpeg as &dyn ImageCodec, &bpg, &cheng] {
        let bytes = codec.encode(&img, Quality::new(60)).expect("encode");
        let out = codec.decode(&bytes).expect("decode");
        assert_eq!((out.width(), out.height()), (19, 13), "{}", codec.name());
    }
}

#[test]
fn quality_knob_is_rate_monotone_for_all_codecs() {
    let img = Dataset::KodakLike.image(6).crop(0, 0, 96, 64);
    let jpeg = JpegLikeCodec::new();
    let bpg = BpgLikeCodec::new();
    let mbt = NeuralSimCodec::new(NeuralTier::Mbt);
    for codec in [&jpeg as &dyn ImageCodec, &bpg, &mbt] {
        let lo = codec.encode(&img, Quality::new(10)).expect("lo").len();
        let hi = codec.encode(&img, Quality::new(90)).expect("hi").len();
        assert!(hi > lo, "{}: {lo} !< {hi}", codec.name());
    }
}

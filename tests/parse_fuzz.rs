//! Seeded fuzzing of every parser that faces untrusted bytes: the `.easz`
//! container, the pure protocol payload codecs, and a live server fed
//! mutated frames over real sockets.
//!
//! 10 000 deterministic cases per run (xorshift-seeded, so a failure
//! reproduces by case index). The contract under test is uniform:
//! untrusted input is answered with a **typed** `EaszError` / error frame —
//! never a panic, never a connection left owing a reply, and never an
//! allocation sized from unvalidated header fields (the dimension-bomb
//! mutations would abort the process long before the assertion if the
//! `MAX_PIXELS` budget were not enforced up front).

use easz::codecs::{JpegLikeCodec, Quality};
use easz::core::{EaszConfig, EaszDecoder, EaszEncoded, EaszEncoder, MaskStrategy};
use easz::core::{Reconstructor, ReconstructorConfig};
use easz::data::Dataset;
use easz::server::{protocol, EaszClient, EaszServer, ErrorCode, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

const CONTAINER_CASES: usize = 8000;
const PAYLOAD_CASES: usize = 1500;
const SOCKET_CASES: usize = 500;

/// Deterministic per-case PRNG (split-mix seeded xorshift).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x0123_4567_89AB_CDEF))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// Seed corpus: genuine containers across strategies, geometries and all
/// three format versions (the quantized opt-in produces a v2 header, a
/// nonzero zoo model id a v3 one).
fn corpus() -> Vec<Vec<u8>> {
    let codec = JpegLikeCodec::new();
    let mut out = Vec::new();
    for (strategy, quantized, model_id, side, index) in [
        (MaskStrategy::Proposed, false, 0u8, 32usize, 1usize),
        (MaskStrategy::Random, false, 0, 64, 2),
        (MaskStrategy::Diagonal, false, 0, 32, 3),
        (MaskStrategy::Proposed, true, 0, 64, 4),
        (MaskStrategy::Proposed, false, 1, 32, 5),
    ] {
        let cfg =
            EaszConfig { strategy, allow_quantized: quantized, model_id, ..EaszConfig::default() };
        let encoder = EaszEncoder::new(cfg).expect("encoder");
        let img = Dataset::KodakLike.image(index).crop(0, 0, side, side);
        out.push(encoder.compress(&img, &codec, Quality::new(80)).expect("compress").to_bytes());
    }
    out
}

/// One mutated variant of `base`: bit flips, truncation, extension, a
/// splice of two corpus members, or a dimension bomb in the header.
fn mutate(rng: &mut Rng, base: &[u8], other: &[u8]) -> Vec<u8> {
    let mut bytes = base.to_vec();
    match rng.below(7) {
        // Flip 1..=8 random bytes anywhere (header, mask channel, payload).
        0 | 1 => {
            for _ in 0..=rng.below(8) {
                let at = rng.below(bytes.len());
                bytes[at] ^= (rng.next() as u8).max(1);
            }
        }
        // Truncate to a random prefix (including the empty container).
        2 => bytes.truncate(rng.below(bytes.len() + 1)),
        // Append trailing garbage, which the exact-length rule must catch.
        3 => bytes.extend((0..=rng.below(64)).map(|_| rng.next() as u8)),
        // Splice: head of one genuine container, tail of another.
        4 => {
            let cut = rng.below(bytes.len());
            bytes.truncate(cut);
            let from = rng.below(other.len());
            bytes.extend_from_slice(&other[from..]);
        }
        // Dimension bomb: per-side-plausible but terabyte-scale canvas.
        5 => {
            let (w, h) = ((1u32 << (10 + rng.below(10))), (1u32 << (10 + rng.below(10))));
            bytes[14..18].copy_from_slice(&w.to_le_bytes());
            bytes[18..22].copy_from_slice(&h.to_le_bytes());
        }
        // Model-id byte: random value, sometimes paired with a version
        // flip, probing the reserved-byte rejection (v1/v2) against the
        // routing field it became (v3).
        _ => {
            bytes[9] = rng.next() as u8;
            if rng.below(2) == 0 {
                bytes[4] = 1 + (rng.next() % 3) as u8;
            }
        }
    }
    bytes
}

#[test]
fn container_mutation_sweep_never_panics_and_errors_are_typed() {
    let corpus = corpus();
    // Weights are irrelevant to parse behaviour; the small geometry keeps
    // the few mutants that still decode end-to-end cheap.
    let model = Reconstructor::new(ReconstructorConfig::fast());
    let decoder = EaszDecoder::new(&model);
    let (mut parsed_ok, mut decoded_ok) = (0usize, 0usize);
    for case in 0..CONTAINER_CASES {
        let mut rng = Rng::new(case as u64);
        let base = &corpus[rng.below(corpus.len())];
        let other = &corpus[rng.below(corpus.len())];
        let bytes = mutate(&mut rng, base, other);
        // The whole assertion: this returns (typed) instead of panicking
        // or allocating from a bomb header.
        match EaszEncoded::from_bytes(&bytes) {
            Ok(parsed) => {
                parsed_ok += 1;
                // Round-trip sanity: whatever parses must re-serialize.
                let _ = parsed.to_bytes();
                // A parsed container may still fail decode (mutated mask
                // channel, garbage inner bitstream, bomb dimensions) —
                // but only with a typed error. Decode a slice of the
                // survivors so the sweep stays fast.
                if case % 4 == 0 {
                    match decoder.decode(&parsed) {
                        Ok(_) => decoded_ok += 1,
                        Err(e) => {
                            let _ = e.to_string(); // every error displays
                        }
                    }
                }
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
    // The sweep must exercise both sides of the parser, or the corpus /
    // mutators have rotted into triviality.
    assert!(parsed_ok > 0, "no mutant parsed: mutation sweep too destructive");
    assert!(
        parsed_ok < CONTAINER_CASES,
        "every mutant parsed: mutation sweep not destructive enough"
    );
    // decoded_ok is allowed to be 0 (most surviving parses carry a
    // corrupted inner payload), it exists to keep the decode loop honest.
    let _ = decoded_ok;
}

#[test]
fn protocol_payload_parsers_never_panic_on_garbage() {
    for case in 0..PAYLOAD_CASES {
        let mut rng = Rng::new(0x5EED_0000 + case as u64);
        let len = rng.below(256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        // Every pure payload parser on the reply and request paths.
        let _ = protocol::WireError::from_payload(&bytes);
        let _ = protocol::decode_image(&bytes);
        let _ = protocol::decode_batch_payload(&bytes, 64);
        // And the batch parser against a length-field-consistent but
        // content-garbage batch, which exercises the per-entry bounds.
        let entries: Vec<&[u8]> = bytes.chunks(17).collect();
        let refs: Vec<&[u8]> = entries.clone();
        let encoded = protocol::encode_batch(&refs);
        let decoded = protocol::decode_batch_payload(&encoded, 64).expect("self-encoded batch");
        assert_eq!(decoded.len(), refs.len());
    }
}

#[test]
fn live_server_survives_mutated_frames_and_always_settles() {
    let model = Arc::new(Reconstructor::new(ReconstructorConfig::fast()));
    let config = ServerConfig { max_frame_len: 1 << 20, ..ServerConfig::default() };
    let handle = EaszServer::new(model).with_config(config).spawn("127.0.0.1:0").expect("spawn");
    let mut corpus = corpus();
    let request_types = [
        protocol::DECODE,
        protocol::DECODE_BATCH,
        protocol::PING,
        protocol::STATS,
        protocol::DECODE_TIERED,
        protocol::DECODE_BATCH_TIERED,
    ];

    for case in 0..SOCKET_CASES {
        let mut rng = Rng::new(0xF0A_0000 + case as u64);
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_read_timeout(Some(std::time::Duration::from_secs(20))).expect("read timeout");

        // Build a well-lengthed frame around a mutated payload: a random
        // known request type (or a fully random byte), carrying either a
        // mutated container, random bytes, or an empty payload.
        let frame_type = if rng.below(4) == 0 {
            rng.next() as u8
        } else {
            request_types[rng.below(request_types.len())]
        };
        let payload = match rng.below(4) {
            0 => Vec::new(),
            1 => (0..rng.below(128)).map(|_| rng.next() as u8).collect(),
            _ => {
                let base = &corpus[rng.below(corpus.len())];
                let other = &corpus[rng.below(corpus.len())];
                mutate(&mut rng, base, other)
            }
        };

        if rng.below(4) == 0 {
            // Truncation case: announce more than is sent, then half-close
            // so the server observes EOF mid-frame. No reply is owed, and
            // the server must simply drop the connection.
            let mut wire = vec![frame_type];
            wire.extend_from_slice(&(payload.len() as u32 + 7).to_le_bytes());
            wire.extend_from_slice(&payload);
            stream.write_all(&wire).expect("write truncated frame");
            stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        } else {
            protocol::write_frame(&mut stream, frame_type, &payload).expect("write frame");
        }

        // Settle: the first reply frame (if any) must parse with the
        // reference reader, and error frames must carry a decodable
        // WireError. A truncated request owes no reply (EOF is the correct
        // settle), a complete one owes at least one frame; either way the
        // server must answer or close — never hang (the generous read
        // timeout above only trips on a genuine bug). Dropping the stream
        // right after the first frame also abandons batch replies
        // mid-stream, which the server must absorb as a disconnect.
        match protocol::read_frame(&mut stream, 1 << 24) {
            Ok(None) => {}
            Ok(Some((ty, reply))) => {
                if ty == protocol::ERROR {
                    let err = protocol::WireError::from_payload(&reply).expect("typed error frame");
                    let _ = err.code;
                }
            }
            Err(e) => panic!("case {case}: reply stream failed: {e}"),
        }
        drop(stream);
    }

    // After the entire sweep the server still serves clean requests.
    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    let good = corpus.remove(0);
    match client.decode(&good) {
        Ok(_) => {}
        Err(easz::server::ClientError::Remote(e)) => {
            panic!("server must still decode the pristine container, got {:?}", e.code)
        }
        Err(e) => panic!("server unusable after fuzz sweep: {e}"),
    }
    assert_eq!(client.ping().expect("ping"), protocol::PROTOCOL_VERSION);
    let stats = client.stats().expect("stats");
    assert!(stats.decode_requests > 0, "the sweep must have reached the decode path");
    assert!(
        stats.error_count(ErrorCode::UnknownFrame) > 0,
        "the sweep must have exercised unknown frame types"
    );
    drop(client);
    handle.shutdown().expect("clean shutdown");
}

//! The paper's complexity argument (§III-B): attention is confined within
//! patches, so compute scales linearly in image area instead of
//! quadratically, and the 256×256 / n=32 / b=4 example yields the claimed
//! three-orders-of-magnitude reduction.

use easz::core::{attention_cost_reduction, PatchGeometry};

#[test]
fn patchified_attention_scales_linearly_with_area() {
    let g = PatchGeometry::new(32, 4);
    let (_, c1, _) = attention_cost_reduction(256, 256, g);
    let (_, c2, _) = attention_cost_reduction(512, 256, g);
    assert!((c2 / c1 - 2.0).abs() < 1e-9, "doubling area must double cost");
    let (n1, _, _) = attention_cost_reduction(256, 256, g);
    let (n2, _, _) = attention_cost_reduction(512, 256, g);
    assert!((n2 / n1 - 4.0).abs() < 1e-9, "naive cost is quadratic in area");
}

#[test]
fn reduction_grows_with_resolution() {
    let g = PatchGeometry::new(32, 4);
    let (_, _, r256) = attention_cost_reduction(256, 256, g);
    let (_, _, r1024) = attention_cost_reduction(1024, 1024, g);
    assert!(r1024 > r256 * 10.0, "higher resolutions benefit more");
}

#[test]
fn paper_example_reduction_is_thousands_fold() {
    // Paper: 4,294,967,296 naive ops for 256x256 at b=1 tokens; the
    // two-stage patchify brings it down by three-plus orders of magnitude.
    let (naive, ours, factor) = attention_cost_reduction(256, 256, PatchGeometry::new(32, 4));
    assert_eq!(naive, 4_294_967_296.0);
    assert!(factor > 1000.0, "factor {factor}");
    assert!(ours < 1_048_576.0 + 1.0, "within the paper's stated budget");
}

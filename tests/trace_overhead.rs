//! Tracing overhead gate: the span hot path must be allocation-free after
//! tracer construction, so enabling tracing never perturbs the serving
//! tier's steady-state allocation profile (and leaving it disabled costs
//! one `Option` check).
//!
//! This lives in its own integration-test binary because the counting
//! `#[global_allocator]` is process-global: sharing a binary with other
//! tests would let their allocations race the counters.

use easz::server::{TraceConfig, TraceStage, Tracer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (and reallocation) routed through the global
/// allocator; frees are not tracked — the gate is "no new allocations".
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

// One #[test] on purpose: the harness runs tests on concurrent threads,
// and a second test's bookkeeping would race the measured windows.
#[test]
fn span_capture_is_allocation_free_after_construction() {
    // Ring, slow log and accumulators are all sized at construction; every
    // capture after this point reuses them.
    let tracer = Tracer::new(TraceConfig {
        capacity: 64,
        sample_every: 2,
        slow_threshold_us: 1, // every span is "slow": exercises the slow log too
        slow_capacity: 8,
    });

    // Warm one full cycle (lazy clock/TLS init happens here, not in the
    // measured window).
    let mut span = tracer.begin(0x01, 7);
    span.stamp(TraceStage::Admitted);
    tracer.finish(span, true);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let mut span = tracer.begin(0x01, i);
        for stage in TraceStage::ALL {
            span.stamp(stage);
        }
        tracer.finish(span, i % 3 != 0);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "span begin/stamp/finish allocated {} times in steady state",
        after - before
    );

    let (finished, kept, _slow) = tracer.counters();
    assert_eq!(finished, 10_001);
    // Every even id is a sampling hit (5 001 of ids 0..=10 000); sub-µs
    // spans may dodge the slow threshold, so only the sampling floor is
    // exact.
    assert!(kept >= 5_001, "sampling must keep every 2nd span, kept {kept}");

    // The tracing-off path: the server carries `None` where the tracer
    // would be, and the instrumented sites reduce to this check.
    let disabled: Option<Tracer> = None;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let span = disabled.as_ref().map(|t| t.begin(0x01, i));
        if let (Some(t), Some(span)) = (disabled.as_ref(), span) {
            t.finish(span, true);
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "the tracing-off path must not allocate");
}

//! The epoll reactor front end over real loopback sockets: replies must be
//! byte-identical to the threaded front end and to local serial decoding,
//! pipelined replies must keep request order, typed errors must never kill
//! the connection, and the reactor-only behaviours — admission control,
//! load shedding, idle sweeps, shutdown flushing — must hold under fire.
//!
//! The reactor is Linux-only (epoll), so this whole suite is too.
#![cfg(target_os = "linux")]

use easz::codecs::{JpegLikeCodec, Quality};
use easz::core::{EaszConfig, EaszDecoder, EaszEncoder, Reconstructor, ReconstructorConfig};
use easz::data::Dataset;
use easz::image::ImageU8;
use easz::server::{
    protocol, ClientError, EaszClient, EaszServer, ErrorCode, GatewayConfig, ReactorConfig,
    ServerConfig,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Weights don't matter for byte-identity or wire-level behaviour, so an
/// untrained (seeded, deterministic) model keeps these tests fast.
fn model() -> Arc<Reconstructor> {
    Arc::new(Reconstructor::new(ReconstructorConfig::fast()))
}

/// One container per mask seed — the mixed fleet the reactor targets.
fn fleet_containers(seeds: &[u64]) -> Vec<Vec<u8>> {
    let codec = JpegLikeCodec::new();
    seeds
        .iter()
        .map(|&seed| {
            let enc = EaszEncoder::new(EaszConfig { mask_seed: seed, ..EaszConfig::default() })
                .expect("encoder");
            let img = Dataset::KodakLike.image(seed as usize % 8).crop(0, 0, 96, 64);
            enc.compress(&img, &codec, Quality::new(80)).expect("compress").to_bytes()
        })
        .collect()
}

fn local_references(model: &Arc<Reconstructor>, wires: &[Vec<u8>]) -> Vec<ImageU8> {
    let local = EaszDecoder::new(model);
    wires.iter().map(|w| local.decode_bytes(w).expect("local decode").to_u8()).collect()
}

#[test]
fn reactor_replies_byte_identical_to_threaded_and_local() {
    // The tentpole promise: the same traffic through the reactor front end,
    // the threaded front end and a local serial decoder produces the same
    // bytes. Concurrent clients with distinct mask seeds make the gateway
    // actually fuse windows on both serving paths.
    let model = model();
    let wires = fleet_containers(&[11, 22, 33, 44]);
    let references = local_references(&model, &wires);
    let gateway =
        GatewayConfig { max_batch: 4, max_wait_us: 50_000, workers: 2, ..Default::default() };

    let decode_all = |handle: &easz::server::ServerHandle| -> Vec<Vec<ImageU8>> {
        std::thread::scope(|scope| {
            let threads: Vec<_> = (0..4)
                .map(|_| {
                    let (wires, addr) = (&wires, handle.addr());
                    scope.spawn(move || {
                        let mut client = EaszClient::connect(addr).expect("connect");
                        wires.iter().map(|w| client.decode(w).expect("decode")).collect()
                    })
                })
                .collect();
            threads.into_iter().map(|t| t.join().expect("client thread")).collect()
        })
    };

    let reactor_handle = EaszServer::new(model.clone())
        .with_gateway(gateway.clone())
        .with_reactor(ReactorConfig::default())
        .spawn("127.0.0.1:0")
        .expect("spawn reactor server");
    let via_reactor = decode_all(&reactor_handle);
    reactor_handle.shutdown().expect("reactor shutdown");

    let threaded_handle = EaszServer::new(model.clone())
        .with_gateway(gateway)
        .spawn("127.0.0.1:0")
        .expect("spawn threaded server");
    let via_threads = decode_all(&threaded_handle);
    threaded_handle.shutdown().expect("threaded shutdown");

    for (client_idx, (r, t)) in via_reactor.iter().zip(&via_threads).enumerate() {
        for (i, reference) in references.iter().enumerate() {
            assert_eq!(
                r[i].data(),
                reference.data(),
                "reactor reply (client {client_idx}, frame {i}) != local serial decode"
            );
            assert_eq!(
                t[i].data(),
                reference.data(),
                "threaded reply (client {client_idx}, frame {i}) != local serial decode"
            );
        }
    }
}

#[test]
fn reactor_routes_zoo_models_exactly_and_never_fuses_across_ids() {
    // The mixed-model identity contract on the reactor path: concurrent
    // clients pinned to different zoo model ids must get replies
    // byte-identical to local per-model serial decodes, and the batch-width
    // histogram must show no window fused across model ids (all ids
    // distinct + one in-flight request per client ⇒ every fused forward
    // group has width 1).
    let generic = model();
    let zoo: Vec<Arc<Reconstructor>> = [71u64, 72, 73]
        .iter()
        .map(|&seed| {
            Arc::new(Reconstructor::new(ReconstructorConfig {
                seed,
                ..ReconstructorConfig::fast()
            }))
        })
        .collect();
    let codec = JpegLikeCodec::new();
    let wires: Vec<Vec<u8>> = [0u8, 1, 2, 3]
        .iter()
        .map(|&id| {
            let enc = EaszEncoder::new(EaszConfig {
                mask_seed: 177,
                model_id: id,
                ..EaszConfig::default()
            })
            .expect("encoder");
            let img = Dataset::KodakLike.image(id as usize % 8).crop(0, 0, 96, 64);
            enc.compress(&img, &codec, Quality::new(80)).expect("compress").to_bytes()
        })
        .collect();

    let mut local = EaszDecoder::new(&generic);
    for (i, m) in zoo.iter().enumerate() {
        local.add_model(i as u8 + 1, m);
    }
    let references: Vec<ImageU8> =
        wires.iter().map(|w| local.decode_bytes(w).expect("local decode").to_u8()).collect();
    assert!(
        references.windows(2).any(|p| p[0].data() != p[1].data()),
        "zoo models must reconstruct differently for this test to mean anything"
    );

    let gateway =
        GatewayConfig { max_batch: 4, max_wait_us: 50_000, workers: 2, ..Default::default() };
    let mut server = EaszServer::new(generic.clone())
        .with_gateway(gateway)
        .with_reactor(ReactorConfig::default());
    for (i, m) in zoo.iter().enumerate() {
        server = server.with_model(i as u8 + 1, m.clone());
    }
    let handle = server.spawn("127.0.0.1:0").expect("spawn");

    std::thread::scope(|scope| {
        let threads: Vec<_> = wires
            .iter()
            .zip(&references)
            .map(|(wire, reference)| {
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut client = EaszClient::connect(addr).expect("connect");
                    for _ in 0..3 {
                        let img = client.decode(wire).expect("zoo decode via reactor");
                        assert_eq!(
                            img.data(),
                            reference.data(),
                            "reactor reply must match the per-model local serial decode"
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }
    });

    let stats = handle.metrics().snapshot();
    assert_eq!(stats.decode_ok, 12, "every request must decode");
    let histogram_total: u64 = stats.batch_widths.iter().sum();
    assert_eq!(histogram_total, stats.batches_dispatched, "histogram covers every group");
    assert!(stats.batches_dispatched >= 1, "decodes must flow through the gateway");
    assert_eq!(
        stats.batch_widths[0], histogram_total,
        "all-distinct model ids must keep every fused forward group at width 1"
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn pipelined_requests_reply_in_request_order() {
    // Six DECODE frames written back-to-back before any reply is read:
    // decode workers finish in whatever order, but the reply queue must
    // emit IMAGE frames in strict request order.
    let model = model();
    let wires = fleet_containers(&[5, 6, 7, 8, 9, 10]);
    let references = local_references(&model, &wires);
    let handle = EaszServer::new(model)
        .with_reactor(ReactorConfig::default())
        .spawn("127.0.0.1:0")
        .expect("spawn");

    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    for wire in &wires {
        protocol::write_frame(&mut raw, protocol::DECODE, wire).expect("write");
    }
    for (i, reference) in references.iter().enumerate() {
        let (ty, payload) = protocol::read_frame(&mut raw, 1 << 24).expect("read").expect("frame");
        assert_eq!(ty, protocol::IMAGE, "pipelined reply {i} must be an IMAGE frame");
        let img = protocol::decode_image(&payload).expect("image payload");
        assert_eq!(img.data(), reference.data(), "pipelined reply {i} out of order or corrupt");
    }
    drop(raw);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn reactor_typed_errors_keep_the_connection_alive() {
    let model = model();
    let wires = fleet_containers(&[1]);
    let references = local_references(&model, &wires);
    let handle = EaszServer::new(model)
        .with_reactor(ReactorConfig::default())
        .spawn("127.0.0.1:0")
        .expect("spawn");
    let mut client = EaszClient::connect(handle.addr()).expect("connect");

    // A garbage container: typed decode error, connection survives.
    match client.decode(&[b'X'; 64]) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::BadMagic),
        other => panic!("expected BadMagic, got {other:?}"),
    }
    // A malformed ping: protocol-class error, connection survives.
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    protocol::write_frame(&mut raw, protocol::PING, b"four").expect("write");
    let (ty, payload) = protocol::read_frame(&mut raw, 1 << 20).expect("read").expect("frame");
    assert_eq!(ty, protocol::ERROR);
    let err = protocol::WireError::from_payload(&payload).expect("error payload");
    assert_eq!(err.code, ErrorCode::Protocol);
    protocol::write_frame(&mut raw, protocol::PING, &[protocol::PROTOCOL_VERSION]).expect("write");
    let (ty, _) = protocol::read_frame(&mut raw, 1 << 20).expect("read").expect("frame");
    assert_eq!(ty, protocol::PONG, "connection must survive a bad ping");

    // The abused client connection still decodes correctly afterwards.
    let img = client.decode(&wires[0]).expect("decode after typed errors");
    assert_eq!(img.data(), references[0].data());
    drop((client, raw));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn reactor_framing_violations_answer_once_and_close() {
    let config = ServerConfig {
        max_frame_len: 4096,
        reactor: Some(ReactorConfig::default()),
        ..ServerConfig::default()
    };
    let handle = EaszServer::new(model()).with_config(config).spawn("127.0.0.1:0").expect("spawn");

    // Unknown frame type: one UnknownFrame error, then EOF.
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    protocol::write_frame(&mut raw, 0x7f, b"??").expect("write");
    let (ty, payload) = protocol::read_frame(&mut raw, 1 << 20).expect("read").expect("frame");
    assert_eq!(ty, protocol::ERROR);
    let err = protocol::WireError::from_payload(&payload).expect("error payload");
    assert_eq!(err.code, ErrorCode::UnknownFrame);
    assert!(
        protocol::read_frame(&mut raw, 1 << 20).expect("post-error read").is_none(),
        "reactor must close after an unknown frame type"
    );

    // A frame announcing more than the limit: Oversize, then EOF.
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    let mut header = vec![protocol::DECODE];
    header.extend_from_slice(&(1u32 << 24).to_le_bytes());
    raw.write_all(&header).expect("write oversize header");
    let (ty, payload) = protocol::read_frame(&mut raw, 1 << 20).expect("read").expect("frame");
    assert_eq!(ty, protocol::ERROR);
    let err = protocol::WireError::from_payload(&payload).expect("error payload");
    assert_eq!(err.code, ErrorCode::Oversize);
    assert!(
        protocol::read_frame(&mut raw, 1 << 20).expect("post-error read").is_none(),
        "reactor must close after an oversize announcement"
    );

    // A mid-frame disconnect: no reply owed, and the server survives.
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    raw.write_all(&[protocol::DECODE, 100, 0, 0, 0, 1, 2, 3]).expect("write partial frame");
    drop(raw);

    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    assert!(client.ping().is_ok(), "reactor must outlive abusive peers");
    drop(client);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn reactor_idle_and_slow_loris_connections_are_disconnected() {
    // The reactor's idle sweep replaces the threaded path's OS read
    // timeout: both a silent connection and a slow-loris peer trickling a
    // partial frame must be closed once they go quiet past the timeout.
    let handle = EaszServer::new(model())
        .with_read_timeout(Duration::from_millis(100))
        .with_reactor(ReactorConfig::default())
        .spawn("127.0.0.1:0")
        .expect("spawn");

    // Fully idle: never sends a byte.
    let mut idle = TcpStream::connect(handle.addr()).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(10))).expect("client timeout");
    // Slow loris: half a frame header, then silence mid-frame.
    let mut loris = TcpStream::connect(handle.addr()).expect("connect");
    loris.set_read_timeout(Some(Duration::from_secs(10))).expect("client timeout");
    loris.write_all(&[protocol::DECODE, 100, 0]).expect("write partial header");

    let mut buf = [0u8; 1];
    match idle.read(&mut buf) {
        Ok(0) => {} // reactor closed the idle connection
        other => panic!("expected EOF from the idle sweep, got {other:?}"),
    }
    match loris.read(&mut buf) {
        Ok(0) => {} // mid-frame silence is just as idle
        other => panic!("expected EOF for the slow loris, got {other:?}"),
    }

    // A live connection is untouched as long as it keeps talking.
    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    assert!(client.ping().is_ok(), "active connections survive the sweep");
    drop((idle, loris, client));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn reactor_admission_control_answers_busy_and_recovers() {
    let handle = EaszServer::new(model())
        .with_reactor(ReactorConfig { max_connections: 2, ..ReactorConfig::default() })
        .spawn("127.0.0.1:0")
        .expect("spawn");

    // Fill both admission slots (the ping round-trips prove both are
    // registered inside the reactor, not just sitting in the TCP backlog).
    let mut first = EaszClient::connect(handle.addr()).expect("connect");
    let mut second = EaszClient::connect(handle.addr()).expect("connect");
    assert!(first.ping().is_ok() && second.ping().is_ok());

    // The third connection is answered with a typed BUSY frame and closed.
    let mut refused = TcpStream::connect(handle.addr()).expect("connect");
    refused.set_read_timeout(Some(Duration::from_secs(10))).expect("client timeout");
    let (ty, payload) = protocol::read_frame(&mut refused, 1 << 20).expect("read").expect("frame");
    assert_eq!(ty, protocol::ERROR);
    let err = protocol::WireError::from_payload(&payload).expect("error payload");
    assert_eq!(err.code, ErrorCode::Busy, "admission refusal must be the typed BUSY error");
    assert!(
        protocol::read_frame(&mut refused, 1 << 20).expect("post-busy read").is_none(),
        "a refused connection is closed after the BUSY frame"
    );

    let stats = handle.metrics().snapshot();
    assert_eq!(stats.connections_active, 2, "both admitted connections are live");
    assert_eq!(stats.connections_accepted, 2);
    assert_eq!(stats.connections_refused, 1);
    assert_eq!(stats.error_count(ErrorCode::Busy), 1);

    // Freeing a slot re-opens admission (the close is observed within the
    // reactor's tick, so poll briefly).
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut third = loop {
        let mut candidate = EaszClient::connect(handle.addr()).expect("connect");
        if candidate.ping().is_ok() {
            break candidate;
        }
        assert!(Instant::now() < deadline, "freed slot never became admittable");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(third.ping().is_ok() && second.ping().is_ok());
    drop((second, third, refused));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn reactor_sheds_decode_overload_with_busy() {
    // A gateway with a 4-deep queue and a 1 s window budget: ten pipelined
    // DECODEs arrive while the first window is still collecting, so exactly
    // four are parked and six are shed with the typed BUSY error — never
    // decoded inline on the loop, never silently dropped. Replies keep
    // request order: four IMAGEs, then six BUSYs.
    let model = model();
    let wires = fleet_containers(&[3]);
    let references = local_references(&model, &wires);
    let gateway = GatewayConfig {
        max_batch: 64,
        max_wait_us: 1_000_000,
        workers: 1,
        queue_depth: 4,
        adaptive_wait: false,
        deadline_us: 0,
    };
    let handle = EaszServer::new(model)
        .with_gateway(gateway)
        .with_reactor(ReactorConfig::default())
        .spawn("127.0.0.1:0")
        .expect("spawn");

    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).expect("client timeout");
    for _ in 0..10 {
        protocol::write_frame(&mut raw, protocol::DECODE, &wires[0]).expect("write");
    }
    for i in 0..10usize {
        let (ty, payload) = protocol::read_frame(&mut raw, 1 << 24).expect("read").expect("frame");
        if i < 4 {
            assert_eq!(ty, protocol::IMAGE, "reply {i} must be a decoded image");
            let img = protocol::decode_image(&payload).expect("image payload");
            assert_eq!(img.data(), references[0].data(), "shed survivors still decode exactly");
        } else {
            assert_eq!(ty, protocol::ERROR, "reply {i} must be shed");
            let err = protocol::WireError::from_payload(&payload).expect("error payload");
            assert_eq!(err.code, ErrorCode::Busy, "shedding must use the typed BUSY error");
        }
    }
    // The connection survives shedding.
    protocol::write_frame(&mut raw, protocol::PING, &[protocol::PROTOCOL_VERSION]).expect("write");
    let (ty, _) = protocol::read_frame(&mut raw, 1 << 20).expect("read").expect("frame");
    assert_eq!(ty, protocol::PONG, "connection must survive being shed");

    let stats = handle.metrics().snapshot();
    assert_eq!(stats.requests_shed, 6, "exactly the overflow is shed");
    assert_eq!(stats.error_count(ErrorCode::Busy), 6);
    assert_eq!(stats.decode_ok, 4);
    assert_eq!(stats.decode_requests, 10);
    drop(raw);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn reactor_shutdown_delivers_replies_to_parked_connections() {
    // The shutdown-flush invariant, readiness-style: requests parked in
    // the gateway with nobody reading must be decoded during the drain
    // phase and their IMAGE frames actually *received* by the peers.
    let model = model();
    let wires = fleet_containers(&[31, 32, 33]);
    let references = local_references(&model, &wires);
    let gateway =
        GatewayConfig { max_batch: 8, max_wait_us: 2_000_000, workers: 1, ..Default::default() };
    let server =
        EaszServer::new(model).with_gateway(gateway).with_reactor(ReactorConfig::default());
    let metrics = server.metrics();
    let handle = server.spawn("127.0.0.1:0").expect("spawn");

    let mut parked: Vec<TcpStream> = wires
        .iter()
        .map(|wire| {
            let mut raw = TcpStream::connect(handle.addr()).expect("connect");
            raw.set_read_timeout(Some(Duration::from_secs(30))).expect("client timeout");
            protocol::write_frame(&mut raw, protocol::DECODE, wire).expect("write");
            raw
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(20);
    while metrics.snapshot().decode_requests < 3 {
        assert!(Instant::now() < deadline, "parked burst never reached the gateway");
        std::thread::sleep(Duration::from_millis(1));
    }
    // Shut down with the 2 s window still collecting: the drain must flush
    // the gateway early and write every reply out.
    handle.shutdown().expect("clean shutdown");

    for (i, raw) in parked.iter_mut().enumerate() {
        let (ty, payload) = protocol::read_frame(raw, 1 << 24).expect("read").expect("frame");
        assert_eq!(ty, protocol::IMAGE, "parked request {i} must be answered by the drain");
        let img = protocol::decode_image(&payload).expect("image payload");
        assert_eq!(img.data(), references[i].data(), "drained reply {i} diverges");
    }
    assert_eq!(metrics.snapshot().decode_ok, 3, "all parked jobs decoded");
}

#[test]
fn reactor_serves_a_fleet_of_connections_without_dropping_replies() {
    // A 64-connection burst (each its own mask seed, one decode each) —
    // small by the bench's standards but enough to prove the accounting:
    // every reply arrives, every reply is exact, nothing is shed.
    const FLEET: usize = 64;
    let model = model();
    let seeds: Vec<u64> = (0..FLEET as u64).map(|i| 1000 + i).collect();
    let wires = fleet_containers(&seeds);
    let references = local_references(&model, &wires);
    let handle = EaszServer::new(model)
        .with_reactor(ReactorConfig::default())
        .spawn("127.0.0.1:0")
        .expect("spawn");

    std::thread::scope(|scope| {
        let threads: Vec<_> = (0..FLEET)
            .map(|i| {
                let (wire, reference, addr) = (&wires[i], &references[i], handle.addr());
                scope.spawn(move || {
                    let mut client = EaszClient::connect(addr).expect("connect");
                    let img = client.decode(wire).expect("fleet decode");
                    assert_eq!(img.data(), reference.data(), "fleet reply {i} diverges");
                })
            })
            .collect();
        for t in threads {
            t.join().expect("fleet client");
        }
    });

    // The v2 STATS payload carries the connection counters over the wire.
    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.decode_ok, FLEET as u64, "every fleet request decoded");
    assert_eq!(stats.requests_shed, 0, "nothing shed at this load");
    assert_eq!(stats.connections_refused, 0);
    assert!(
        stats.connections_accepted > FLEET as u64,
        "fleet + stats connections all admitted, got {}",
        stats.connections_accepted
    );
    assert!(stats.connections_active >= 1, "this stats connection is live");
    assert!(stats.arrival_ewma_us > 0, "a 64-submission burst must produce an arrival estimate");
    drop(client);
    handle.shutdown().expect("clean shutdown");
}

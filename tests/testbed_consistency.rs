//! Consistency checks between the analytic testbed and the real encoders:
//! payload sizes feed the network model, breakdowns stay self-consistent,
//! and the paper's headline systems ratios hold end to end.

use easz::codecs::{encode_with, JpegLikeCodec, NeuralTier, Quality};
use easz::core::ReconstructorConfig;
use easz::data::Dataset;
use easz::testbed::{DeviceModel, NetworkModel, Testbed, WorkloadProfile};

#[test]
fn real_payload_drives_transmit_time() {
    let tb = Testbed::paper();
    let img = Dataset::KodakLike.image(8).crop(0, 0, 256, 192);
    let codec = JpegLikeCodec::new();
    let small = encode_with(&codec, &img, Quality::new(20)).expect("encode");
    let large = encode_with(&codec, &img, Quality::new(95)).expect("encode");
    let w = WorkloadProfile::jpeg_like();
    let t_small = tb.run(&w, img.pixels(), small.bytes.len()).transmit_s;
    let t_large = tb.run(&w, img.pixels(), large.bytes.len()).transmit_s;
    assert!(t_large > t_small, "bigger payloads must take longer on the link");
}

#[test]
fn easz_end_to_end_latency_reduction_matches_paper_ballpark() {
    // Paper §IV-F: ~89% end-to-end reduction vs MBT/Cheng at 512x768.
    let tb = Testbed::paper();
    let pixels = 512 * 768;
    let easz =
        WorkloadProfile::easz(&WorkloadProfile::jpeg_like(), &ReconstructorConfig::paper(), 0.25);
    let easz_total = tb.run(&easz, pixels, 20_000).total_s();
    let mbt_total = tb.run(&WorkloadProfile::neural(NeuralTier::Mbt), pixels, 20_000).total_s();
    let reduction = 1.0 - easz_total / mbt_total;
    assert!(
        (0.7..0.98).contains(&reduction),
        "latency reduction {reduction:.2} (easz {easz_total:.2}s, mbt {mbt_total:.2}s)"
    );
}

#[test]
fn weaker_edge_hurts_neural_codecs_more_than_easz() {
    // Moving from TX2 to a GPU-less Pi 4 should barely change Easz (its
    // edge work is trivial) but cripple neural encode.
    let tx2 = Testbed::paper();
    let pi = Testbed {
        edge: DeviceModel::raspberry_pi4(),
        server: DeviceModel::server_2080ti(),
        network: NetworkModel::wifi(),
    };
    let pixels = 512 * 768;
    let easz =
        WorkloadProfile::easz(&WorkloadProfile::jpeg_like(), &ReconstructorConfig::paper(), 0.25);
    let mbt = WorkloadProfile::neural(NeuralTier::Mbt);
    let easz_slowdown =
        pi.run(&easz, pixels, 20_000).total_s() / tx2.run(&easz, pixels, 20_000).total_s();
    let mbt_slowdown =
        pi.run(&mbt, pixels, 20_000).total_s() / tx2.run(&mbt, pixels, 20_000).total_s();
    assert!(
        mbt_slowdown > easz_slowdown * 1.5,
        "mbt slowdown {mbt_slowdown:.2} vs easz slowdown {easz_slowdown:.2}"
    );
}

#[test]
fn energy_follows_power_times_time() {
    let tb = Testbed::paper();
    let w = WorkloadProfile::neural(NeuralTier::ChengAnchor);
    let pixels = 512 * 768;
    let energy = tb.edge_encode_energy(&w, pixels, 20_000);
    let lat = tb.run(&w, pixels, 20_000);
    let expect = tb.edge_encode_power(&w).total_w() * (lat.erase_squeeze_s + lat.compression_s);
    assert!((energy - expect).abs() < 1e-9);
    // ~18 s at ~2.6 W is tens of joules per frame — the paper's motivation
    // for not encoding with neural codecs on battery-powered endpoints.
    assert!(energy > 10.0, "cheng encode energy {energy:.1} J");
}

//! Determinism/equivalence harness for data-parallel training.
//!
//! The contract under test (see `ParallelTrainer`): shard count is part of
//! the training *recipe*, worker count and matmul threading are pure
//! *scheduling*. So after any number of full AdamW steps, the trained
//! parameters, the optimizer moments, and the per-step loss history must be
//! bit-identical across worker counts 1/2/4/8, identical to the serial
//! `Trainer` when `shards == 1`, and identical under every
//! `EASZ_MATMUL_THREADS` setting (checked via subprocesses, since the
//! thread count is read once per process).

use easz::core::{ParallelTrainer, Reconstructor, ReconstructorConfig, TrainConfig, Trainer};
use easz::data::Dataset;

fn tiny_cfg() -> ReconstructorConfig {
    ReconstructorConfig {
        n: 16,
        b: 4,
        d_model: 32,
        heads: 2,
        ffn: 64,
        ..ReconstructorConfig::fast()
    }
}

fn train_cfg() -> TrainConfig {
    TrainConfig { batch_size: 8, lr: 2e-3, seed: 23, ..TrainConfig::default() }
}

/// FNV-1a over a byte stream; enough to detect any single-bit divergence.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// Digests everything a full optimisation step touches: parameter values,
/// both AdamW moment tensors, the optimizer step counter, and the loss
/// history. Exact f32 bit patterns — no tolerance.
fn training_digest(trainer: &ParallelTrainer) -> u64 {
    let mut fnv = Fnv::new();
    let params = trainer.model().params();
    for id in params.ids() {
        fnv.update(params.name(id).as_bytes());
        for &v in params.value(id).data() {
            fnv.update(&v.to_bits().to_le_bytes());
        }
        if let Some((m, v)) = trainer.optimizer().moments(id) {
            for &x in m.data().iter().chain(v.data()) {
                fnv.update(&x.to_bits().to_le_bytes());
            }
        }
    }
    fnv.update(&trainer.optimizer().steps().to_le_bytes());
    for &loss in trainer.history() {
        fnv.update(&loss.to_bits().to_le_bytes());
    }
    fnv.0
}

/// Runs `steps` data-parallel steps with a fixed recipe (4 shards) on
/// `workers` pool workers and digests the result.
fn run_with_workers(workers: usize, steps: usize) -> u64 {
    let corpus = Dataset::CifarLike.images(12);
    let mut trainer =
        ParallelTrainer::new(Reconstructor::new(tiny_cfg()), train_cfg(), 4).with_workers(workers);
    trainer.train(&corpus, steps);
    training_digest(&trainer)
}

#[test]
fn parallel_training_is_bit_identical_across_worker_counts() {
    let reference = run_with_workers(1, 6);
    for workers in [2usize, 4, 8] {
        let digest = run_with_workers(workers, 6);
        assert_eq!(
            digest, reference,
            "{workers} workers diverged from 1 worker: worker count must be pure scheduling"
        );
    }
}

#[test]
fn single_shard_parallel_matches_serial_trainer_bitwise() {
    let corpus = Dataset::CifarLike.images(12);
    let steps = 6;

    let mut serial = Trainer::new(Reconstructor::new(tiny_cfg()), train_cfg());
    serial.train(&corpus, steps);

    let mut parallel = ParallelTrainer::new(Reconstructor::new(tiny_cfg()), train_cfg(), 1);
    parallel.train(&corpus, steps);

    // Loss histories first (clearer failure than a digest mismatch)...
    assert_eq!(
        serial.history(),
        parallel.history(),
        "shards == 1 must replay the serial tape path step for step"
    );
    // ...then every parameter and optimizer moment, bit for bit.
    let (sp, pp) = (serial.model().params(), parallel.model().params());
    for id in sp.ids() {
        let (a, b) = (sp.value(id).data(), pp.value(id).data());
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "parameter {:?} diverged between serial and 1-shard parallel",
            sp.name(id)
        );
        let (sm, pm) = (serial.optimizer().moments(id), parallel.optimizer().moments(id));
        match (sm, pm) {
            (Some((m1, v1)), Some((m2, v2))) => {
                let same = m1.data().iter().zip(m2.data()).all(|(x, y)| x.to_bits() == y.to_bits())
                    && v1.data().iter().zip(v2.data()).all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "AdamW moments diverged for {:?}", sp.name(id));
            }
            (None, None) => {}
            _ => panic!("moment presence diverged for {:?}", sp.name(id)),
        }
    }
}

#[test]
fn shard_recipe_is_pinned_by_digest_stability() {
    // The fixed pairwise reduction tree makes the 4-shard digest a pure
    // function of the recipe. Running the identical recipe twice in one
    // process (fresh model, fresh trainer) must reproduce it exactly —
    // any hidden global state (thread pools, arenas, RNG) would break this.
    assert_eq!(
        run_with_workers(2, 4),
        run_with_workers(3, 4),
        "same recipe, different worker counts and a reused process must redigest identically"
    );
}

/// Child half of the matmul-thread sweep: prints the digest and exits.
/// `EASZ_MATMUL_THREADS` is read once per process, so each setting needs
/// its own process; the parent spawns this test under different values.
#[test]
fn matmul_thread_digest_helper() {
    if std::env::var("EASZ_TRAIN_DETERMINISM_CHILD").is_err() {
        return; // only meaningful as a child of the sweep below
    }
    println!("TRAIN_DIGEST={:016x}", run_with_workers(2, 4));
}

#[test]
fn training_digest_is_invariant_under_matmul_thread_counts() {
    let exe = std::env::current_exe().expect("test binary path");
    let mut digests = Vec::new();
    for threads in ["1", "2", "4", "8"] {
        let out = std::process::Command::new(&exe)
            .args(["matmul_thread_digest_helper", "--exact", "--nocapture", "--test-threads=1"])
            .env("EASZ_TRAIN_DETERMINISM_CHILD", "1")
            .env("EASZ_MATMUL_THREADS", threads)
            .output()
            .expect("spawn child test process");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(out.status.success(), "child with {threads} matmul threads failed:\n{stdout}");
        // The libtest banner can share the digest's line under
        // `--nocapture`, so scan for the marker rather than whole lines.
        let at = stdout
            .find("TRAIN_DIGEST=")
            .unwrap_or_else(|| panic!("no digest from child with {threads} threads:\n{stdout}"));
        let digest = stdout[at + "TRAIN_DIGEST=".len()..]
            .chars()
            .take_while(|c| c.is_ascii_hexdigit())
            .collect::<String>();
        assert_eq!(digest.len(), 16, "malformed digest from child with {threads} threads");
        digests.push((threads, digest));
    }
    let (_, reference) = &digests[0];
    for (threads, digest) in &digests {
        assert_eq!(
            digest, reference,
            "EASZ_MATMUL_THREADS={threads} changed the training digest: \
             matmul threading must be pure scheduling"
        );
    }
}

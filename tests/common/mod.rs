//! Shared fixtures for the facade-level integration tests.

use easz::core::{zoo, Reconstructor};
use std::sync::{Arc, OnceLock};

/// The process-wide quick-zoo reconstructor.
///
/// The first caller pays the load — a one-off ~2000-step pretrain when
/// `target/easz-weights/` is cold, a file read when it is warm — and every
/// later caller, across test threads, clones the same `Arc`. Test files
/// that need trained weights should come through here instead of calling
/// `zoo::pretrained` directly, so one binary never builds the model twice.
pub fn quick_model() -> Arc<Reconstructor> {
    static MODEL: OnceLock<Arc<Reconstructor>> = OnceLock::new();
    MODEL.get_or_init(|| zoo::pretrained(zoo::PretrainSpec::quick())).clone()
}

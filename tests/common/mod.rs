//! Shared fixtures for the facade-level integration tests.

use easz::core::{zoo, Reconstructor};
use std::sync::{Arc, OnceLock};

/// The process-wide quick-zoo reconstructor.
///
/// The first caller pays the load — a one-off ~2000-step pretrain when
/// `target/easz-weights/` is cold, a file read when it is warm — and every
/// later caller, across test threads, clones the same `Arc`. Test files
/// that need trained weights should come through here instead of calling
/// `zoo::pretrained` directly, so one binary never builds the model twice.
pub fn quick_model() -> Arc<Reconstructor> {
    static MODEL: OnceLock<Arc<Reconstructor>> = OnceLock::new();
    MODEL.get_or_init(|| zoo::pretrained(zoo::PretrainSpec::quick())).clone()
}

/// The process-wide fine-tuned zoo model for `domain`.
///
/// Same deal as [`quick_model`]: the first caller per domain pays the
/// one-off fine-tune (or a warm file read from `target/easz-weights/`), and
/// everyone after shares the `Arc`. The base pretrain is the shared
/// [`quick_model`] weights, so a cold run trains the base exactly once.
#[allow(dead_code)] // not every test binary linking `common` uses the zoo
pub fn finetuned_model(domain: zoo::FinetuneDomain) -> Arc<Reconstructor> {
    static TEXTURED: OnceLock<Arc<Reconstructor>> = OnceLock::new();
    static FLAT: OnceLock<Arc<Reconstructor>> = OnceLock::new();
    let cell = match domain {
        zoo::FinetuneDomain::Textured => &TEXTURED,
        zoo::FinetuneDomain::Flat => &FLAT,
    };
    cell.get_or_init(|| zoo::finetuned(zoo::FinetuneSpec::quick(domain))).clone()
}

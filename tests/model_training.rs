//! Integration tests of the training stack: pretraining transfers to the
//! test domain, fine-tuning helps (Fig. 7d's premise), and the weight cache
//! round-trips a trained model exactly.

use easz::core::{
    erased_region_mse, zoo, MaskKind, Reconstructor, ReconstructorConfig, RowSamplerConfig,
    TrainConfig, Trainer,
};
use easz::data::Dataset;
use easz::tensor::{load_params, save_params};

mod common;

fn tiny_cfg() -> ReconstructorConfig {
    ReconstructorConfig {
        n: 16,
        b: 4,
        d_model: 32,
        heads: 2,
        ffn: 64,
        ..ReconstructorConfig::fast()
    }
}

#[test]
fn pretraining_transfers_from_cifar_like_to_kodak_like() {
    // The paper's §IV-D claim: CIFAR pretraining generalises because local
    // image statistics transfer.
    let corpus = Dataset::CifarLike.images(16);
    let kodak: Vec<_> =
        (0..3).map(|i| Dataset::KodakLike.image(30 + i).crop(64, 64, 64, 48)).collect();
    let mask = MaskKind::RowConditional(RowSamplerConfig::with_ratio(4, 0.25)).generate(5);

    let before = erased_region_mse(&Reconstructor::new(tiny_cfg()), &kodak, &mask);
    let mut trainer = Trainer::new(
        Reconstructor::new(tiny_cfg()),
        TrainConfig { batch_size: 8, lr: 2e-3, ..TrainConfig::default() },
    );
    trainer.train(&corpus, 80);
    let after = erased_region_mse(trainer.model(), &kodak, &mask);
    assert!(
        after < before * 0.85,
        "CIFAR-like pretraining must transfer: {before:.5} -> {after:.5}"
    );
}

#[test]
fn finetuning_loss_falls_on_target_domain() {
    // Fig. 7d's claim: the fine-tuning loss curve decreases. (Held-out MSE
    // comparisons are too noisy at this model scale for a robust test.)
    let corpus = Dataset::CifarLike.images(16);
    let kodak_train: Vec<_> =
        (0..6).map(|i| Dataset::KodakLike.image(i).crop(32, 32, 64, 48)).collect();

    let mut trainer = Trainer::new(
        Reconstructor::new(tiny_cfg()),
        TrainConfig { batch_size: 8, lr: 2e-3, ..TrainConfig::default() },
    );
    trainer.train(&corpus, 60);
    let losses = trainer.finetune(&kodak_train, 60);
    let head: f32 = losses[..10].iter().sum::<f32>() / 10.0;
    let tail: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
    assert!(
        tail < head,
        "fine-tuning loss should fall: first-10 avg {head:.5}, last-10 avg {tail:.5}"
    );
}

#[test]
fn trained_weights_round_trip_preserves_behaviour() {
    let corpus = Dataset::CifarLike.images(8);
    let mut trainer = Trainer::new(
        Reconstructor::new(tiny_cfg()),
        TrainConfig { batch_size: 4, ..TrainConfig::default() },
    );
    trainer.train(&corpus, 10);
    let model = trainer.into_model();

    let mut buf = Vec::new();
    save_params(model.params(), &mut buf).expect("save");
    let mut restored = Reconstructor::new(tiny_cfg());
    load_params(restored.params_mut(), &buf[..]).expect("load");

    let test: Vec<_> =
        (0..2).map(|i| Dataset::CifarLike.image(200 + i).crop(0, 0, 16, 16)).collect();
    let mask = MaskKind::RowConditional(RowSamplerConfig::with_ratio(4, 0.25)).generate(2);
    let a = erased_region_mse(&model, &test, &mask);
    let b = erased_region_mse(&restored, &test, &mask);
    assert!((a - b).abs() < 1e-9, "identical weights must reconstruct identically: {a} vs {b}");
}

#[test]
fn zoo_finetuned_models_beat_the_generic_model_on_their_domain() {
    // The model zoo's reason to exist: each served fine-tuned model must
    // reconstruct its own domain's erased content better than the generic
    // pretrained model it started from. Held-out images (the quick recipe
    // fine-tunes on indices 0..48) and a fixed eval mask keep this a pure
    // weights comparison; both models come through the shared process-wide
    // fixtures, so a warm weight cache makes this a load, not a train.
    let generic = common::quick_model();
    let grid = generic.config().geometry().grid();
    let mask = MaskKind::RowConditional(RowSamplerConfig::with_ratio(grid, 0.25)).generate(11);
    for domain in zoo::FinetuneDomain::ALL {
        let tuned = common::finetuned_model(domain);
        let eval: Vec<_> = (0..6).map(|i| domain.dataset().image(200 + i)).collect();
        let g = erased_region_mse(&generic, &eval, &mask);
        let t = erased_region_mse(&tuned, &eval, &mask);
        println!(
            "zoo[{}] held-out erased-region MSE: generic {g:.5} -> fine-tuned {t:.5} \
             ({:.1}% lower)",
            domain.name(),
            (1.0 - t / g) * 100.0
        );
        assert!(
            t < g,
            "the '{}' zoo model must beat the generic model on its domain: {t:.5} vs {g:.5}",
            domain.name()
        );
    }
}

#[test]
fn loss_history_is_recorded_per_step() {
    let corpus = Dataset::CifarLike.images(4);
    let mut trainer = Trainer::new(
        Reconstructor::new(tiny_cfg()),
        TrainConfig { batch_size: 2, ..TrainConfig::default() },
    );
    trainer.train(&corpus, 7);
    assert_eq!(trainer.history().len(), 7);
    assert!(trainer.history().iter().all(|l| l.is_finite() && *l > 0.0));
}

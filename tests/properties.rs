//! Property-based tests (proptest) on the core invariants of the system:
//! mask algebra, squeeze/unsqueeze, patchify, entropy coders and codec
//! round trips.

use easz::codecs::entropy::huffman::{decode_stream, encode_stream, histogram, HuffmanTable};
use easz::codecs::entropy::range::{BitModel, RangeDecoder, RangeEncoder};
use easz::codecs::{ImageCodec, JpegLikeCodec, Quality};
use easz::core::{
    squeeze_patch, unsqueeze_patch, EraseMask, FillMethod, MaskKind, Orientation, PatchGeometry,
    Patchified, RowSamplerConfig,
};
use easz::image::{Channels, ImageF32};
use proptest::prelude::*;

fn arb_image(max_side: usize) -> impl Strategy<Value = ImageF32> {
    (8usize..max_side, 8usize..max_side, proptest::collection::vec(0u8..=255, 1..8)).prop_map(
        |(w, h, palette)| {
            let mut img = ImageF32::new(w, h, Channels::Rgb);
            for (i, v) in img.data_mut().iter_mut().enumerate() {
                let p = palette[i % palette.len()] as f32 / 255.0;
                *v = (p + ((i * 31) % 17) as f32 / 64.0).min(1.0);
            }
            img
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn mask_rows_always_erase_exactly_t(
        n_grid in 2usize..16,
        ratio in 0.05f64..0.9,
        seed in 0u64..500,
    ) {
        let cfg = RowSamplerConfig::with_ratio(n_grid, ratio);
        let mask = MaskKind::RowConditional(cfg).generate(seed);
        for row in 0..n_grid {
            prop_assert_eq!(mask.erased_cols(row).len(), cfg.t, "row {}", row);
        }
        prop_assert!(mask.erased_per_row() < n_grid, "at least one kept column");
    }

    #[test]
    fn mask_serialization_round_trips(
        n_grid in 2usize..32,
        seed in 0u64..200,
    ) {
        let cfg = RowSamplerConfig::with_ratio(n_grid, 0.25);
        let mask = MaskKind::RowConditional(cfg).generate(seed);
        let bytes = mask.to_bytes();
        let back = EraseMask::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(mask, back);
    }

    #[test]
    fn squeeze_unsqueeze_preserves_kept_pixels(
        seed in 0u64..100,
        b in prop::sample::select(vec![1usize, 2, 4]),
        horizontal in any::<bool>(),
    ) {
        let n = 16usize;
        let geometry = PatchGeometry::new(n, b);
        let grid = geometry.grid();
        let mask = MaskKind::RowConditional(RowSamplerConfig::with_ratio(grid, 0.25))
            .generate(seed);
        let mut patch = ImageF32::new(n, n, Channels::Rgb);
        for (i, v) in patch.data_mut().iter_mut().enumerate() {
            *v = ((i as u64 * 2654435761 + seed) % 256) as f32 / 255.0;
        }
        let orientation = if horizontal { Orientation::Horizontal } else { Orientation::Vertical };
        let squeezed = squeeze_patch(&patch, geometry, &mask, orientation);
        let restored = unsqueeze_patch(&squeezed, geometry, &mask, orientation, FillMethod::Zero);
        for (row, col, erased) in mask.iter() {
            let (pr, pc) = if horizontal { (row, col) } else { (col, row) };
            let orig = easz::core::extract_token(&patch, geometry, pr, pc);
            let back = easz::core::extract_token(&restored, geometry, pr, pc);
            if erased {
                prop_assert!(back.iter().all(|&v| v == 0.0));
            } else {
                prop_assert_eq!(orig, back);
            }
        }
    }

    #[test]
    fn patchify_reassembly_is_identity(img in arb_image(70)) {
        let p = Patchified::from_image(&img, PatchGeometry::new(32, 4));
        prop_assert_eq!(p.to_image(), img);
    }

    #[test]
    fn huffman_round_trips_any_bytes(data in proptest::collection::vec(any::<u8>(), 1..2000)) {
        let table = HuffmanTable::from_frequencies(&histogram(&data));
        let bits = encode_stream(&table, &data);
        let back = decode_stream(&table, &bits, data.len()).expect("decode");
        prop_assert_eq!(data, back);
    }

    #[test]
    fn range_coder_round_trips_any_bits(
        bits in proptest::collection::vec(0u8..=1, 1..4000),
        contexts in 1usize..6,
    ) {
        let mut enc = RangeEncoder::new();
        let mut models = vec![BitModel::new(); contexts];
        for (i, &b) in bits.iter().enumerate() {
            enc.encode(b, &mut models[i % contexts]);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut models = vec![BitModel::new(); contexts];
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(dec.decode(&mut models[i % contexts]), b, "bit {}", i);
        }
    }

    #[test]
    fn jpeg_like_decode_never_panics_and_bounds_error(img in arb_image(48)) {
        let codec = JpegLikeCodec::new();
        let bytes = codec.encode(&img, Quality::new(90)).expect("encode");
        let out = codec.decode(&bytes).expect("decode");
        prop_assert_eq!((out.width(), out.height()), (img.width(), img.height()));
        // Adversarial palettes can alternate chroma per pixel — content
        // 4:2:0 subsampling legitimately cannot represent (real JPEG drops
        // it too). Luma is never subsampled, so the structurally guaranteed
        // invariant is a tight luma error bound at q90.
        let y_in = easz::image::color::luma(&img);
        let y_out = easz::image::color::luma(&out);
        let luma_mse = easz::metrics::mse(&y_in, &y_out);
        prop_assert!(luma_mse < 0.02, "q90 luma mse {}", luma_mse);
    }

    #[test]
    fn bpp_accounting_includes_mask(seed in 0u64..20) {
        let img = easz::data::Dataset::KodakLike.image(seed as usize).crop(0, 0, 64, 64);
        let model = easz::core::Reconstructor::new(easz::core::ReconstructorConfig::fast());
        let pipe = easz::core::EaszPipeline::new(&model, easz::core::EaszConfig::default());
        let codec = JpegLikeCodec::new();
        let enc = pipe.compress(&img, &codec, Quality::new(70)).expect("compress");
        let payload_only = enc.payload.len() as f64 * 8.0 / (64.0 * 64.0);
        prop_assert!(enc.bpp() > payload_only, "mask side channel must be charged");
    }
}

//! Property-style tests on the core invariants of the system: mask algebra,
//! squeeze/unsqueeze, patchify, entropy coders and codec round trips.
//!
//! Originally written against `proptest`; this workspace builds fully
//! offline, so each property is exercised as a deterministic seeded sweep
//! instead (≥24 cases per property, same invariants, reproducible failures
//! — the failing seed is in the assertion message).

use easz::codecs::entropy::huffman::{decode_stream, encode_stream, histogram, HuffmanTable};
use easz::codecs::entropy::range::{BitModel, RangeDecoder, RangeEncoder};
use easz::codecs::{ImageCodec, JpegLikeCodec, Quality};
use easz::core::{
    squeeze_patch, unsqueeze_patch, EraseMask, FillMethod, MaskKind, Orientation, PatchGeometry,
    Patchified, RowSamplerConfig,
};
use easz::image::{Channels, ImageF32};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: u64 = 24;

/// A deterministic "arbitrary" image: pseudo-random size in `8..max_side`
/// and a small palette, matching the old proptest `arb_image` strategy.
fn arb_image(rng: &mut StdRng, max_side: usize) -> ImageF32 {
    let w = rng.gen_range(8..max_side);
    let h = rng.gen_range(8..max_side);
    let palette: Vec<u8> =
        (0..rng.gen_range(1..8usize)).map(|_| rng.gen_range(0..=255u32) as u8).collect();
    let mut img = ImageF32::new(w, h, Channels::Rgb);
    for (i, v) in img.data_mut().iter_mut().enumerate() {
        let p = palette[i % palette.len()] as f32 / 255.0;
        *v = (p + ((i * 31) % 17) as f32 / 64.0).min(1.0);
    }
    img
}

#[test]
fn mask_rows_always_erase_exactly_t() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6d61_736b ^ case);
        let n_grid = rng.gen_range(2usize..16);
        let ratio = rng.gen_range(0.05f64..0.9);
        let seed = rng.gen_range(0u64..500);
        let cfg = RowSamplerConfig::with_ratio(n_grid, ratio);
        let mask = MaskKind::RowConditional(cfg).generate(seed);
        for row in 0..n_grid {
            assert_eq!(mask.erased_cols(row).len(), cfg.t, "case {case} row {row}");
        }
        assert!(mask.erased_per_row() < n_grid, "case {case}: at least one kept column");
    }
}

#[test]
fn mask_serialization_round_trips() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7365_7231 ^ case);
        let n_grid = rng.gen_range(2usize..32);
        let seed = rng.gen_range(0u64..200);
        let cfg = RowSamplerConfig::with_ratio(n_grid, 0.25);
        let mask = MaskKind::RowConditional(cfg).generate(seed);
        let bytes = mask.to_bytes();
        let back = EraseMask::from_bytes(&bytes).expect("round trip");
        assert_eq!(mask, back, "case {case}");
    }
}

#[test]
fn squeeze_unsqueeze_preserves_kept_pixels() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7371_7a31 ^ case);
        let seed = rng.gen_range(0u64..100);
        let b = [1usize, 2, 4][rng.gen_range(0..3usize)];
        let horizontal: bool = rng.gen();
        let n = 16usize;
        let geometry = PatchGeometry::new(n, b);
        let grid = geometry.grid();
        let mask =
            MaskKind::RowConditional(RowSamplerConfig::with_ratio(grid, 0.25)).generate(seed);
        let mut patch = ImageF32::new(n, n, Channels::Rgb);
        for (i, v) in patch.data_mut().iter_mut().enumerate() {
            *v = ((i as u64 * 2654435761 + seed) % 256) as f32 / 255.0;
        }
        let orientation = if horizontal { Orientation::Horizontal } else { Orientation::Vertical };
        let squeezed = squeeze_patch(&patch, geometry, &mask, orientation);
        let restored = unsqueeze_patch(&squeezed, geometry, &mask, orientation, FillMethod::Zero);
        for (row, col, erased) in mask.iter() {
            let (pr, pc) = if horizontal { (row, col) } else { (col, row) };
            let orig = easz::core::extract_token(&patch, geometry, pr, pc);
            let back = easz::core::extract_token(&restored, geometry, pr, pc);
            if erased {
                assert!(back.iter().all(|&v| v == 0.0), "case {case}");
            } else {
                assert_eq!(orig, back, "case {case}");
            }
        }
    }
}

#[test]
fn patchify_reassembly_is_identity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7061_7463 ^ case);
        let img = arb_image(&mut rng, 70);
        let p = Patchified::from_image(&img, PatchGeometry::new(32, 4));
        assert_eq!(p.to_image(), img, "case {case}");
    }
}

#[test]
fn huffman_round_trips_any_bytes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6875_6666 ^ case);
        let len = rng.gen_range(1usize..2000);
        let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        let table = HuffmanTable::from_frequencies(&histogram(&data));
        let bits = encode_stream(&table, &data);
        let back = decode_stream(&table, &bits, data.len()).expect("decode");
        assert_eq!(data, back, "case {case}");
    }
}

#[test]
fn range_coder_round_trips_any_bits() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x726e_6763 ^ case);
        let len = rng.gen_range(1usize..4000);
        let bits: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=1u32) as u8).collect();
        let contexts = rng.gen_range(1usize..6);
        let mut enc = RangeEncoder::new();
        let mut models = vec![BitModel::new(); contexts];
        for (i, &b) in bits.iter().enumerate() {
            enc.encode(b, &mut models[i % contexts]);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut models = vec![BitModel::new(); contexts];
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(dec.decode(&mut models[i % contexts]), b, "case {case} bit {i}");
        }
    }
}

#[test]
fn jpeg_like_decode_never_panics_and_bounds_error() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6a70_6567 ^ case);
        let img = arb_image(&mut rng, 48);
        let codec = JpegLikeCodec::new();
        let bytes = codec.encode(&img, Quality::new(90)).expect("encode");
        let out = codec.decode(&bytes).expect("decode");
        assert_eq!((out.width(), out.height()), (img.width(), img.height()), "case {case}");
        // Adversarial palettes can alternate chroma per pixel — content
        // 4:2:0 subsampling legitimately cannot represent (real JPEG drops
        // it too). Luma is never subsampled, so the structurally guaranteed
        // invariant is a tight luma error bound at q90.
        let y_in = easz::image::color::luma(&img);
        let y_out = easz::image::color::luma(&out);
        let luma_mse = easz::metrics::mse(&y_in, &y_out);
        assert!(luma_mse < 0.02, "case {case}: q90 luma mse {luma_mse}");
    }
}

#[test]
fn bpp_accounting_includes_mask_and_header() {
    let encoder = easz::core::EaszEncoder::new(easz::core::EaszConfig::default()).expect("encoder");
    for seed in 0u64..20 {
        let img = easz::data::Dataset::KodakLike.image(seed as usize).crop(0, 0, 64, 64);
        let codec = JpegLikeCodec::new();
        let enc = encoder.compress(&img, &codec, Quality::new(70)).expect("compress");
        let payload_only = enc.payload.len() as f64 * 8.0 / (64.0 * 64.0);
        assert!(enc.bpp() > payload_only, "seed {seed}: mask + container must be charged");
        assert_eq!(enc.total_bytes(), enc.to_bytes().len(), "seed {seed}: bpp charges the wire");
    }
}

#[test]
fn container_round_trips_across_random_configs() {
    use easz::core::{EaszConfig, EaszEncoded, EaszEncoder, MaskStrategy, Orientation};
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x636f_6e74 ^ case);
        let cfg = EaszConfig::builder()
            .n(16)
            .b([1usize, 2, 4][rng.gen_range(0..3usize)])
            .erase_ratio([0.125, 0.25, 0.375][rng.gen_range(0..3usize)])
            .strategy([MaskStrategy::Proposed, MaskStrategy::Random][rng.gen_range(0..2usize)])
            .orientation([Orientation::Horizontal, Orientation::Vertical][rng.gen_range(0..2usize)])
            .mask_seed(rng.gen_range(0u64..1000))
            .synthesize_grain(rng.gen())
            .build()
            .expect("valid sweep config");
        let encoder = EaszEncoder::new(cfg).expect("encoder");
        let img = arb_image(&mut rng, 60);
        let enc = encoder
            .compress(&img, &JpegLikeCodec::new(), Quality::new(rng.gen_range(1..=100u32) as u8))
            .expect("compress");
        let back = EaszEncoded::from_bytes(&enc.to_bytes()).expect("parse");
        assert_eq!(back, enc, "case {case}");
    }
}

//! Cross-crate integration tests: the split Easz pipeline against every
//! codec, at several erase ratios, with a (quickly) trained reconstructor.

mod common;

use easz::codecs::{BpgLikeCodec, ImageCodec, JpegLikeCodec, NeuralSimCodec, NeuralTier, Quality};
use easz::core::{EaszConfig, EaszDecoder, EaszEncoder, FillMethod, MaskStrategy, Orientation};
use easz::data::Dataset;
use easz::metrics::{mse, psnr};

fn test_image() -> easz::image::ImageF32 {
    Dataset::KodakLike.image(42).crop(96, 96, 128, 96)
}

fn default_encoder() -> EaszEncoder {
    EaszEncoder::new(EaszConfig::default()).expect("default config is valid")
}

#[test]
fn pipeline_round_trips_across_all_codecs() {
    let model = common::quick_model();
    let encoder = default_encoder();
    let decoder = EaszDecoder::new(&model);
    let img = test_image();
    let jpeg = JpegLikeCodec::new();
    let bpg = BpgLikeCodec::new();
    let mbt = NeuralSimCodec::new(NeuralTier::Mbt);
    let cheng = NeuralSimCodec::new(NeuralTier::ChengAnchor);
    let codecs: [&dyn ImageCodec; 4] = [&jpeg, &bpg, &mbt, &cheng];
    for codec in codecs {
        let enc = encoder.compress(&img, codec, Quality::new(75)).expect("compress");
        // The decoder resolves the inner codec from the bitstream header —
        // no codec object crosses the edge/server boundary.
        let out = decoder.decode(&enc).expect("decode");
        assert_eq!((out.width(), out.height()), (img.width(), img.height()), "{}", codec.name());
        let p = psnr(&img, &out);
        assert!(p > 18.0, "{}: psnr {p:.2} too low for q75 + trained model", codec.name());
    }
}

#[test]
fn pipeline_works_at_multiple_erase_ratios_with_one_model() {
    // The agility claim: the same weights serve every erase ratio, and the
    // edge retunes by rebuilding its model-free encoder.
    let model = common::quick_model();
    let decoder = EaszDecoder::new(&model);
    let img = test_image();
    let codec = JpegLikeCodec::new();
    let mut previous_bpp = f64::INFINITY;
    for ratio in [0.125, 0.25, 0.375, 0.5] {
        let cfg = EaszConfig::builder().erase_ratio(ratio).mask_seed(2).build().expect("cfg");
        let encoder = EaszEncoder::new(cfg).expect("encoder");
        let enc = encoder.compress(&img, &codec, Quality::new(70)).expect("compress");
        let out = decoder.decode(&enc).expect("decode");
        assert!(
            enc.bpp() < previous_bpp,
            "bpp must shrink as the erase ratio grows (ratio {ratio})"
        );
        previous_bpp = enc.bpp();
        assert!(psnr(&img, &out) > 15.0, "ratio {ratio}: quality collapsed");
    }
}

#[test]
fn trained_reconstruction_beats_neighbor_fill() {
    // The model must outperform the cheap no-model baseline (Fig. 2(b)'s
    // neighbour fill) on erased content. MSE comparison, so grain synthesis
    // (a deliberate MSE-for-naturalness trade) is off.
    let model = common::quick_model();
    let cfg = EaszConfig { synthesize_grain: false, ..EaszConfig::default() };
    let encoder = EaszEncoder::new(cfg).expect("encoder");
    let decoder = EaszDecoder::new(&model);
    let img = test_image();
    let geometry = cfg.geometry();
    let (squeezed, mask) = encoder.erase_and_squeeze(&img);

    // Neighbour-fill baseline, assembled patch by patch.
    let patched = easz::core::Patchified::from_image(&img, geometry);
    let sqw = geometry.n - mask.erased_per_row() * geometry.b;
    let mut nf_patches = Vec::new();
    for i in 0..patched.patches.len() {
        let (px, py) = (i % patched.cols, i / patched.cols);
        let sq = squeezed.crop(px * sqw, py * geometry.n, sqw, geometry.n);
        nf_patches.push(easz::core::unsqueeze_patch(
            &sq,
            geometry,
            &mask,
            Orientation::Horizontal,
            FillMethod::Neighbor,
        ));
    }
    let nf = easz::core::Patchified { patches: nf_patches, ..patched }.to_image();

    // Model reconstruction through the lossless-ish path.
    let codec = JpegLikeCodec::new();
    let enc = encoder.compress(&img, &codec, Quality::new(95)).expect("compress");
    let out = decoder.decode(&enc).expect("decode");

    let m_model = mse(&img, &out);
    let m_nf = mse(&img, &nf);
    assert!(m_model < m_nf, "transformer ({m_model:.6}) must beat neighbour fill ({m_nf:.6})");
}

#[test]
fn proposed_mask_reconstructs_better_than_random() {
    // Fig. 3b's claim at the integration level.
    let model = common::quick_model();
    let decoder = EaszDecoder::new(&model);
    let img = test_image();
    let codec = JpegLikeCodec::new();
    let run = |strategy: MaskStrategy| {
        let cfg = EaszConfig::builder().strategy(strategy).mask_seed(7).build().expect("cfg");
        let encoder = EaszEncoder::new(cfg).expect("encoder");
        let enc = encoder.compress(&img, &codec, Quality::new(90)).expect("compress");
        let out = decoder.decode(&enc).expect("decode");
        mse(&img, &out)
    };
    let proposed = run(MaskStrategy::Proposed);
    let random = run(MaskStrategy::Random);
    assert!(
        proposed <= random * 1.05,
        "proposed {proposed:.6} should not lose to random {random:.6}"
    );
}

#[test]
fn diagonal_strategy_matches_paper_degenerate_case() {
    let cfg = EaszConfig { strategy: MaskStrategy::Diagonal, ..Default::default() };
    let encoder = EaszEncoder::new(cfg).expect("encoder");
    let img = test_image();
    let (squeezed, mask) = encoder.erase_and_squeeze(&img);
    assert_eq!(mask.erased_per_row(), 1, "diagonal mask erases one block per row");
    // Width shrinks by exactly one sub-patch per patch.
    let expect_w = img.width() / cfg.n * (cfg.n - cfg.b);
    assert_eq!(squeezed.width(), expect_w);
}

#[test]
fn encoded_form_survives_mask_byte_round_trip() {
    let encoder = default_encoder();
    let img = test_image();
    let codec = JpegLikeCodec::new();
    let enc = encoder.compress(&img, &codec, Quality::new(60)).expect("compress");
    let mask = easz::core::EraseMask::from_bytes(&enc.mask_bytes).expect("mask parse");
    assert_eq!(mask.n_grid(), 8);
    assert_eq!(mask.erased_per_row(), 2);
}

#[test]
fn independently_built_encoders_are_byte_equivalent() {
    // Migrated from the (now deleted) `EaszPipeline` shim's equivalence
    // test: two independently constructed sessions over the same config
    // must produce byte-identical containers, and the wire bytes must
    // round-trip losslessly through serialize/parse/decode.
    let model = common::quick_model();
    let decoder = EaszDecoder::new(&model);
    let img = test_image();
    let codec = JpegLikeCodec::new();
    let a = default_encoder().compress(&img, &codec, Quality::new(70)).expect("compress a");
    let b = default_encoder().compress(&img, &codec, Quality::new(70)).expect("compress b");
    assert_eq!(a, b);
    assert_eq!(a.to_bytes(), b.to_bytes());
    let reparsed = easz::core::EaszEncoded::from_bytes(&a.to_bytes()).expect("parse");
    assert_eq!(reparsed, a);
    let via_wire = decoder.decode(&reparsed).expect("decode reparsed");
    let direct = decoder.decode_with(&a, &codec).expect("decode direct");
    assert_eq!((via_wire.width(), via_wire.height()), (img.width(), img.height()));
    assert_eq!(via_wire.data(), direct.data(), "wire trip must not change the decode");
}

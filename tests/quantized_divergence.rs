//! Divergence bounds for the int8 quantized decode tier: unlike the f32
//! engines (which `infer_equivalence.rs` pins bit-for-bit), the
//! [`DecodeEngine::QuantizedInt8`] path is only *ε/PSNR-bounded* against
//! the reference — and this file is the normative statement of how far it
//! is allowed to drift.
//!
//! Three contracts, on a seeded sweep of mask strategies × batch sizes ×
//! model geometries, with uniform and mixed-mask batch groups:
//!
//! 1. every reconstructed sample stays within an absolute ε of the f32
//!    reference;
//! 2. every decoded image scores ≥ 40 dB PSNR against its f32 decode;
//! 3. end-to-end quality versus the ground-truth image loses at most
//!    0.3 dB relative to the f32 tier (on the committed quick-zoo weights).
//!
//! Within the quantized tier itself the engine is *deterministic*: serial,
//! repeated and batch-fused decodes are byte-identical to each other.

mod common;

use easz::codecs::{JpegLikeCodec, Quality};
use easz::core::{
    DecodeEngine, DecodePlan, EaszConfig, EaszDecoder, EaszEncoder, EraseMask, MaskKind,
    MaskStrategy, Reconstructor, ReconstructorConfig, RowSamplerConfig, TokenBatch,
};
use easz::data::Dataset;
use easz::image::ImageF32;
use easz::metrics::psnr;
use easz::tensor::ScratchArena;

/// Per-sample absolute divergence budget, in `[0, 1]` sample units, for
/// the *untrained* geometries (random init produces activations far from
/// the trained distribution, so this is the loose structural bound; the
/// sweep's observed maximum is ≈ 0.131).
const EPS_TOKEN: f32 = 0.2;

/// Per-pixel absolute divergence budget for decodes on the trained
/// quick-zoo weights (observed maximum ≈ 0.033).
const EPS_PIXEL: f32 = 0.05;

/// Per-image floor on PSNR(quantized, f32 reference), in dB (observed
/// minimum ≈ 49.1 dB — ~9 dB of headroom over the contract).
const MIN_TIER_PSNR: f64 = 40.0;

/// Largest admissible end-to-end quality loss versus ground truth, in dB
/// (observed maximum ≈ 0.085 dB).
const MAX_QUALITY_LOSS: f64 = 0.3;

/// The pipeline-default geometry and the small-tile ablation geometry —
/// the same pair `infer_equivalence.rs` sweeps for the f32 engines.
fn geometries() -> [ReconstructorConfig; 2] {
    [
        ReconstructorConfig::fast(),
        ReconstructorConfig {
            n: 16,
            b: 2,
            d_model: 32,
            heads: 2,
            ffn: 64,
            ..ReconstructorConfig::fast()
        },
    ]
}

/// Every shipped mask family at the given grid size.
fn mask_strategies(grid: usize, seed: u64) -> Vec<(&'static str, EraseMask)> {
    vec![
        (
            "row_conditional",
            MaskKind::RowConditional(RowSamplerConfig::with_ratio(grid, 0.25)).generate(seed),
        ),
        ("random_row", MaskKind::RandomRow { n_grid: grid, t: grid / 4 }.generate(seed)),
        ("diagonal", MaskKind::Diagonal { n_grid: grid }.generate(seed)),
    ]
}

fn random_batch(cfg: &ReconstructorConfig, bsz: usize, seed: u64) -> TokenBatch {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let (seq, dim) = (cfg.seq_len(), cfg.token_dim());
    let patches: Vec<Vec<Vec<f32>>> = (0..bsz)
        .map(|_| {
            (0..seq)
                .map(|_| {
                    (0..dim)
                        .map(|_| {
                            s ^= s << 13;
                            s ^= s >> 7;
                            s ^= s << 17;
                            ((s >> 40) as f32 / (1u64 << 24) as f32).clamp(0.0, 1.0)
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    TokenBatch::from_patches(&patches)
}

fn max_abs_diff(a: &[Vec<Vec<f32>>], b: &[Vec<Vec<f32>>]) -> f32 {
    a.iter()
        .flatten()
        .flatten()
        .zip(b.iter().flatten().flatten())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

fn pixel_bits(img: &ImageF32) -> Vec<u32> {
    img.data().iter().map(|v| v.to_bits()).collect()
}

fn max_pixel_diff(a: &ImageF32, b: &ImageF32) -> f32 {
    a.data().iter().zip(b.data()).map(|(&x, &y)| (x - y).abs()).fold(0.0f32, f32::max)
}

/// One encoded container for the given mask strategy and seed, from a
/// deterministic Kodak-like crop.
fn container(
    strategy: MaskStrategy,
    mask_seed: u64,
    image_index: usize,
    side: usize,
) -> (ImageF32, easz::core::EaszEncoded) {
    let cfg = EaszConfig { strategy, mask_seed, ..EaszConfig::default() };
    let encoder = EaszEncoder::new(cfg).expect("encoder");
    let img = Dataset::KodakLike.image(image_index).crop(0, 0, side, side);
    let enc = encoder.compress(&img, &JpegLikeCodec::new(), Quality::new(80)).expect("compress");
    (img, enc)
}

#[test]
fn quantized_forward_stays_within_eps_across_masks_batches_and_geometries() {
    // The structural sweep on untrained (seeded, deterministic) models:
    // same grid as the f32 bit-exactness gate, but the assertion is an
    // absolute ε instead of byte identity.
    for cfg in geometries() {
        let model = Reconstructor::new(cfg);
        let grid = cfg.geometry().grid();
        for (strategy, mask) in mask_strategies(grid, 7) {
            for bsz in [1usize, 4, 8] {
                let batch = random_batch(&cfg, bsz, 1000 + bsz as u64);
                let reference = model.reconstruct_tokens(&batch, &mask);
                let plan = DecodePlan::new(&mask);
                let mut arena = ScratchArena::new();
                let quant = model.infer_tokens_quant(&batch, &plan, &mut arena);
                let diff = max_abs_diff(&reference, &quant);
                assert!(
                    diff <= EPS_TOKEN,
                    "quantized divergence {diff} > {EPS_TOKEN}: n={} b={} strategy={strategy} \
                     batch={bsz}",
                    cfg.n,
                    cfg.b,
                );
                // The tier must actually be the int8 path, not a silent
                // fall-through to f32 (which would make every bound vacuous).
                assert!(diff > 0.0, "engines must genuinely differ: strategy={strategy}");
            }
        }
    }
}

#[test]
fn quantized_decode_bounds_hold_on_the_trained_zoo_model() {
    // The normative end-to-end contract, on the committed quick-zoo
    // weights: ε, tier PSNR, and ground-truth quality loss, per image,
    // for every shipped mask strategy.
    let model = common::quick_model();
    let decoder = EaszDecoder::new(&model);
    for (strategy, name) in [
        (MaskStrategy::Proposed, "proposed"),
        (MaskStrategy::Random, "random"),
        (MaskStrategy::Diagonal, "diagonal"),
    ] {
        for (image_index, side) in [(1usize, 64usize), (3, 96)] {
            let (gt, enc) = container(strategy, 5, image_index, side);
            let reference = decoder.decode_as(&enc, DecodeEngine::TapeFree).expect("f32 decode");
            let quant = decoder.decode_as(&enc, DecodeEngine::QuantizedInt8).expect("quant");

            let diff = max_pixel_diff(&reference, &quant);
            assert!(
                diff <= EPS_PIXEL,
                "pixel divergence {diff} > {EPS_PIXEL}: strategy={name} side={side}"
            );
            let tier_psnr = psnr(&reference, &quant);
            assert!(
                tier_psnr >= MIN_TIER_PSNR,
                "PSNR(quant, reference) = {tier_psnr:.2} dB < {MIN_TIER_PSNR} dB: \
                 strategy={name} side={side}"
            );
            let (ref_q, quant_q) = (psnr(&gt, &reference), psnr(&gt, &quant));
            assert!(
                quant_q >= ref_q - MAX_QUALITY_LOSS,
                "end-to-end loss {:.3} dB > {MAX_QUALITY_LOSS} dB (f32 {ref_q:.2} dB, \
                 quant {quant_q:.2} dB): strategy={name} side={side}",
                ref_q - quant_q,
            );

            // Deterministic: the quantized tier re-decodes byte-identically.
            let again = decoder.decode_as(&enc, DecodeEngine::QuantizedInt8).expect("re-decode");
            assert_eq!(
                pixel_bits(&quant),
                pixel_bits(&again),
                "quantized decode must be deterministic: strategy={name} side={side}"
            );
        }
    }
}

#[test]
fn quantized_batches_match_serial_and_stay_bounded_uniform_and_mixed() {
    // The batch half of the sweep, on the trained weights: uniform-mask
    // groups (every container shares one seed) and mixed-mask groups
    // (every container rolls its own seed) at widths 1, 4 and 8. Fused
    // quantized decodes must be byte-identical to their serial quantized
    // twins — the quantized tier's own determinism contract — while every
    // member also stays inside the ε/PSNR bounds against its f32 decode.
    let model = common::quick_model();
    let decoder = EaszDecoder::new(&model);
    for bsz in [1usize, 4, 8] {
        for mixed in [false, true] {
            let encoded: Vec<_> = (0..bsz)
                .map(|i| {
                    let seed = if mixed { 11 + 7 * i as u64 } else { 11 };
                    container(MaskStrategy::Proposed, seed, 2, 64).1
                })
                .collect();
            let engines = vec![DecodeEngine::QuantizedInt8; bsz];
            let batched = decoder.decode_batch_with(&encoded, &engines);
            assert_eq!(batched.len(), bsz);
            for (i, (enc, result)) in encoded.iter().zip(&batched).enumerate() {
                let fused = result.as_ref().expect("batched quant decode");
                let serial = decoder.decode_as(enc, DecodeEngine::QuantizedInt8).expect("serial");
                assert_eq!(
                    pixel_bits(&serial),
                    pixel_bits(fused),
                    "fused quantized decode != serial: width={bsz} mixed={mixed} member={i}"
                );
                let reference = decoder.decode_as(enc, DecodeEngine::TapeFree).expect("f32");
                let diff = max_pixel_diff(&reference, fused);
                assert!(
                    diff <= EPS_PIXEL,
                    "batched divergence {diff} > {EPS_PIXEL}: width={bsz} mixed={mixed} member={i}"
                );
                let tier_psnr = psnr(&reference, fused);
                assert!(
                    tier_psnr >= MIN_TIER_PSNR,
                    "batched PSNR {tier_psnr:.2} dB < {MIN_TIER_PSNR} dB: width={bsz} \
                     mixed={mixed} member={i}"
                );
            }
        }
    }
}

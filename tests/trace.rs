//! End-to-end tracing suite: drives loopback load through both front ends
//! with tracing enabled and asserts the full observability contract — the
//! always-on latency histograms report nonzero percentiles, sampled spans
//! stamp every pipeline milestone in order, slow requests are captured
//! with per-stage breakdowns, decode-stage accumulators tick, replies stay
//! byte-identical to a local serial decode, and a tracing-disabled server
//! answers `TRACE` with a valid empty report instead of an error.

use easz::codecs::{JpegLikeCodec, Quality};
use easz::core::{
    DecodeStage, EaszConfig, EaszDecoder, EaszEncoder, Reconstructor, ReconstructorConfig,
};
use easz::data::Dataset;
use easz::image::ImageU8;
use easz::server::{
    protocol, EaszClient, EaszServer, ErrorCode, GatewayConfig, ServerHandle, TraceConfig,
    TraceReport, TraceStage, WireError,
};
use std::net::TcpStream;
use std::sync::Arc;

/// Weights don't matter for tracing or byte-identity, so an untrained
/// (seeded, deterministic) model keeps these tests fast.
fn model() -> Arc<Reconstructor> {
    Arc::new(Reconstructor::new(ReconstructorConfig::fast()))
}

/// One container per mask seed — distinct seeds so the gateway actually
/// fuses windows across connections.
fn fleet_containers(seeds: &[u64]) -> Vec<Vec<u8>> {
    let codec = JpegLikeCodec::new();
    seeds
        .iter()
        .map(|&seed| {
            let enc = EaszEncoder::new(EaszConfig { mask_seed: seed, ..EaszConfig::default() })
                .expect("encoder");
            let img = Dataset::KodakLike.image(seed as usize % 8).crop(0, 0, 96, 64);
            enc.compress(&img, &codec, Quality::new(80)).expect("compress").to_bytes()
        })
        .collect()
}

fn local_references(model: &Arc<Reconstructor>, wires: &[Vec<u8>]) -> Vec<ImageU8> {
    let local = EaszDecoder::new(model);
    wires.iter().map(|w| local.decode_bytes(w).expect("local decode").to_u8()).collect()
}

/// Sample everything and call everything slow, so one burst of traffic
/// exercises the ring, the slow log and the per-stage breakdowns at once.
fn capture_everything() -> TraceConfig {
    TraceConfig { capacity: 64, sample_every: 1, slow_threshold_us: 1, slow_capacity: 8 }
}

/// A gateway whose windows genuinely wait (nonzero queue-wait histogram)
/// but still close fast enough to keep the suite quick.
fn traced_gateway() -> GatewayConfig {
    GatewayConfig { max_batch: 4, max_wait_us: 5_000, workers: 2, ..Default::default() }
}

/// Three concurrent clients each decode every wire; replies come back for
/// the byte-identity check.
fn drive_load(handle: &ServerHandle, wires: &[Vec<u8>]) -> Vec<Vec<ImageU8>> {
    std::thread::scope(|scope| {
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let (wires, addr) = (wires, handle.addr());
                scope.spawn(move || {
                    let mut client = EaszClient::connect(addr).expect("connect");
                    wires.iter().map(|w| client.decode(w).expect("decode")).collect()
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().expect("client thread")).collect()
    })
}

/// The acceptance contract, shared by the threaded and reactor cases:
/// nonzero p50/p99 on all three histograms, sampled spans with monotonic
/// milestone stamps, at least one slow request with a full per-stage
/// breakdown, live decode-stage accumulators and byte-identical replies.
fn assert_traced_front_end(handle: &ServerHandle, front_end: &str) {
    let model = model();
    let wires = fleet_containers(&[11, 22, 33, 44]);
    let references = local_references(&model, &wires);

    let replies = drive_load(handle, &wires);
    for (client_idx, client_replies) in replies.iter().enumerate() {
        for (i, reference) in references.iter().enumerate() {
            assert_eq!(
                client_replies[i].data(),
                reference.data(),
                "{front_end}: traced reply (client {client_idx}, frame {i}) != local decode"
            );
        }
    }

    let mut client = EaszClient::connect(handle.addr()).expect("inspector connect");
    let stats = client.stats().expect("stats");
    for (name, p50, p99) in [
        ("queue wait", stats.queue_wait_percentile_us(0.50), stats.queue_wait_percentile_us(0.99)),
        ("decode", stats.decode_percentile_us(0.50), stats.decode_percentile_us(0.99)),
        ("service", stats.service_percentile_us(0.50), stats.service_percentile_us(0.99)),
    ] {
        assert!(p50 > 0, "{front_end}: {name} p50 must be nonzero, got {p50}");
        assert!(p99 >= p50, "{front_end}: {name} p99 {p99} < p50 {p50}");
    }

    let trace = client.trace().expect("trace");
    assert!(!trace.recent.is_empty(), "{front_end}: sample_every=1 must capture spans");
    for span in &trace.recent {
        let stamps: Vec<u32> = TraceStage::ALL.iter().filter_map(|&s| span.stage_us(s)).collect();
        assert!(
            stamps.windows(2).all(|w| w[0] <= w[1]),
            "{front_end}: span #{} stamps out of order: {stamps:?}",
            span.id
        );
    }
    assert!(!trace.slow.is_empty(), "{front_end}: a 1µs slow threshold must capture slow requests");
    let slow = trace.slow.last().expect("slow span");
    for stage in TraceStage::ALL {
        assert!(
            slow.stage_us(stage).is_some(),
            "{front_end}: slow decode span #{} never reached {}",
            slow.id,
            stage.name()
        );
    }
    assert!(slow.ok, "{front_end}: the slow span came from a successful decode");
    for stage in DecodeStage::ALL {
        let (count, _total_us) = trace.decode_stages[stage.index()];
        assert!(count > 0, "{front_end}: decode stage {} never reported", stage.name());
    }

    // The ring drains; the slow log and stage accumulators are retained.
    // No decode traffic ran in between, so the second poll's ring is empty.
    let again = client.trace().expect("second trace");
    assert!(again.recent.is_empty(), "{front_end}: second poll must see a drained ring");
    assert_eq!(again.slow, trace.slow, "{front_end}: slow log survives polls");
    assert_eq!(again.decode_stages, trace.decode_stages);
}

#[test]
fn threaded_front_end_traces_end_to_end() {
    let handle = EaszServer::new(model())
        .with_gateway(traced_gateway())
        .with_trace(capture_everything())
        .spawn("127.0.0.1:0")
        .expect("spawn threaded server");
    assert_traced_front_end(&handle, "threaded");
    handle.shutdown().expect("threaded shutdown");
}

#[cfg(target_os = "linux")]
#[test]
fn reactor_front_end_traces_end_to_end() {
    let handle = EaszServer::new(model())
        .with_gateway(traced_gateway())
        .with_reactor(easz::server::ReactorConfig::default())
        .with_trace(capture_everything())
        .spawn("127.0.0.1:0")
        .expect("spawn reactor server");
    assert_traced_front_end(&handle, "reactor");
    handle.shutdown().expect("reactor shutdown");
}

#[test]
fn tracing_disabled_server_answers_trace_with_empty_report() {
    // No `with_trace`: spans don't exist, but the frame still answers with
    // a valid empty report (inspectors degrade instead of erroring) and
    // the always-on histograms keep counting.
    let handle = EaszServer::new(model())
        .with_gateway(traced_gateway())
        .spawn("127.0.0.1:0")
        .expect("spawn untraced server");
    let wires = fleet_containers(&[5]);
    let mut client = EaszClient::connect(handle.addr()).expect("connect");
    client.decode(&wires[0]).expect("decode");
    assert_eq!(client.trace().expect("trace"), TraceReport::default());
    let stats = client.stats().expect("stats");
    assert!(stats.service_percentile_us(0.99) > 0, "histograms are always on");
    handle.shutdown().expect("shutdown");
}

/// Raw-socket check: a `TRACE` frame must carry an empty payload.
fn assert_trace_payload_rejected(addr: std::net::SocketAddr, front_end: &str) {
    let mut sock = TcpStream::connect(addr).expect("connect");
    protocol::write_frame(&mut sock, protocol::TRACE, &[0xAB]).expect("write");
    let (ty, payload) =
        protocol::read_frame(&mut sock, 1 << 20).expect("read").expect("reply frame");
    assert_eq!(ty, protocol::ERROR, "{front_end}: nonempty TRACE payload must error");
    let err = WireError::from_payload(&payload).expect("wire error");
    assert_eq!(err.code, ErrorCode::Protocol, "{front_end}: {err}");
    assert!(err.message.contains("trace payload"), "{front_end}: {err}");
}

#[test]
fn trace_frame_with_payload_is_a_protocol_error() {
    let threaded = EaszServer::new(model())
        .with_trace(capture_everything())
        .spawn("127.0.0.1:0")
        .expect("spawn threaded server");
    assert_trace_payload_rejected(threaded.addr(), "threaded");
    threaded.shutdown().expect("threaded shutdown");

    #[cfg(target_os = "linux")]
    {
        let reactor = EaszServer::new(model())
            .with_reactor(easz::server::ReactorConfig::default())
            .with_trace(capture_everything())
            .spawn("127.0.0.1:0")
            .expect("spawn reactor server");
        assert_trace_payload_rejected(reactor.addr(), "reactor");
        reactor.shutdown().expect("reactor shutdown");
    }
}

//! Wire-format tests for the versioned `.easz` container: exact round
//! trips, the edge/server split over raw bytes, and a corruption sweep
//! asserting that untrusted input always yields a typed [`EaszError`],
//! never a panic.

mod common;

use easz::codecs::{BpgLikeCodec, CodecId, ImageCodec, JpegLikeCodec, Quality};
use easz::core::{
    EaszConfig, EaszDecoder, EaszEncoded, EaszEncoder, EaszError, MaskStrategy, Orientation,
    HEADER_LEN,
};
use easz::data::Dataset;
use easz::metrics::psnr;

fn test_image() -> easz::image::ImageF32 {
    Dataset::KodakLike.image(42).crop(96, 96, 96, 64)
}

/// Runs on the "edge": no `Reconstructor` (nor any model type) is in scope
/// here — the encoder is constructible from a config alone.
fn edge_compress(codec: &dyn ImageCodec) -> Vec<u8> {
    let encoder = EaszEncoder::new(EaszConfig::default()).expect("encoder without a model");
    encoder.compress(&test_image(), codec, Quality::new(75)).expect("compress").to_bytes()
}

#[test]
fn wire_round_trip_uses_only_the_registry() {
    // Edge and server share nothing but the bytes: the server resolves the
    // inner codec from the bitstream header via its registry, and no codec
    // object (or quality, or config) crosses the boundary out of band.
    for codec in [&JpegLikeCodec::new() as &dyn ImageCodec, &BpgLikeCodec::new()] {
        let wire = edge_compress(codec);

        let model = common::quick_model();
        let decoder = EaszDecoder::new(&model);
        let restored = decoder.decode_bytes(&wire).expect("decode from wire");
        let img = test_image();
        assert_eq!((restored.width(), restored.height()), (img.width(), img.height()));
        assert!(psnr(&img, &restored) > 15.0, "{}: wire decode collapsed", codec.name());

        let parsed = EaszEncoded::from_bytes(&wire).expect("parse");
        assert_eq!(parsed.codec_id, codec.id(), "header names the inner codec");
    }
}

#[test]
fn container_round_trip_is_exact() {
    let img = test_image();
    let codec = JpegLikeCodec::new();
    for (strategy, orientation, grain) in [
        (MaskStrategy::Proposed, Orientation::Horizontal, true),
        (MaskStrategy::Random, Orientation::Vertical, false),
        (MaskStrategy::Diagonal, Orientation::Horizontal, false),
    ] {
        let cfg = EaszConfig::builder()
            .strategy(strategy)
            .orientation(orientation)
            .synthesize_grain(grain)
            .mask_seed(9)
            .build()
            .expect("cfg");
        let encoder = EaszEncoder::new(cfg).expect("encoder");
        let enc = encoder.compress(&img, &codec, Quality::new(64)).expect("compress");
        let bytes = enc.to_bytes();
        assert_eq!(bytes.len(), enc.total_bytes());
        let back = EaszEncoded::from_bytes(&bytes).expect("parse");
        assert_eq!(back, enc, "{strategy:?}/{orientation:?} must round-trip exactly");
    }
}

/// Parse, and decode on success; the sweep asserts this whole path returns
/// a `Result` (typed error or success) rather than panicking.
fn parse_and_decode(decoder: &EaszDecoder<'_>, bytes: &[u8]) -> Result<(), EaszError> {
    let enc = EaszEncoded::from_bytes(bytes)?;
    decoder.decode(&enc)?;
    Ok(())
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let wire = edge_compress(&JpegLikeCodec::new());
    let model = common::quick_model();
    let decoder = EaszDecoder::new(&model);
    for len in 0..wire.len() {
        let err = parse_and_decode(&decoder, &wire[..len])
            .expect_err(&format!("prefix of {len} bytes must be rejected"));
        assert!(
            matches!(
                err,
                EaszError::Truncated { .. }
                    | EaszError::Malformed(_)
                    | EaszError::MaskChannel(_)
                    | EaszError::Codec(_)
            ),
            "prefix {len}: unexpected error class {err}"
        );
    }
    // And one byte too many is trailing garbage, not silently ignored.
    let mut long = wire.clone();
    long.push(0);
    assert!(matches!(EaszEncoded::from_bytes(&long), Err(EaszError::Malformed(_))));
}

#[test]
fn header_byte_flips_are_typed_errors_never_panics() {
    let wire = edge_compress(&JpegLikeCodec::new());
    let model = common::quick_model();
    let decoder = EaszDecoder::new(&model);
    let mask_len = u32::from_le_bytes(wire[38..42].try_into().expect("4 bytes")) as usize;

    // Offsets 22..38 hold the mask seed and erase ratio: flips there can
    // still form a decodable container (the transmitted mask, not the
    // seed/ratio, drives decoding), so they are exercised for
    // panic-freedom but not required to fail.
    let must_fail = |off: usize| !(22..38).contains(&off);

    for off in 0..HEADER_LEN + mask_len {
        let mut bad = wire.clone();
        bad[off] ^= 0xFF;
        let result = parse_and_decode(&decoder, &bad);
        if must_fail(off) {
            assert!(result.is_err(), "flip at offset {off} must be rejected");
        }
    }

    // Specific classes at the load-bearing boundaries.
    let flip = |off: usize| {
        let mut bad = wire.clone();
        bad[off] ^= 0xFF;
        EaszEncoded::from_bytes(&bad)
    };
    assert!(matches!(flip(0), Err(EaszError::BadMagic)));
    assert!(matches!(flip(4), Err(EaszError::UnsupportedVersion(_))));
    assert!(matches!(flip(6), Err(EaszError::Codec(_))), "quality byte");
    assert!(matches!(flip(7), Err(EaszError::Malformed(_))), "strategy byte");
    assert!(matches!(flip(8), Err(EaszError::Malformed(_))), "flag bits");
    assert!(matches!(flip(9), Err(EaszError::Malformed(_))), "reserved byte");
    assert!(matches!(flip(38), Err(EaszError::Truncated { .. })), "mask length");
    assert!(matches!(flip(42), Err(EaszError::Truncated { .. })), "payload length");

    // A flipped codec id parses (it is just a byte) but cannot resolve.
    let mut bad = wire.clone();
    bad[5] ^= 0xFF;
    let enc = EaszEncoded::from_bytes(&bad).expect("codec id flip still parses");
    assert!(matches!(decoder.decode(&enc), Err(EaszError::UnknownCodec(CodecId(_)))));
}

// ---------------------------------------------------------------------------
// Golden vectors: the exact header bytes each format version must emit.
//
// Captured from the implementation that introduced each version and pinned
// here verbatim; a failure in these tests means the wire format changed,
// which requires a version bump per docs/FORMAT.md §1.5, not a re-pin.
// ---------------------------------------------------------------------------

/// Version-1 header: `EASZ`, grain flag only, reserved byte 9 = 0.
const GOLDEN_V1_HEADER: &str =
    "4541535a01014b0001002000040060000000400000000900000000000000000000000000d03f0c00000040000000";
/// Version-2 header: identical to v1 except the version byte and the
/// quantized opt-in flag bit (0x04).
const GOLDEN_V2_HEADER: &str =
    "4541535a02014b0005002000040060000000400000000900000000000000000000000000d03f0c00000040000000";
/// Version-3 header: identical to v1 except the version byte and byte 9
/// now carrying zoo model id 2.
const GOLDEN_V3_HEADER: &str =
    "4541535a03014b0001022000040060000000400000000900000000000000000000000000d03f0c00000040000000";

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex")).collect()
}

/// A deterministic container whose sections are fixed by construction (not
/// by an inner codec), so the golden header is a pure function of the
/// format version under test.
fn golden_sample(model_id: u8, allow_quantized: bool) -> EaszEncoded {
    let config = EaszConfig { mask_seed: 9, model_id, allow_quantized, ..EaszConfig::default() };
    EaszEncoded {
        payload: (0u8..64).collect(),
        mask_bytes: config.make_mask().to_bytes(),
        width: 96,
        height: 64,
        config,
        quality: Quality::new(75),
        codec_id: easz::codecs::CodecId::JPEG_LIKE,
    }
}

#[test]
fn golden_headers_are_byte_exact_across_format_versions() {
    for (expected_hex, model_id, quant, version) in [
        (GOLDEN_V1_HEADER, 0u8, false, 1u8),
        (GOLDEN_V2_HEADER, 0, true, 2),
        (GOLDEN_V3_HEADER, 2, false, 3),
    ] {
        let enc = golden_sample(model_id, quant);
        let bytes = enc.to_bytes();
        assert_eq!(
            hex(&bytes[..HEADER_LEN]),
            expected_hex,
            "v{version} header drifted from its golden bytes"
        );
        assert_eq!(bytes[4], version, "writer must emit the lowest sufficient version");
        assert_eq!(bytes[9], model_id, "byte 9 carries the model id (0 = reserved encoding)");
        let back = EaszEncoded::from_bytes(&bytes).expect("golden container parses");
        assert_eq!(back, enc, "v{version} golden container must round-trip exactly");
    }
    // The version-3 header differs from version 1 in exactly the version
    // byte and the model-id byte: the zoo is an append-only format change.
    let (v1, v3) = (unhex(GOLDEN_V1_HEADER), unhex(GOLDEN_V3_HEADER));
    let diff: Vec<usize> = (0..v1.len()).filter(|&i| v1[i] != v3[i]).collect();
    assert_eq!(diff, vec![4, 9], "v3 may only touch the version and model-id bytes");
}

#[test]
fn pre_zoo_golden_bytes_still_parse_with_model_id_zero() {
    // Rebuild a pre-zoo container from the pinned v1 header plus its
    // deterministic sections; today's parser must accept it unchanged and
    // default the model id to the generic model.
    let enc = golden_sample(0, false);
    let mut bytes = unhex(GOLDEN_V1_HEADER);
    bytes.extend_from_slice(&enc.mask_bytes);
    bytes.extend_from_slice(&enc.payload);
    let back = EaszEncoded::from_bytes(&bytes).expect("pre-zoo golden bytes parse");
    assert_eq!(back.config.model_id, 0, "old containers route to the generic model");
    assert_eq!(back, enc, "pre-zoo bytes decode to the same container");
}

#[test]
fn model_id_byte_abuse_is_always_a_typed_error() {
    // Versions 1 and 2 must keep rejecting every nonzero value of the
    // (then-reserved) byte 9 — that rejection is what made reassigning the
    // byte in version 3 a compatible change.
    for quant in [false, true] {
        let bytes = golden_sample(0, quant).to_bytes();
        for v in [1u8, 2, 7, 0x80, 0xFF] {
            let mut bad = bytes.clone();
            bad[9] = v;
            match EaszEncoded::from_bytes(&bad) {
                Err(EaszError::Malformed(msg)) => {
                    assert!(msg.contains("reserved"), "v{} byte 9 = {v}: {msg}", bytes[4]);
                }
                other => panic!("v{} byte 9 = {v} must be Malformed, got {other:?}", bytes[4]),
            }
        }
    }
    // Version 3 treats byte 9 as data: any value parses, and an id the
    // serving zoo does not hold fails *decode* with the typed
    // UnknownModel error (never a wrong-model reconstruction).
    let bytes = golden_sample(1, false).to_bytes();
    let model = common::quick_model();
    let decoder = EaszDecoder::new(&model); // serves only the generic id 0
    for v in [1u8, 5, 0xFF] {
        let mut bad = bytes.clone();
        bad[9] = v;
        let enc = EaszEncoded::from_bytes(&bad).expect("v3 model id byte always parses");
        assert_eq!(enc.config.model_id, v);
        match decoder.decode(&enc) {
            Err(EaszError::UnknownModel(id)) => assert_eq!(id, v),
            other => panic!("unserved model id {v} must be UnknownModel, got {other:?}"),
        }
    }
}

#[test]
fn payload_corruption_never_panics() {
    // Flips inside the inner-codec payload are the codec's problem; the
    // contract here is only "typed result, no panic".
    let wire = edge_compress(&JpegLikeCodec::new());
    let model = common::quick_model();
    let decoder = EaszDecoder::new(&model);
    let mask_len = u32::from_le_bytes(wire[38..42].try_into().expect("4 bytes")) as usize;
    let payload_start = HEADER_LEN + mask_len;
    for off in (payload_start..wire.len()).step_by(37) {
        let mut bad = wire.clone();
        bad[off] ^= 0xFF;
        let _ = parse_and_decode(&decoder, &bad);
    }
}

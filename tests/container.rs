//! Wire-format tests for the versioned `.easz` container: exact round
//! trips, the edge/server split over raw bytes, and a corruption sweep
//! asserting that untrusted input always yields a typed [`EaszError`],
//! never a panic.

mod common;

use easz::codecs::{BpgLikeCodec, CodecId, ImageCodec, JpegLikeCodec, Quality};
use easz::core::{
    EaszConfig, EaszDecoder, EaszEncoded, EaszEncoder, EaszError, MaskStrategy, Orientation,
    HEADER_LEN,
};
use easz::data::Dataset;
use easz::metrics::psnr;

fn test_image() -> easz::image::ImageF32 {
    Dataset::KodakLike.image(42).crop(96, 96, 96, 64)
}

/// Runs on the "edge": no `Reconstructor` (nor any model type) is in scope
/// here — the encoder is constructible from a config alone.
fn edge_compress(codec: &dyn ImageCodec) -> Vec<u8> {
    let encoder = EaszEncoder::new(EaszConfig::default()).expect("encoder without a model");
    encoder.compress(&test_image(), codec, Quality::new(75)).expect("compress").to_bytes()
}

#[test]
fn wire_round_trip_uses_only_the_registry() {
    // Edge and server share nothing but the bytes: the server resolves the
    // inner codec from the bitstream header via its registry, and no codec
    // object (or quality, or config) crosses the boundary out of band.
    for codec in [&JpegLikeCodec::new() as &dyn ImageCodec, &BpgLikeCodec::new()] {
        let wire = edge_compress(codec);

        let model = common::quick_model();
        let decoder = EaszDecoder::new(&model);
        let restored = decoder.decode_bytes(&wire).expect("decode from wire");
        let img = test_image();
        assert_eq!((restored.width(), restored.height()), (img.width(), img.height()));
        assert!(psnr(&img, &restored) > 15.0, "{}: wire decode collapsed", codec.name());

        let parsed = EaszEncoded::from_bytes(&wire).expect("parse");
        assert_eq!(parsed.codec_id, codec.id(), "header names the inner codec");
    }
}

#[test]
fn container_round_trip_is_exact() {
    let img = test_image();
    let codec = JpegLikeCodec::new();
    for (strategy, orientation, grain) in [
        (MaskStrategy::Proposed, Orientation::Horizontal, true),
        (MaskStrategy::Random, Orientation::Vertical, false),
        (MaskStrategy::Diagonal, Orientation::Horizontal, false),
    ] {
        let cfg = EaszConfig::builder()
            .strategy(strategy)
            .orientation(orientation)
            .synthesize_grain(grain)
            .mask_seed(9)
            .build()
            .expect("cfg");
        let encoder = EaszEncoder::new(cfg).expect("encoder");
        let enc = encoder.compress(&img, &codec, Quality::new(64)).expect("compress");
        let bytes = enc.to_bytes();
        assert_eq!(bytes.len(), enc.total_bytes());
        let back = EaszEncoded::from_bytes(&bytes).expect("parse");
        assert_eq!(back, enc, "{strategy:?}/{orientation:?} must round-trip exactly");
    }
}

/// Parse, and decode on success; the sweep asserts this whole path returns
/// a `Result` (typed error or success) rather than panicking.
fn parse_and_decode(decoder: &EaszDecoder<'_>, bytes: &[u8]) -> Result<(), EaszError> {
    let enc = EaszEncoded::from_bytes(bytes)?;
    decoder.decode(&enc)?;
    Ok(())
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let wire = edge_compress(&JpegLikeCodec::new());
    let model = common::quick_model();
    let decoder = EaszDecoder::new(&model);
    for len in 0..wire.len() {
        let err = parse_and_decode(&decoder, &wire[..len])
            .expect_err(&format!("prefix of {len} bytes must be rejected"));
        assert!(
            matches!(
                err,
                EaszError::Truncated { .. }
                    | EaszError::Malformed(_)
                    | EaszError::MaskChannel(_)
                    | EaszError::Codec(_)
            ),
            "prefix {len}: unexpected error class {err}"
        );
    }
    // And one byte too many is trailing garbage, not silently ignored.
    let mut long = wire.clone();
    long.push(0);
    assert!(matches!(EaszEncoded::from_bytes(&long), Err(EaszError::Malformed(_))));
}

#[test]
fn header_byte_flips_are_typed_errors_never_panics() {
    let wire = edge_compress(&JpegLikeCodec::new());
    let model = common::quick_model();
    let decoder = EaszDecoder::new(&model);
    let mask_len = u32::from_le_bytes(wire[38..42].try_into().expect("4 bytes")) as usize;

    // Offsets 22..38 hold the mask seed and erase ratio: flips there can
    // still form a decodable container (the transmitted mask, not the
    // seed/ratio, drives decoding), so they are exercised for
    // panic-freedom but not required to fail.
    let must_fail = |off: usize| !(22..38).contains(&off);

    for off in 0..HEADER_LEN + mask_len {
        let mut bad = wire.clone();
        bad[off] ^= 0xFF;
        let result = parse_and_decode(&decoder, &bad);
        if must_fail(off) {
            assert!(result.is_err(), "flip at offset {off} must be rejected");
        }
    }

    // Specific classes at the load-bearing boundaries.
    let flip = |off: usize| {
        let mut bad = wire.clone();
        bad[off] ^= 0xFF;
        EaszEncoded::from_bytes(&bad)
    };
    assert!(matches!(flip(0), Err(EaszError::BadMagic)));
    assert!(matches!(flip(4), Err(EaszError::UnsupportedVersion(_))));
    assert!(matches!(flip(6), Err(EaszError::Codec(_))), "quality byte");
    assert!(matches!(flip(7), Err(EaszError::Malformed(_))), "strategy byte");
    assert!(matches!(flip(8), Err(EaszError::Malformed(_))), "flag bits");
    assert!(matches!(flip(9), Err(EaszError::Malformed(_))), "reserved byte");
    assert!(matches!(flip(38), Err(EaszError::Truncated { .. })), "mask length");
    assert!(matches!(flip(42), Err(EaszError::Truncated { .. })), "payload length");

    // A flipped codec id parses (it is just a byte) but cannot resolve.
    let mut bad = wire.clone();
    bad[5] ^= 0xFF;
    let enc = EaszEncoded::from_bytes(&bad).expect("codec id flip still parses");
    assert!(matches!(decoder.decode(&enc), Err(EaszError::UnknownCodec(CodecId(_)))));
}

#[test]
fn payload_corruption_never_panics() {
    // Flips inside the inner-codec payload are the codec's problem; the
    // contract here is only "typed result, no panic".
    let wire = edge_compress(&JpegLikeCodec::new());
    let model = common::quick_model();
    let decoder = EaszDecoder::new(&model);
    let mask_len = u32::from_le_bytes(wire[38..42].try_into().expect("4 bytes")) as usize;
    let payload_start = HEADER_LEN + mask_len;
    for off in (payload_start..wire.len()).step_by(37) {
        let mut bad = wire.clone();
        bad[off] ^= 0xFF;
        let _ = parse_and_decode(&decoder, &bad);
    }
}

//! Pretrain a reconstructor from scratch on the synthetic CIFAR-like
//! corpus, watch the Eq. 2 loss fall, fine-tune on Kodak-like data
//! (paper Fig. 7d), and save the weights.
//!
//! ```sh
//! cargo run --release --example train_reconstructor [steps]
//! ```

use easz::core::{
    erased_region_mse, MaskKind, Reconstructor, ReconstructorConfig, RowSamplerConfig, TrainConfig,
    Trainer,
};
use easz::data::Dataset;
use easz::tensor::save_params_file;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let steps: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let cfg = ReconstructorConfig::fast();
    let model = Reconstructor::new(cfg);
    println!(
        "model: d={} heads={} ffn={} | {} params | {:.2} MB",
        cfg.d_model,
        cfg.heads,
        cfg.ffn,
        model.params().num_scalars(),
        model.model_bytes() as f64 / (1024.0 * 1024.0)
    );

    let corpus = Dataset::CifarLike.images(48);
    let test: Vec<_> = (100..104).map(|i| Dataset::CifarLike.image(i)).collect();
    let mask = MaskKind::RowConditional(RowSamplerConfig::with_ratio(8, 0.25)).generate(1);

    let before = erased_region_mse(&model, &test, &mask);
    let mut trainer =
        Trainer::new(model, TrainConfig { batch_size: 16, lr: 1e-3, ..Default::default() });
    println!("pretraining {steps} steps on CIFAR-like tiles (erase ratio 0.25, Eq. 2 loss)...");
    let t0 = std::time::Instant::now();
    let losses = trainer.train(&corpus, steps);
    for (i, chunk) in losses.chunks(steps.div_ceil(10).max(1)).enumerate() {
        let avg = chunk.iter().sum::<f32>() / chunk.len() as f32;
        println!("  step {:>5}: loss {:.5}", (i + 1) * chunk.len(), avg);
    }
    println!("pretraining took {:.1} s", t0.elapsed().as_secs_f64());

    println!("fine-tuning 40 steps on Kodak-like crops (Fig. 7d)...");
    let kodak: Vec<_> = (0..6).map(|i| Dataset::KodakLike.image(i).crop(64, 64, 128, 96)).collect();
    let ft = trainer.finetune(&kodak, 40);
    println!(
        "  finetune loss: first {:.5} -> last {:.5}",
        ft.first().copied().unwrap_or(0.0),
        ft.last().copied().unwrap_or(0.0)
    );

    let model = trainer.into_model();
    let after = erased_region_mse(&model, &test, &mask);
    println!("erased-region MSE on held-out tiles: {before:.5} -> {after:.5}");

    let path = "target/easz-examples/reconstructor.bin";
    save_params_file(model.params(), path)?;
    println!("weights saved to {path}");
    Ok(())
}

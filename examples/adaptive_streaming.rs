//! Adaptive compression under a fluctuating uplink — the paper's "agile"
//! story (§I): because the erase ratio is a free knob with *one* model and
//! zero edge-side model switching, an Easz sender can retune its rate every
//! frame, whereas a neural codec would reload a different network
//! (286-11600 ms, Fig. 1) for every level change.
//!
//! This example streams a sequence of frames through a bandwidth trace and
//! picks the smallest erase ratio whose estimated transmit time fits the
//! frame budget.
//!
//! ```sh
//! cargo run --release --example adaptive_streaming
//! ```

use easz::codecs::{JpegLikeCodec, NeuralTier, Quality};
use easz::core::{zoo, EaszConfig, EaszDecoder, EaszEncoder};
use easz::data::Dataset;
use easz::metrics::psnr;
use easz::testbed::{NetworkModel, Testbed, WorkloadProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::pretrained(zoo::PretrainSpec::quick());
    let decoder = EaszDecoder::new(&model);
    let codec = JpegLikeCodec::new();
    let quality = Quality::new(70);
    let frame_budget_s = 0.50;

    // A Wi-Fi link whose effective bandwidth swings (congestion).
    let bandwidths_mbps = [1.6, 1.2, 0.8, 0.5, 0.9, 1.6, 2.4];
    let ratios = [0.125, 0.25, 0.375, 0.5];

    println!(
        "{:<6} {:>10} {:>8} {:>10} {:>10} {:>9}",
        "frame", "bw (Mbps)", "ratio", "bytes", "tx (ms)", "psnr"
    );
    let mut switches = 0usize;
    let mut last_ratio = f64::NAN;
    for (frame, &bw) in bandwidths_mbps.iter().enumerate() {
        let image = Dataset::KodakLike.image(frame).crop(0, 0, 256, 192);
        let net = NetworkModel { bandwidth_bps: bw * 1e6, ..NetworkModel::wifi() };
        // Pick the smallest erase ratio that fits the frame budget.
        let mut chosen = None;
        for &ratio in &ratios {
            let cfg = EaszConfig::builder().erase_ratio(ratio).mask_seed(frame as u64).build()?;
            // The sender retunes its rate by rebuilding the model-free
            // encoder — no weights move, only the mask changes.
            let encoder = EaszEncoder::new(cfg)?;
            let enc = encoder.compress(&image, &codec, quality)?;
            let tx = net.transmit_seconds(enc.total_bytes());
            if tx <= frame_budget_s || ratio == *ratios.last().expect("nonempty") {
                let restored = decoder.decode(&enc)?;
                chosen = Some((ratio, enc.total_bytes(), tx, psnr(&image, &restored)));
                break;
            }
        }
        let (ratio, bytes, tx, q) = chosen.expect("a ratio is always chosen");
        if ratio != last_ratio && frame > 0 {
            switches += 1;
        }
        last_ratio = ratio;
        println!("{frame:<6} {bw:>10.1} {ratio:>8.3} {bytes:>10} {:>10.0} {q:>9.2}", tx * 1e3);
    }

    // What the same agility would cost a neural codec: one model reload per
    // level switch.
    let tb = Testbed::paper();
    let mbt_reload = tb.edge_load_seconds(&WorkloadProfile::neural(NeuralTier::Mbt));
    println!("\n{switches} level switches; Easz switch cost: 0 ms (same model, new mask)");
    println!(
        "equivalent MBT switch cost: {:.0} ms per switch = {:.1} s total",
        mbt_reload * 1e3,
        mbt_reload * switches as f64
    );
    Ok(())
}

//! Reproduces the paper's §III-B complexity analysis table: attention cost
//! of pixel-token transformers vs the two-stage patchify, across
//! resolutions and patch configurations.
//!
//! ```sh
//! cargo run --release --example complexity_analysis
//! ```

use easz::core::{attention_cost_reduction, PatchGeometry};

fn main() {
    println!(
        "{:<12} {:<10} {:>16} {:>16} {:>12}",
        "resolution", "(n, b)", "naive ops", "patchified ops", "reduction"
    );
    for &(w, h) in &[(256usize, 256usize), (512, 768), (1920, 1080), (3840, 2160)] {
        for &(n, b) in &[(32usize, 4usize), (32, 2), (16, 4), (64, 4)] {
            let g = PatchGeometry::new(n, b);
            let (naive, ours, factor) = attention_cost_reduction(w, h, g);
            println!(
                "{:<12} {:<10} {:>16.3e} {:>16.3e} {:>11.0}x",
                format!("{w}x{h}"),
                format!("({n},{b})"),
                naive,
                ours,
                factor
            );
        }
    }
    println!(
        "\npaper's example: 256x256 with (n=32, b=4) -> {} token-pair ops",
        attention_cost_reduction(256, 256, PatchGeometry::new(32, 4)).1
    );
    println!("4K frames would be computationally impossible without the patchify.");
}

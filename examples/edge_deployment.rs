//! Edge-deployment planning with the simulated testbed: where does the
//! time, power and memory go when a Jetson TX2 (or a Raspberry Pi 4)
//! streams camera frames to a server, for Easz vs the neural baselines?
//!
//! Reproduces the reasoning behind the paper's Figs. 1 and 6 with a report
//! you can re-run for your own device/link constants.
//!
//! ```sh
//! cargo run --release --example edge_deployment
//! ```

use easz::codecs::NeuralTier;
use easz::core::ReconstructorConfig;
use easz::testbed::{DeviceModel, NetworkModel, Testbed, WorkloadProfile};

fn main() {
    let pixels = 512 * 768;
    let payload = 20_000; // ~0.4 bpp at 512x768

    for edge in [DeviceModel::jetson_tx2(), DeviceModel::raspberry_pi4()] {
        let tb = Testbed {
            edge: edge.clone(),
            server: DeviceModel::server_2080ti(),
            network: NetworkModel::wifi(),
        };
        println!("=== edge: {} ===", edge.name);
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
            "scheme", "load(ms)", "enc(ms)", "tx(ms)", "total(ms)", "power(W)", "mem(GB)"
        );
        let schemes = [
            WorkloadProfile::jpeg_like(),
            WorkloadProfile::bpg_like(),
            WorkloadProfile::easz(
                &WorkloadProfile::jpeg_like(),
                &ReconstructorConfig::paper(),
                0.25,
            ),
            WorkloadProfile::neural(NeuralTier::BalleHyperprior),
            WorkloadProfile::neural(NeuralTier::Mbt),
            WorkloadProfile::neural(NeuralTier::ChengAnchor),
        ];
        for w in &schemes {
            let lat = tb.run(w, pixels, payload);
            let load = tb.edge_load_seconds(w);
            let power = tb.edge_encode_power(w);
            let mem = tb.edge_encode_memory(w, pixels) as f64 / 1e9;
            println!(
                "{:<16} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>9.2} {:>9.2}",
                w.name,
                load * 1e3,
                (lat.erase_squeeze_s + lat.compression_s) * 1e3,
                lat.transmit_s * 1e3,
                (load + lat.total_s()) * 1e3,
                power.total_w(),
                mem
            );
        }
        println!();
    }
    println!("note: neural encode on the pi4 falls back to CPU — the paper's");
    println!("\"many endpoints are less potent than the TX2\" argument in numbers.");
}

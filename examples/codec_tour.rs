//! A rate-distortion tour of every codec in the repository: JPEG-like,
//! BPG-like, the simulated neural tiers, and each of them enhanced with
//! Easz — the qualitative content of the paper's Table II in one run.
//!
//! Rate targeting: plain rows search the codec's quality knob directly;
//! `+easz` rows go through [`EaszEncoder::compress_to_bpp`], which charges
//! the *total* transmitted bytes (container header + mask side channel +
//! payload) against the original canvas — the accounting the paper uses —
//! so both row families aim at the same target.
//!
//! ```sh
//! cargo run --release --example codec_tour
//! ```

use easz::codecs::{
    encode_to_bpp, BpgLikeCodec, ImageCodec, JpegLikeCodec, NeuralSimCodec, NeuralTier,
};
use easz::core::{zoo, EaszConfig, EaszDecoder, EaszEncoder};
use easz::data::Dataset;
use easz::metrics::{brisque, psnr, ssim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = Dataset::KodakLike.image(3).crop(64, 64, 256, 192);
    let target_bpp = 0.5;
    let model = zoo::pretrained(zoo::PretrainSpec::quick());
    let encoder = EaszEncoder::new(EaszConfig::default())?;
    let decoder = EaszDecoder::new(&model);

    let jpeg = JpegLikeCodec::new();
    let bpg = BpgLikeCodec::new();
    let mbt = NeuralSimCodec::new(NeuralTier::Mbt);
    let cheng = NeuralSimCodec::new(NeuralTier::ChengAnchor);
    let codecs: [&dyn ImageCodec; 4] = [&jpeg, &bpg, &mbt, &cheng];

    println!("target: {target_bpp} bpp on a {}x{} scene", image.width(), image.height());
    println!(
        "{:<22} {:>7} {:>8} {:>8} {:>9} {:>8}",
        "codec", "bpp", "psnr", "ssim", "brisque", "tgt err"
    );
    for codec in codecs {
        // Plain.
        let (_, enc) = encode_to_bpp(codec, &image, target_bpp, image.width(), image.height(), 8)?;
        let dec = codec.decode(&enc.bytes)?;
        println!(
            "{:<22} {:>7.3} {:>8.2} {:>8.4} {:>9.1} {:>7.0}%",
            codec.name(),
            enc.bpp(),
            psnr(&image, &dec),
            ssim(&image, &dec),
            brisque(&dec),
            (enc.bpp() - target_bpp).abs() / target_bpp * 100.0
        );
        // +Easz, rate-targeted on total transmitted bits (header + mask +
        // payload) against the original canvas.
        let (_, enc) = encoder.compress_to_bpp(&image, codec, target_bpp, 8)?;
        let dec = decoder.decode(&enc)?;
        println!(
            "{:<22} {:>7.3} {:>8.2} {:>8.4} {:>9.1} {:>7.0}%",
            format!("{}+easz", codec.name()),
            enc.bpp(),
            psnr(&image, &dec),
            ssim(&image, &dec),
            brisque(&dec),
            (enc.bpp() - target_bpp).abs() / target_bpp * 100.0
        );
    }
    println!("\nlower brisque = fewer visible artefacts; +easz rows should win at equal bpp");
    Ok(())
}

//! A rate-distortion tour of every codec in the repository: JPEG-like,
//! BPG-like, the simulated neural tiers, and each of them enhanced with
//! Easz — the qualitative content of the paper's Table II in one run.
//!
//! ```sh
//! cargo run --release --example codec_tour
//! ```

use easz::codecs::{
    encode_to_bpp, BpgLikeCodec, ImageCodec, JpegLikeCodec, NeuralSimCodec, NeuralTier, Quality,
};
use easz::core::{zoo, EaszConfig, EaszPipeline};
use easz::data::Dataset;
use easz::metrics::{brisque, psnr, ssim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = Dataset::KodakLike.image(3).crop(64, 64, 256, 192);
    let target_bpp = 0.5;
    let model = zoo::pretrained(zoo::PretrainSpec::quick());
    let pipeline = EaszPipeline::new(&model, EaszConfig::default());

    let jpeg = JpegLikeCodec::new();
    let bpg = BpgLikeCodec::new();
    let mbt = NeuralSimCodec::new(NeuralTier::Mbt);
    let cheng = NeuralSimCodec::new(NeuralTier::ChengAnchor);
    let codecs: [&dyn ImageCodec; 4] = [&jpeg, &bpg, &mbt, &cheng];

    println!("target: {target_bpp} bpp on a {}x{} scene", image.width(), image.height());
    println!("{:<22} {:>7} {:>8} {:>8} {:>9}", "codec", "bpp", "psnr", "ssim", "brisque");
    for codec in codecs {
        // Plain.
        let (_, enc) = encode_to_bpp(codec, &image, target_bpp, image.width(), image.height(), 8)?;
        let dec = codec.decode(&enc.bytes)?;
        println!(
            "{:<22} {:>7.3} {:>8.2} {:>8.4} {:>9.1}",
            codec.name(),
            enc.bpp(),
            psnr(&image, &dec),
            ssim(&image, &dec),
            brisque(&dec)
        );
        // +Easz (inner quality chosen to land near the same total rate).
        let mut best: Option<(f64, _)> = None;
        for q in [20u8, 35, 50, 65, 80, 92] {
            let enc = pipeline.compress(&image, codec, Quality::new(q))?;
            let err = (enc.bpp() - target_bpp).abs();
            if best.as_ref().map(|(e, _)| err < *e).unwrap_or(true) {
                best = Some((err, enc));
            }
        }
        let (_, enc) = best.expect("probes ran");
        let dec = pipeline.decompress(&enc, codec)?;
        println!(
            "{:<22} {:>7.3} {:>8.2} {:>8.4} {:>9.1}",
            format!("{}+easz", codec.name()),
            enc.bpp(),
            psnr(&image, &dec),
            ssim(&image, &dec),
            brisque(&dec)
        );
    }
    println!("\nlower brisque = fewer visible artefacts; +easz rows should win at equal bpp");
    Ok(())
}

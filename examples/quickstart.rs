//! Quickstart: compress one image with Easz over JPEG, reconstruct on the
//! "server", and report rate + quality against plain JPEG at the same
//! quality setting.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use easz::codecs::{ImageCodec, JpegLikeCodec, Quality};
use easz::core::{zoo, EaszConfig, EaszDecoder, EaszEncoder};
use easz::data::Dataset;
use easz::image::io::save_pnm;
use easz::metrics::{bits_per_pixel, brisque, psnr, ssim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("loading (or pretraining once) the reconstruction model...");
    let model = zoo::pretrained(zoo::PretrainSpec::quick());
    println!(
        "model ready: {} parameters, {:.2} MB serialized",
        model.params().num_scalars(),
        model.model_bytes() as f64 / (1024.0 * 1024.0)
    );

    let image = Dataset::KodakLike.image(7).crop(64, 64, 384, 256);
    let codec = JpegLikeCodec::new();
    let quality = Quality::new(60);

    // Plain JPEG for reference.
    let jpeg_bytes = codec.encode(&image, quality)?;
    let jpeg_decoded = codec.decode(&jpeg_bytes)?;
    println!(
        "jpeg      : {:.3} bpp | psnr {:.2} dB | ssim {:.4} | brisque {:.1}",
        bits_per_pixel(jpeg_bytes.len(), image.width(), image.height()),
        psnr(&image, &jpeg_decoded),
        ssim(&image, &jpeg_decoded),
        brisque(&jpeg_decoded),
    );

    // Easz + JPEG: erase 25% of sub-patches on the edge (no model in
    // sight), ship the self-describing `.easz` container, reconstruct on
    // the server with the transformer.
    let encoder = EaszEncoder::new(EaszConfig::default())?;
    let wire = encoder.compress(&image, &codec, quality)?.to_bytes();
    let decoder = EaszDecoder::new(&model);
    let encoded = easz::core::EaszEncoded::from_bytes(&wire)?;
    let restored = decoder.decode(&encoded)?;
    println!(
        "jpeg+easz : {:.3} bpp | psnr {:.2} dB | ssim {:.4} | brisque {:.1}",
        encoded.bpp(),
        psnr(&image, &restored),
        ssim(&image, &restored),
        brisque(&restored),
    );
    println!(
        "wire {} B = payload {} B + mask side-channel {} B + container header",
        wire.len(),
        encoded.payload.len(),
        encoded.mask_bytes.len()
    );

    // Save before/after for inspection.
    let out_dir = std::path::Path::new("target/easz-examples");
    save_pnm(&image.to_u8(), out_dir.join("quickstart_original.ppm"))?;
    save_pnm(&restored.to_u8(), out_dir.join("quickstart_easz.ppm"))?;
    println!("wrote {}/quickstart_*.ppm", out_dir.display());
    Ok(())
}

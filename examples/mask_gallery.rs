//! Renders the paper's Fig. 2 mask families as ASCII grids and reports
//! their constraint statistics: the row-based conditional sampler vs the
//! unconstrained random baseline, the diagonal degenerate case and the 2×
//! uniform pattern.
//!
//! ```sh
//! cargo run --release --example mask_gallery
//! ```

use easz::core::{MaskKind, RowSamplerConfig};

fn adjacency_count(mask: &easz::core::EraseMask) -> usize {
    let n = mask.n_grid();
    let mut count = 0;
    for r in 0..n {
        for c in 0..n.saturating_sub(1) {
            if mask.is_erased(r, c) && mask.is_erased(r, c + 1) {
                count += 1;
            }
        }
    }
    for c in 0..n {
        for r in 0..n.saturating_sub(1) {
            if mask.is_erased(r, c) && mask.is_erased(r + 1, c) {
                count += 1;
            }
        }
    }
    count
}

fn main() {
    let n = 8usize;
    let kinds: Vec<(&str, MaskKind)> = vec![
        (
            "proposed (T=2, delta=1, Delta=1)",
            MaskKind::RowConditional(RowSamplerConfig { n_grid: n, t: 2, delta: 1, cap_delta: 1 }),
        ),
        ("random rows (T=2)", MaskKind::RandomRow { n_grid: n, t: 2 }),
        ("diagonal (T=1)", MaskKind::Diagonal { n_grid: n }),
        ("uniform 2x (T=N/2)", MaskKind::Uniform2x { n_grid: n }),
    ];
    for (label, kind) in kinds {
        let mask = kind.generate(7);
        println!("--- {label} ---");
        print!("{mask}");
        println!(
            "erase ratio {:.3} | erased/row {} | orth. adjacencies {} | wire bytes {}\n",
            mask.erase_ratio(),
            mask.erased_per_row(),
            adjacency_count(&mask),
            mask.to_bytes().len()
        );
    }
    println!("the proposed sampler suppresses adjacencies that cause the");
    println!("contiguous information loss of random masks (paper Fig. 2/3).");
}

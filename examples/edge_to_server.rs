//! The paper's deployment story over a real (loopback) socket: model-free
//! edge encoders streaming `.easz` containers to an `easz-server` that
//! batches the transformer reconstruction across streams.
//!
//! ```sh
//! cargo run --release --example edge_to_server
//! ```
//!
//! The wire protocol (framing, error codes, the container itself) is
//! specified in `docs/FORMAT.md`.

use easz::codecs::{BpgLikeCodec, ImageCodec, JpegLikeCodec, Quality};
use easz::core::{zoo, EaszConfig, EaszEncoder};
use easz::data::Dataset;
use easz::metrics::psnr;
use easz::server::{ClientError, EaszClient, EaszServer};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("loading (or pretraining once) the reconstruction model...");
    let model = zoo::pretrained(zoo::PretrainSpec::quick());

    // The server half: normally another machine; here a loopback port.
    let handle = EaszServer::new(model).spawn("127.0.0.1:0")?;
    println!("easz-serve listening on {}", handle.addr());

    let mut client = EaszClient::connect(handle.addr())?;
    println!("server speaks protocol v{}", client.ping()?);

    // The edge half: compress a few frames with different inner codecs —
    // the server resolves each codec from the container header itself.
    let encoder = EaszEncoder::new(EaszConfig::builder().erase_ratio(0.25).build()?)?;
    let jpeg = JpegLikeCodec::new();
    let bpg = BpgLikeCodec::new();
    let frames: Vec<(&dyn ImageCodec, usize)> = vec![(&jpeg, 0), (&bpg, 1), (&jpeg, 2)];
    let mut originals = Vec::new();
    let mut wires: Vec<Vec<u8>> = Vec::new();
    for &(codec, i) in &frames {
        let img = Dataset::KodakLike.image(i).crop(0, 0, 128, 96);
        wires.push(encoder.compress(&img, codec, Quality::new(80))?.to_bytes());
        originals.push(img);
    }

    // One DECODE_BATCH frame: same-mask streams share a transformer
    // forward server-side.
    let batch: Vec<&[u8]> = wires.iter().map(Vec::as_slice).collect();
    let start = Instant::now();
    let results = client.decode_batch(&batch)?;
    let elapsed = start.elapsed();
    println!("\nbatched decode of {} streams in {elapsed:?}:", results.len());
    println!("{:<6} {:>10} {:>10} {:>9}", "frame", "codec", "wire B", "psnr dB");
    for (i, (result, &(codec, _))) in results.iter().zip(&frames).enumerate() {
        let img = result.as_ref().expect("decode").to_f32();
        println!(
            "{:<6} {:>10} {:>10} {:>9.2}",
            i,
            codec.name(),
            wires[i].len(),
            psnr(&originals[i], &img)
        );
    }

    // Single decode round trip for comparison.
    let start = Instant::now();
    let single = client.decode(&wires[0])?;
    println!(
        "\nsingle decode round trip: {:?} ({}x{})",
        start.elapsed(),
        single.width(),
        single.height()
    );

    // Malformed input comes back as a typed error frame, and the
    // connection (and server) stay up.
    match client.decode(&[b'X'; 64]) {
        Err(ClientError::Remote(e)) => println!("garbage stream rejected: {e}"),
        other => panic!("expected a typed error frame, got {other:?}"),
    }
    let again = client.decode(&wires[1])?;
    println!("connection survives: re-decoded frame 1 ({}x{})", again.width(), again.height());

    drop(client);
    handle.shutdown()?;
    println!("server drained and shut down cleanly");
    Ok(())
}

//! The paper's deployment story over a real (loopback) socket: model-free
//! edge encoders streaming `.easz` containers to an `easz-server` that
//! batches the transformer reconstruction across streams — here with the
//! **cross-connection decode gateway** enabled, so concurrent clients with
//! *distinct mask seeds* (the realistic mixed fleet) still share fused
//! transformer forwards.
//!
//! ```sh
//! cargo run --release --example edge_to_server
//! cargo run --release --example edge_to_server -- --reactor
//! ```
//!
//! With `--reactor` the same traffic is served by the epoll reactor front
//! end (one readiness loop instead of one thread per connection) — the
//! replies must be byte-identical either way.
//!
//! Every reply is asserted byte-identical to a local serial decode — CI
//! runs this example as the gateway's end-to-end smoke test (both front
//! ends) and fails on any divergence. The wire protocol (framing, error
//! codes, the container itself) is specified in `docs/FORMAT.md`.

use easz::codecs::{BpgLikeCodec, ImageCodec, JpegLikeCodec, Quality};
use easz::core::{zoo, EaszConfig, EaszDecoder, EaszEncoder};
use easz::data::Dataset;
use easz::metrics::psnr;
use easz::server::{ClientError, EaszClient, EaszServer, GatewayConfig, ReactorConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let use_reactor = std::env::args().skip(1).any(|a| a == "--reactor");
    println!("loading (or pretraining once) the reconstruction model...");
    let model = zoo::pretrained(zoo::PretrainSpec::quick());

    // The server half: normally another machine; here a loopback port.
    // The gateway parks requests from every connection into batching
    // windows (up to 4 requests or 20 ms) decoded by a shared worker pool.
    let gateway =
        GatewayConfig { max_batch: 4, max_wait_us: 20_000, workers: 2, ..Default::default() };
    let mut server = EaszServer::new(model.clone()).with_gateway(gateway);
    if use_reactor {
        server = server.with_reactor(ReactorConfig::default());
    }
    let handle = server.spawn("127.0.0.1:0")?;
    println!(
        "easz-serve listening on {} ({} front end, gateway: window 4 reqs / 20 ms)",
        handle.addr(),
        if use_reactor { "reactor" } else { "threaded" }
    );

    let mut client = EaszClient::connect(handle.addr())?;
    println!("server speaks protocol v{}", client.ping()?);

    // The edge half: a mixed fleet. Every sender rolls its own mask seed
    // and picks its own inner codec — the server resolves the codec from
    // the container header and fuses the distinct-mask streams into one
    // transformer forward (same geometry + erase count is enough).
    let jpeg = JpegLikeCodec::new();
    let bpg = BpgLikeCodec::new();
    let frames: Vec<(&dyn ImageCodec, usize, u64)> =
        vec![(&jpeg, 0, 1), (&bpg, 1, 2), (&jpeg, 2, 3)];
    let mut originals = Vec::new();
    let mut wires: Vec<Vec<u8>> = Vec::new();
    for &(codec, i, seed) in &frames {
        let encoder =
            EaszEncoder::new(EaszConfig::builder().erase_ratio(0.25).mask_seed(seed).build()?)?;
        let img = Dataset::KodakLike.image(i).crop(0, 0, 128, 96);
        wires.push(encoder.compress(&img, codec, Quality::new(80))?.to_bytes());
        originals.push(img);
    }

    // Local serial reference: the gateway must reproduce it bit-for-bit.
    let local = EaszDecoder::new(&model);
    let references: Vec<_> =
        wires.iter().map(|w| local.decode_bytes(w).expect("local decode").to_u8()).collect();

    // Concurrent single-frame clients: cross-connection batching is the
    // gateway's whole point, so each frame travels on its own connection.
    let start = Instant::now();
    let decoded: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = wires
            .iter()
            .map(|wire| {
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut c = EaszClient::connect(addr).expect("connect");
                    c.decode(wire).expect("gateway decode")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = start.elapsed();

    println!("\ngateway decode of {} concurrent mixed-mask streams in {elapsed:?}:", decoded.len());
    println!("{:<6} {:>10} {:>6} {:>10} {:>9}", "frame", "codec", "seed", "wire B", "psnr dB");
    for (i, (img, &(codec, _, seed))) in decoded.iter().zip(&frames).enumerate() {
        assert_eq!(
            img.data(),
            references[i].data(),
            "gateway reply {i} must be byte-identical to the local serial decode"
        );
        println!(
            "{:<6} {:>10} {:>6} {:>10} {:>9.2}",
            i,
            codec.name(),
            seed,
            wires[i].len(),
            psnr(&originals[i], &img.to_f32())
        );
    }
    println!("all gateway replies byte-identical to local serial decode");

    // One DECODE_BATCH frame still works with the gateway on (each entry
    // is parked individually, so it can fuse with other connections too).
    let batch: Vec<&[u8]> = wires.iter().map(Vec::as_slice).collect();
    let results = client.decode_batch(&batch)?;
    for (i, result) in results.iter().enumerate() {
        let img = result.as_ref().expect("batch decode");
        assert_eq!(img.data(), references[i].data(), "batch reply {i} diverges");
    }
    println!("batched decode of {} streams: byte-identical too", results.len());

    // Malformed input comes back as a typed error frame, and the
    // connection (and server) stay up.
    match client.decode(&[b'X'; 64]) {
        Err(ClientError::Remote(e)) => println!("garbage stream rejected: {e}"),
        other => panic!("expected a typed error frame, got {other:?}"),
    }
    let again = client.decode(&wires[1])?;
    println!("connection survives: re-decoded frame 1 ({}x{})", again.width(), again.height());

    // The server's own accounting, over the wire.
    let stats = client.stats()?;
    println!(
        "\nserver stats: {} containers, {} ok / {} errors, {} windows (widths: {:?}), \
         queue peak {}, {} µs decoding",
        stats.decode_requests,
        stats.decode_ok,
        stats.decode_err,
        stats.batches_dispatched,
        stats
            .batch_widths
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("{}x{}", i + 1, c))
            .collect::<Vec<_>>(),
        stats.queue_peak,
        stats.decode_us,
    );

    drop(client);
    handle.shutdown()?;
    println!("server drained and shut down cleanly");
    Ok(())
}

//! Offline stand-in for the `serde` derive surface this workspace uses.
//!
//! Provides the [`Serialize`] / [`Deserialize`] marker traits (with blanket
//! impls) and re-exports the no-op derives from the `serde_derive` shim, so
//! `use serde::{Deserialize, Serialize};` + `#[derive(...)]` compile
//! unchanged. See `crates/shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<'de, T> Deserialize<'de> for T {}

//! Offline stand-in for the parts of [`rand` 0.8](https://docs.rs/rand/0.8)
//! this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool` over
//! integer and float ranges.
//!
//! The generator core is SplitMix64 — deterministic, fast, and good enough
//! for the seeded synthetic-data and mask-sampling call sites in this
//! workspace. It is **not** a statistically rigorous RNG and integer ranges
//! use plain modulo reduction; see `crates/shims/README.md` for the policy.

/// Concrete RNG implementations (only [`rngs::StdRng`] here).
pub mod rngs {
    /// Deterministic SplitMix64 generator, stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Seedable construction, stand-in for `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-whiten the seed so nearby seeds give unrelated streams.
        let mut rng = rngs::StdRng { state: seed ^ 0x517C_C1B7_2722_0A95 };
        rng.next_u64_impl();
        rng
    }
}

/// Types that can be drawn uniformly from the generator's full output range,
/// stand-in for sampling from `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 24 random bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from, stand-in for `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

macro_rules! signed_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_int_range!(i64, i32, i16, i8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: f64 = <f64 as Standard>::sample(rng);
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * u;
                // Float rounding can land exactly on the (exclusive) upper
                // bound after narrowing; nudge back inside.
                (v as $t).clamp(self.start, <$t>::next_down(self.end))
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u: f64 = <f64 as Standard>::sample(rng);
                ((lo as f64 + (hi as f64 - lo as f64) * u) as $t).clamp(lo, hi)
            }
        }
    )*};
}

float_range!(f64, f32);

/// Extension methods on generators, stand-in for `rand::Rng`.
pub trait Rng {
    /// The raw 64-bit output stream.
    fn next_u64(&mut self) -> u64;

    /// Draw a uniform value of type `T` (full range for integers, `[0, 1)`
    /// for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = r.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f32 = r.gen_range(-0.25..0.25f32);
            assert!((-0.25..0.25).contains(&f));
            let g: f32 = r.gen_range(1e-7f32..1.0);
            assert!((1e-7..1.0).contains(&g));
        }
    }

    #[test]
    fn floats_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.4)).count();
        assert!((3_600..=4_400).contains(&hits), "hits {hits}");
    }
}

//! Offline stand-in for the parts of [`criterion`](https://docs.rs/criterion)
//! this workspace uses: [`Criterion`] with the `sample_size` /
//! `measurement_time` / `warm_up_time` builders and `bench_function`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Unlike the serde shim this one is *functional*: it runs a real wall-clock
//! measurement loop (warm-up, then timed samples) and prints
//! `name  time: <mean> ns/iter (<samples> samples)` per benchmark, so
//! `cargo bench` produces usable relative numbers offline. It performs no
//! statistical analysis, HTML reporting, or outlier rejection.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim times setup and routine
/// together per batch but only counts routine executions; the variants only
/// affect batch sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: large batches.
    SmallInput,
    /// Large per-iteration inputs: small batches.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Timing collector handed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// (total elapsed, iterations) recorded by the last `iter*` call.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine` repeatedly: warm up for the configured duration, then
    /// run timed samples until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Aim each sample at measurement_time / sample_size using the
        // warm-up rate as the iterations-per-sample estimate.
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let rate = warm_iters.max(1) as f64 / self.warm_up.as_secs_f64().max(1e-9);
        let iters_per_sample = ((rate * per_sample) as u64).max(1);

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += start.elapsed();
            iters += iters_per_sample;
            if budget.elapsed() > self.measurement * 2 {
                break; // routine much slower than the warm-up estimate
            }
        }
        self.result = Some((total, iters));
    }

    /// Time `routine` on fresh inputs from `setup`; only routine executions
    /// are counted as iterations.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine(setup()));
            warm_iters += 1;
        }
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let rate = warm_iters.max(1) as f64 / self.warm_up.as_secs_f64().max(1e-9);
        let iters_per_sample = ((rate * per_sample) as u64).max(1);

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            total += start.elapsed();
            iters += iters_per_sample;
            if budget.elapsed() > self.measurement * 2 {
                break;
            }
        }
        self.result = Some((total, iters));
    }
}

/// Benchmark driver, stand-in for `criterion::Criterion`.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the total timed-measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Run one named benchmark and print its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((total, iters)) if iters > 0 => {
                let ns = total.as_nanos() as f64 / iters as f64;
                println!("{name:<40} time: {} ({iters} iters)", format_ns(ns));
            }
            _ => println!("{name:<40} time: <no measurement recorded>"),
        }
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:9.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:9.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:9.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:9.3}  s/iter", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions, stand-in for `criterion::criterion_group!`.
/// Supports both the plain `criterion_group!(name, fn, …)` form and the
/// `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups, stand-in for `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_prints() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut acc = 0u64;
        c.bench_function("smoke_iter", |b| b.iter(|| acc = acc.wrapping_add(1)));
        assert!(acc > 0);
        let mut ran = 0u32;
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(|| 3u32, |x| ran += x, BatchSize::SmallInput)
        });
        assert!(ran > 0);
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
    }
}

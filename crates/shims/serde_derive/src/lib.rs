//! Offline no-op stand-in for `serde_derive`.
//!
//! `#[derive(Serialize, Deserialize)]` expands to nothing; the marker traits
//! in the sibling `serde` shim carry blanket impls, so derived types still
//! satisfy any `T: Serialize` bound. Nothing in this workspace performs
//! actual serialization through serde — the derives only mark config structs
//! as wire-ready for a future transport layer.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

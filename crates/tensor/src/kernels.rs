//! Scalar/elementwise kernels shared by the autodiff [`Graph`] and the
//! tape-free [`InferenceSession`] so the two engines are byte-identical by
//! construction: both execute the very same loops in the very same
//! floating-point operation order, only the buffer management differs.
//!
//! [`Graph`]: crate::Graph
//! [`InferenceSession`]: crate::InferenceSession

pub(crate) const SQRT_2_OVER_PI: f32 = 0.797_884_6;
pub(crate) const GELU_COEF: f32 = 0.044_715;

/// Fast `tanh` for the GELU hot path: the classic single-precision rational
/// minimax approximation (odd 13th-degree numerator over even 6th-degree
/// denominator, input clamped where `tanh` saturates in f32), accurate to a
/// couple of ulps.
///
/// Two reasons to prefer this over `f32::tanh`: it is ~5x faster (libm's
/// `tanhf` dominated the feed-forward GELU at transformer-forward sizes),
/// and it is *portable-deterministic* — pure mul/add/div, so every libc and
/// platform produces the same bits, where libm implementations differ.
#[allow(clippy::excessive_precision)] // keep the published coefficients verbatim
pub(crate) fn fast_tanh(x: f32) -> f32 {
    // Beyond ~7.9 tanh is 1.0 to within f32 rounding of this rational.
    let x = x.clamp(-7.905_311, 7.905_311);
    let x2 = x * x;
    let mut p = -2.760_768_5e-16f32;
    p = p * x2 + 2.000_188e-13;
    p = p * x2 + -8.604_672e-11;
    p = p * x2 + 5.122_297e-8;
    p = p * x2 + 1.485_722_4e-5;
    p = p * x2 + 6.372_619_3e-4;
    p = p * x2 + 4.893_524_6e-3;
    let p = p * x;
    let mut q = 1.198_258_4e-6f32;
    q = q * x2 + 1.185_347e-4;
    q = q * x2 + 2.268_434_6e-3;
    q = q * x2 + 4.893_525_2e-3;
    p / q
}

/// Fast `exp` for the softmax hot path: Cephes-style range reduction
/// (`x = n·ln2 + r`, `|r| ≤ ln2/2`) with a 6th-degree polynomial and an
/// exponent-bits reconstruction — accurate to ~1 ulp and, like
/// [`fast_tanh`], portable-deterministic pure arithmetic where libm's
/// `expf` differs across platforms.
#[allow(clippy::excessive_precision)] // keep the published coefficients verbatim
pub(crate) fn fast_exp(x: f32) -> f32 {
    // Below this exp underflows to 0; above it overflows to inf. Softmax
    // feeds max-subtracted inputs (≤ 0), but keep the function total.
    let x = x.clamp(-87.336_54, 88.376_26);
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // Round-to-nearest integer without `round()` (a libm call on baseline
    // x86-64): adding 2^23 forces the fraction bits out, and the result
    // stays exact because |x·log2e| < 2^7.
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
    let n = (x * LOG2E + MAGIC) - MAGIC;
    let r = x - n * LN2_HI - n * LN2_LO;
    let mut p = 1.987_569_2e-4f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_5e-1;
    p = p * r + 5.000_000_1e-1;
    let p = p * r * r + r + 1.0;
    // 2^n via the exponent field (n is integral and within f32 range).
    let bits = (((n as i32) + 127) as u32) << 23;
    p * f32::from_bits(bits)
}

/// GELU forward (tanh approximation), applied per element by both engines.
pub(crate) fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + fast_tanh(SQRT_2_OVER_PI * (x + GELU_COEF * x * x * x)))
}

/// GELU derivative (tape backward pass only; same `tanh` as the forward so
/// training and inference see one consistent activation).
pub(crate) fn gelu_bwd(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_COEF * x * x * x);
    let t = fast_tanh(u);
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_COEF * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Numerically stabilised softmax over contiguous length-`d` chunks,
/// in place.
pub(crate) fn softmax_last_axis(data: &mut [f32], d: usize) {
    for chunk in data.chunks_mut(d) {
        let m = chunk.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0;
        for v in chunk.iter_mut() {
            *v = fast_exp(*v - m);
            sum += *v;
        }
        for v in chunk.iter_mut() {
            *v /= sum;
        }
    }
}

/// Layer norm over contiguous length-`d` chunks with learned gain/bias,
/// in place.
pub(crate) fn layer_norm_last_axis(
    data: &mut [f32],
    d: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) {
    for chunk in data.chunks_mut(d) {
        let mean = chunk.iter().sum::<f32>() / d as f32;
        let var = chunk.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for (j, v) in chunk.iter_mut().enumerate() {
            *v = (*v - mean) * inv * gamma[j] + beta[j];
        }
    }
}

/// `out[r, d] += b[s, d]` with the `s` rhs rows tiled over blocks of the
/// `r` lhs rows (`r % s == 0`), in place on `out`.
pub(crate) fn add_rows_broadcast(out: &mut [f32], b: &[f32], d: usize, s: usize) {
    let r = out.len() / d;
    for i in 0..r {
        let brow = &b[(i % s) * d..(i % s + 1) * d];
        let orow = &mut out[i * d..(i + 1) * d];
        for (o, &x) in orow.iter_mut().zip(brow) {
            *o += x;
        }
    }
}

/// Maximum tensor rank the permute kernel supports (and the stack rank the
/// inference arena assumes). The transformer uses rank 0 through 4.
pub const MAX_RANK: usize = 8;

/// Axis permutation of `src` (row-major, shape `src_shape`) into `out`.
///
/// Odometer-style walk — no per-element div/mod. When the innermost output
/// axis is also the innermost input axis (every head split/merge in the
/// attention layers), whole rows are copied as contiguous blocks. Pure data
/// movement: no floating-point arithmetic, so the result is bit-exact
/// regardless of engine.
///
/// # Panics
///
/// Panics if `axes` is not a permutation of `0..rank`, rank exceeds
/// [`MAX_RANK`], or `out` does not match the element count.
pub(crate) fn permute_into(src: &[f32], src_shape: &[usize], axes: &[usize], out: &mut [f32]) {
    let r = src_shape.len();
    assert_eq!(axes.len(), r, "permute axes length");
    assert!(r <= MAX_RANK, "permute rank {r} exceeds MAX_RANK {MAX_RANK}");
    assert_eq!(src.len(), out.len(), "permute element count");
    let mut seen = [false; MAX_RANK];
    for &a in axes {
        assert!(a < r && !seen[a], "permute axes must be a permutation, got {axes:?}");
        seen[a] = true;
    }
    if out.is_empty() || r == 0 {
        out.copy_from_slice(src);
        return;
    }
    let old_strides = crate::tensor::strides_of_array::<MAX_RANK>(src_shape);
    // Source strides and output shape in output-axis order.
    let mut src_strides = [0usize; MAX_RANK];
    let mut new_shape = [0usize; MAX_RANK];
    for (d, &a) in axes.iter().enumerate() {
        src_strides[d] = old_strides[a];
        new_shape[d] = src_shape[a];
    }
    let block = if src_strides[r - 1] == 1 { new_shape[r - 1] } else { 1 };
    let outer = r - 1;
    let inner = new_shape[r - 1];
    let mut idx = [0usize; MAX_RANK];
    let mut src_off = 0usize;
    let mut written = 0usize;
    while written < out.len() {
        if block > 1 {
            out[written..written + block].copy_from_slice(&src[src_off..src_off + block]);
            written += block;
        } else {
            let stride = src_strides[r - 1];
            let mut s = src_off;
            for slot in &mut out[written..written + inner] {
                *slot = src[s];
                s += stride;
            }
            written += inner;
        }
        // Advance the outer odometer and the source offset with it.
        for d in (0..outer).rev() {
            idx[d] += 1;
            src_off += src_strides[d];
            if idx[d] < new_shape[d] {
                break;
            }
            src_off -= src_strides[d] * new_shape[d];
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_tanh_matches_libm_closely() {
        let mut worst = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            let err = (fast_tanh(x) - x.tanh()).abs();
            worst = worst.max(err);
            x += 1e-3;
        }
        // A couple of f32 ulps across the whole range incl. saturation.
        assert!(worst < 1e-6, "fast_tanh worst abs error {worst}");
        assert_eq!(fast_tanh(0.0), 0.0);
        assert_eq!(fast_tanh(40.0), 1.0);
        assert_eq!(fast_tanh(-40.0), -1.0);
    }

    #[test]
    fn fast_exp_matches_libm_closely() {
        let mut worst_rel = 0.0f32;
        let mut x = -20.0f32;
        while x <= 20.0 {
            let (got, want) = (fast_exp(x), x.exp());
            let rel = ((got - want) / want).abs();
            worst_rel = worst_rel.max(rel);
            x += 1e-3;
        }
        assert!(worst_rel < 4e-7, "fast_exp worst rel error {worst_rel}");
        assert_eq!(fast_exp(0.0), 1.0);
        assert!(fast_exp(-100.0) < 1e-37, "deep negative must underflow to ~0");
        assert!(fast_exp(100.0).is_finite(), "clamped overflow stays finite");
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = vec![1.0f32, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_last_axis(&mut x, 3);
        for chunk in x.chunks(3) {
            let s: f32 = chunk.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn layer_norm_centres_and_scales() {
        let mut x = vec![1.0f32, 2.0, 3.0, 4.0];
        layer_norm_last_axis(&mut x, 4, &[1.0; 4], &[0.0; 4], 1e-5);
        let mean: f32 = x.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn broadcast_add_tiles_rows() {
        let mut out = vec![0.0f32; 6];
        add_rows_broadcast(&mut out, &[1.0, 2.0], 2, 1);
        assert_eq!(out, vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn permute_into_matches_shape_logic() {
        let src: Vec<f32> = (0..24).map(|v| v as f32).collect();
        let mut out = vec![0.0f32; 24];
        permute_into(&src, &[2, 3, 4], &[0, 2, 1], &mut out);
        // Compare against the Tensor-level permute, which shares this kernel
        // but exercises it through the public API.
        let t = crate::Tensor::from_vec(src, &[2, 3, 4]).permuted(&[0, 2, 1]);
        assert_eq!(out, t.data());
    }
}

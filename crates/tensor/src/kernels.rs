//! Scalar/elementwise kernels shared by the autodiff [`Graph`] and the
//! tape-free [`InferenceSession`] so the two engines are byte-identical by
//! construction: both execute the very same loops in the very same
//! floating-point operation order, only the buffer management differs.
//!
//! [`Graph`]: crate::Graph
//! [`InferenceSession`]: crate::InferenceSession

pub(crate) const SQRT_2_OVER_PI: f32 = 0.797_884_6;
pub(crate) const GELU_COEF: f32 = 0.044_715;

/// Fast `tanh` for the GELU hot path: the classic single-precision rational
/// minimax approximation (odd 13th-degree numerator over even 6th-degree
/// denominator, input clamped where `tanh` saturates in f32), accurate to a
/// couple of ulps.
///
/// Two reasons to prefer this over `f32::tanh`: it is ~5x faster (libm's
/// `tanhf` dominated the feed-forward GELU at transformer-forward sizes),
/// and it is *portable-deterministic* — pure mul/add/div, so every libc and
/// platform produces the same bits, where libm implementations differ.
#[allow(clippy::excessive_precision)] // keep the published coefficients verbatim
pub(crate) fn fast_tanh(x: f32) -> f32 {
    // Beyond ~7.9 tanh is 1.0 to within f32 rounding of this rational.
    let x = x.clamp(-7.905_311, 7.905_311);
    let x2 = x * x;
    let mut p = -2.760_768_5e-16f32;
    p = p * x2 + 2.000_188e-13;
    p = p * x2 + -8.604_672e-11;
    p = p * x2 + 5.122_297e-8;
    p = p * x2 + 1.485_722_4e-5;
    p = p * x2 + 6.372_619_3e-4;
    p = p * x2 + 4.893_524_6e-3;
    let p = p * x;
    let mut q = 1.198_258_4e-6f32;
    q = q * x2 + 1.185_347e-4;
    q = q * x2 + 2.268_434_6e-3;
    q = q * x2 + 4.893_525_2e-3;
    p / q
}

/// Fast `exp` for the softmax hot path: Cephes-style range reduction
/// (`x = n·ln2 + r`, `|r| ≤ ln2/2`) with a 6th-degree polynomial and an
/// exponent-bits reconstruction — accurate to ~1 ulp and, like
/// [`fast_tanh`], portable-deterministic pure arithmetic where libm's
/// `expf` differs across platforms.
#[allow(clippy::excessive_precision)] // keep the published coefficients verbatim
pub(crate) fn fast_exp(x: f32) -> f32 {
    // Below this exp underflows to 0; above it overflows to inf. Softmax
    // feeds max-subtracted inputs (≤ 0), but keep the function total.
    let x = x.clamp(-87.336_54, 88.376_26);
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // Round-to-nearest integer without `round()` (a libm call on baseline
    // x86-64): adding 2^23 forces the fraction bits out, and the result
    // stays exact because |x·log2e| < 2^7.
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
    let n = (x * LOG2E + MAGIC) - MAGIC;
    let r = x - n * LN2_HI - n * LN2_LO;
    let mut p = 1.987_569_2e-4f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_5e-1;
    p = p * r + 5.000_000_1e-1;
    let p = p * r * r + r + 1.0;
    // 2^n via the exponent field (n is integral and within f32 range).
    let bits = (((n as i32) + 127) as u32) << 23;
    p * f32::from_bits(bits)
}

/// GELU forward (tanh approximation), applied per element by both engines.
pub(crate) fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + fast_tanh(SQRT_2_OVER_PI * (x + GELU_COEF * x * x * x)))
}

/// GELU derivative (tape backward pass only; same `tanh` as the forward so
/// training and inference see one consistent activation).
pub(crate) fn gelu_bwd(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_COEF * x * x * x);
    let t = fast_tanh(u);
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_COEF * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Numerically stabilised softmax over contiguous length-`d` chunks,
/// in place.
pub(crate) fn softmax_last_axis(data: &mut [f32], d: usize) {
    for chunk in data.chunks_mut(d) {
        let m = chunk.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0;
        for v in chunk.iter_mut() {
            *v = fast_exp(*v - m);
            sum += *v;
        }
        for v in chunk.iter_mut() {
            *v /= sum;
        }
    }
}

/// Layer norm over contiguous length-`d` chunks with learned gain/bias,
/// in place.
pub(crate) fn layer_norm_last_axis(
    data: &mut [f32],
    d: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) {
    for chunk in data.chunks_mut(d) {
        let mean = chunk.iter().sum::<f32>() / d as f32;
        let var = chunk.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for (j, v) in chunk.iter_mut().enumerate() {
            *v = (*v - mean) * inv * gamma[j] + beta[j];
        }
    }
}

/// `out[r, d] += b[s, d]` with the `s` rhs rows tiled over blocks of the
/// `r` lhs rows (`r % s == 0`), in place on `out`.
pub(crate) fn add_rows_broadcast(out: &mut [f32], b: &[f32], d: usize, s: usize) {
    let r = out.len() / d;
    for i in 0..r {
        let brow = &b[(i % s) * d..(i % s + 1) * d];
        let orow = &mut out[i * d..(i + 1) * d];
        for (o, &x) in orow.iter_mut().zip(brow) {
            *o += x;
        }
    }
}

/// IEEE-754 binary32 → binary16 bit conversion with round-to-nearest-even.
///
/// Pure integer arithmetic (no libm, no hardware `f16` dependence), so the
/// quantized tier's activation rounding is portable-deterministic like
/// [`fast_tanh`]/[`fast_exp`]. f32 subnormals (< 2^-126) flush to zero —
/// irrelevant at activation magnitudes.
pub(crate) fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp32 = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp32 == 0xff {
        // Inf stays inf; NaN keeps a quiet payload bit.
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    let exp = exp32 - 127 + 15;
    if exp >= 0x1f {
        return sign | 0x7c00; // overflow → ±inf
    }
    if exp <= 0 {
        if exp < -10 {
            return sign; // rounds to ±0 (includes f32 subnormal inputs)
        }
        // f16 subnormal: shift the full 24-bit mantissa down, ties to even.
        let full = mant | 0x0080_0000;
        let shift = (14 - exp) as u32;
        let bias = (1u32 << (shift - 1)) - 1 + ((full >> shift) & 1);
        return sign | ((full + bias) >> shift) as u16;
    }
    // Normal: drop 13 mantissa bits with ties to even; a mantissa carry
    // propagates into the exponent field arithmetically (incl. → inf).
    let bias = 0x0fff + ((mant >> 13) & 1);
    sign | (((exp as u32) << 10) + ((mant + bias) >> 13)) as u16
}

/// IEEE-754 binary16 → binary32 bit conversion (exact; every f16 value is
/// representable in f32).
pub(crate) fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    if exp == 0 {
        if mant == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: normalise the mantissa into an f32 exponent.
        let p = 31 - mant.leading_zeros();
        let frac = (mant << (10 - p)) & 0x03ff;
        return f32::from_bits(sign | ((103 + p) << 23) | (frac << 13));
    }
    if exp == 0x1f {
        return f32::from_bits(sign | 0x7f80_0000 | (mant << 13));
    }
    f32::from_bits(sign | ((exp + 127 - 15) << 23) | (mant << 13))
}

/// Rounds every element to the nearest f16 value (storing the result back
/// in f32 width) — the quantized tier's "f16-stored activations" contract:
/// activation precision between layers is capped at half precision while
/// buffers stay `f32` so every downstream kernel is shared.
///
/// Dispatches to hardware F16C (`vcvtps2ph`/`vcvtph2ps`, round-to-nearest-
/// even) when available: bit-identical to the software path on every
/// non-NaN input (both are IEEE RNE and both send f32 subnormals to ±0 —
/// they sit far below half the smallest f16 subnormal), and NaN never
/// survives the layer norms that precede every rounded activation. The
/// software path runs one element at a time through the bit converters, so
/// on an f16-rounded layer it would otherwise cost more than the matmul
/// that produced the activations.
pub(crate) fn f16_round_slice(data: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("f16c") {
        // Safety: the `f16c` feature was just verified at runtime.
        unsafe { f16_round_slice_f16c(data) };
        return;
    }
    for v in data {
        *v = f16_bits_to_f32(f32_to_f16_bits(*v));
    }
}

/// Hardware body of [`f16_round_slice`]: eight lanes per round trip.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "f16c")]
unsafe fn f16_round_slice_f16c(data: &mut [f32]) {
    use std::arch::x86_64::*;
    const RNE: i32 = _MM_FROUND_TO_NEAREST_INT;
    let mut chunks = data.chunks_exact_mut(8);
    for c in &mut chunks {
        let h = _mm256_cvtps_ph::<RNE>(_mm256_loadu_ps(c.as_ptr()));
        _mm256_storeu_ps(c.as_mut_ptr(), _mm256_cvtph_ps(h));
    }
    for v in chunks.into_remainder() {
        *v = f16_bits_to_f32(f32_to_f16_bits(*v));
    }
}

/// Per-row symmetric int8 quantization of a `[m, k]` activation matrix into
/// a zero-padded `[m, k_pad]` matrix of sign-extended i16 codes plus one
/// scale per row.
///
/// `scale_i = max_j |a[i,j]| / 127`, `q = round(v / scale)` clamped to
/// ±127, with round-to-nearest-even ties (`f32::round_ties_even` is the
/// IEEE `roundToIntegralTiesToEven` operation — exactly what `vroundps`
/// computes, so the scalar and AVX2 bodies below are bit-identical by
/// construction and the quantization is deterministic everywhere). An
/// all-zero row gets scale 0 and all-zero codes, which dequantizes
/// exactly. Columns `k..k_pad` are written 0 so the packed-pair kernel can
/// treat odd `k` uniformly.
///
/// Codes are int8-valued but stored widened to i16: a consecutive pair is
/// then exactly the 32-bit memory word the AVX2 kernel broadcasts per `k`
/// step (one `vpbroadcastd` instead of two byte loads plus shifts), which
/// is where the int8 path wins or loses its speed. Quantization runs once
/// per Linear over `m·k` elements while the matmul it feeds does `m·k·n`
/// MACs — but at transformer widths (`n` ~ 10²) a scalar `round` per
/// element still costs as much as a row of `madd`s, hence the SIMD body.
pub(crate) fn quantize_rows(a: &[f32], k: usize, k_pad: usize, qa: &mut [i16], scales: &mut [f32]) {
    let m = scales.len();
    debug_assert_eq!(a.len(), m * k, "activation size");
    debug_assert!(qa.len() >= m * k_pad, "quantized buffer size");
    debug_assert!(k_pad >= k && k_pad.is_multiple_of(2), "k_pad must be even and >= k");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // Safety: the `avx2` feature was just verified at runtime.
        unsafe { quantize_rows_avx2(a, k, k_pad, qa, scales) };
        return;
    }
    for i in 0..m {
        let row = &a[i * k..(i + 1) * k];
        let amax = row.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
        let scale = amax / 127.0;
        scales[i] = scale;
        let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
        let q = &mut qa[i * k_pad..(i + 1) * k_pad];
        for (dst, &v) in q.iter_mut().zip(row) {
            *dst = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i16;
        }
        for dst in &mut q[k..] {
            *dst = 0;
        }
    }
}

/// AVX2 body of [`quantize_rows`]: vector abs-max reduction, then
/// 16 codes per iteration (`mul` → `vroundps` → clamp → `cvtps2dq` →
/// saturating pack to i16). Every step is an exact IEEE operation the
/// scalar body also performs, in the same per-element order, so the two
/// bodies agree bit-for-bit — max/min/abs never round, `vroundps` nearest
/// is `round_ties_even`, and the `i32` conversion is exact because the
/// value is already integral in ±127.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_rows_avx2(
    a: &[f32],
    k: usize,
    k_pad: usize,
    qa: &mut [i16],
    scales: &mut [f32],
) {
    use std::arch::x86_64::*;
    const RNE: i32 = _MM_FROUND_TO_NEAREST_INT;
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
    let lo = _mm256_set1_ps(-127.0);
    let hi = _mm256_set1_ps(127.0);
    for (i, scale_slot) in scales.iter_mut().enumerate() {
        let row = &a[i * k..(i + 1) * k];
        // |amax| reduction: 8-lane max, folded horizontally, scalar tail.
        let mut vmax = _mm256_setzero_ps();
        let mut chunks = row.chunks_exact(8);
        for c in &mut chunks {
            vmax = _mm256_max_ps(vmax, _mm256_and_ps(_mm256_loadu_ps(c.as_ptr()), abs_mask));
        }
        let mut lanes = [0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), vmax);
        let mut amax = lanes.iter().fold(0.0f32, |acc, &v| acc.max(v));
        for &v in chunks.remainder() {
            amax = amax.max(v.abs());
        }
        let scale = amax / 127.0;
        *scale_slot = scale;
        let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
        let vinv = _mm256_set1_ps(inv);
        let q = &mut qa[i * k_pad..(i + 1) * k_pad];
        let mut j = 0usize;
        while j + 16 <= k {
            let q0 = _mm256_cvtps_epi32(_mm256_max_ps(
                lo,
                _mm256_min_ps(
                    hi,
                    _mm256_round_ps::<RNE>(_mm256_mul_ps(
                        _mm256_loadu_ps(row.as_ptr().add(j)),
                        vinv,
                    )),
                ),
            ));
            let q1 = _mm256_cvtps_epi32(_mm256_max_ps(
                lo,
                _mm256_min_ps(
                    hi,
                    _mm256_round_ps::<RNE>(_mm256_mul_ps(
                        _mm256_loadu_ps(row.as_ptr().add(j + 8)),
                        vinv,
                    )),
                ),
            ));
            // packs interleaves 128-bit lanes; permute restores order.
            let packed = _mm256_permute4x64_epi64::<0b11_01_10_00>(_mm256_packs_epi32(q0, q1));
            _mm256_storeu_si256(q.as_mut_ptr().add(j).cast(), packed);
            j += 16;
        }
        for (dst, &v) in q[j..k].iter_mut().zip(&row[j..]) {
            *dst = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i16;
        }
        for dst in &mut q[k..] {
            *dst = 0;
        }
    }
}

/// Output-column block width of the int8 kernel: 8 columns is exactly one
/// 256-bit `madd` accumulator, and the scalar path uses the same block so
/// both produce identical i32 sums (integer addition is associative — the
/// two paths are bit-identical by construction, unlike a float reorder).
const QCOL_BLOCK: usize = 8;

/// `C[m,n] = dequant(QA[m,k_pad] · QW[k_pad,n])`: int8×int8 widening
/// multiply-accumulate in i32, dequantized as
/// `((acc as f32) * a_scale_i) * w_scale_j`.
///
/// `packed` is the weight matrix pre-packed by
/// [`pack_weight_pairs`]: k-pair interleaved i16
/// (`packed[(kp * n + j) * 2 + t]` holds `qw[2*kp + t, j]`), which is the
/// exact operand layout of AVX2 `madd` — and the scalar path walks the same
/// array, so there is one packing, two ISAs, one result.
///
/// Accumulation is exact: `k_pad ≤ 2^16` keeps `Σ |127·127|` far below
/// `i32::MAX`, so no saturation path exists.
pub(crate) fn qmatmul_rows(
    qa: &[i16],
    a_scales: &[f32],
    packed: &[i16],
    w_scales: &[f32],
    out: &mut [f32],
    k_pad: usize,
    n: usize,
) {
    debug_assert!(k_pad.is_multiple_of(2), "k_pad must be even");
    debug_assert!(qa.len() >= a_scales.len() * k_pad, "qa size");
    debug_assert_eq!(packed.len(), k_pad * n, "packed weight size");
    debug_assert_eq!(w_scales.len(), n, "weight scale count");
    debug_assert_eq!(out.len(), a_scales.len() * n, "output size");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // Safety: the `avx2` feature was just verified at runtime.
        unsafe { qmatmul_rows_avx2(qa, a_scales, packed, w_scales, out, k_pad, n) };
        return;
    }
    qmatmul_rows_generic(qa, a_scales, packed, w_scales, out, k_pad, n);
}

/// AVX2 body: broadcast one activation pair per `k` step — a single
/// `vpbroadcastd` straight from the i16 activation row — and `madd` it
/// against four blocks of 8 packed weight columns at once (4 independent
/// i32 accumulators, 64 exact MACs per broadcast), so the per-`k`
/// broadcast cost is amortised across 32 output columns. Narrower
/// remainders fall to a one-block loop, then the scalar tail. Every path
/// produces the same i32 sums (integer addition is associative), so the
/// unroll factor cannot change results.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qmatmul_rows_avx2(
    qa: &[i16],
    a_scales: &[f32],
    packed: &[i16],
    w_scales: &[f32],
    out: &mut [f32],
    k_pad: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    const UNROLL: usize = 4;
    let pairs = k_pad / 2;
    let n32 = n - n % (UNROLL * QCOL_BLOCK);
    let n8 = n - n % QCOL_BLOCK;
    for (i, &a_scale) in a_scales.iter().enumerate() {
        let qrow = &qa[i * k_pad..(i + 1) * k_pad];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut j = 0usize;
        while j < n32 {
            let mut acc = [_mm256_setzero_si256(); UNROLL];
            for kp in 0..pairs {
                // Safety: 2*kp + 2 <= k_pad == qrow.len(); a consecutive
                // i16 pair is read as one (unaligned) 32-bit word.
                let av = _mm256_set1_epi32(std::ptr::read_unaligned(
                    qrow.as_ptr().add(2 * kp).cast::<i32>(),
                ));
                let base = (kp * n + j) * 2;
                for (u, slot) in acc.iter_mut().enumerate() {
                    // Safety: base + 2*QCOL_BLOCK*(u+1) <= (kp*n + n)*2
                    // <= k_pad*n == packed.len() because j + 32 <= n.
                    let bv =
                        _mm256_loadu_si256(packed.as_ptr().add(base + 2 * QCOL_BLOCK * u).cast());
                    *slot = _mm256_add_epi32(*slot, _mm256_madd_epi16(av, bv));
                }
            }
            let av_scale = _mm256_set1_ps(a_scale);
            for (u, slot) in acc.iter().enumerate() {
                let at = j + QCOL_BLOCK * u;
                // `vcvtdq2ps` rounds to nearest-even exactly like Rust's
                // `i32 as f32`, and the multiply order matches the scalar
                // `(v as f32) * a_scale * w_scales[j]` — bit-identical.
                let f = _mm256_mul_ps(_mm256_cvtepi32_ps(*slot), av_scale);
                let ws = _mm256_loadu_ps(w_scales.as_ptr().add(at));
                _mm256_storeu_ps(orow.as_mut_ptr().add(at), _mm256_mul_ps(f, ws));
            }
            j += UNROLL * QCOL_BLOCK;
        }
        while j < n8 {
            let mut acc = _mm256_setzero_si256();
            for kp in 0..pairs {
                let av = _mm256_set1_epi32(std::ptr::read_unaligned(
                    qrow.as_ptr().add(2 * kp).cast::<i32>(),
                ));
                // Safety: (kp*n + j)*2 + 16 <= k_pad*n == packed.len()
                // because j + 8 <= n.
                let bv = _mm256_loadu_si256(packed.as_ptr().add((kp * n + j) * 2).cast());
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
            }
            let f = _mm256_mul_ps(_mm256_cvtepi32_ps(acc), _mm256_set1_ps(a_scale));
            let ws = _mm256_loadu_ps(w_scales.as_ptr().add(j));
            _mm256_storeu_ps(orow.as_mut_ptr().add(j), _mm256_mul_ps(f, ws));
            j += QCOL_BLOCK;
        }
        qcols_remainder(qrow, a_scale, packed, w_scales, orow, n, j);
    }
}

/// Portable body over the same packed operand; identical i32 sums to the
/// AVX2 path (see [`qmatmul_rows`]).
fn qmatmul_rows_generic(
    qa: &[i16],
    a_scales: &[f32],
    packed: &[i16],
    w_scales: &[f32],
    out: &mut [f32],
    k_pad: usize,
    n: usize,
) {
    let pairs = k_pad / 2;
    for (i, &a_scale) in a_scales.iter().enumerate() {
        let qrow = &qa[i * k_pad..(i + 1) * k_pad];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut j = 0usize;
        while j + QCOL_BLOCK <= n {
            let mut acc = [0i32; QCOL_BLOCK];
            for kp in 0..pairs {
                let a0 = qrow[2 * kp] as i32;
                let a1 = qrow[2 * kp + 1] as i32;
                let base = (kp * n + j) * 2;
                let brow = &packed[base..base + 2 * QCOL_BLOCK];
                for (l, slot) in acc.iter_mut().enumerate() {
                    *slot += a0 * brow[2 * l] as i32 + a1 * brow[2 * l + 1] as i32;
                }
            }
            for (l, &v) in acc.iter().enumerate() {
                orow[j + l] = (v as f32) * a_scale * w_scales[j + l];
            }
            j += QCOL_BLOCK;
        }
        qcols_remainder(qrow, a_scale, packed, w_scales, orow, n, j);
    }
}

/// Scalar tail for output columns past the last full [`QCOL_BLOCK`].
fn qcols_remainder(
    qrow: &[i16],
    a_scale: f32,
    packed: &[i16],
    w_scales: &[f32],
    orow: &mut [f32],
    n: usize,
    mut j: usize,
) {
    let pairs = qrow.len() / 2;
    while j < n {
        let mut acc = 0i32;
        for kp in 0..pairs {
            let base = (kp * n + j) * 2;
            acc += qrow[2 * kp] as i32 * packed[base] as i32
                + qrow[2 * kp + 1] as i32 * packed[base + 1] as i32;
        }
        orow[j] = (acc as f32) * a_scale * w_scales[j];
        j += 1;
    }
}

/// Packs an already-quantized `[k, n]` int8 weight matrix into the
/// k-pair-interleaved, sign-extended i16 layout [`qmatmul_rows`] consumes:
/// `packed[(kp * n + j) * 2 + t] = qw[2*kp + t, j]`, with an implicit zero
/// row appended when `k` is odd.
pub(crate) fn pack_weight_pairs(qw: &[i8], k: usize, n: usize) -> Vec<i16> {
    debug_assert_eq!(qw.len(), k * n, "quantized weight size");
    let k_pad = k + k % 2;
    let mut packed = vec![0i16; k_pad * n];
    for kk in 0..k {
        let (kp, t) = (kk / 2, kk % 2);
        for j in 0..n {
            packed[(kp * n + j) * 2 + t] = qw[kk * n + j] as i16;
        }
    }
    packed
}

/// Maximum tensor rank the permute kernel supports (and the stack rank the
/// inference arena assumes). The transformer uses rank 0 through 4.
pub const MAX_RANK: usize = 8;

/// Axis permutation of `src` (row-major, shape `src_shape`) into `out`.
///
/// Odometer-style walk — no per-element div/mod. When the innermost output
/// axis is also the innermost input axis (every head split/merge in the
/// attention layers), whole rows are copied as contiguous blocks. Pure data
/// movement: no floating-point arithmetic, so the result is bit-exact
/// regardless of engine.
///
/// # Panics
///
/// Panics if `axes` is not a permutation of `0..rank`, rank exceeds
/// [`MAX_RANK`], or `out` does not match the element count.
pub(crate) fn permute_into(src: &[f32], src_shape: &[usize], axes: &[usize], out: &mut [f32]) {
    let r = src_shape.len();
    assert_eq!(axes.len(), r, "permute axes length");
    assert!(r <= MAX_RANK, "permute rank {r} exceeds MAX_RANK {MAX_RANK}");
    assert_eq!(src.len(), out.len(), "permute element count");
    let mut seen = [false; MAX_RANK];
    for &a in axes {
        assert!(a < r && !seen[a], "permute axes must be a permutation, got {axes:?}");
        seen[a] = true;
    }
    if out.is_empty() || r == 0 {
        out.copy_from_slice(src);
        return;
    }
    let old_strides = crate::tensor::strides_of_array::<MAX_RANK>(src_shape);
    // Source strides and output shape in output-axis order.
    let mut src_strides = [0usize; MAX_RANK];
    let mut new_shape = [0usize; MAX_RANK];
    for (d, &a) in axes.iter().enumerate() {
        src_strides[d] = old_strides[a];
        new_shape[d] = src_shape[a];
    }
    let block = if src_strides[r - 1] == 1 { new_shape[r - 1] } else { 1 };
    let outer = r - 1;
    let inner = new_shape[r - 1];
    let mut idx = [0usize; MAX_RANK];
    let mut src_off = 0usize;
    let mut written = 0usize;
    while written < out.len() {
        if block > 1 {
            out[written..written + block].copy_from_slice(&src[src_off..src_off + block]);
            written += block;
        } else {
            let stride = src_strides[r - 1];
            let mut s = src_off;
            for slot in &mut out[written..written + inner] {
                *slot = src[s];
                s += stride;
            }
            written += inner;
        }
        // Advance the outer odometer and the source offset with it.
        for d in (0..outer).rev() {
            idx[d] += 1;
            src_off += src_strides[d];
            if idx[d] < new_shape[d] {
                break;
            }
            src_off -= src_strides[d] * new_shape[d];
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_tanh_matches_libm_closely() {
        let mut worst = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            let err = (fast_tanh(x) - x.tanh()).abs();
            worst = worst.max(err);
            x += 1e-3;
        }
        // A couple of f32 ulps across the whole range incl. saturation.
        assert!(worst < 1e-6, "fast_tanh worst abs error {worst}");
        assert_eq!(fast_tanh(0.0), 0.0);
        assert_eq!(fast_tanh(40.0), 1.0);
        assert_eq!(fast_tanh(-40.0), -1.0);
    }

    #[test]
    fn fast_exp_matches_libm_closely() {
        let mut worst_rel = 0.0f32;
        let mut x = -20.0f32;
        while x <= 20.0 {
            let (got, want) = (fast_exp(x), x.exp());
            let rel = ((got - want) / want).abs();
            worst_rel = worst_rel.max(rel);
            x += 1e-3;
        }
        assert!(worst_rel < 4e-7, "fast_exp worst rel error {worst_rel}");
        assert_eq!(fast_exp(0.0), 1.0);
        assert!(fast_exp(-100.0) < 1e-37, "deep negative must underflow to ~0");
        assert!(fast_exp(100.0).is_finite(), "clamped overflow stays finite");
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = vec![1.0f32, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_last_axis(&mut x, 3);
        for chunk in x.chunks(3) {
            let s: f32 = chunk.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn layer_norm_centres_and_scales() {
        let mut x = vec![1.0f32, 2.0, 3.0, 4.0];
        layer_norm_last_axis(&mut x, 4, &[1.0; 4], &[0.0; 4], 1e-5);
        let mean: f32 = x.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn broadcast_add_tiles_rows() {
        let mut out = vec![0.0f32; 6];
        add_rows_broadcast(&mut out, &[1.0, 2.0], 2, 1);
        assert_eq!(out, vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn f16_round_trip_is_exact_and_rne() {
        // Exactly representable values survive unchanged.
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 65504.0, -65504.0, 2.0f32.powi(-24)] {
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(v)).to_bits(), v.to_bits(), "{v}");
        }
        // Ties round to even: 1 + 2^-11 is exactly between 1.0 and the next
        // f16 (1 + 2^-10); even mantissa wins → 1.0.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1.0 + 2f32.powi(-11))), 1.0);
        // 1 + 3·2^-11 ties between 1+2^-10 and 1+2^-9 → the even 1+2^-9.
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(1.0 + 3.0 * 2f32.powi(-11))),
            1.0 + 2.0 * 2f32.powi(-10)
        );
        // Overflow saturates to inf, specials survive.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e9)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Subnormal f16 range round-trips through the normalisation path.
        let tiny = 3.0 * 2f32.powi(-24);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(tiny)), tiny);
        // Everything in the normal range lands within half an f16 ulp.
        let mut x = -8.0f32;
        while x <= 8.0 {
            let r = f16_bits_to_f32(f32_to_f16_bits(x));
            let ulp = 2f32.powi((x.abs().max(2f32.powi(-24)).log2().floor() as i32 - 10).max(-24));
            assert!((r - x).abs() <= ulp * 0.5 + 1e-12, "f16({x}) = {r}");
            x += 1e-2;
        }
    }

    #[test]
    fn f16_round_hardware_path_matches_software_bits() {
        // Sweep every finite f16 payload (exactly representable values must
        // survive both paths unchanged) plus a dense random-ish grid of f32
        // inputs that exercise rounding, overflow and subnormal flushing.
        let mut inputs = Vec::new();
        for h in 0..=u16::MAX {
            let v = f16_bits_to_f32(h);
            if v.is_finite() {
                inputs.push(v);
            }
        }
        let mut state = 0x2545_f491u32;
        for _ in 0..100_000 {
            // xorshift over the full f32 bit space, NaN/inf filtered.
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            let v = f32::from_bits(state);
            if v.is_finite() {
                inputs.push(v);
            }
        }
        inputs.extend([0.0, -0.0, 65519.9, -65520.1, 1e-40, -1e-40, 2f32.powi(-25)]);
        let mut hw = inputs.clone();
        f16_round_slice(&mut hw); // dispatches to F16C when present
        for (&x, &h) in inputs.iter().zip(&hw) {
            let sw = f16_bits_to_f32(f32_to_f16_bits(x));
            assert_eq!(h.to_bits(), sw.to_bits(), "f16_round({x:e}): hw {h:e} vs sw {sw:e}");
        }
    }

    #[test]
    fn quantize_rows_simd_matches_scalar_reference() {
        // Dispatched quantize_rows (AVX2 on x86) against a from-scratch
        // scalar transcription of the spec, across sizes hitting the
        // 16-wide main loop, the scalar tail, and the odd-k zero pad.
        let mut state = 0x9e37_79b9u32;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            (state as f32 / u32::MAX as f32) * 4.0 - 2.0
        };
        for (m, k) in [(1usize, 1usize), (3, 16), (2, 17), (5, 37), (4, 96), (1, 130)] {
            let k_pad = k + k % 2;
            let a: Vec<f32> = (0..m * k).map(|_| rnd()).collect();
            let mut qa = vec![0i16; m * k_pad];
            let mut scales = vec![0f32; m];
            quantize_rows(&a, k, k_pad, &mut qa, &mut scales);
            for i in 0..m {
                let row = &a[i * k..(i + 1) * k];
                let amax = row.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
                let scale = amax / 127.0;
                assert_eq!(scales[i].to_bits(), scale.to_bits(), "scale row {i} (m={m},k={k})");
                let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
                for (j, &v) in row.iter().enumerate() {
                    let want = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i16;
                    assert_eq!(qa[i * k_pad + j], want, "code ({i},{j}) (m={m},k={k})");
                }
                for j in k..k_pad {
                    assert_eq!(qa[i * k_pad + j], 0, "pad ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn quantize_rows_round_trips_within_half_step() {
        let a = [0.5f32, -1.0, 0.25, 0.0, 0.0, 0.0]; // second row all-zero
        let (k, k_pad) = (3usize, 4usize);
        let mut qa = [0i16; 8];
        let mut scales = [0f32; 2];
        quantize_rows(&a, k, k_pad, &mut qa, &mut scales);
        assert_eq!(qa[1], -127, "amax element maps to -127");
        assert_eq!(qa[3], 0, "padding column is zero");
        assert_eq!(scales[1], 0.0, "all-zero row gets scale 0");
        assert_eq!(&qa[4..], &[0i16; 4], "all-zero row quantizes to zeros");
        for (j, &v) in a[..k].iter().enumerate() {
            let deq = qa[j] as f32 * scales[0];
            assert!((deq - v).abs() <= scales[0] * 0.5 + 1e-7, "col {j}: {deq} vs {v}");
        }
    }

    #[test]
    fn qmatmul_matches_dequantized_reference_on_both_paths() {
        // Odd k exercises the pair padding; n = 43 exercises one full
        // 32-wide unrolled block, one 8-wide block, and the scalar
        // column remainder.
        let (m, k, n) = (5usize, 7usize, 43usize);
        let k_pad = k + k % 2;
        let mut s = 0x1234_5678u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
        let a: Vec<f32> = (0..m * k).map(|_| rnd()).collect();
        let w: Vec<f32> = (0..k * n).map(|_| rnd()).collect();
        // Quantize weights per column, activations per row.
        let mut qw = vec![0i8; k * n];
        let mut w_scales = vec![0f32; n];
        for j in 0..n {
            let wmax = (0..k).fold(0.0f32, |acc, i| acc.max(w[i * n + j].abs()));
            let scale = wmax / 127.0;
            w_scales[j] = scale;
            let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
            for i in 0..k {
                qw[i * n + j] = (w[i * n + j] * inv).round().clamp(-127.0, 127.0) as i8;
            }
        }
        let packed = pack_weight_pairs(&qw, k, n);
        let mut qa = vec![0i16; m * k_pad];
        let mut a_scales = vec![0f32; m];
        quantize_rows(&a, k, k_pad, &mut qa, &mut a_scales);

        let mut got = vec![0f32; m * n];
        qmatmul_rows(&qa, &a_scales, &packed, &w_scales, &mut got, k_pad, n);
        // Reference: exact integer dot products dequantized in f64.
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for kk in 0..k {
                    acc += qa[i * k_pad + kk] as i64 * qw[kk * n + j] as i64;
                }
                let want = acc as f64 * a_scales[i] as f64 * w_scales[j] as f64;
                let err = (got[i * n + j] as f64 - want).abs();
                assert!(err < 1e-4, "({i},{j}): {} vs {want}", got[i * n + j]);
            }
        }
        // The generic path must agree bit-for-bit with whatever the
        // dispatcher picked (i32 sums are associative; dequant order fixed).
        let mut generic = vec![0f32; m * n];
        qmatmul_rows_generic(&qa, &a_scales, &packed, &w_scales, &mut generic, k_pad, n);
        let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        let sb: Vec<u32> = generic.iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, sb, "AVX2 and scalar int8 kernels must be bit-identical");
    }

    #[test]
    fn permute_into_matches_shape_logic() {
        let src: Vec<f32> = (0..24).map(|v| v as f32).collect();
        let mut out = vec![0.0f32; 24];
        permute_into(&src, &[2, 3, 4], &[0, 2, 1], &mut out);
        // Compare against the Tensor-level permute, which shares this kernel
        // but exercises it through the public API.
        let t = crate::Tensor::from_vec(src, &[2, 3, 4]).permuted(&[0, 2, 1]);
        assert_eq!(out, t.data());
    }
}

//! Process-wide allocator tuning for tape workloads.
//!
//! Every forward/backward pass materialises a tape of multi-hundred-KB
//! tensors (tens of MB for batched inference) and frees them all when the
//! [`Graph`](crate::Graph) drops. glibc's malloc serves blocks of this size
//! via `mmap` (or trims them off the heap top on free), so *every* pass
//! re-faults its whole tape: measured on the batched-decode path, a
//! 36-patch forward took ~18k minor faults and ran ~1.6x slower than
//! linear scaling predicts.
//!
//! The classic serving fix is to tell malloc to retain and reuse large
//! blocks: raise `M_MMAP_THRESHOLD` and `M_TRIM_THRESHOLD` once per
//! process. [`tune_for_tapes`] does exactly that on glibc Linux (and
//! nothing elsewhere — the symbol is glibc's), guarded by a [`Once`];
//! [`Graph::new`](crate::Graph::new) calls it, so any workload that builds
//! tapes is covered automatically.
//!
//! The trade-off is retained RSS up to the high-water tape size (hundreds
//! of MB for deep decode batches), which is the right default for a decode
//! server or training run. Set `EASZ_NO_MALLOC_TUNING=1` to opt out.

use std::sync::Once;

#[cfg(all(target_os = "linux", target_env = "gnu"))]
extern "C" {
    /// glibc's malloc tuning hook (`man mallopt`).
    fn mallopt(param: core::ffi::c_int, value: core::ffi::c_int) -> core::ffi::c_int;
}

/// `mallopt` parameter names (glibc `malloc.h`).
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const M_TRIM_THRESHOLD: core::ffi::c_int = -1;
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const M_MMAP_THRESHOLD: core::ffi::c_int = -3;

/// Bytes below which blocks stay on the (reused) heap, and above which a
/// free heap top is returned to the kernel. Comfortably above any single
/// tape tensor so passes recycle memory instead of re-faulting it.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const RETAIN_BYTES: core::ffi::c_int = 256 << 20;

/// Tunes malloc (once per process) to retain tape-sized allocations.
///
/// Safe to call from any thread, any number of times. No-op outside
/// glibc Linux or when `EASZ_NO_MALLOC_TUNING` is set.
pub fn tune_for_tapes() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if std::env::var_os("EASZ_NO_MALLOC_TUNING").is_some() {
            return;
        }
        #[cfg(all(target_os = "linux", target_env = "gnu"))]
        // SAFETY: `mallopt` is thread-safe per POSIX/glibc and only adjusts
        // allocator heuristics; both parameters accept arbitrary sizes.
        unsafe {
            mallopt(M_MMAP_THRESHOLD, RETAIN_BYTES);
            mallopt(M_TRIM_THRESHOLD, RETAIN_BYTES);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_is_idempotent_and_harmless() {
        tune_for_tapes();
        tune_for_tapes();
        // Allocation still works after tuning.
        let v = vec![1u8; 1 << 20];
        assert_eq!(v.len(), 1 << 20);
    }
}

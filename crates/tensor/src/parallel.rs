//! Thread-parallel matmul kernels.
//!
//! The Easz reconstruction model trains on CPU, so the matrix products that
//! dominate its forward/backward passes are split across a **persistent
//! worker pool** once they are large enough to amortise the dispatch cost.
//! Small products run single-threaded.
//!
//! The pool (the private `pool` module) replaces the per-call `std::thread::scope`
//! spawn/join this module used previously: at transformer-forward sizes the
//! spawn cost rivalled the arithmetic, to the point that a single thread
//! beat eight. Workers park on a condvar between jobs, so an idle pool
//! costs nothing. Work partitioning is row-block based and every output
//! element is accumulated by exactly one worker in the same `k` order as
//! the serial kernel, so results are bit-identical to serial execution for
//! any worker count.

/// Work threshold (in multiply-accumulate ops) below which a product stays
/// single-threaded.
const PAR_THRESHOLD: usize = 1 << 17;

/// Default cap on matmul worker threads; override with the
/// `EASZ_MATMUL_THREADS` environment variable (read once per process).
const DEFAULT_WORKER_CAP: usize = 8;

fn worker_cap() -> usize {
    static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("EASZ_MATMUL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_WORKER_CAP)
    })
}

fn worker_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get().min(worker_cap())).unwrap_or(1)
}

/// `C[m,n] = A[m,k] * B[k,n]`, parallelised across row blocks of `A`/`C`.
pub fn par_matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let workers = worker_count();
    if m * n * k < PAR_THRESHOLD || workers <= 1 || m < 2 {
        matmul_rows(a, b, c, 0, m, k, n);
        return;
    }
    let chunk = m.div_ceil(workers);
    let n_chunks = m.div_ceil(chunk);
    let c_base = SendPtr(c.as_mut_ptr());
    pool::run(n_chunks, &move |ci| {
        let c_base = c_base; // capture the Sync wrapper, not the raw field
        let row0 = ci * chunk;
        let rows = chunk.min(m - row0);
        // Safety: chunks index disjoint row ranges of `c`, and `pool::run`
        // does not return until every task has finished.
        let c_block = unsafe { std::slice::from_raw_parts_mut(c_base.0.add(row0 * n), rows * n) };
        matmul_rows(&a[row0 * k..(row0 + rows) * k], b, c_block, 0, rows, k, n);
    });
}

/// Int8 twin of [`par_matmul`]: `C[m,n] = dequant(QA[m,k_pad] · QW)`,
/// parallelised across row blocks of `QA`/`C`.
///
/// Each output row is produced by exactly one worker from exact i32
/// accumulation, so the result is bit-identical for any worker count and
/// any row partition — the quantized tier keeps the determinism contract
/// of the f32 kernels.
#[allow(clippy::too_many_arguments)] // mirrors the kernel signature; a struct would obscure the hot path
pub fn par_qmatmul(
    qa: &[i16],
    a_scales: &[f32],
    packed: &[i16],
    w_scales: &[f32],
    c: &mut [f32],
    m: usize,
    k_pad: usize,
    n: usize,
) {
    debug_assert_eq!(qa.len(), m * k_pad);
    debug_assert_eq!(a_scales.len(), m);
    debug_assert_eq!(packed.len(), k_pad * n);
    debug_assert_eq!(c.len(), m * n);
    let workers = worker_count();
    if m * n * k_pad < PAR_THRESHOLD || workers <= 1 || m < 2 {
        crate::kernels::qmatmul_rows(qa, a_scales, packed, w_scales, c, k_pad, n);
        return;
    }
    let chunk = m.div_ceil(workers);
    let n_chunks = m.div_ceil(chunk);
    let c_base = SendPtr(c.as_mut_ptr());
    pool::run(n_chunks, &move |ci| {
        let c_base = c_base; // capture the Sync wrapper, not the raw field
        let row0 = ci * chunk;
        let rows = chunk.min(m - row0);
        // Safety: chunks index disjoint row ranges of `c`, and `pool::run`
        // does not return until every task has finished.
        let c_block = unsafe { std::slice::from_raw_parts_mut(c_base.0.add(row0 * n), rows * n) };
        crate::kernels::qmatmul_rows(
            &qa[row0 * k_pad..(row0 + rows) * k_pad],
            &a_scales[row0..row0 + rows],
            packed,
            w_scales,
            c_block,
            k_pad,
            n,
        );
    });
}

/// Runs `f(0..n_tasks)` across the persistent worker pool, blocking until
/// every task has completed — the general-purpose face of the pool the
/// matmul kernels dispatch through. Data-parallel training shards batches
/// over it so the backward pass shares the same threads as the forward
/// kernels instead of spawning its own.
///
/// Scheduling notes, none of which may affect results (callers must keep
/// tasks independent and deterministic per index):
///
/// - Which thread runs which task is unspecified; tasks may all run on the
///   calling thread (pool busy, single-core host, or `n_tasks == 1`).
/// - A single task runs inline *without* claiming the pool's dispatch slot,
///   so nested `par_matmul` calls inside it keep their own parallelism.
/// - With multiple tasks the dispatch slot is held for the duration, so
///   nested pool calls (e.g. a large matmul inside a task) fall back to
///   inline execution — bit-identical either way.
///
/// # Panics
///
/// Propagates a panic if any task panics (the pool itself stays usable).
pub fn run_tasks(n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if n_tasks <= 1 {
        if n_tasks == 1 {
            f(0);
        }
        return;
    }
    pool::run(n_tasks, f);
}

/// Raw mutable base pointer that may cross thread boundaries; the row-block
/// partition guarantees disjoint access.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Output-column block width of the register-tiled kernel: 16 lanes is two
/// SSE2 (or one AVX-512) accumulator rows and well within x86-64's 16 XMM
/// registers.
const COL_BLOCK: usize = 16;

/// Sequential kernel over a row range of the output: dispatches to an AVX2
/// compilation of the register-tiled loop when the CPU has it, else the
/// baseline build. Same source body either way — and since each output
/// element is an independent scalar chain (ascending-`k` mul-then-add from
/// `0.0`, never fused), vector width cannot change results: every ISA
/// produces the same bits.
fn matmul_rows(a: &[f32], b: &[f32], c: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // Safety: the `avx2` feature was just verified at runtime.
        unsafe { matmul_rows_avx2(a, b, c, row0, rows, k, n) };
        return;
    }
    matmul_rows_generic(a, b, c, row0, rows, k, n);
}

/// The register-tiled body recompiled with AVX2 enabled (the `inline`
/// generic body vectorizes to 256-bit lanes here). No FMA: fused rounding
/// would diverge from machines without it, separate mul+add is exactly
/// rounded everywhere.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_rows_avx2(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    matmul_rows_generic(a, b, c, row0, rows, k, n);
}

/// Register-tiled `ikj` kernel: each length-[`COL_BLOCK`] slice of an
/// output row accumulates in locals across the whole `k` loop, instead of
/// re-loading and re-storing `c` on every `k` step like the previous plain
/// `ikj` loop.
///
/// Every output element still starts at `0.0` and accumulates `a[i,k] *
/// b[k,j]` in ascending-`k` order, so results are bit-identical to the
/// untiled kernel. No zero-skip on `av`: dense activations almost never
/// contain exact zeros and the branch pessimizes the inner loop (measured
/// on the criterion kernels bench).
#[inline(always)]
fn matmul_rows_generic(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    for i in row0..row0 + rows {
        let crow = &mut c[(i - row0) * n..(i - row0 + 1) * n];
        let arow = &a[(i - row0) * k..(i - row0 + 1) * k];
        let mut j0 = 0usize;
        // Full blocks: fixed-size accumulators so the block stays in
        // registers across the whole k loop.
        while j0 + COL_BLOCK <= n {
            let mut acc = [0.0f32; COL_BLOCK];
            for (kk, &av) in arow.iter().enumerate() {
                let brow: &[f32; COL_BLOCK] =
                    b[kk * n + j0..kk * n + j0 + COL_BLOCK].try_into().expect("block width");
                for (cv, &bv) in acc.iter_mut().zip(brow.iter()) {
                    *cv += av * bv;
                }
            }
            crow[j0..j0 + COL_BLOCK].copy_from_slice(&acc);
            j0 += COL_BLOCK;
        }
        // Remainder columns (n not a multiple of the block width).
        if j0 < n {
            let jb = n - j0;
            let mut acc = [0.0f32; COL_BLOCK];
            for (kk, &av) in arow.iter().enumerate() {
                let brow = &b[kk * n + j0..kk * n + j0 + jb];
                for (cv, &bv) in acc[..jb].iter_mut().zip(brow.iter()) {
                    *cv += av * bv;
                }
            }
            crow[j0..j0 + jb].copy_from_slice(&acc[..jb]);
        }
    }
}

/// Batched `C[g,m,n] = A[g,m,k] * B[g,k,n]`, parallelised across the batch.
pub fn par_batch_matmul(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    g: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), g * m * k);
    debug_assert_eq!(b.len(), g * k * n);
    debug_assert_eq!(c.len(), g * m * n);
    let workers = worker_count();
    if g * m * n * k < PAR_THRESHOLD || workers <= 1 || g < 2 {
        for bi in 0..g {
            matmul_rows(
                &a[bi * m * k..(bi + 1) * m * k],
                &b[bi * k * n..(bi + 1) * k * n],
                &mut c[bi * m * n..(bi + 1) * m * n],
                0,
                m,
                k,
                n,
            );
        }
        return;
    }
    let per = g.div_ceil(workers);
    let n_chunks = g.div_ceil(per);
    let c_base = SendPtr(c.as_mut_ptr());
    pool::run(n_chunks, &move |ci| {
        let c_base = c_base; // capture the Sync wrapper, not the raw field
        let g0 = ci * per;
        let batches = per.min(g - g0);
        for bi in 0..batches {
            // Safety: disjoint `c` slices per batch index; `pool::run`
            // blocks until all tasks finish.
            let c_block =
                unsafe { std::slice::from_raw_parts_mut(c_base.0.add((g0 + bi) * m * n), m * n) };
            matmul_rows(
                &a[(g0 + bi) * m * k..(g0 + bi + 1) * m * k],
                &b[(g0 + bi) * k * n..(g0 + bi + 1) * k * n],
                c_block,
                0,
                m,
                k,
                n,
            );
        }
    });
}

/// The persistent matmul worker pool.
///
/// `run(n_tasks, f)` executes `f(0..n_tasks)` across `worker_count() - 1`
/// long-lived worker threads plus the calling thread, and returns only when
/// every task has completed — the same blocking contract as the
/// `std::thread::scope` it replaces, without the per-call thread spawns.
/// When another thread is already dispatching (concurrent decodes on a
/// shared server), the caller simply runs its tasks inline: under real
/// concurrency, per-call parallelism has nothing left to win.
mod pool {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, OnceLock};

    /// Type-erased task closure (`fn(task_index)`), valid for the duration
    /// of one `run` call.
    #[derive(Clone, Copy)]
    struct Job {
        f: *const (dyn Fn(usize) + Sync),
        n_tasks: usize,
    }
    unsafe impl Send for Job {}

    #[derive(Default)]
    struct Slot {
        generation: u64,
        job: Option<Job>,
    }

    struct Shared {
        slot: Mutex<Slot>,
        wake: Condvar,
        /// Next unclaimed task index of the current job.
        next: AtomicUsize,
        /// Completed tasks of the current job (panicked tasks count too, so
        /// the dispatcher can never wedge waiting on a dead task).
        done: AtomicUsize,
        /// Workers currently holding a reference to the current job.
        active: AtomicUsize,
        /// Set when any task of the current job panicked.
        poisoned: AtomicBool,
    }

    struct Pool {
        shared: &'static Shared,
        /// Serialises dispatchers; contenders fall back to inline execution.
        dispatch: Mutex<()>,
    }

    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let shared: &'static Shared = Box::leak(Box::new(Shared {
                slot: Mutex::new(Slot::default()),
                wake: Condvar::new(),
                next: AtomicUsize::new(0),
                done: AtomicUsize::new(0),
                active: AtomicUsize::new(0),
                poisoned: AtomicBool::new(false),
            }));
            // The dispatcher participates too, so spawn cap - 1 workers.
            for i in 0..super::worker_count().saturating_sub(1) {
                let _ = std::thread::Builder::new()
                    .name(format!("easz-matmul-{i}"))
                    .spawn(move || worker_loop(shared));
            }
            Pool { shared, dispatch: Mutex::new(()) }
        })
    }

    fn worker_loop(shared: &'static Shared) {
        let mut seen = 0u64;
        loop {
            // Park until a job with a new generation is installed. `active`
            // is incremented under the slot lock, so a dispatcher that has
            // observed `active == 0` knows no worker still holds the
            // previous job pointer.
            let job = {
                let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if slot.generation != seen {
                        if let Some(job) = slot.job {
                            seen = slot.generation;
                            shared.active.fetch_add(1, Ordering::AcqRel);
                            break job;
                        }
                    }
                    slot = shared.wake.wait(slot).unwrap_or_else(|e| e.into_inner());
                }
            };
            // Safety: the dispatcher blocks in `run` until `done == n_tasks`
            // and quiesces on `active == 0` before installing the next job
            // (even when unwinding, via `JobGuard`), so `job.f` outlives
            // every dereference here.
            let f = unsafe { &*job.f };
            loop {
                let i = shared.next.fetch_add(1, Ordering::Relaxed);
                if i >= job.n_tasks {
                    break;
                }
                // Catch task panics so a failed task can neither kill the
                // worker (wedging every later `run`) nor leave `done` short
                // (wedging the current one); the dispatcher re-raises.
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).is_err() {
                    shared.poisoned.store(true, Ordering::Release);
                }
                shared.done.fetch_add(1, Ordering::Release);
            }
            shared.active.fetch_sub(1, Ordering::Release);
        }
    }

    /// Cleans up the current job even if the dispatcher unwinds: stops new
    /// claims, waits for in-flight workers (whose tasks borrow the
    /// dispatcher's stack) to finish, and clears the job slot so no parked
    /// worker can later adopt a dangling closure pointer.
    struct JobGuard {
        shared: &'static Shared,
    }

    impl Drop for JobGuard {
        fn drop(&mut self) {
            self.shared.next.store(usize::MAX / 2, Ordering::Relaxed);
            let mut spins = 0u32;
            while self.shared.active.load(Ordering::Acquire) != 0 {
                backoff(&mut spins);
            }
            let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            slot.job = None;
        }
    }

    /// Runs `f(0..n_tasks)`, blocking until all tasks complete.
    pub(super) fn run(n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        let pool = global();
        // One dispatcher at a time; concurrent callers execute inline.
        let Ok(_dispatch) = pool.dispatch.try_lock() else {
            for i in 0..n_tasks {
                f(i);
            }
            return;
        };
        let shared = pool.shared;
        // Quiesce: no worker may still reference the previous job when the
        // claim counters reset.
        let mut spins = 0u32;
        while shared.active.load(Ordering::Acquire) != 0 {
            backoff(&mut spins);
        }
        // Safety: `run` does not return until `done == n_tasks`, so
        // extending the closure lifetime for the pool is sound.
        let f_static: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const _)
        };
        {
            let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            shared.next.store(0, Ordering::Relaxed);
            shared.done.store(0, Ordering::Relaxed);
            shared.poisoned.store(false, Ordering::Relaxed);
            slot.generation = slot.generation.wrapping_add(1);
            slot.job = Some(Job { f: f_static, n_tasks });
        }
        let guard = JobGuard { shared };
        shared.wake.notify_all();
        // The dispatcher claims tasks alongside the workers. A panic out of
        // its own `f(i)` unwinds through `guard`, which blocks until every
        // worker is out of the job before the borrowed closure dies.
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= n_tasks {
                break;
            }
            f(i);
            shared.done.fetch_add(1, Ordering::Release);
        }
        // Tasks are sub-millisecond; spin (with escalating yields) rather
        // than paying a condvar round-trip on every job.
        let mut spins = 0u32;
        while shared.done.load(Ordering::Acquire) != n_tasks {
            backoff(&mut spins);
        }
        drop(guard);
        assert!(
            !shared.poisoned.load(Ordering::Acquire),
            "a matmul pool task panicked; see worker thread output"
        );
    }

    fn backoff(spins: &mut u32) {
        *spins += 1;
        if *spins > 64 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn parallel_matches_naive_large() {
        // Big enough to trigger the parallel path.
        let (m, k, n) = (96, 64, 96);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 31 + 7) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 17 + 3) % 11) as f32 - 5.0).collect();
        let mut c = vec![0.0f32; m * n];
        par_matmul(&a, &b, &mut c, m, k, n);
        let expect = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn run_tasks_covers_every_index_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for n in [0usize, 1, 2, 7, 64] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            run_tasks(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "every task index must run exactly once for n={n}"
            );
        }
    }

    #[test]
    fn parallel_batch_matches_naive() {
        let (g, m, k, n) = (16, 24, 16, 24);
        let a: Vec<f32> = (0..g * m * k).map(|i| ((i * 7 + 1) % 9) as f32 * 0.5).collect();
        let b: Vec<f32> = (0..g * k * n).map(|i| ((i * 5 + 2) % 7) as f32 * 0.25).collect();
        let mut c = vec![0.0f32; g * m * n];
        par_batch_matmul(&a, &b, &mut c, g, m, k, n);
        for bi in 0..g {
            let expect =
                naive(&a[bi * m * k..(bi + 1) * m * k], &b[bi * k * n..(bi + 1) * k * n], m, k, n);
            for (x, y) in c[bi * m * n..(bi + 1) * m * n].iter().zip(expect.iter()) {
                assert!((x - y).abs() < 1e-3);
            }
        }
    }
}

//! Thread-parallel matmul kernels.
//!
//! The Easz reconstruction model trains on CPU, so the matrix products that
//! dominate its forward/backward passes are split across a scoped thread pool
//! (via `std::thread::scope`) once they are large enough to amortise
//! the spawn cost. Small products run single-threaded.

/// Work threshold (in multiply-accumulate ops) below which a product stays
/// single-threaded.
const PAR_THRESHOLD: usize = 1 << 17;

fn worker_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1)
}

/// `C[m,n] = A[m,k] * B[k,n]`, parallelised across row blocks of `A`/`C`.
pub fn par_matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let workers = worker_count();
    if m * n * k < PAR_THRESHOLD || workers <= 1 || m < 2 {
        matmul_rows(a, b, c, 0, m, k, n);
        return;
    }
    let chunk = m.div_ceil(workers);
    std::thread::scope(|s| {
        let mut rest = &mut c[..];
        let mut row0 = 0usize;
        while row0 < m {
            let rows = chunk.min(m - row0);
            let (head, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let a_block = &a[row0 * k..(row0 + rows) * k];
            s.spawn(move || matmul_rows(a_block, b, head, 0, rows, k, n));
            row0 += rows;
        }
    });
}

/// Sequential `ikj` kernel over a row range of the output.
fn matmul_rows(a: &[f32], b: &[f32], c: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    for i in row0..row0 + rows {
        let crow = &mut c[(i - row0) * n..(i - row0 + 1) * n];
        crow.fill(0.0);
        let arow = &a[(i - row0) * k..(i - row0 + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..kk * n + n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// Batched `C[g,m,n] = A[g,m,k] * B[g,k,n]`, parallelised across the batch.
pub fn par_batch_matmul(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    g: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), g * m * k);
    debug_assert_eq!(b.len(), g * k * n);
    debug_assert_eq!(c.len(), g * m * n);
    let workers = worker_count();
    if g * m * n * k < PAR_THRESHOLD || workers <= 1 || g < 2 {
        for bi in 0..g {
            matmul_rows(
                &a[bi * m * k..(bi + 1) * m * k],
                &b[bi * k * n..(bi + 1) * k * n],
                &mut c[bi * m * n..(bi + 1) * m * n],
                0,
                m,
                k,
                n,
            );
        }
        return;
    }
    let per = g.div_ceil(workers);
    std::thread::scope(|s| {
        let mut rest = &mut c[..];
        let mut g0 = 0usize;
        while g0 < g {
            let batches = per.min(g - g0);
            let (head, tail) = rest.split_at_mut(batches * m * n);
            rest = tail;
            let a0 = g0;
            s.spawn(move || {
                for bi in 0..batches {
                    matmul_rows(
                        &a[(a0 + bi) * m * k..(a0 + bi + 1) * m * k],
                        &b[(a0 + bi) * k * n..(a0 + bi + 1) * k * n],
                        &mut head[bi * m * n..(bi + 1) * m * n],
                        0,
                        m,
                        k,
                        n,
                    );
                }
            });
            g0 += batches;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn parallel_matches_naive_large() {
        // Big enough to trigger the parallel path.
        let (m, k, n) = (96, 64, 96);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 31 + 7) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 17 + 3) % 11) as f32 - 5.0).collect();
        let mut c = vec![0.0f32; m * n];
        par_matmul(&a, &b, &mut c, m, k, n);
        let expect = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn parallel_batch_matches_naive() {
        let (g, m, k, n) = (16, 24, 16, 24);
        let a: Vec<f32> = (0..g * m * k).map(|i| ((i * 7 + 1) % 9) as f32 * 0.5).collect();
        let b: Vec<f32> = (0..g * k * n).map(|i| ((i * 5 + 2) % 7) as f32 * 0.25).collect();
        let mut c = vec![0.0f32; g * m * n];
        par_batch_matmul(&a, &b, &mut c, g, m, k, n);
        for bi in 0..g {
            let expect =
                naive(&a[bi * m * k..(bi + 1) * m * k], &b[bi * k * n..(bi + 1) * k * n], m, k, n);
            for (x, y) in c[bi * m * n..(bi + 1) * m * n].iter().zip(expect.iter()) {
                assert!((x - y).abs() < 1e-3);
            }
        }
    }
}

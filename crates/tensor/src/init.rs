//! Weight initialisation helpers (seeded, reproducible).

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for weight initialisation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform Xavier/Glorot initialisation for a `[fan_in, fan_out]` matrix.
pub fn xavier_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data: Vec<f32> = (0..fan_in * fan_out).map(|_| rng.gen_range(-limit..limit)).collect();
    Tensor::from_vec(data, &[fan_in, fan_out])
}

/// Truncated-normal-ish initialisation (clamped at 2 sigma) for embeddings.
pub fn normal_trunc(rng: &mut StdRng, shape: &[usize], std: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n)
        .map(|_| {
            // Box-Muller transform; clamp to +/- 2 sigma.
            let u1: f32 = rng.gen_range(1e-7f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            (z * std).clamp(-2.0 * std, 2.0 * std)
        })
        .collect();
    Tensor::from_vec(data, shape)
}

/// Uniform values in `[lo, hi)`.
pub fn uniform(rng: &mut StdRng, shape: &[usize], lo: f32, hi: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_seeded_and_bounded() {
        let a = xavier_uniform(&mut rng(42), 16, 32);
        let b = xavier_uniform(&mut rng(42), 16, 32);
        assert_eq!(a, b, "same seed must reproduce identical weights");
        let limit = (6.0 / 48.0f32).sqrt();
        assert!(a.data().iter().all(|&x| x >= -limit && x < limit));
    }

    #[test]
    fn normal_trunc_is_clamped() {
        let t = normal_trunc(&mut rng(7), &[1024], 0.02);
        assert!(t.max_abs() <= 0.04 + 1e-6);
        // Should not collapse to a constant.
        assert!(t.sq_norm() > 0.0);
    }

    #[test]
    fn uniform_range() {
        let t = uniform(&mut rng(3), &[128], -1.0, 1.0);
        assert!(t.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }
}

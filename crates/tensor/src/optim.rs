//! Optimisers. The paper trains with AdamW (lr 2.8e-4, weight decay 0.05).

use crate::graph::Gradients;
use crate::params::{ParamId, ParamSet};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Configuration for [`AdamW`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamWConfig {
    /// Learning rate (paper: 2.8e-4).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// Decoupled weight decay (paper: 0.05).
    pub weight_decay: f32,
    /// Optional global-norm gradient clip (disabled when `None`).
    pub grad_clip: Option<f32>,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        Self {
            lr: 2.8e-4,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.05,
            grad_clip: Some(1.0),
        }
    }
}

/// Decoupled-weight-decay Adam.
///
/// ```
/// use easz_tensor::{AdamW, AdamWConfig, Graph, ParamSet, Tensor};
/// let mut params = ParamSet::new();
/// let w = params.add("w", Tensor::full(&[1], 4.0));
/// let mut opt = AdamW::new(AdamWConfig { lr: 0.1, ..Default::default() });
/// for _ in 0..200 {
///     let mut g = Graph::new(&params);
///     let wv = g.param(w);
///     // loss = mean(w^2): minimised at w = 0.
///     let sq = g.mul(wv, wv);
///     let loss = g.mean_all(sq);
///     let grads = g.backward(loss);
///     opt.step(&mut params, &grads);
/// }
/// assert!(params.value(w).data()[0].abs() < 0.5);
/// ```
#[derive(Debug)]
pub struct AdamW {
    cfg: AdamWConfig,
    step: u64,
    m: HashMap<ParamId, Tensor>,
    v: HashMap<ParamId, Tensor>,
}

impl AdamW {
    /// Creates an optimiser with the given configuration.
    pub fn new(cfg: AdamWConfig) -> Self {
        Self { cfg, step: 0, m: HashMap::new(), v: HashMap::new() }
    }

    /// Current configuration.
    pub fn config(&self) -> &AdamWConfig {
        &self.cfg
    }

    /// Overrides the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// The first/second moment estimates for `id`, if the parameter has
    /// received at least one update.
    ///
    /// Exposed so determinism harnesses can compare the *full* optimiser
    /// state bit-for-bit — two training runs that merely end on equal
    /// params can still diverge later if their moments differ.
    pub fn moments(&self, id: ParamId) -> Option<(&Tensor, &Tensor)> {
        Some((self.m.get(&id)?, self.v.get(&id)?))
    }

    /// Applies one update from `grads` to `params`.
    pub fn step(&mut self, params: &mut ParamSet, grads: &Gradients) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.cfg.beta1.powf(t);
        let bc2 = 1.0 - self.cfg.beta2.powf(t);
        let clip_scale = match self.cfg.grad_clip {
            Some(max) => {
                let norm = grads.global_norm();
                if norm > max && norm > 0.0 {
                    max / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        for (id, grad) in grads.iter() {
            let m = self.m.entry(id).or_insert_with(|| Tensor::zeros(grad.shape()));
            let v = self.v.entry(id).or_insert_with(|| Tensor::zeros(grad.shape()));
            let w = params.value_mut(id);
            let (b1, b2) = (self.cfg.beta1, self.cfg.beta2);
            for i in 0..grad.numel() {
                let g = grad.data()[i] * clip_scale;
                let mi = b1 * m.data()[i] + (1.0 - b1) * g;
                let vi = b2 * v.data()[i] + (1.0 - b2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                let wd = self.cfg.weight_decay * w.data()[i];
                w.data_mut()[i] -= self.cfg.lr * (mhat / (vhat.sqrt() + self.cfg.eps) + wd);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn adamw_minimises_quadratic() {
        let mut p = ParamSet::new();
        let w = p.add("w", Tensor::from_vec(vec![3.0, -2.0], &[2]));
        let mut opt = AdamW::new(AdamWConfig { lr: 0.05, weight_decay: 0.0, ..Default::default() });
        let mut last = f32::INFINITY;
        for it in 0..300 {
            let mut g = Graph::new(&p);
            let wv = g.param(w);
            let sq = g.mul(wv, wv);
            let loss = g.mean_all(sq);
            let lv = g.value(loss).item();
            if it % 100 == 99 {
                assert!(lv < last, "loss should decrease: {lv} vs {last}");
                last = lv;
            }
            let grads = g.backward(loss);
            opt.step(&mut p, &grads);
        }
        assert!(p.value(w).max_abs() < 0.2, "converged value {:?}", p.value(w));
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn weight_decay_shrinks_unused_directions() {
        // With zero gradient signal and nonzero decay, weights shrink.
        let mut p = ParamSet::new();
        let w = p.add("w", Tensor::full(&[4], 1.0));
        let mut opt = AdamW::new(AdamWConfig {
            lr: 0.1,
            weight_decay: 0.5,
            grad_clip: None,
            ..Default::default()
        });
        for _ in 0..50 {
            let mut g = Graph::new(&p);
            let wv = g.param(w);
            let loss = g.mean_all(wv); // constant gradient 0.25
            let grads = g.backward(loss);
            opt.step(&mut p, &grads);
        }
        assert!(p.value(w).data()[0] < 0.5);
    }

    #[test]
    fn grad_clip_bounds_update() {
        let mut p = ParamSet::new();
        let w = p.add("w", Tensor::full(&[1], 0.0));
        let mut opt = AdamW::new(AdamWConfig {
            lr: 1.0,
            weight_decay: 0.0,
            grad_clip: Some(0.001),
            ..Default::default()
        });
        let mut g = Graph::new(&p);
        let wv = g.param(w);
        let big = g.scale(wv, 1e6);
        let loss = g.mean_all(big);
        let grads = g.backward(loss);
        opt.step(&mut p, &grads);
        // Despite the huge gradient, Adam normalisation + clip keeps the
        // single step bounded by ~lr.
        assert!(p.value(w).max_abs() <= 1.1);
    }
}

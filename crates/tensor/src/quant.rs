//! Int8 weight quantization for the fast-decode inference tier.
//!
//! The f32 engines are the *bit-exact reference*; this module is the lossy
//! but bounded speed tier: every `Linear` weight matrix is quantized once
//! (per-output-column symmetric int8) and pre-packed into the
//! k-pair-interleaved i16 layout the widening multiply-accumulate kernel
//! consumes ([`crate::kernels`]). At decode time activations are quantized
//! per row on the fly, the product accumulates exactly in i32, and the
//! result is dequantized in a fixed multiply order — so the quantized tier
//! is itself *deterministic*: same bytes on every ISA, worker count and
//! batch composition, even though it is not bit-equal to the f32 tier.
//!
//! Quality is governed by a numeric contract (per-pixel ε, ≥40 dB PSNR
//! against the reference decode) enforced by the workspace divergence
//! suite, mirroring how the bit-identity suite pins the f32 engines.

use crate::kernels;
use crate::params::{ParamId, ParamSet};
use crate::tensor::Tensor;

/// One `[k, n]` weight matrix quantized per output column and pre-packed
/// for the int8 kernel.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    /// Sign-extended i16 codes in k-pair-interleaved order:
    /// `packed[(kp * n + j) * 2 + t]` holds column `j`, row `2*kp + t`
    /// (zero row appended for odd `k`).
    packed: Vec<i16>,
    /// Per-output-column dequantization scales (`max_i |w[i,j]| / 127`).
    scales: Vec<f32>,
    /// Logical inner dimension (rows of the original matrix).
    k: usize,
    /// Padded inner dimension the kernel iterates (`k` rounded up to even).
    k_pad: usize,
    /// Output dimension (columns).
    n: usize,
}

impl QuantizedMatrix {
    /// Quantizes a rank-2 `[k, n]` weight tensor.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank 2.
    pub fn new(w: &Tensor) -> Self {
        assert_eq!(w.rank(), 2, "quantized weights must be rank 2, got {:?}", w.shape());
        let (k, n) = (w.shape()[0], w.shape()[1]);
        let data = w.data();
        let mut qw = vec![0i8; k * n];
        let mut scales = vec![0f32; n];
        for j in 0..n {
            let wmax = (0..k).fold(0.0f32, |acc, i| acc.max(data[i * n + j].abs()));
            let scale = wmax / 127.0;
            scales[j] = scale;
            let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
            for i in 0..k {
                qw[i * n + j] = (data[i * n + j] * inv).round().clamp(-127.0, 127.0) as i8;
            }
        }
        let packed = kernels::pack_weight_pairs(&qw, k, n);
        Self { packed, scales, k, k_pad: k + k % 2, n }
    }

    /// Packed i16 codes (see the field docs for the layout).
    pub(crate) fn packed(&self) -> &[i16] {
        &self.packed
    }

    /// Per-column dequantization scales.
    pub(crate) fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Logical inner dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Padded inner dimension the kernel iterates.
    pub(crate) fn k_pad(&self) -> usize {
        self.k_pad
    }

    /// Output dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Heap bytes held by the packed codes and scales.
    pub fn payload_bytes(&self) -> usize {
        self.packed.len() * std::mem::size_of::<i16>()
            + self.scales.len() * std::mem::size_of::<f32>()
    }
}

/// A sparse side table of quantized weights, indexed by [`ParamId`] —
/// the quantized companion of a [`ParamSet`]. Only matmul weights are
/// quantized; biases, norms and embeddings stay f32 and keep flowing
/// through the shared kernels.
#[derive(Debug, Default)]
pub struct QuantizedParams {
    entries: Vec<Option<QuantizedMatrix>>,
}

impl QuantizedParams {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Quantizes parameter `id` of `params` and stores it under the same
    /// handle. Re-quantizing an id replaces the entry.
    pub fn quantize(&mut self, params: &ParamSet, id: ParamId) {
        if self.entries.len() <= id.0 {
            self.entries.resize_with(id.0 + 1, || None);
        }
        self.entries[id.0] = Some(QuantizedMatrix::new(params.value(id)));
    }

    /// The quantized form of parameter `id`, if it was quantized.
    pub fn get(&self, id: ParamId) -> Option<&QuantizedMatrix> {
        self.entries.get(id.0).and_then(Option::as_ref)
    }

    /// Number of quantized matrices in the table.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Whether the table holds no quantized matrices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total heap bytes across all quantized matrices.
    pub fn payload_bytes(&self) -> usize {
        self.entries.iter().flatten().map(QuantizedMatrix::payload_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantized_matrix_dequantizes_within_half_step() {
        let w = Tensor::from_vec(vec![0.4, -0.8, 0.2, 0.1, 0.6, -0.3], &[3, 2]);
        let q = QuantizedMatrix::new(&w);
        assert_eq!((q.k(), q.n()), (3, 2));
        assert_eq!(q.k_pad(), 4, "odd k pads one zero row");
        assert_eq!(q.packed().len(), q.k_pad() * q.n());
        for j in 0..2 {
            for i in 0..3 {
                let (kp, t) = (i / 2, i % 2);
                let code = q.packed()[(kp * 2 + j) * 2 + t];
                let deq = code as f32 * q.scales()[j];
                let want = w.data()[i * 2 + j];
                assert!(
                    (deq - want).abs() <= q.scales()[j] * 0.5 + 1e-7,
                    "({i},{j}): {deq} vs {want}"
                );
            }
        }
        // Padding row (kp = 1, t = 1 → logical row 3) is zero codes.
        for j in 0..2 {
            assert_eq!(q.packed()[(2 + j) * 2 + 1], 0);
        }
    }

    #[test]
    fn table_is_sparse_and_replaceable() {
        let mut params = ParamSet::new();
        let a = params.add("a", Tensor::zeros(&[4, 4]));
        let b = params.add("b", Tensor::full(&[2, 2], 1.0));
        let mut q = QuantizedParams::new();
        assert!(q.is_empty());
        q.quantize(&params, b);
        assert_eq!(q.len(), 1);
        assert!(q.get(a).is_none(), "unquantized ids stay absent");
        assert_eq!(q.get(b).expect("b").n(), 2);
        q.quantize(&params, b);
        assert_eq!(q.len(), 1, "re-quantizing replaces, not appends");
        assert!(q.payload_bytes() > 0);
    }
}

//! # easz-tensor
//!
//! A from-scratch `f32` tensor library with reverse-mode automatic
//! differentiation, written as the neural-network substrate of the Easz
//! image-compression reproduction (Mao et al., DAC 2025).
//!
//! The paper's reconstruction network is a small transformer encoder-decoder
//! trained with AdamW; this crate provides exactly the pieces that network
//! needs and nothing more:
//!
//! * [`Tensor`] — dense row-major storage plus the raw kernels (matmul,
//!   batched matmul, permutation) with thread-parallel inner loops.
//! * [`Graph`] — a tape-based autodiff engine over a fixed op vocabulary
//!   (matmul, layer norm, softmax, GELU, token scatter/gather, losses).
//! * [`InferenceSession`] / [`ScratchArena`] — the tape-free *inference*
//!   engine: the same op vocabulary executed forward-only with in-place
//!   activations and preallocated, reusable buffers. Byte-identical to the
//!   `Graph` path (both call the same kernels in the same order).
//! * [`nn`] — `Linear`, `LayerNorm`, `MultiHeadAttention`, `FeedForward`
//!   and `TransformerBlock` layers mirroring Fig. 5 of the paper.
//! * [`AdamW`] — decoupled weight decay Adam with optional gradient clipping.
//! * [`io`](crate::load_params) — a tiny binary weight format used for the
//!   paper's model-size accounting (the 8.7 MB claim) and for caching
//!   pretrained weights.
//!
//! ```
//! use easz_tensor::{Graph, ParamSet, Tensor, init, nn};
//!
//! # fn main() {
//! let mut params = ParamSet::new();
//! let mut rng = init::rng(42);
//! let block = nn::TransformerBlock::new(&mut params, &mut rng, "blk", 16, 4, 32);
//! let mut graph = Graph::new(&params);
//! let tokens = graph.input(Tensor::zeros(&[2 * 8, 16])); // 2 patches x 8 tokens
//! let out = block.forward(&mut graph, tokens, 2, 8);
//! assert_eq!(graph.value(out).shape(), &[16, 16]);
//! # }
//! ```

#![warn(missing_docs)]

pub mod alloc;
mod graph;
mod infer;
pub mod init;
mod io;
mod kernels;
pub mod nn;
mod optim;
pub mod parallel;
mod params;
mod quant;
mod tensor;

pub use graph::{Gradients, Graph, Var};
pub use infer::{InferenceSession, ScratchArena, ScratchTensor, TensorView};
pub use io::{
    load_params, load_params_file, save_params, save_params_file, serialized_size, WeightsError,
};
pub use optim::{AdamW, AdamWConfig};
pub use params::{ParamId, ParamSet};
pub use quant::{QuantizedMatrix, QuantizedParams};
pub use tensor::{inverse_permutation, strides_of, Tensor};

//! Reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a tape of operations built during a forward pass. Each
//! [`Var`] indexes a node holding the op's output value; [`Graph::backward`]
//! walks the tape in reverse, accumulating gradients for every node and for
//! every parameter of the attached [`ParamSet`].
//!
//! The op set is exactly what the Easz reconstruction transformer needs:
//! (batched) matmul, broadcast adds, layer norm, softmax, GELU, token
//! scatter/gather for the erased-position decoder input, and the training
//! losses (L1 and a frequency-weighted perceptual term).

use crate::kernels::{gelu_bwd, gelu_fwd};
use crate::params::{ParamId, ParamSet};
use crate::tensor::{inverse_permutation, Tensor};
use std::collections::HashMap;

/// Handle to a node on the autodiff tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    /// External input (constant w.r.t. gradients).
    Input,
    /// Parameter leaf; gradients flow into the [`ParamSet`] gradient buffer.
    Param(ParamId),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    /// `[r, d] + [s, d]` with the rhs tiled over blocks of `s` rows.
    AddBroadcastRows(Var, Var),
    Matmul(Var, Var),
    BatchMatmul(Var, Var),
    Reshape(Var),
    Permute(Var, Vec<usize>),
    /// Softmax over the last axis.
    Softmax(Var),
    /// Layer norm over the last axis with learned gain/bias.
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
    },
    Gelu(Var),
    Relu(Var),
    /// Select rows of a rank-2 tensor.
    GatherRows(Var, Vec<usize>),
    /// Build a token sequence from encoder rows and a shared mask token.
    ///
    /// `map[i] = Some(j)` takes row `j` of the first parent; `None` takes the
    /// single row of the second parent (the learned mask token).
    ComposeTokens {
        src: Var,
        fill: Var,
        map: Vec<Option<usize>>,
    },
    /// Mean of |x - target| (the L1 term of Eq. 2).
    L1Loss {
        x: Var,
        target: Tensor,
    },
    /// Mean of w * (x - target)^2 with constant per-element weights.
    WeightedMseLoss {
        x: Var,
        target: Tensor,
        weights: Tensor,
    },
    MeanAll(Var),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// An autodiff tape bound to a parameter set.
///
/// ```
/// use easz_tensor::{Graph, ParamSet, Tensor};
/// let mut params = ParamSet::new();
/// let w = params.add("w", Tensor::from_vec(vec![2.0], &[1, 1]));
/// let mut g = Graph::new(&params);
/// let x = g.input(Tensor::from_vec(vec![3.0], &[1, 1]));
/// let wv = g.param(w);
/// let y = g.matmul(x, wv);
/// let loss = g.mean_all(y);
/// let grads = g.backward(loss);
/// assert_eq!(grads.get(w).unwrap().data(), &[3.0]);
/// ```
pub struct Graph<'p> {
    params: &'p ParamSet,
    nodes: Vec<Node>,
    param_nodes: HashMap<ParamId, Var>,
}

/// Gradients produced by [`Graph::backward`], keyed by parameter.
#[derive(Debug, Default)]
pub struct Gradients {
    by_param: HashMap<ParamId, Tensor>,
}

impl Gradients {
    /// Gradient tensor for `id`, if that parameter participated in the loss.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.by_param.get(&id)
    }

    /// Iterates over `(parameter, gradient)` pairs in `ParamId` order.
    ///
    /// The order is deterministic (not `HashMap` order): training must be
    /// reproducible across processes, and float reductions over gradients
    /// are order-sensitive.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        let mut ids: Vec<ParamId> = self.by_param.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(|id| (id, &self.by_param[&id]))
    }

    /// Number of parameters with gradients.
    pub fn len(&self) -> usize {
        self.by_param.len()
    }

    /// Whether no parameter received a gradient.
    pub fn is_empty(&self) -> bool {
        self.by_param.is_empty()
    }

    /// Global L2 norm across all parameter gradients.
    ///
    /// Summed in `ParamId` order so the result (and anything derived from
    /// it, like gradient-clipping scales) is identical across processes.
    pub fn global_norm(&self) -> f32 {
        self.iter().map(|(_, g)| g.sq_norm()).sum::<f32>().sqrt()
    }

    /// Scales every gradient in place (used for gradient clipping).
    pub fn scale(&mut self, s: f32) {
        for g in self.by_param.values_mut() {
            for v in g.data_mut() {
                *v *= s;
            }
        }
    }

    /// Sums per-shard gradients with a **fixed pairwise reduction tree**:
    /// `((g0 + g1) + (g2 + g3)) + ...` over shard index, elementwise per
    /// parameter in `ParamId` order.
    ///
    /// The grouping of the float additions depends only on the number of
    /// shards — never on worker count, scheduling, or which thread produced
    /// which shard — so a data-parallel backward pass that reduces through
    /// here is bit-identical across any degree of execution parallelism.
    /// This is the parallel-path extension of the [`iter`](Self::iter)/
    /// [`global_norm`](Self::global_norm) determinism contract. A single
    /// shard passes through untouched (no regrouping, no scaling).
    pub fn tree_reduce(shards: Vec<Gradients>) -> Gradients {
        let mut layer = shards;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut pairs = layer.into_iter();
            while let Some(mut left) = pairs.next() {
                if let Some(right) = pairs.next() {
                    left.accumulate(&right);
                }
                next.push(left);
            }
            layer = next;
        }
        layer.pop().unwrap_or_default()
    }

    /// Adds `other` into `self` elementwise (`self[i] += other[i]` per
    /// parameter); parameters only present in `other` are copied over.
    fn accumulate(&mut self, other: &Gradients) {
        for (id, g) in other.iter() {
            match self.by_param.get_mut(&id) {
                Some(acc) => {
                    debug_assert_eq!(acc.shape(), g.shape(), "shard gradient shapes must agree");
                    for (a, b) in acc.data_mut().iter_mut().zip(g.data()) {
                        *a += *b;
                    }
                }
                None => {
                    self.by_param.insert(id, g.clone());
                }
            }
        }
    }
}

impl<'p> Graph<'p> {
    /// Creates an empty tape over `params`.
    pub fn new(params: &'p ParamSet) -> Self {
        // Tapes allocate and free MBs of tensors per pass; make sure malloc
        // recycles them instead of re-faulting (no-op after the first tape).
        crate::alloc::tune_for_tapes();
        Self { params, nodes: Vec::with_capacity(64), param_nodes: HashMap::new() }
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Number of nodes recorded on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a constant input tensor.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Input)
    }

    /// Records (or reuses) the node for parameter `id`.
    pub fn param(&mut self, id: ParamId) -> Var {
        if let Some(&v) = self.param_nodes.get(&id) {
            return v;
        }
        let value = self.params.value(id).clone();
        let v = self.push(value, Op::Param(id));
        self.param_nodes.insert(id, v);
        v
    }

    /// Elementwise sum of two same-shaped nodes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.zip(&self.nodes[b.0].value, |x, y| x + y);
        self.push(value, Op::Add(a, b))
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.zip(&self.nodes[b.0].value, |x, y| x - y);
        self.push(value, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.zip(&self.nodes[b.0].value, |x, y| x * y);
        self.push(value, Op::Mul(a, b))
    }

    /// Multiplies by a compile-time constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.nodes[a.0].value.map(|x| x * s);
        self.push(value, Op::Scale(a, s))
    }

    /// Adds a scalar constant.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let value = self.nodes[a.0].value.map(|x| x + s);
        self.push(value, Op::AddScalar(a))
    }

    /// `[r, d] + [s, d]` broadcast: rhs rows are tiled along the row axis.
    ///
    /// Used for bias addition (`s == 1`) and positional embeddings
    /// (`s ==` sequence length, `r == batch * s`).
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[r, d]` / `[s, d]` with `r % s == 0`.
    pub fn add_broadcast_rows(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(av.rank(), 2, "add_broadcast_rows lhs must be rank 2");
        assert_eq!(bv.rank(), 2, "add_broadcast_rows rhs must be rank 2");
        let (r, d) = (av.shape()[0], av.shape()[1]);
        let (s, d2) = (bv.shape()[0], bv.shape()[1]);
        assert_eq!(d, d2, "broadcast width mismatch");
        assert!(s > 0 && r % s == 0, "rows {r} not a multiple of broadcast rows {s}");
        let mut out = av.clone();
        crate::kernels::add_rows_broadcast(out.data_mut(), bv.data(), d, s);
        self.push(out, Op::AddBroadcastRows(a, b))
    }

    /// Rank-2 matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(value, Op::Matmul(a, b))
    }

    /// Rank-3 batched matrix product.
    pub fn batch_matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.batch_matmul(&self.nodes[b.0].value);
        self.push(value, Op::BatchMatmul(a, b))
    }

    /// Reshape (element order preserved).
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let value = self.nodes[a.0].value.reshaped(shape);
        self.push(value, Op::Reshape(a))
    }

    /// Axis permutation.
    pub fn permute(&mut self, a: Var, axes: &[usize]) -> Var {
        let value = self.nodes[a.0].value.permuted(axes);
        self.push(value, Op::Permute(a, axes.to_vec()))
    }

    /// Softmax along the last axis (numerically stabilised).
    pub fn softmax(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let d = *x.shape().last().expect("softmax needs rank >= 1");
        let mut out = x.clone();
        crate::kernels::softmax_last_axis(out.data_mut(), d);
        self.push(out, Op::Softmax(a))
    }

    /// Layer normalisation over the last axis with learned `gamma`/`beta`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` are not `[d]` vectors matching the last axis.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let xv = &self.nodes[x.0].value;
        let d = *xv.shape().last().expect("layer_norm needs rank >= 1");
        let gv = &self.nodes[gamma.0].value;
        let bv = &self.nodes[beta.0].value;
        assert_eq!(gv.numel(), d, "gamma size");
        assert_eq!(bv.numel(), d, "beta size");
        let mut out = xv.clone();
        crate::kernels::layer_norm_last_axis(out.data_mut(), d, gv.data(), bv.data(), eps);
        self.push(out, Op::LayerNorm { x, gamma, beta, eps })
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(gelu_fwd);
        self.push(value, Op::Gelu(a))
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Gathers rows of a rank-2 node: `out[i] = a[rows[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not rank 2 or an index is out of bounds.
    pub fn gather_rows(&mut self, a: Var, rows: &[usize]) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.rank(), 2, "gather_rows needs rank 2");
        let d = av.shape()[1];
        let mut data = Vec::with_capacity(rows.len() * d);
        for &r in rows {
            data.extend_from_slice(av.row(r));
        }
        let value = Tensor::from_vec(data, &[rows.len(), d]);
        self.push(value, Op::GatherRows(a, rows.to_vec()))
    }

    /// Builds a token matrix from encoder rows and a learned fill token.
    ///
    /// `map[i] = Some(j)` copies row `j` of `src`; `None` copies the single
    /// row of `fill` (the paper's zero-vector slot, implemented as a learned
    /// mask token). Gradients flow to both parents.
    ///
    /// # Panics
    ///
    /// Panics if widths differ, `fill` is not a single row, or an index is
    /// out of bounds.
    pub fn compose_tokens(&mut self, src: Var, fill: Var, map: &[Option<usize>]) -> Var {
        let sv = &self.nodes[src.0].value;
        let fv = &self.nodes[fill.0].value;
        assert_eq!(sv.rank(), 2, "compose_tokens src rank");
        assert_eq!(fv.rank(), 2, "compose_tokens fill rank");
        assert_eq!(fv.shape()[0], 1, "fill must be a single row");
        let d = sv.shape()[1];
        assert_eq!(fv.shape()[1], d, "fill width mismatch");
        let mut data = Vec::with_capacity(map.len() * d);
        for slot in map {
            match slot {
                Some(j) => data.extend_from_slice(sv.row(*j)),
                None => data.extend_from_slice(fv.row(0)),
            }
        }
        let value = Tensor::from_vec(data, &[map.len(), d]);
        self.push(value, Op::ComposeTokens { src, fill, map: map.to_vec() })
    }

    /// Scalar mean of all elements.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.nodes[a.0].value.mean());
        self.push(value, Op::MeanAll(a))
    }

    /// Mean absolute error against a constant target (L1 loss).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn l1_loss(&mut self, x: Var, target: &Tensor) -> Var {
        let xv = &self.nodes[x.0].value;
        assert_eq!(xv.shape(), target.shape(), "l1_loss shape mismatch");
        let value = Tensor::scalar(xv.zip(target, |a, b| (a - b).abs()).mean());
        self.push(value, Op::L1Loss { x, target: target.clone() })
    }

    /// Mean of `w * (x - t)^2` with constant weights (perceptual loss term).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn weighted_mse_loss(&mut self, x: Var, target: &Tensor, weights: &Tensor) -> Var {
        let xv = &self.nodes[x.0].value;
        assert_eq!(xv.shape(), target.shape(), "weighted_mse shape mismatch");
        assert_eq!(xv.shape(), weights.shape(), "weighted_mse weights mismatch");
        let n = xv.numel().max(1) as f32;
        let mut acc = 0.0f64;
        for i in 0..xv.numel() {
            let d = xv.data()[i] - target.data()[i];
            acc += (weights.data()[i] * d * d) as f64;
        }
        let value = Tensor::scalar((acc / n as f64) as f32);
        self.push(
            value,
            Op::WeightedMseLoss { x, target: target.clone(), weights: weights.clone() },
        )
    }

    /// Runs reverse-mode accumulation from a scalar `loss` node.
    ///
    /// Returns per-parameter gradients. Node gradients are discarded after
    /// the walk; the tape can keep being extended afterwards if desired.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.nodes[loss.0].value.numel(), 1, "backward needs a scalar loss");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::scalar(1.0));
        let mut out = Gradients::default();

        for idx in (0..=loss.0).rev() {
            let Some(g) = grads[idx].take() else { continue };
            match &self.nodes[idx].op {
                Op::Input => {}
                Op::Param(id) => {
                    out.by_param.entry(*id).and_modify(|acc| acc.axpy(1.0, &g)).or_insert(g);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    accumulate(&mut grads, *b, &g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    let neg = g.map(|x| -x);
                    accumulate(&mut grads, *b, &neg);
                }
                Op::Mul(a, b) => {
                    let ga = g.zip(&self.nodes[b.0].value, |x, y| x * y);
                    let gb = g.zip(&self.nodes[a.0].value, |x, y| x * y);
                    accumulate(&mut grads, *a, &ga);
                    accumulate(&mut grads, *b, &gb);
                }
                Op::Scale(a, s) => {
                    let ga = g.map(|x| x * s);
                    accumulate(&mut grads, *a, &ga);
                }
                Op::AddScalar(a) => accumulate(&mut grads, *a, &g),
                Op::AddBroadcastRows(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    let bshape = self.nodes[b.0].value.shape().to_vec();
                    let (s, d) = (bshape[0], bshape[1]);
                    let mut gb = Tensor::zeros(&bshape);
                    let r = g.shape()[0];
                    for i in 0..r {
                        let grow = g.row(i);
                        let target = &mut gb.data_mut()[(i % s) * d..(i % s + 1) * d];
                        for (t, &x) in target.iter_mut().zip(grow) {
                            *t += x;
                        }
                    }
                    accumulate(&mut grads, *b, &gb);
                }
                Op::Matmul(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let ga = g.matmul(&bv.transpose2());
                    let gb = av.transpose2().matmul(&g);
                    accumulate(&mut grads, *a, &ga);
                    accumulate(&mut grads, *b, &gb);
                }
                Op::BatchMatmul(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let ga = g.batch_matmul(&bv.transpose_last2());
                    let gb = av.transpose_last2().batch_matmul(&g);
                    accumulate(&mut grads, *a, &ga);
                    accumulate(&mut grads, *b, &gb);
                }
                Op::Reshape(a) => {
                    let orig = self.nodes[a.0].value.shape().to_vec();
                    let ga = g.reshaped(&orig);
                    accumulate(&mut grads, *a, &ga);
                }
                Op::Permute(a, axes) => {
                    let inv = inverse_permutation(axes);
                    let ga = g.permuted(&inv);
                    accumulate(&mut grads, *a, &ga);
                }
                Op::Softmax(a) => {
                    // dx = y * (dy - sum(dy * y)) per softmax row.
                    let y = &self.nodes[idx].value;
                    let d = *y.shape().last().expect("softmax rank");
                    let mut dx = Tensor::zeros(y.shape());
                    let rows = y.numel() / d;
                    for r in 0..rows {
                        let ys = &y.data()[r * d..(r + 1) * d];
                        let gs = &g.data()[r * d..(r + 1) * d];
                        let dot: f32 = ys.iter().zip(gs).map(|(&a, &b)| a * b).sum();
                        let ds = &mut dx.data_mut()[r * d..(r + 1) * d];
                        for j in 0..d {
                            ds[j] = ys[j] * (gs[j] - dot);
                        }
                    }
                    accumulate(&mut grads, *a, &dx);
                }
                Op::LayerNorm { x, gamma, beta, eps } => {
                    let xv = &self.nodes[x.0].value;
                    let gv = &self.nodes[gamma.0].value;
                    let d = *xv.shape().last().expect("ln rank");
                    let rows = xv.numel() / d;
                    let mut dx = Tensor::zeros(xv.shape());
                    let mut dgamma = Tensor::zeros(gv.shape());
                    let mut dbeta = Tensor::zeros(gv.shape());
                    for r in 0..rows {
                        let xs = &xv.data()[r * d..(r + 1) * d];
                        let gs = &g.data()[r * d..(r + 1) * d];
                        let mean = xs.iter().sum::<f32>() / d as f32;
                        let var =
                            xs.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                        let inv = 1.0 / (var + eps).sqrt();
                        // xhat_j = (x_j - mean) * inv
                        // dy/dxhat = g_j * gamma_j
                        let mut sum_dxhat = 0.0f32;
                        let mut sum_dxhat_xhat = 0.0f32;
                        for j in 0..d {
                            let xhat = (xs[j] - mean) * inv;
                            let dxhat = gs[j] * gv.data()[j];
                            sum_dxhat += dxhat;
                            sum_dxhat_xhat += dxhat * xhat;
                            dgamma.data_mut()[j] += gs[j] * xhat;
                            dbeta.data_mut()[j] += gs[j];
                        }
                        let ds = &mut dx.data_mut()[r * d..(r + 1) * d];
                        for j in 0..d {
                            let xhat = (xs[j] - mean) * inv;
                            let dxhat = gs[j] * gv.data()[j];
                            ds[j] = inv / d as f32
                                * (d as f32 * dxhat - sum_dxhat - xhat * sum_dxhat_xhat);
                        }
                    }
                    accumulate(&mut grads, *x, &dx);
                    accumulate(&mut grads, *gamma, &dgamma);
                    accumulate(&mut grads, *beta, &dbeta);
                }
                Op::Gelu(a) => {
                    let ga = self.nodes[a.0].value.zip(&g, |x, gy| gelu_bwd(x) * gy);
                    accumulate(&mut grads, *a, &ga);
                }
                Op::Relu(a) => {
                    let ga = self.nodes[a.0].value.zip(&g, |x, gy| if x > 0.0 { gy } else { 0.0 });
                    accumulate(&mut grads, *a, &ga);
                }
                Op::GatherRows(a, rows) => {
                    let shape = self.nodes[a.0].value.shape().to_vec();
                    let d = shape[1];
                    let mut ga = Tensor::zeros(&shape);
                    for (i, &r) in rows.iter().enumerate() {
                        let grow = g.row(i);
                        let target = &mut ga.data_mut()[r * d..(r + 1) * d];
                        for (t, &x) in target.iter_mut().zip(grow) {
                            *t += x;
                        }
                    }
                    accumulate(&mut grads, *a, &ga);
                }
                Op::ComposeTokens { src, fill, map } => {
                    let sshape = self.nodes[src.0].value.shape().to_vec();
                    let d = sshape[1];
                    let mut gsrc = Tensor::zeros(&sshape);
                    let mut gfill = Tensor::zeros(&[1, d]);
                    for (i, slot) in map.iter().enumerate() {
                        let grow = g.row(i);
                        match slot {
                            Some(j) => {
                                let target = &mut gsrc.data_mut()[j * d..(j + 1) * d];
                                for (t, &x) in target.iter_mut().zip(grow) {
                                    *t += x;
                                }
                            }
                            None => {
                                for (t, &x) in gfill.data_mut().iter_mut().zip(grow) {
                                    *t += x;
                                }
                            }
                        }
                    }
                    accumulate(&mut grads, *src, &gsrc);
                    accumulate(&mut grads, *fill, &gfill);
                }
                Op::MeanAll(a) => {
                    let n = self.nodes[a.0].value.numel().max(1) as f32;
                    let ga = Tensor::full(self.nodes[a.0].value.shape(), g.item() / n);
                    accumulate(&mut grads, *a, &ga);
                }
                Op::L1Loss { x, target } => {
                    let n = target.numel().max(1) as f32;
                    let s = g.item() / n;
                    let ga = self.nodes[x.0].value.zip(target, |a, b| {
                        if a > b {
                            s
                        } else if a < b {
                            -s
                        } else {
                            0.0
                        }
                    });
                    accumulate(&mut grads, *x, &ga);
                }
                Op::WeightedMseLoss { x, target, weights } => {
                    let n = target.numel().max(1) as f32;
                    let s = 2.0 * g.item() / n;
                    let xv = &self.nodes[x.0].value;
                    let mut ga = Tensor::zeros(xv.shape());
                    for i in 0..xv.numel() {
                        ga.data_mut()[i] =
                            s * weights.data()[i] * (xv.data()[i] - target.data()[i]);
                    }
                    accumulate(&mut grads, *x, &ga);
                }
            }
        }
        out
    }
}

fn accumulate(grads: &mut [Option<Tensor>], v: Var, g: &Tensor) {
    match &mut grads[v.0] {
        Some(acc) => acc.axpy(1.0, g),
        slot @ None => *slot = Some(g.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;

    /// Finite-difference check of `d loss / d param` for a given builder.
    fn check_grads(
        params: &mut ParamSet,
        build: impl Fn(&mut Graph<'_>, &ParamSet) -> Var,
        tol: f32,
    ) {
        let analytic = {
            let g = &mut Graph::new(params);
            let loss = build(g, params);
            g.backward(loss)
        };
        let eps = 1e-2f32;
        let ids: Vec<ParamId> = params.ids().collect();
        for id in ids {
            let n = params.value(id).numel();
            for i in 0..n.min(6) {
                let orig = params.value(id).data()[i];
                params.value_mut(id).data_mut()[i] = orig + eps;
                let lp = {
                    let g = &mut Graph::new(params);
                    let loss = build(g, params);
                    g.value(loss).item()
                };
                params.value_mut(id).data_mut()[i] = orig - eps;
                let lm = {
                    let g = &mut Graph::new(params);
                    let loss = build(g, params);
                    g.value(loss).item()
                };
                params.value_mut(id).data_mut()[i] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let got = analytic.get(id).map(|t| t.data()[i]).unwrap_or(0.0);
                assert!(
                    (numeric - got).abs() < tol.max(0.05 * numeric.abs()),
                    "param {:?} elem {}: numeric {} vs analytic {}",
                    id,
                    i,
                    numeric,
                    got
                );
            }
        }
    }

    fn seeded(shape: &[usize], seed: u64) -> Tensor {
        let n: usize = shape.iter().product();
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let data: Vec<f32> = (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1 << 24) as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(data, shape)
    }

    #[test]
    fn grad_matmul_chain() {
        let mut p = ParamSet::new();
        let w1 = p.add("w1", seeded(&[3, 4], 1));
        let w2 = p.add("w2", seeded(&[4, 2], 2));
        check_grads(
            &mut p,
            |g, _| {
                let x = g.input(seeded(&[2, 3], 3));
                let (w1v, w2v) = (g.param(w1), g.param(w2));
                let h = g.matmul(x, w1v);
                let h = g.gelu(h);
                let y = g.matmul(h, w2v);
                g.mean_all(y)
            },
            2e-3,
        );
    }

    #[test]
    fn grad_softmax_attention_shape() {
        let mut p = ParamSet::new();
        let q = p.add("q", seeded(&[2, 4, 3], 5));
        let k = p.add("k", seeded(&[2, 4, 3], 6));
        check_grads(
            &mut p,
            |g, _| {
                let (qv, kv) = (g.param(q), g.param(k));
                let kt = g.permute(kv, &[0, 2, 1]);
                let scores = g.batch_matmul(qv, kt);
                let scores = g.scale(scores, 1.0 / 3f32.sqrt());
                let attn = g.softmax(scores);
                g.mean_all(attn)
            },
            5e-3,
        );
    }

    #[test]
    fn grad_layer_norm() {
        let mut p = ParamSet::new();
        let x = p.add("x", seeded(&[3, 5], 7));
        let gamma = p.add("gamma", Tensor::full(&[5], 1.2));
        let beta = p.add("beta", Tensor::full(&[5], -0.1));
        check_grads(
            &mut p,
            |g, _| {
                let (xv, gv, bv) = (g.param(x), g.param(gamma), g.param(beta));
                let y = g.layer_norm(xv, gv, bv, 1e-5);
                let t = Tensor::full(&[3, 5], 0.3);
                g.weighted_mse_loss(y, &t, &Tensor::full(&[3, 5], 1.0))
            },
            5e-2,
        );
    }

    #[test]
    fn grad_compose_and_gather() {
        let mut p = ParamSet::new();
        let src = p.add("src", seeded(&[3, 4], 9));
        let fill = p.add("fill", seeded(&[1, 4], 10));
        check_grads(
            &mut p,
            |g, _| {
                let (sv, fv) = (g.param(src), g.param(fill));
                let map = [Some(2), None, Some(0), None, Some(1)];
                let seq = g.compose_tokens(sv, fv, &map);
                let picked = g.gather_rows(seq, &[1, 3, 4]);
                let t = Tensor::full(&[3, 4], 0.2);
                g.l1_loss(picked, &t)
            },
            5e-3,
        );
    }

    #[test]
    fn grad_broadcast_bias() {
        let mut p = ParamSet::new();
        let b = p.add("b", seeded(&[1, 4], 11));
        let pos = p.add("pos", seeded(&[2, 4], 12));
        check_grads(
            &mut p,
            |g, _| {
                let x = g.input(seeded(&[6, 4], 13));
                let (bv, pv) = (g.param(b), g.param(pos));
                let y = g.add_broadcast_rows(x, bv);
                let y = g.add_broadcast_rows(y, pv);
                g.mean_all(y)
            },
            2e-3,
        );
    }

    #[test]
    fn gradients_iterate_in_param_id_order() {
        // Cross-process training determinism depends on this: HashMap order
        // would randomize float-reduction order (e.g. the clipping norm).
        let mut p = ParamSet::new();
        let ids: Vec<ParamId> =
            (0..12).map(|i| p.add(format!("w{i}"), Tensor::full(&[2], i as f32))).collect();
        let mut g = Graph::new(&p);
        let vars: Vec<Var> = ids.iter().map(|&id| g.param(id)).collect();
        let sum = vars[1..].iter().fold(vars[0], |a, &b| g.add(a, b));
        let loss = g.mean_all(sum);
        let grads = g.backward(loss);
        let seen: Vec<ParamId> = grads.iter().map(|(id, _)| id).collect();
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(seen, sorted);
        assert_eq!(seen.len(), ids.len());
    }

    #[test]
    fn param_node_is_deduplicated() {
        let mut p = ParamSet::new();
        let w = p.add("w", Tensor::full(&[2, 2], 1.0));
        let mut g = Graph::new(&p);
        let a = g.param(w);
        let b = g.param(w);
        assert_eq!(a, b);
    }

    #[test]
    fn gradients_global_norm_and_scale() {
        let mut p = ParamSet::new();
        let w = p.add("w", Tensor::full(&[2], 3.0));
        let mut g = Graph::new(&p);
        let wv = g.param(w);
        let loss = g.mean_all(wv);
        let mut grads = g.backward(loss);
        // d mean / d w_i = 1/2 for both elements -> norm = sqrt(0.5).
        let norm = grads.global_norm();
        assert!((norm - 0.5f32.sqrt()).abs() < 1e-5);
        grads.scale(0.5);
        assert!((grads.global_norm() - norm * 0.5).abs() < 1e-6);
    }

    fn shard_with(id: ParamId, values: &[f32]) -> Gradients {
        let mut by_param = HashMap::new();
        by_param.insert(id, Tensor::from_vec(values.to_vec(), &[values.len()]));
        Gradients { by_param }
    }

    #[test]
    fn tree_reduce_pins_the_pairwise_grouping() {
        // Values where the float grouping is observable: at f32 precision
        // (1e8 + 1) == 1e8 and (-1e8 + 1) == -1e8, so the fixed pairwise
        // tree ((g0+g1) + (g2+g3)) yields exactly 0.0 while a left fold
        // (((g0+g1)+g2)+g3) yields 1.0. This is the regression pin for the
        // reduction order: any regrouping of the shard sum changes the bits
        // here before it can silently change training runs.
        let mut p = ParamSet::new();
        let w = p.add("w", Tensor::zeros(&[2]));
        let shards =
            vec![1e8f32, 1.0, -1e8, 1.0].into_iter().map(|v| shard_with(w, &[v, -v])).collect();
        let reduced = Gradients::tree_reduce(shards);
        let got = reduced.get(w).expect("reduced gradient");
        assert_eq!(got.data()[0].to_bits(), 0.0f32.to_bits(), "pairwise tree changed");
        assert_eq!(got.data()[1].to_bits(), 0.0f32.to_bits(), "pairwise tree changed");
        // The same inputs left-folded really would differ — guards against
        // the pin accidentally testing an order-insensitive quantity.
        let fold = ((1e8f32 + 1.0) + -1e8) + 1.0;
        assert_ne!(fold.to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn tree_reduce_edge_cases() {
        // Zero shards: an empty gradient set.
        assert!(Gradients::tree_reduce(Vec::new()).is_empty());
        // One shard passes through bit-for-bit untouched.
        let mut p = ParamSet::new();
        let w = p.add("w", Tensor::zeros(&[3]));
        let single = Gradients::tree_reduce(vec![shard_with(w, &[0.1, -2.5, 3e7])]);
        let got = single.get(w).expect("gradient");
        for (a, b) in got.data().iter().zip([0.1f32, -2.5, 3e7]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A parameter missing from some shards still reduces (sparse tapes).
        let v = p.add("v", Tensor::zeros(&[1]));
        let mut with_both = shard_with(w, &[1.0, 1.0, 1.0]);
        with_both.by_param.insert(v, Tensor::from_vec(vec![5.0], &[1]));
        let reduced = Gradients::tree_reduce(vec![with_both, shard_with(w, &[1.0, 1.0, 1.0])]);
        assert_eq!(reduced.get(v).expect("sparse param").data(), &[5.0]);
        assert_eq!(reduced.get(w).expect("dense param").data(), &[2.0, 2.0, 2.0]);
    }
}

//! Named parameter storage shared by the model, the optimiser and the
//! weight (de)serialisation code.

use crate::tensor::Tensor;
use std::fmt;

/// Opaque handle to a parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

/// An ordered collection of named parameter tensors.
///
/// Order is creation order, which makes the binary weight format stable for
/// a fixed model-construction sequence.
///
/// ```
/// use easz_tensor::{ParamSet, Tensor};
/// let mut params = ParamSet::new();
/// let id = params.add("embed.weight", Tensor::zeros(&[4, 8]));
/// assert_eq!(params.name(id), "embed.weight");
/// assert_eq!(params.num_scalars(), 32);
/// ```
#[derive(Default)]
pub struct ParamSet {
    names: Vec<String>,
    tensors: Vec<Tensor>,
}

impl fmt::Debug for ParamSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParamSet")
            .field("params", &self.names.len())
            .field("scalars", &self.num_scalars())
            .finish()
    }
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tensor under `name`, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn add(&mut self, name: impl Into<String>, tensor: Tensor) -> ParamId {
        let name = name.into();
        assert!(!self.names.contains(&name), "parameter name {name:?} registered twice");
        self.names.push(name);
        self.tensors.push(tensor);
        ParamId(self.tensors.len() - 1)
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the set holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar values across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::numel).sum()
    }

    /// Serialized size in bytes of the f32 payload (excluding headers).
    pub fn payload_bytes(&self) -> usize {
        self.num_scalars() * 4
    }

    /// The value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access to a parameter value (used by optimisers and loaders).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Looks a parameter up by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Iterates over all parameter handles in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.tensors.len()).map(ParamId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut p = ParamSet::new();
        let a = p.add("a", Tensor::zeros(&[2]));
        let b = p.add("b", Tensor::zeros(&[3]));
        assert_eq!(p.id_of("a"), Some(a));
        assert_eq!(p.id_of("b"), Some(b));
        assert_eq!(p.id_of("c"), None);
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_scalars(), 5);
        assert_eq!(p.payload_bytes(), 20);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let mut p = ParamSet::new();
        p.add("a", Tensor::zeros(&[1]));
        p.add("a", Tensor::zeros(&[1]));
    }
}

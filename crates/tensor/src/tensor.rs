//! Dense, row-major `f32` tensors and the raw (non-differentiable) kernels
//! the autodiff layer is built on.

use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// Shapes are dynamic (rank 0 through 4 are used throughout the Easz stack).
/// The type is deliberately plain — no views, no strides — because every
/// kernel in the reconstruction model operates on contiguous data and the
/// simplicity keeps the autodiff engine auditable.
///
/// ```
/// use easz_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.numel(), 6);
/// assert_eq!(t.shape(), &[2, 3]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:.4}, {:.4}, ...]", self.data[0], self.data[1])
        }
    }
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self { data, shape: shape.to_vec() }
    }

    /// Creates a zero-filled tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self { data: vec![0.0; shape.iter().product()], shape: shape.to_vec() }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self { data: vec![value; shape.iter().product()], shape: shape.to_vec() }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Self { data: vec![value], shape: vec![] }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The scalar value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor with {} elements", self.numel());
        self.data[0]
    }

    /// Returns a reshaped copy sharing the same element order.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshaped(&self, shape: &[usize]) -> Self {
        Self::from_vec(self.data.clone(), shape)
    }

    /// Reshapes in place (no data movement).
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let numel: usize = shape.iter().product();
        assert_eq!(self.data.len(), numel, "reshape to {:?} from {:?}", shape, self.shape);
        self.shape = shape.to_vec();
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        Self {
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Adds `other * scale` into `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, scale: f32, other: &Self) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Matrix product of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Uses a cache-friendly `ikj` loop; large products are parallelised
    /// across row blocks by [`crate::parallel::par_matmul`].
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {:?} x {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        crate::parallel::par_matmul(&self.data, &other.data, &mut out, m, k, n);
        Self { data: out, shape: vec![m, n] }
    }

    /// Batched matrix product `[g, m, k] x [g, k, n] -> [g, m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank 3 with matching batch and inner dims.
    pub fn batch_matmul(&self, other: &Self) -> Self {
        assert_eq!(self.rank(), 3, "batch_matmul lhs rank");
        assert_eq!(other.rank(), 3, "batch_matmul rhs rank");
        let (g, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (g2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(g, g2, "batch_matmul batch dims");
        assert_eq!(k, k2, "batch_matmul inner dims");
        let mut out = vec![0.0f32; g * m * n];
        crate::parallel::par_batch_matmul(&self.data, &other.data, &mut out, g, m, k, n);
        Self { data: out, shape: vec![g, m, n] }
    }

    /// Rank-2 transpose `[m, n] -> [n, m]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2(&self) -> Self {
        assert_eq!(self.rank(), 2, "transpose2 needs rank 2, got {:?}", self.shape);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Self { data: out, shape: vec![n, m] }
    }

    /// Batched transpose of the last two dims: `[g, m, n] -> [g, n, m]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 3.
    pub fn transpose_last2(&self) -> Self {
        assert_eq!(self.rank(), 3, "transpose_last2 needs rank 3");
        let (g, m, n) = (self.shape[0], self.shape[1], self.shape[2]);
        let mut out = vec![0.0f32; g * m * n];
        for b in 0..g {
            let src = &self.data[b * m * n..(b + 1) * m * n];
            let dst = &mut out[b * m * n..(b + 1) * m * n];
            for i in 0..m {
                for j in 0..n {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
        Self { data: out, shape: vec![g, n, m] }
    }

    /// General axis permutation (forward of the autodiff `Permute` op).
    ///
    /// The walk is odometer-style (no per-element div/mod) and copies
    /// contiguous blocks whenever the innermost axis is preserved — every
    /// head split/merge in the attention layers. The actual kernel lives in
    /// the crate-private `kernels` module and is shared with the tape-free
    /// inference engine.
    ///
    /// # Panics
    ///
    /// Panics if `axes` is not a permutation of `0..rank`.
    pub fn permuted(&self, axes: &[usize]) -> Self {
        let new_shape: Vec<usize> = axes.iter().map(|&a| self.shape[a]).collect();
        let mut out = vec![0.0f32; self.data.len()];
        crate::kernels::permute_into(&self.data, &self.shape, axes, &mut out);
        Self { data: out, shape: new_shape }
    }

    /// Row `i` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if not rank 2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() needs rank 2");
        let n = self.shape[1];
        &self.data[i * n..(i + 1) * n]
    }

    /// Stacks rank-1 rows of equal length into a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let n = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * n);
        for r in rows {
            assert_eq!(r.len(), n, "ragged rows in from_rows");
            data.extend_from_slice(r);
        }
        Self { data, shape: vec![rows.len(), n] }
    }
}

/// Row-major strides for a shape (empty shape -> empty strides).
pub fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for d in (0..shape.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * shape[d + 1];
    }
    strides
}

/// Row-major strides into a fixed-size array (allocation-free variant used
/// by the inference hot path; unused trailing slots are zero).
///
/// # Panics
///
/// Panics if `shape.len() > N`.
pub(crate) fn strides_of_array<const N: usize>(shape: &[usize]) -> [usize; N] {
    assert!(shape.len() <= N, "rank {} exceeds stride capacity {N}", shape.len());
    let mut strides = [0usize; N];
    if shape.is_empty() {
        return strides;
    }
    strides[shape.len() - 1] = 1;
    for d in (0..shape.len() - 1).rev() {
        strides[d] = strides[d + 1] * shape[d + 1];
    }
    strides
}

/// Inverse of an axis permutation: `inverse[axes[i]] = i`.
pub fn inverse_permutation(axes: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; axes.len()];
    for (i, &a) in axes.iter().enumerate() {
        inv[a] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_shape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]);
    }

    #[test]
    fn permuted_handles_every_rank_and_stride_pattern() {
        // Rank 0: the identity permutation of a scalar.
        let s = Tensor::from_vec(vec![2.5], &[]);
        assert_eq!(s.permuted(&[]).data(), &[2.5]);
        // Rank 2 transpose (strided inner axis) against transpose2.
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]);
        assert_eq!(t.permuted(&[1, 0]).data(), t.transpose2().data());
        // Rank 4 head split/merge (contiguous inner axis) round-trips.
        let h = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let forth = h.permuted(&[0, 2, 1, 3]);
        assert_eq!(forth.shape(), &[2, 2, 3, 2]);
        assert_eq!(forth.permuted(&[0, 2, 1, 3]).data(), h.data());
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.data_mut()[i * 4 + i] = 1.0;
        }
        let c = a.matmul(&eye);
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn batch_matmul_matches_per_slice() {
        let a = Tensor::from_vec((0..2 * 2 * 3).map(|x| x as f32 * 0.5).collect(), &[2, 2, 3]);
        let b = Tensor::from_vec((0..2 * 3 * 2).map(|x| x as f32 * 0.25).collect(), &[2, 3, 2]);
        let c = a.batch_matmul(&b);
        for g in 0..2 {
            let ag = Tensor::from_vec(a.data()[g * 6..(g + 1) * 6].to_vec(), &[2, 3]);
            let bg = Tensor::from_vec(b.data()[g * 6..(g + 1) * 6].to_vec(), &[3, 2]);
            let cg = ag.matmul(&bg);
            assert_eq!(&c.data()[g * 4..(g + 1) * 4], cg.data());
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let t = a.transpose2();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.transpose2(), a);
    }

    #[test]
    fn permute_matches_transpose() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let p = a.permuted(&[0, 2, 1]);
        assert_eq!(p, a.transpose_last2());
    }

    #[test]
    fn permute_then_inverse_is_identity() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let axes = [2, 0, 1];
        let inv = inverse_permutation(&axes);
        assert_eq!(a.permuted(&axes).permuted(&inv), a);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_of(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_of(&[]), Vec::<usize>::new());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.sq_norm(), 14.0);
    }
}

//! Neural-network building blocks assembled from [`Graph`] ops.
//!
//! Each layer registers its parameters in a [`ParamSet`] at construction and
//! replays its computation onto a fresh [`Graph`] per forward pass. The
//! blocks mirror Fig. 5 of the paper: a transformer block holds an attention
//! layer and a feed-forward layer wrapped in layer norms with residual
//! connections.

use crate::graph::{Graph, Var};
use crate::infer::{InferenceSession, ScratchTensor};
use crate::init;
use crate::params::{ParamId, ParamSet};
use crate::quant::QuantizedParams;
use rand::rngs::StdRng;

/// A dense affine layer `y = x W + b` on `[rows, in] -> [rows, out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers the layer's weights under `prefix` (e.g. `"enc.0.attn.q"`).
    pub fn new(
        params: &mut ParamSet,
        rng: &mut StdRng,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = params.add(format!("{prefix}.w"), init::xavier_uniform(rng, in_dim, out_dim));
        let b = params.add(format!("{prefix}.b"), crate::tensor::Tensor::zeros(&[1, out_dim]));
        Self { w, b, in_dim, out_dim }
    }

    /// Applies the layer.
    ///
    /// # Panics
    ///
    /// Panics (inside the graph ops) if `x` is not `[rows, in_dim]`.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        debug_assert_eq!(g.value(x).shape()[1], self.in_dim);
        let w = g.param(self.w);
        let b = g.param(self.b);
        let y = g.matmul(x, w);
        g.add_broadcast_rows(y, b)
    }

    /// Applies the layer on the tape-free engine (byte-identical to
    /// [`forward`](Self::forward); weights are borrowed, not cloned).
    ///
    /// In a quantized session with this layer's weight in the table, the
    /// product runs through the int8 kernel and the output (after the f32
    /// bias add) is rounded to f16 precision — the quantized tier's
    /// inter-layer activation contract. Otherwise this is the bit-exact
    /// f32 path.
    pub fn infer(&self, s: &mut InferenceSession<'_, '_>, x: &ScratchTensor) -> ScratchTensor {
        debug_assert_eq!(x.shape()[1], self.in_dim);
        let b = s.param(self.b);
        if let Some(qw) = s.quantized(self.w) {
            let mut y = s.qmatmul(x, qw);
            s.add_broadcast_rows(&mut y, b);
            s.f16_round_in_place(&mut y);
            return y;
        }
        let w = s.param(self.w);
        let mut y = s.matmul(x, w);
        s.add_broadcast_rows(&mut y, b);
        y
    }

    /// Quantizes this layer's weight matrix into `out` (the bias stays
    /// f32; it is added after dequantization).
    pub fn quantize_into(&self, params: &ParamSet, out: &mut QuantizedParams) {
        out.quantize(params, self.w);
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// Layer normalisation with learned gain and bias over the last axis.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Registers gain/bias of width `dim` under `prefix`.
    pub fn new(params: &mut ParamSet, prefix: &str, dim: usize) -> Self {
        let gamma = params.add(format!("{prefix}.gamma"), crate::tensor::Tensor::full(&[dim], 1.0));
        let beta = params.add(format!("{prefix}.beta"), crate::tensor::Tensor::zeros(&[dim]));
        Self { gamma, beta, eps: 1e-5 }
    }

    /// Applies layer norm along the last axis.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let gamma = g.param(self.gamma);
        let beta = g.param(self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }

    /// Tape-free layer norm into a fresh scratch buffer (the input stays
    /// live for residual connections).
    pub fn infer(&self, s: &mut InferenceSession<'_, '_>, x: &ScratchTensor) -> ScratchTensor {
        let gamma = s.param(self.gamma);
        let beta = s.param(self.beta);
        s.layer_norm(x, gamma, beta, self.eps)
    }
}

/// Multi-head self-attention over `[batch * seq, dim]` token matrices.
///
/// The caller supplies `batch` and `seq` at forward time; attention is
/// confined within each sequence (the paper's per-patch attention scope).
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    q: Linear,
    k: Linear,
    v: Linear,
    o: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Registers Q/K/V/O projections under `prefix`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut StdRng,
        prefix: &str,
        dim: usize,
        heads: usize,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} must be divisible by heads {heads}");
        Self {
            q: Linear::new(params, rng, &format!("{prefix}.q"), dim, dim),
            k: Linear::new(params, rng, &format!("{prefix}.k"), dim, dim),
            v: Linear::new(params, rng, &format!("{prefix}.v"), dim, dim),
            o: Linear::new(params, rng, &format!("{prefix}.o"), dim, dim),
            heads,
            dim,
        }
    }

    /// Self-attention over `batch` sequences of `seq` tokens.
    ///
    /// `x` must be `[batch * seq, dim]`; the result has the same shape.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var, batch: usize, seq: usize) -> Var {
        let (h, d) = (self.heads, self.dim);
        let dh = d / h;
        let q = self.q.forward(g, x);
        let k = self.k.forward(g, x);
        let v = self.v.forward(g, x);
        // [B*S, D] -> [B, S, H, Dh] -> [B, H, S, Dh] -> [B*H, S, Dh]
        let to_heads = |g: &mut Graph<'_>, t: Var| {
            let t = g.reshape(t, &[batch, seq, h, dh]);
            let t = g.permute(t, &[0, 2, 1, 3]);
            g.reshape(t, &[batch * h, seq, dh])
        };
        let qh = to_heads(g, q);
        let kh = to_heads(g, k);
        let vh = to_heads(g, v);
        let kt = g.permute(kh, &[0, 2, 1]);
        let scores = g.batch_matmul(qh, kt);
        let scores = g.scale(scores, 1.0 / (dh as f32).sqrt());
        let attn = g.softmax(scores);
        let ctx = g.batch_matmul(attn, vh);
        // [B*H, S, Dh] -> [B, H, S, Dh] -> [B, S, H, Dh] -> [B*S, D]
        let ctx = g.reshape(ctx, &[batch, h, seq, dh]);
        let ctx = g.permute(ctx, &[0, 2, 1, 3]);
        let ctx = g.reshape(ctx, &[batch * seq, d]);
        self.o.forward(g, ctx)
    }

    /// Tape-free self-attention; scaling and softmax run in place on the
    /// score buffer, head splits/merges reuse arena buffers.
    pub fn infer(
        &self,
        s: &mut InferenceSession<'_, '_>,
        x: &ScratchTensor,
        batch: usize,
        seq: usize,
    ) -> ScratchTensor {
        let (h, d) = (self.heads, self.dim);
        let dh = d / h;
        // [B*S, D] -> [B, S, H, Dh] -> [B, H, S, Dh] -> [B*H, S, Dh]
        fn to_heads(
            s: &mut InferenceSession<'_, '_>,
            mut t: ScratchTensor,
            batch: usize,
            seq: usize,
            h: usize,
            dh: usize,
        ) -> ScratchTensor {
            t.reshape(&[batch, seq, h, dh]);
            let mut out = s.permute(&t, &[0, 2, 1, 3]);
            s.free(t);
            out.reshape(&[batch * h, seq, dh]);
            out
        }
        let q = self.q.infer(s, x);
        let qh = to_heads(s, q, batch, seq, h, dh);
        let k = self.k.infer(s, x);
        let kh = to_heads(s, k, batch, seq, h, dh);
        let v = self.v.infer(s, x);
        let vh = to_heads(s, v, batch, seq, h, dh);
        let kt = s.permute(&kh, &[0, 2, 1]);
        s.free(kh);
        let mut scores = s.batch_matmul(&qh, &kt);
        s.free(qh);
        s.free(kt);
        s.scale_in_place(&mut scores, 1.0 / (dh as f32).sqrt());
        s.softmax_in_place(&mut scores);
        let mut ctx = s.batch_matmul(&scores, &vh);
        s.free(scores);
        s.free(vh);
        // [B*H, S, Dh] -> [B, H, S, Dh] -> [B, S, H, Dh] -> [B*S, D]
        ctx.reshape(&[batch, h, seq, dh]);
        let mut merged = s.permute(&ctx, &[0, 2, 1, 3]);
        s.free(ctx);
        merged.reshape(&[batch * seq, d]);
        let out = self.o.infer(s, &merged);
        s.free(merged);
        out
    }

    /// Quantizes the Q/K/V/O projection weights into `out`.
    pub fn quantize_into(&self, params: &ParamSet, out: &mut QuantizedParams) {
        self.q.quantize_into(params, out);
        self.k.quantize_into(params, out);
        self.v.quantize_into(params, out);
        self.o.quantize_into(params, out);
    }
}

/// Two-layer GELU feed-forward network.
#[derive(Debug, Clone)]
pub struct FeedForward {
    fc1: Linear,
    fc2: Linear,
}

impl FeedForward {
    /// Registers the two projections under `prefix`.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut StdRng,
        prefix: &str,
        dim: usize,
        hidden: usize,
    ) -> Self {
        Self {
            fc1: Linear::new(params, rng, &format!("{prefix}.fc1"), dim, hidden),
            fc2: Linear::new(params, rng, &format!("{prefix}.fc2"), hidden, dim),
        }
    }

    /// Applies `fc2(gelu(fc1(x)))`.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let h = self.fc1.forward(g, x);
        let h = g.gelu(h);
        self.fc2.forward(g, h)
    }

    /// Tape-free `fc2(gelu(fc1(x)))`; GELU mutates the hidden buffer in
    /// place.
    pub fn infer(&self, s: &mut InferenceSession<'_, '_>, x: &ScratchTensor) -> ScratchTensor {
        let mut h = self.fc1.infer(s, x);
        s.gelu_in_place(&mut h);
        let out = self.fc2.infer(s, &h);
        s.free(h);
        out
    }

    /// Quantizes both projection weights into `out`.
    pub fn quantize_into(&self, params: &ParamSet, out: &mut QuantizedParams) {
        self.fc1.quantize_into(params, out);
        self.fc2.quantize_into(params, out);
    }
}

/// A pre-norm transformer block with a trailing norm, matching the paper's
/// "three layernorms, one attention layer, one feedforward layer" block.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ffn: FeedForward,
    ln3: LayerNorm,
}

impl TransformerBlock {
    /// Registers all block parameters under `prefix`.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut StdRng,
        prefix: &str,
        dim: usize,
        heads: usize,
        ffn_hidden: usize,
    ) -> Self {
        Self {
            ln1: LayerNorm::new(params, &format!("{prefix}.ln1"), dim),
            attn: MultiHeadAttention::new(params, rng, &format!("{prefix}.attn"), dim, heads),
            ln2: LayerNorm::new(params, &format!("{prefix}.ln2"), dim),
            ffn: FeedForward::new(params, rng, &format!("{prefix}.ffn"), dim, ffn_hidden),
            ln3: LayerNorm::new(params, &format!("{prefix}.ln3"), dim),
        }
    }

    /// Applies the block to `[batch * seq, dim]` tokens.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var, batch: usize, seq: usize) -> Var {
        let h = self.ln1.forward(g, x);
        let h = self.attn.forward(g, h, batch, seq);
        let x = g.add(x, h);
        let h = self.ln2.forward(g, x);
        let h = self.ffn.forward(g, h);
        let x = g.add(x, h);
        self.ln3.forward(g, x)
    }

    /// Tape-free block forward. Consumes `x` (its buffer is recycled after
    /// the first residual); byte-identical to [`forward`](Self::forward).
    pub fn infer(
        &self,
        s: &mut InferenceSession<'_, '_>,
        x: ScratchTensor,
        batch: usize,
        seq: usize,
    ) -> ScratchTensor {
        let ln = self.ln1.infer(s, &x);
        let mut h = self.attn.infer(s, &ln, batch, seq);
        s.free(ln);
        s.add_assign(&mut h, &x); // h = x + attn(ln1(x))
        s.free(x);
        let ln = self.ln2.infer(s, &h);
        let mut f = self.ffn.infer(s, &ln);
        s.free(ln);
        s.add_assign(&mut f, &h); // f = h + ffn(ln2(h))
        s.free(h);
        let out = self.ln3.infer(s, &f);
        s.free(f);
        out
    }

    /// Quantizes every matmul weight of the block (attention projections
    /// and feed-forward layers; layer norms stay f32) into `out`.
    pub fn quantize_into(&self, params: &ParamSet, out: &mut QuantizedParams) {
        self.attn.quantize_into(params, out);
        self.ffn.quantize_into(params, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn linear_shapes() {
        let mut p = ParamSet::new();
        let mut r = init::rng(0);
        let lin = Linear::new(&mut p, &mut r, "lin", 4, 6);
        let mut g = Graph::new(&p);
        let x = g.input(Tensor::zeros(&[3, 4]));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[3, 6]);
        assert_eq!(lin.in_dim(), 4);
        assert_eq!(lin.out_dim(), 6);
    }

    #[test]
    fn attention_preserves_shape_and_is_finite() {
        let mut p = ParamSet::new();
        let mut r = init::rng(1);
        let attn = MultiHeadAttention::new(&mut p, &mut r, "attn", 8, 2);
        let mut g = Graph::new(&p);
        let x = g.input(init::uniform(&mut r, &[2 * 5, 8], -1.0, 1.0));
        let y = attn.forward(&mut g, x, 2, 5);
        assert_eq!(g.value(y).shape(), &[10, 8]);
        assert!(g.value(y).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn block_forward_backward_runs() {
        let mut p = ParamSet::new();
        let mut r = init::rng(2);
        let block = TransformerBlock::new(&mut p, &mut r, "blk", 8, 2, 16);
        let mut g = Graph::new(&p);
        let x = g.input(init::uniform(&mut r, &[2 * 4, 8], -1.0, 1.0));
        let y = block.forward(&mut g, x, 2, 4);
        let loss = g.mean_all(y);
        let grads = g.backward(loss);
        // Every block parameter should receive a gradient.
        assert_eq!(grads.len(), p.len());
        assert!(grads.global_norm().is_finite());
    }

    #[test]
    fn attention_rows_sum_to_one_effect() {
        // A constant-value input should stay (nearly) constant through
        // softmax-weighted averaging of identical values.
        let mut p = ParamSet::new();
        let mut r = init::rng(3);
        let attn = MultiHeadAttention::new(&mut p, &mut r, "attn", 4, 1);
        let mut g = Graph::new(&p);
        let x = g.input(Tensor::full(&[6, 4], 0.5));
        let y = attn.forward(&mut g, x, 1, 6);
        let d = g.value(y).data();
        for row in 1..6 {
            for j in 0..4 {
                assert!((d[row * 4 + j] - d[j]).abs() < 1e-5, "rows should be identical");
            }
        }
    }
}

//! Tape-free transformer inference: a forward-only executor with scratch
//! buffer reuse.
//!
//! The autodiff [`Graph`](crate::Graph) is the *training* engine: every op
//! clones its input, heap-allocates a node and pins all intermediates on the
//! tape for a backward pass. Server-side decoding never runs backward, so
//! this module provides the inference twin:
//!
//! * [`ScratchArena`] — a pool of reusable `f32` buffers. After the first
//!   forward warms it up, repeated forwards of the same shape perform **no
//!   allocations at all**; the arena exposes counters so tests can prove it.
//! * [`InferenceSession`] — executes the same op vocabulary as `Graph`
//!   (matmul, broadcast adds, layer norm, softmax, GELU, permute, token
//!   gather/compose) but forward-only: activations like GELU and softmax
//!   mutate their buffer in place, parameters are **borrowed** from the
//!   [`ParamSet`] instead of cloned, and nothing is retained between ops.
//!
//! Outputs are **byte-identical** to the `Graph` path: both engines call
//! the very same kernels ([`crate::kernels`], [`crate::parallel`]) in the
//! same floating-point operation order, so `assert_eq!` on bit patterns
//! holds across engines (the workspace equivalence sweep enforces this).

use crate::kernels;
use crate::params::{ParamId, ParamSet};
use crate::quant::{QuantizedMatrix, QuantizedParams};
use crate::tensor::Tensor;

/// Maximum rank a [`ScratchTensor`] can carry (the transformer needs 4).
pub const MAX_RANK: usize = 4;

/// A stack-allocated shape (rank ≤ [`MAX_RANK`]); avoids the per-op `Vec`
/// allocations the `Tensor` shape field would cost on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    fn from_slice(dims: &[usize]) -> Self {
        assert!(dims.len() <= MAX_RANK, "rank {} exceeds MAX_RANK {MAX_RANK}", dims.len());
        let mut a = [0usize; MAX_RANK];
        a[..dims.len()].copy_from_slice(dims);
        Self { dims: a, rank: dims.len() }
    }

    fn as_slice(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    fn numel(&self) -> usize {
        self.as_slice().iter().product()
    }
}

/// Read-only view shared by [`Tensor`] (parameters, external inputs) and
/// [`ScratchTensor`] (arena-owned intermediates), so session ops accept
/// either without copies.
pub trait TensorView {
    /// Underlying row-major data.
    fn view_data(&self) -> &[f32];
    /// Shape of the value.
    fn view_shape(&self) -> &[usize];
}

impl TensorView for Tensor {
    fn view_data(&self) -> &[f32] {
        self.data()
    }
    fn view_shape(&self) -> &[usize] {
        self.shape()
    }
}

impl TensorView for ScratchTensor {
    fn view_data(&self) -> &[f32] {
        self.data()
    }
    fn view_shape(&self) -> &[usize] {
        self.shape.as_slice()
    }
}

/// An intermediate value whose buffer is leased from a [`ScratchArena`].
///
/// The backing buffer keeps its high-water length and the tensor uses a
/// prefix of it, so a warmed-up arena never re-zeroes or reallocates.
/// Return it with [`InferenceSession::free`] when dead so later ops can
/// reuse the buffer; a dropped (not freed) tensor simply costs a fresh
/// allocation next forward.
#[derive(Debug)]
pub struct ScratchTensor {
    data: Vec<f32>,
    shape: Shape,
}

impl ScratchTensor {
    /// Shape of the value.
    pub fn shape(&self) -> &[usize] {
        self.shape.as_slice()
    }

    /// Row-major data (the leased prefix of the backing buffer).
    pub fn data(&self) -> &[f32] {
        &self.data[..self.shape.numel()]
    }

    /// Mutable row-major data (the leased prefix of the backing buffer).
    pub fn data_mut(&mut self) -> &mut [f32] {
        let numel = self.shape.numel();
        &mut self.data[..numel]
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Reinterprets the shape without moving data (row-major reshape).
    ///
    /// # Panics
    ///
    /// Panics if the element count changes.
    pub fn reshape(&mut self, shape: &[usize]) {
        let s = Shape::from_slice(shape);
        assert_eq!(s.numel(), self.shape.numel(), "reshape to {shape:?} changes element count");
        self.shape = s;
    }

    /// Row `i` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if not rank 2 or out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.rank, 2, "row() needs rank 2");
        let d = self.shape.dims[1];
        // Slice the live prefix, not the high-water backing buffer: an
        // out-of-range row must panic, not read a previous lease's data.
        &self.data()[i * d..(i + 1) * d]
    }
}

/// A reusable pool of forward-pass buffers.
///
/// `take` hands out the best-fitting free buffer (smallest sufficient
/// capacity) and only allocates when nothing fits, so a warmed-up arena
/// services an entire forward pass allocation-free. The counters report
/// every genuine allocation, which is how the reuse tests prove the
/// steady state allocates nothing.
#[derive(Debug, Default)]
pub struct ScratchArena {
    free: Vec<Vec<f32>>,
    /// Separate pool for the quantized tier's activation-code buffers
    /// (int8-valued, stored widened to i16 for the kernel's pair
    /// broadcasts; same leasing discipline, same counters).
    free_bytes: Vec<Vec<i16>>,
    allocated_buffers: usize,
    allocated_bytes: usize,
}

impl ScratchArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        // Inference recycles the same multi-KB..MB buffers per forward; keep
        // glibc from re-faulting them (no-op after the first call).
        crate::alloc::tune_for_tapes();
        Self::default()
    }

    /// Number of buffers ever allocated (monotonic; flat once warm).
    pub fn allocated_buffers(&self) -> usize {
        self.allocated_buffers
    }

    /// Total bytes ever allocated across buffers (monotonic; flat once
    /// warm).
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }

    fn take(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<usize> = None;
        for (i, b) in self.free.iter().enumerate() {
            if b.len() >= len && best.is_none_or(|j| b.len() < self.free[j].len()) {
                best = Some(i);
            }
        }
        match best {
            // Buffers keep their high-water length (the lease uses a prefix
            // slice), so the steady state re-zeroes nothing: every op fully
            // overwrites the region it leases.
            Some(i) => self.free.swap_remove(i),
            None => {
                self.allocated_buffers += 1;
                self.allocated_bytes += len * std::mem::size_of::<f32>();
                vec![0.0f32; len]
            }
        }
    }

    fn put(&mut self, buf: Vec<f32>) {
        self.free.push(buf);
    }

    fn take_bytes(&mut self, len: usize) -> Vec<i16> {
        let mut best: Option<usize> = None;
        for (i, b) in self.free_bytes.iter().enumerate() {
            if b.len() >= len && best.is_none_or(|j| b.len() < self.free_bytes[j].len()) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => self.free_bytes.swap_remove(i),
            None => {
                self.allocated_buffers += 1;
                self.allocated_bytes += len * std::mem::size_of::<i16>();
                vec![0i16; len]
            }
        }
    }

    fn put_bytes(&mut self, buf: Vec<i16>) {
        self.free_bytes.push(buf);
    }
}

/// A forward-only executor over a [`ParamSet`] with arena-backed buffers.
///
/// Mirrors the [`Graph`](crate::Graph) op vocabulary minus the losses, with
/// the same floating-point operation order per op; see the module docs for
/// the byte-identity contract.
///
/// ```
/// use easz_tensor::{init, nn, InferenceSession, ParamSet, ScratchArena, Tensor};
/// let mut params = ParamSet::new();
/// let mut rng = init::rng(7);
/// let lin = nn::Linear::new(&mut params, &mut rng, "lin", 4, 3);
/// let mut arena = ScratchArena::new();
/// let mut s = InferenceSession::new(&params, &mut arena);
/// let x = s.copy_in(&Tensor::zeros(&[2, 4]));
/// let y = lin.infer(&mut s, &x);
/// assert_eq!(y.shape(), &[2, 3]);
/// s.free(x);
/// s.free(y);
/// ```
pub struct InferenceSession<'p, 'a> {
    params: &'p ParamSet,
    /// When set, the session runs the int8 fast tier: `Linear` layers
    /// dispatch to [`qmatmul`](Self::qmatmul) for weights present in the
    /// table and cap activation precision at f16 between layers.
    quant: Option<&'p QuantizedParams>,
    arena: &'a mut ScratchArena,
}

impl<'p, 'a> InferenceSession<'p, 'a> {
    /// Starts a session over `params` with buffers leased from `arena`
    /// (the bit-exact f32 reference mode).
    pub fn new(params: &'p ParamSet, arena: &'a mut ScratchArena) -> Self {
        Self { params, quant: None, arena }
    }

    /// Starts a session in the quantized int8 tier: layers consult `quant`
    /// for pre-packed weights and fall back to the f32 path for ids not in
    /// the table.
    pub fn with_quantized(
        params: &'p ParamSet,
        quant: &'p QuantizedParams,
        arena: &'a mut ScratchArena,
    ) -> Self {
        Self { params, quant: Some(quant), arena }
    }

    /// Borrows a parameter value (no clone — the `Graph` engine copies the
    /// tensor onto the tape here).
    pub fn param(&self, id: ParamId) -> &'p Tensor {
        let params: &'p ParamSet = self.params;
        params.value(id)
    }

    /// The quantized form of parameter `id`, if this session runs the
    /// quantized tier and the id was quantized.
    pub fn quantized(&self, id: ParamId) -> Option<&'p QuantizedMatrix> {
        self.quant.and_then(|q| q.get(id))
    }

    /// Whether this session runs the quantized int8 tier.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Returns a dead intermediate's buffer to the arena.
    pub fn free(&mut self, t: ScratchTensor) {
        self.arena.put(t.data);
    }

    fn alloc(&mut self, shape: &[usize]) -> ScratchTensor {
        let shape = Shape::from_slice(shape);
        ScratchTensor { data: self.arena.take(shape.numel()), shape }
    }

    /// Copies an external value into the arena (the inference analogue of
    /// `Graph::input` for values that later ops mutate).
    pub fn copy_in(&mut self, v: &impl TensorView) -> ScratchTensor {
        let mut out = self.alloc(v.view_shape());
        out.data_mut().copy_from_slice(v.view_data());
        out
    }

    /// Gathers rows of a rank-2 value: `out[i] = src[rows[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not rank 2 or an index is out of bounds.
    pub fn gather_rows(&mut self, src: &impl TensorView, rows: &[usize]) -> ScratchTensor {
        assert_eq!(src.view_shape().len(), 2, "gather_rows needs rank 2");
        let d = src.view_shape()[1];
        let mut out = self.alloc(&[rows.len(), d]);
        let data = src.view_data();
        let dst = out.data_mut();
        for (i, &r) in rows.iter().enumerate() {
            dst[i * d..(i + 1) * d].copy_from_slice(&data[r * d..(r + 1) * d]);
        }
        out
    }

    /// Rank-2 matrix product (same parallel kernel as `Tensor::matmul`).
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank 2 with matching inner dims.
    pub fn matmul(&mut self, a: &impl TensorView, b: &impl TensorView) -> ScratchTensor {
        let (ashape, bshape) = (a.view_shape(), b.view_shape());
        assert_eq!(ashape.len(), 2, "matmul lhs must be rank 2, got {ashape:?}");
        assert_eq!(bshape.len(), 2, "matmul rhs must be rank 2, got {bshape:?}");
        let (m, k) = (ashape[0], ashape[1]);
        let (k2, n) = (bshape[0], bshape[1]);
        assert_eq!(k, k2, "matmul inner dims: {ashape:?} x {bshape:?}");
        let mut out = self.alloc(&[m, n]);
        crate::parallel::par_matmul(a.view_data(), b.view_data(), out.data_mut(), m, k, n);
        out
    }

    /// Rank-2 matrix product against a pre-quantized weight matrix: the
    /// activation rows are quantized to int8 on the fly (per-row scales),
    /// multiplied through the widening int8 kernel, and dequantized into
    /// f32 output. The int8 staging buffers are leased from the arena like
    /// every other intermediate, so the zero-steady-state-allocation
    /// contract holds for the quantized tier too.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not rank 2 or its width differs from `qw.k()`.
    pub fn qmatmul(&mut self, a: &impl TensorView, qw: &QuantizedMatrix) -> ScratchTensor {
        let ashape = a.view_shape();
        assert_eq!(ashape.len(), 2, "qmatmul lhs must be rank 2, got {ashape:?}");
        let (m, k) = (ashape[0], ashape[1]);
        assert_eq!(k, qw.k(), "qmatmul inner dims: {ashape:?} x [{}, {}]", qw.k(), qw.n());
        let k_pad = qw.k_pad();
        let mut qa = self.arena.take_bytes(m * k_pad);
        let mut scales = self.arena.take(m);
        kernels::quantize_rows(a.view_data(), k, k_pad, &mut qa[..m * k_pad], &mut scales[..m]);
        let mut out = self.alloc(&[m, qw.n()]);
        crate::parallel::par_qmatmul(
            &qa[..m * k_pad],
            &scales[..m],
            qw.packed(),
            qw.scales(),
            out.data_mut(),
            m,
            k_pad,
            qw.n(),
        );
        self.arena.put_bytes(qa);
        self.arena.put(scales);
        out
    }

    /// Rounds every element to its nearest f16 value in place (storage
    /// stays f32-width) — the quantized tier's inter-layer activation
    /// precision cap.
    pub fn f16_round_in_place(&mut self, t: &mut ScratchTensor) {
        kernels::f16_round_slice(t.data_mut());
    }

    /// Rank-3 batched matrix product (same kernel as
    /// `Tensor::batch_matmul`).
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank 3 with matching batch/inner dims.
    pub fn batch_matmul(&mut self, a: &impl TensorView, b: &impl TensorView) -> ScratchTensor {
        let (ashape, bshape) = (a.view_shape(), b.view_shape());
        assert_eq!(ashape.len(), 3, "batch_matmul lhs rank");
        assert_eq!(bshape.len(), 3, "batch_matmul rhs rank");
        let (g, m, k) = (ashape[0], ashape[1], ashape[2]);
        let (g2, k2, n) = (bshape[0], bshape[1], bshape[2]);
        assert_eq!(g, g2, "batch_matmul batch dims");
        assert_eq!(k, k2, "batch_matmul inner dims");
        let mut out = self.alloc(&[g, m, n]);
        crate::parallel::par_batch_matmul(a.view_data(), b.view_data(), out.data_mut(), g, m, k, n);
        out
    }

    /// `a[r, d] += b[s, d]` with rhs rows tiled over blocks of `s` rows, in
    /// place on `a` (bias addition, positional embeddings).
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[r, d]` / `[s, d]` with `r % s == 0`.
    pub fn add_broadcast_rows(&mut self, a: &mut ScratchTensor, b: &impl TensorView) {
        assert_eq!(a.shape().len(), 2, "add_broadcast_rows lhs must be rank 2");
        assert_eq!(b.view_shape().len(), 2, "add_broadcast_rows rhs must be rank 2");
        let (r, d) = (a.shape()[0], a.shape()[1]);
        let (s, d2) = (b.view_shape()[0], b.view_shape()[1]);
        assert_eq!(d, d2, "broadcast width mismatch");
        assert!(s > 0 && r % s == 0, "rows {r} not a multiple of broadcast rows {s}");
        kernels::add_rows_broadcast(a.data_mut(), b.view_data(), d, s);
    }

    /// `dst = a + dst` elementwise, in place on `dst` (residual adds; the
    /// operand order matches `Graph::add(a, dst)`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, dst: &mut ScratchTensor, a: &impl TensorView) {
        assert_eq!(dst.shape(), a.view_shape(), "add_assign shape mismatch");
        for (o, &x) in dst.data_mut().iter_mut().zip(a.view_data()) {
            *o += x;
        }
    }

    /// Layer norm over the last axis into a fresh buffer (the input stays
    /// live for the residual connection, exactly like the `Graph` op).
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` are not `[d]` vectors matching the last
    /// axis.
    pub fn layer_norm(
        &mut self,
        x: &impl TensorView,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
    ) -> ScratchTensor {
        let d = *x.view_shape().last().expect("layer_norm needs rank >= 1");
        assert_eq!(gamma.numel(), d, "gamma size");
        assert_eq!(beta.numel(), d, "beta size");
        let mut out = self.copy_in(x);
        kernels::layer_norm_last_axis(out.data_mut(), d, gamma.data(), beta.data(), eps);
        out
    }

    /// Softmax over the last axis, in place.
    pub fn softmax_in_place(&mut self, t: &mut ScratchTensor) {
        let d = *t.shape().last().expect("softmax needs rank >= 1");
        kernels::softmax_last_axis(t.data_mut(), d);
    }

    /// GELU activation (tanh approximation), in place.
    pub fn gelu_in_place(&mut self, t: &mut ScratchTensor) {
        for v in t.data_mut() {
            *v = kernels::gelu_fwd(*v);
        }
    }

    /// Multiplies by a constant, in place.
    pub fn scale_in_place(&mut self, t: &mut ScratchTensor, s: f32) {
        for v in t.data_mut() {
            *v *= s;
        }
    }

    /// Axis permutation into a fresh buffer (shared odometer kernel).
    ///
    /// # Panics
    ///
    /// Panics if `axes` is not a permutation of `0..rank`.
    pub fn permute(&mut self, a: &ScratchTensor, axes: &[usize]) -> ScratchTensor {
        let mut new_shape = [0usize; MAX_RANK];
        for (d, &ax) in axes.iter().enumerate() {
            new_shape[d] = a.shape()[ax];
        }
        let mut out = self.alloc(&new_shape[..axes.len()]);
        kernels::permute_into(a.data(), a.shape(), axes, out.data_mut());
        out
    }

    /// Builds a token matrix from encoder rows and a learned fill token:
    /// `map[i] = Some(j)` copies row `j` of `src`, `None` copies the single
    /// row of `fill` (the mask token).
    ///
    /// # Panics
    ///
    /// Panics if widths differ, `fill` is not a single row, or an index is
    /// out of bounds.
    pub fn compose_tokens(
        &mut self,
        src: &ScratchTensor,
        fill: &Tensor,
        map: &[Option<usize>],
    ) -> ScratchTensor {
        assert_eq!(src.shape().len(), 2, "compose_tokens src rank");
        assert_eq!(fill.rank(), 2, "compose_tokens fill rank");
        assert_eq!(fill.shape()[0], 1, "fill must be a single row");
        let d = src.shape()[1];
        assert_eq!(fill.shape()[1], d, "fill width mismatch");
        let mut out = self.alloc(&[map.len(), d]);
        let dst_all = out.data_mut();
        for (i, slot) in map.iter().enumerate() {
            let dst = &mut dst_all[i * d..(i + 1) * d];
            match slot {
                Some(j) => dst.copy_from_slice(src.row(*j)),
                None => dst.copy_from_slice(fill.row(0)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::{init, nn};

    fn seeded(shape: &[usize], seed: u64) -> Tensor {
        let n: usize = shape.iter().product();
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let data: Vec<f32> = (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1 << 24) as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(data, shape)
    }

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn transformer_block_infer_is_bit_identical_to_graph() {
        let mut p = ParamSet::new();
        let mut r = init::rng(11);
        let block = nn::TransformerBlock::new(&mut p, &mut r, "blk", 16, 4, 32);
        let input = seeded(&[3 * 6, 16], 5);

        let mut g = Graph::new(&p);
        let x = g.input(input.clone());
        let y = block.forward(&mut g, x, 3, 6);
        let tape = g.value(y).data().to_vec();

        let mut arena = ScratchArena::new();
        let mut s = InferenceSession::new(&p, &mut arena);
        let x = s.copy_in(&input);
        let y = block.infer(&mut s, x, 3, 6);
        assert_eq!(bits(&tape), bits(y.data()), "tape vs tape-free must match bit-for-bit");
        s.free(y);
    }

    #[test]
    fn arena_does_not_grow_across_repeated_forwards() {
        let mut p = ParamSet::new();
        let mut r = init::rng(3);
        let block = nn::TransformerBlock::new(&mut p, &mut r, "blk", 8, 2, 16);
        let input = seeded(&[2 * 4, 8], 9);
        let mut arena = ScratchArena::new();
        let run = |arena: &mut ScratchArena| {
            let mut s = InferenceSession::new(&p, arena);
            let x = s.copy_in(&input);
            let y = block.infer(&mut s, x, 2, 4);
            s.free(y);
        };
        run(&mut arena);
        let (buffers, bytes) = (arena.allocated_buffers(), arena.allocated_bytes());
        assert!(buffers > 0, "first forward must warm the arena");
        for _ in 0..8 {
            run(&mut arena);
        }
        assert_eq!(arena.allocated_buffers(), buffers, "steady state must not allocate buffers");
        assert_eq!(arena.allocated_bytes(), bytes, "steady state must not allocate bytes");
    }

    #[test]
    fn session_ops_match_graph_ops_bitwise() {
        // Each op in isolation, not just the composed block.
        let mut p = ParamSet::new();
        let gamma = p.add("gamma", Tensor::full(&[5], 1.3));
        let beta = p.add("beta", Tensor::full(&[5], -0.2));
        let x = seeded(&[4, 5], 21);
        let pos = seeded(&[2, 5], 22);

        let mut g = Graph::new(&p);
        let xv = g.input(x.clone());
        let pv = g.input(pos.clone());
        let (gv, bv) = (g.param(gamma), g.param(beta));
        let a = g.add_broadcast_rows(xv, pv);
        let b = g.layer_norm(a, gv, bv, 1e-5);
        let c = g.gelu(b);
        let d = g.softmax(c);
        let tape = g.value(d).data().to_vec();

        let mut arena = ScratchArena::new();
        let mut s = InferenceSession::new(&p, &mut arena);
        let mut a = s.copy_in(&x);
        s.add_broadcast_rows(&mut a, &pos);
        let mut b = s.layer_norm(&a, s.param(gamma), s.param(beta), 1e-5);
        s.free(a);
        s.gelu_in_place(&mut b);
        s.softmax_in_place(&mut b);
        assert_eq!(bits(&tape), bits(b.data()));
        s.free(b);
    }

    #[test]
    fn quantized_block_tracks_reference_and_reuses_arena() {
        let mut p = ParamSet::new();
        let mut r = init::rng(11);
        let block = nn::TransformerBlock::new(&mut p, &mut r, "blk", 16, 4, 32);
        let mut q = QuantizedParams::new();
        block.quantize_into(&p, &mut q);
        assert_eq!(q.len(), 6, "4 attention projections + 2 ffn layers");
        let input = seeded(&[3 * 6, 16], 5);

        // Bit-exact f32 reference.
        let mut arena = ScratchArena::new();
        let mut s = InferenceSession::new(&p, &mut arena);
        let x = s.copy_in(&input);
        let y = block.infer(&mut s, x, 3, 6);
        let reference = y.data().to_vec();
        s.free(y);

        // Quantized tier: deterministic, arena-steady, bounded divergence.
        let mut arena = ScratchArena::new();
        let run = |arena: &mut ScratchArena| {
            let mut s = InferenceSession::with_quantized(&p, &q, arena);
            assert!(s.is_quantized());
            let x = s.copy_in(&input);
            let y = block.infer(&mut s, x, 3, 6);
            let out = y.data().to_vec();
            s.free(y);
            out
        };
        let first = run(&mut arena);
        let (buffers, bytes) = (arena.allocated_buffers(), arena.allocated_bytes());
        assert!(buffers > 0, "first quantized forward must warm the arena");
        for _ in 0..4 {
            let again = run(&mut arena);
            assert_eq!(bits(&first), bits(&again), "quantized tier must be deterministic");
        }
        assert_eq!(
            (arena.allocated_buffers(), arena.allocated_bytes()),
            (buffers, bytes),
            "quantized steady state must not allocate"
        );
        assert_ne!(bits(&first), bits(&reference), "the int8 tier must actually be in play");
        // Post-layer-norm outputs are O(1); int8+f16 error stays well under
        // this after one block.
        let worst = first.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(worst < 0.25, "quantized block diverged too far from f32: {worst}");
    }

    #[test]
    fn gather_permute_compose_round_trip() {
        let mut p = ParamSet::new();
        let fill = p.add("fill", seeded(&[1, 4], 31));
        let src = seeded(&[3, 4], 30);
        let mut arena = ScratchArena::new();
        let mut s = InferenceSession::new(&p, &mut arena);
        let a = s.copy_in(&src);
        let picked = s.gather_rows(&a, &[2, 0]);
        assert_eq!(picked.row(0), src.row(2));
        let composed = s.compose_tokens(&picked, s.param(fill), &[Some(1), None, Some(0)]);
        assert_eq!(composed.row(0), src.row(0));
        assert_eq!(composed.row(1), s.param(fill).row(0));
        let mut m = s.copy_in(&seeded(&[2, 3, 4], 33));
        m.reshape(&[2, 3, 4]);
        let t = s.permute(&m, &[0, 2, 1]);
        let expect = seeded(&[2, 3, 4], 33).permuted(&[0, 2, 1]);
        assert_eq!(t.data(), expect.data());
        for t in [a, picked, composed, m, t] {
            s.free(t);
        }
    }
}

//! Binary weight (de)serialisation.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "EASZWT01"                       8 bytes
//! count  u32                              number of tensors
//! per tensor:
//!   name_len u16, name bytes (utf-8)
//!   rank u8, dims u32 * rank
//!   f32 payload (numel * 4 bytes)
//! ```
//!
//! The format is intentionally simple; the model-size claims of the paper
//! (8.7 MB reconstruction network) are measured against this encoding.

use crate::params::ParamSet;
use crate::tensor::Tensor;
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"EASZWT01";

/// Error loading or saving a weight file.
#[derive(Debug)]
pub enum WeightsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid weight file.
    Format(String),
    /// The file's tensors do not match the parameter set.
    Mismatch(String),
}

impl fmt::Display for WeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "weights i/o error: {e}"),
            Self::Format(m) => write!(f, "invalid weight file: {m}"),
            Self::Mismatch(m) => write!(f, "weight/parameter mismatch: {m}"),
        }
    }
}

impl Error for WeightsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WeightsError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Serialises all parameters of `params` to `writer`.
///
/// # Errors
///
/// Returns [`WeightsError::Io`] on write failure.
pub fn save_params<W: Write>(params: &ParamSet, mut writer: W) -> Result<(), WeightsError> {
    writer.write_all(MAGIC)?;
    writer.write_all(&(params.len() as u32).to_le_bytes())?;
    for id in params.ids() {
        let name = params.name(id).as_bytes();
        writer.write_all(&(name.len() as u16).to_le_bytes())?;
        writer.write_all(name)?;
        let t = params.value(id);
        writer.write_all(&[t.rank() as u8])?;
        for &d in t.shape() {
            writer.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in t.data() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Saves parameters to a file path, creating parent directories.
///
/// # Errors
///
/// Returns [`WeightsError::Io`] on filesystem failure.
pub fn save_params_file(params: &ParamSet, path: impl AsRef<Path>) -> Result<(), WeightsError> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    save_params(params, std::io::BufWriter::new(file))
}

/// Loads weights from `reader` into an existing parameter set.
///
/// Tensors are matched by name; shapes must agree exactly. Extra tensors in
/// the file or missing tensors in the set are errors so stale caches fail
/// loudly.
///
/// # Errors
///
/// Returns [`WeightsError::Format`] for malformed files and
/// [`WeightsError::Mismatch`] when names/shapes disagree with `params`.
pub fn load_params<R: Read>(params: &mut ParamSet, mut reader: R) -> Result<(), WeightsError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(WeightsError::Format("bad magic".into()));
    }
    let mut u32b = [0u8; 4];
    reader.read_exact(&mut u32b)?;
    let count = u32::from_le_bytes(u32b) as usize;
    if count != params.len() {
        return Err(WeightsError::Mismatch(format!(
            "file has {count} tensors, parameter set has {}",
            params.len()
        )));
    }
    for _ in 0..count {
        let mut u16b = [0u8; 2];
        reader.read_exact(&mut u16b)?;
        let name_len = u16::from_le_bytes(u16b) as usize;
        let mut name_buf = vec![0u8; name_len];
        reader.read_exact(&mut name_buf)?;
        let name = String::from_utf8(name_buf)
            .map_err(|_| WeightsError::Format("non-utf8 tensor name".into()))?;
        let mut rank_b = [0u8; 1];
        reader.read_exact(&mut rank_b)?;
        let rank = rank_b[0] as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            reader.read_exact(&mut u32b)?;
            shape.push(u32::from_le_bytes(u32b) as usize);
        }
        let numel: usize = shape.iter().product();
        let mut data = vec![0f32; numel];
        let mut f32b = [0u8; 4];
        for v in data.iter_mut() {
            reader.read_exact(&mut f32b)?;
            *v = f32::from_le_bytes(f32b);
        }
        let id = params
            .id_of(&name)
            .ok_or_else(|| WeightsError::Mismatch(format!("unknown tensor {name:?}")))?;
        if params.value(id).shape() != shape.as_slice() {
            return Err(WeightsError::Mismatch(format!(
                "tensor {name:?}: file shape {:?} vs param shape {:?}",
                shape,
                params.value(id).shape()
            )));
        }
        *params.value_mut(id) = Tensor::from_vec(data, &shape);
    }
    Ok(())
}

/// Loads weights from a file path into an existing parameter set.
///
/// # Errors
///
/// See [`load_params`].
pub fn load_params_file(params: &mut ParamSet, path: impl AsRef<Path>) -> Result<(), WeightsError> {
    let file = std::fs::File::open(path)?;
    load_params(params, std::io::BufReader::new(file))
}

/// Total on-disk size of a parameter set under this format, in bytes.
pub fn serialized_size(params: &ParamSet) -> usize {
    let mut size = 8 + 4;
    for id in params.ids() {
        size += 2 + params.name(id).len();
        size += 1 + 4 * params.value(id).rank();
        size += 4 * params.value(id).numel();
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn sample_params() -> ParamSet {
        let mut p = ParamSet::new();
        let mut r = init::rng(11);
        p.add("a.w", init::uniform(&mut r, &[3, 4], -1.0, 1.0));
        p.add("a.b", init::uniform(&mut r, &[4], -1.0, 1.0));
        p.add("scalarish", Tensor::scalar(2.5));
        p
    }

    #[test]
    fn round_trip_preserves_values() {
        let p = sample_params();
        let mut buf = Vec::new();
        save_params(&p, &mut buf).expect("save");
        assert_eq!(buf.len(), serialized_size(&p));

        let mut q = sample_params();
        // Perturb before loading to prove load overwrites.
        q.value_mut(q.id_of("a.w").unwrap()).data_mut()[0] = 99.0;
        load_params(&mut q, &buf[..]).expect("load");
        for id in p.ids() {
            assert_eq!(p.value(id), q.value(id), "tensor {}", p.name(id));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut p = sample_params();
        let err = load_params(&mut p, &b"NOTMAGIC rest"[..]).unwrap_err();
        assert!(matches!(err, WeightsError::Format(_)), "{err}");
    }

    #[test]
    fn shape_mismatch_rejected() {
        let p = sample_params();
        let mut buf = Vec::new();
        save_params(&p, &mut buf).expect("save");
        let mut q = ParamSet::new();
        let mut r = init::rng(11);
        q.add("a.w", init::uniform(&mut r, &[4, 3], -1.0, 1.0)); // transposed shape
        q.add("a.b", init::uniform(&mut r, &[4], -1.0, 1.0));
        q.add("scalarish", Tensor::scalar(0.0));
        let err = load_params(&mut q, &buf[..]).unwrap_err();
        assert!(matches!(err, WeightsError::Mismatch(_)), "{err}");
    }

    #[test]
    fn count_mismatch_rejected() {
        let p = sample_params();
        let mut buf = Vec::new();
        save_params(&p, &mut buf).expect("save");
        let mut q = ParamSet::new();
        q.add("only", Tensor::scalar(0.0));
        let err = load_params(&mut q, &buf[..]).unwrap_err();
        assert!(matches!(err, WeightsError::Mismatch(_)), "{err}");
    }
}

//! MSCN (mean-subtracted contrast-normalised) coefficients and
//! (asymmetric) generalised Gaussian fitting — the feature substrate of
//! BRISQUE and NIQE (Mittal et al., TIP 2012).

use easz_image::{color, Channels, ImageF32};

/// Gaussian weights for the 7×7 local window (sigma = 7/6, as in BRISQUE).
fn gaussian_kernel7() -> [f32; 7] {
    let sigma = 7.0f32 / 6.0;
    let mut k = [0f32; 7];
    let mut sum = 0.0;
    for (i, v) in k.iter_mut().enumerate() {
        let x = i as f32 - 3.0;
        *v = (-x * x / (2.0 * sigma * sigma)).exp();
        sum += *v;
    }
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Computes the MSCN coefficient map of an image's luma plane.
///
/// `mscn(x) = (I(x) - mu(x)) / (sigma(x) + C)` with a separable 7×7
/// Gaussian window and `C = 1/255`.
pub fn mscn_map(img: &ImageF32) -> ImageF32 {
    let y = color::luma(img);
    let (w, h) = (y.width(), y.height());
    let k = gaussian_kernel7();
    // Separable filtering for mu.
    let mut mu_row = ImageF32::new(w, h, Channels::Gray);
    for yy in 0..h {
        for xx in 0..w {
            let mut acc = 0.0;
            for (i, &kv) in k.iter().enumerate() {
                acc += kv * y.get_clamped(xx as isize + i as isize - 3, yy as isize, 0);
            }
            mu_row.set(xx, yy, 0, acc);
        }
    }
    let mut mu = ImageF32::new(w, h, Channels::Gray);
    for yy in 0..h {
        for xx in 0..w {
            let mut acc = 0.0;
            for (i, &kv) in k.iter().enumerate() {
                acc += kv * mu_row.get_clamped(xx as isize, yy as isize + i as isize - 3, 0);
            }
            mu.set(xx, yy, 0, acc);
        }
    }
    // sigma via E[x^2] - mu^2 with the same window.
    let mut sq_row = ImageF32::new(w, h, Channels::Gray);
    for yy in 0..h {
        for xx in 0..w {
            let mut acc = 0.0;
            for (i, &kv) in k.iter().enumerate() {
                let v = y.get_clamped(xx as isize + i as isize - 3, yy as isize, 0);
                acc += kv * v * v;
            }
            sq_row.set(xx, yy, 0, acc);
        }
    }
    let mut out = ImageF32::new(w, h, Channels::Gray);
    const C: f32 = 1.0 / 255.0;
    for yy in 0..h {
        for xx in 0..w {
            let mut esq = 0.0;
            for (i, &kv) in k.iter().enumerate() {
                esq += kv * sq_row.get_clamped(xx as isize, yy as isize + i as isize - 3, 0);
            }
            let m = mu.get(xx, yy, 0);
            let var = (esq - m * m).max(0.0);
            out.set(xx, yy, 0, (y.get(xx, yy, 0) - m) / (var.sqrt() + C));
        }
    }
    out
}

/// Parameters of a generalised Gaussian fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GgdFit {
    /// Shape parameter (2 = Gaussian, 1 = Laplacian; smaller = heavier tail).
    pub alpha: f64,
    /// Variance.
    pub sigma_sq: f64,
}

/// Parameters of an asymmetric generalised Gaussian fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggdFit {
    /// Shape parameter.
    pub alpha: f64,
    /// Mean term `eta` (captures the asymmetry of product coefficients).
    pub eta: f64,
    /// Left-tail variance.
    pub sigma_l_sq: f64,
    /// Right-tail variance.
    pub sigma_r_sq: f64,
}

fn gamma_fn(x: f64) -> f64 {
    // Lanczos approximation, good to ~1e-10 over our range.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// The GGD moment-ratio function `r(alpha) = Γ(2/a)² / (Γ(1/a)Γ(3/a))`.
fn ggd_ratio(alpha: f64) -> f64 {
    let g1 = gamma_fn(1.0 / alpha);
    let g2 = gamma_fn(2.0 / alpha);
    let g3 = gamma_fn(3.0 / alpha);
    g2 * g2 / (g1 * g3)
}

/// Inverts `ggd_ratio` by bisection over `alpha ∈ [0.2, 10]`.
fn invert_ggd_ratio(target: f64) -> f64 {
    let (mut lo, mut hi) = (0.2f64, 10.0f64);
    // ggd_ratio is increasing in alpha.
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if ggd_ratio(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Fits a symmetric GGD to samples via moment matching.
///
/// Returns a Gaussian fallback for degenerate (near-constant) inputs.
pub fn fit_ggd(samples: &[f32]) -> GgdFit {
    let mut n = 0.0f64;
    let mut mean_abs = 0.0f64;
    let mut var = 0.0f64;
    for &v in samples {
        if !v.is_finite() {
            continue; // robust to degenerate inputs
        }
        let v = v as f64;
        n += 1.0;
        mean_abs += v.abs();
        var += v * v;
    }
    if n == 0.0 {
        return GgdFit { alpha: 2.0, sigma_sq: 0.0 };
    }
    mean_abs /= n;
    var /= n;
    if var < 1e-12 || mean_abs < 1e-12 {
        return GgdFit { alpha: 2.0, sigma_sq: var };
    }
    let rho = mean_abs * mean_abs / var;
    GgdFit { alpha: invert_ggd_ratio(rho), sigma_sq: var }
}

/// Fits an asymmetric GGD to samples via the BRISQUE moment estimator.
pub fn fit_aggd(samples: &[f32]) -> AggdFit {
    let mut nl = 0usize;
    let mut nr = 0usize;
    let mut sl = 0.0f64;
    let mut sr = 0.0f64;
    let mut mean_abs = 0.0f64;
    let mut n = 0.0f64;
    for &v in samples {
        if !v.is_finite() {
            continue; // robust to degenerate inputs
        }
        let v = v as f64;
        n += 1.0;
        mean_abs += v.abs();
        if v < 0.0 {
            nl += 1;
            sl += v * v;
        } else {
            nr += 1;
            sr += v * v;
        }
    }
    if n == 0.0 || (sl + sr) < 1e-12 {
        return AggdFit { alpha: 2.0, eta: 0.0, sigma_l_sq: 0.0, sigma_r_sq: 0.0 };
    }
    mean_abs /= n;
    let sigma_l_sq = if nl > 0 { sl / nl as f64 } else { 1e-12 };
    let sigma_r_sq = if nr > 0 { sr / nr as f64 } else { 1e-12 };
    let gamma_hat = (sigma_l_sq.sqrt() / sigma_r_sq.sqrt()).max(1e-6);
    let r_hat = mean_abs * mean_abs / ((sl + sr) / n);
    let rr_hat = r_hat * (gamma_hat.powi(3) + 1.0) * (gamma_hat + 1.0)
        / (gamma_hat * gamma_hat + 1.0).powi(2);
    let alpha = invert_ggd_ratio(rr_hat.clamp(1e-6, 0.999));
    let g1 = gamma_fn(1.0 / alpha);
    let g2 = gamma_fn(2.0 / alpha);
    let eta = (sigma_r_sq.sqrt() - sigma_l_sq.sqrt()) * g2 / g1;
    AggdFit { alpha, eta, sigma_l_sq, sigma_r_sq }
}

/// The four neighbour-product maps of an MSCN map: horizontal, vertical and
/// the two diagonals.
pub fn paired_products(mscn: &ImageF32) -> [Vec<f32>; 4] {
    let (w, h) = (mscn.width(), mscn.height());
    let mut hp = Vec::with_capacity(w.saturating_sub(1) * h);
    let mut vp = Vec::with_capacity(w * h.saturating_sub(1));
    let mut d1 = Vec::new();
    let mut d2 = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let v = mscn.get(x, y, 0);
            if x + 1 < w {
                hp.push(v * mscn.get(x + 1, y, 0));
            }
            if y + 1 < h {
                vp.push(v * mscn.get(x, y + 1, 0));
            }
            if x + 1 < w && y + 1 < h {
                d1.push(v * mscn.get(x + 1, y + 1, 0));
            }
            if x >= 1 && y + 1 < h {
                d2.push(v * mscn.get(x - 1, y + 1, 0));
            }
        }
    }
    [hp, vp, d1, d2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(3.0) - 2.0).abs() < 1e-9);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn ggd_fit_recovers_gaussian() {
        // Box-Muller Gaussian samples -> alpha should be near 2.
        let mut s = 12345u64;
        let mut samples = Vec::with_capacity(20_000);
        for _ in 0..10_000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let u1 = ((s >> 40) as f64 + 1.0) / (1u64 << 24) as f64;
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let u2 = (s >> 40) as f64 / (1u64 << 24) as f64;
            let r = (-2.0 * u1.ln()).sqrt();
            samples.push((r * (2.0 * std::f64::consts::PI * u2).cos()) as f32);
            samples.push((r * (2.0 * std::f64::consts::PI * u2).sin()) as f32);
        }
        let fit = fit_ggd(&samples);
        assert!((fit.alpha - 2.0).abs() < 0.25, "alpha {}", fit.alpha);
        assert!((fit.sigma_sq - 1.0).abs() < 0.1, "var {}", fit.sigma_sq);
    }

    #[test]
    fn ggd_fit_recovers_laplacian() {
        // Inverse-CDF Laplacian samples -> alpha near 1.
        let mut s = 777u64;
        let samples: Vec<f32> = (0..20_000)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                // Offset by half a ULP so |u| < 0.5 strictly (ln(0) guard).
                let u = ((s >> 40) as f64 + 0.5) / (1u64 << 24) as f64 - 0.5;
                (-(1.0 - 2.0 * u.abs()).ln() * u.signum()) as f32
            })
            .collect();
        let fit = fit_ggd(&samples);
        assert!((fit.alpha - 1.0).abs() < 0.2, "alpha {}", fit.alpha);
    }

    #[test]
    fn aggd_detects_asymmetry() {
        // Right-skewed: positive values twice as spread as negative.
        let mut s = 999u64;
        let samples: Vec<f32> = (0..20_000)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let u = ((s >> 40) as f64 + 0.5) / (1u64 << 24) as f64 - 0.5;
                let v = -(1.0 - 2.0 * u.abs()).ln() * u.signum();
                (if v > 0.0 { v * 2.0 } else { v }) as f32
            })
            .collect();
        let fit = fit_aggd(&samples);
        assert!(fit.sigma_r_sq > fit.sigma_l_sq * 2.0, "{fit:?}");
        assert!(fit.eta > 0.0, "eta {}", fit.eta);
    }

    #[test]
    fn mscn_of_natural_like_image_is_decorrelated() {
        use easz_data::Dataset;
        let img = Dataset::CifarLike.image(0);
        let m = mscn_map(&img);
        let vals = m.data();
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        // MSCN coefficients should be roughly zero-mean with unit-ish scale.
        assert!(mean.abs() < 0.25, "mscn mean {mean}");
        let var = vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
        assert!(var > 0.05 && var < 5.0, "mscn var {var}");
    }

    #[test]
    fn paired_products_lengths() {
        use easz_data::Dataset;
        let img = Dataset::CifarLike.image(1);
        let m = mscn_map(&img);
        let [hp, vp, d1, d2] = paired_products(&m);
        assert_eq!(hp.len(), 31 * 32);
        assert_eq!(vp.len(), 32 * 31);
        assert_eq!(d1.len(), 31 * 31);
        assert_eq!(d2.len(), 31 * 31);
    }
}

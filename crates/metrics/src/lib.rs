//! # easz-metrics
//!
//! Image-quality metrics for the Easz reproduction (Mao et al., DAC 2025):
//!
//! * Full-reference: [`mse`], [`psnr`], [`ssim`], [`ms_ssim`] (Table I).
//! * No-reference: [`brisque`], [`niqe`], [`pi`], [`tres`] (Table II,
//!   Figs. 7-8) built on real MSCN + AGGD natural-scene statistics with a
//!   multivariate-Gaussian pristine model ([`NaturalnessModel`]).
//! * Perceptual distance: [`lpips_sim`] (the evaluation-side stand-in for
//!   LPIPS; the differentiable training loss lives in `easz-core`).
//! * Rate: [`bits_per_pixel`].
//!
//! Substitutions relative to the published metrics are listed in
//! DESIGN.md §1; polarity and value ranges follow the originals.
//!
//! ```
//! use easz_data::Dataset;
//! use easz_metrics::{psnr, ssim};
//! let a = Dataset::CifarLike.image(0);
//! let b = Dataset::CifarLike.image(0);
//! assert!(psnr(&a, &b).is_infinite()); // identical
//! assert!((ssim(&a, &b) - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

mod fr;
mod lpips;
pub mod mscn;
mod naturalness;
mod nr;

pub use fr::{ms_ssim, mse, psnr, ssim};
pub use lpips::lpips_sim;
pub use naturalness::{brisque_features, NaturalnessModel, FEATURE_DIM};
pub use nr::{
    bits_per_pixel, brisque, brisque_with, ma_sim, niqe, niqe_with, pi, pi_with, tres, tres_with,
};

//! No-reference perceptual scores: BRISQUE-style, NIQE-style, PI and
//! TReS-sim — the four metrics of the paper's Tables II and Fig. 8.
//!
//! Substitutions relative to the published metrics are documented in
//! DESIGN.md §1; the scores preserve the published ranges and polarity
//! (BRISQUE/PI/NIQE: lower is better; TReS: higher is better) and react to
//! the same distortions (blockiness, ringing, blur, noise).

use crate::naturalness::NaturalnessModel;
use easz_image::resample::downsample2;
use easz_image::{color, ImageF32};

/// BRISQUE-style score, roughly 0 (pristine) to 100 (heavily distorted).
///
/// Mahalanobis distance of the image's 36 BRISQUE features from pristine
/// statistics, scaled so pristine synthetic images land near 10-25 and
/// strong artefacts push beyond 40 (matching the value ranges the paper
/// reports on Kodak/CLIC).
pub fn brisque(img: &ImageF32) -> f64 {
    brisque_with(NaturalnessModel::shared(), img)
}

/// [`brisque`] against a caller-supplied pristine model.
pub fn brisque_with(model: &NaturalnessModel, img: &ImageF32) -> f64 {
    let d = model.distance(img);
    // Log map calibrated on the synthetic corpus: pristine images sit at
    // Mahalanobis distance ~8-14 (sqrt(36) plus corpus mismatch), visible
    // blockiness at ~100-2000. Mapped to the paper's BRISQUE ranges
    // (clean ~15, JPEG-at-0.4bpp ~45, severe ~90+).
    (18.0 * (1.0 + d / 8.0).ln()).clamp(0.0, 120.0)
}

/// NIQE-style score (lower = better, pristine ≈ 2-4).
pub fn niqe(img: &ImageF32) -> f64 {
    niqe_with(NaturalnessModel::shared(), img)
}

/// [`niqe`] against a caller-supplied pristine model.
pub fn niqe_with(model: &NaturalnessModel, img: &ImageF32) -> f64 {
    // Same log compression as BRISQUE, scaled to NIQE's 2-12 range.
    2.0 * (1.0 + model.distance(img) / 8.0).ln()
}

/// Sharpness proxy for the Ma-score term of PI (0 = blurry, 10 = crisp).
///
/// Ratio of fine-scale to coarse-scale gradient energy: genuine detail has
/// energy at the finest scale; blur and heavy compression remove it.
pub fn ma_sim(img: &ImageF32) -> f64 {
    let y = color::luma(img);
    let fine = gradient_energy(&y);
    let coarse = gradient_energy(&downsample2(&y));
    if fine + coarse < 1e-12 {
        return 0.0;
    }
    let ratio = fine / (fine + coarse);
    // Synthetic sharp scenes land at ratio ~0.28-0.40; blur pushes below
    // 0.15. Map [0.12, 0.57] -> [0, 10].
    ((ratio - 0.12) / 0.045).clamp(0.0, 10.0)
}

fn gradient_energy(y: &ImageF32) -> f64 {
    let (w, h) = (y.width(), y.height());
    let mut acc = 0.0f64;
    for yy in 0..h.saturating_sub(1) {
        for xx in 0..w.saturating_sub(1) {
            let gx = (y.get(xx + 1, yy, 0) - y.get(xx, yy, 0)) as f64;
            let gy = (y.get(xx, yy + 1, 0) - y.get(xx, yy, 0)) as f64;
            acc += gx * gx + gy * gy;
        }
    }
    acc / ((w.max(2) - 1) * (h.max(2) - 1)) as f64
}

/// Perceptual Index: `PI = ((10 − Ma) + NIQE) / 2`, lower is better.
pub fn pi(img: &ImageF32) -> f64 {
    pi_with(NaturalnessModel::shared(), img)
}

/// [`pi`] against a caller-supplied pristine model.
pub fn pi_with(model: &NaturalnessModel, img: &ImageF32) -> f64 {
    0.5 * ((10.0 - ma_sim(img)) + niqe_with(model, img))
}

/// TReS-style positive quality score (higher = better, natural ≈ 75-90).
///
/// Combines naturalness (inverted distance) with the sharpness proxy, the
/// two signals the transformer IQA models weight most.
pub fn tres(img: &ImageF32) -> f64 {
    tres_with(NaturalnessModel::shared(), img)
}

/// [`tres`] against a caller-supplied pristine model.
pub fn tres_with(model: &NaturalnessModel, img: &ImageF32) -> f64 {
    let naturalness = (100.0 - brisque_with(model, img)).max(0.0);
    let sharp = ma_sim(img) * 10.0;
    (0.7 * naturalness + 0.3 * sharp).clamp(0.0, 100.0)
}

/// Bits-per-pixel of a payload against a pixel canvas.
pub fn bits_per_pixel(payload_bytes: usize, width: usize, height: usize) -> f64 {
    payload_bytes as f64 * 8.0 / (width * height).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use easz_data::Dataset;

    fn probe() -> ImageF32 {
        Dataset::KodakLike.image(11).crop(128, 96, 256, 192)
    }

    fn blur(img: &ImageF32, passes: usize) -> ImageF32 {
        let mut out = img.clone();
        let cc = img.channels().count();
        for _ in 0..passes {
            let src = out.clone();
            for y in 0..img.height() {
                for x in 0..img.width() {
                    for c in 0..cc {
                        let mut acc = 0.0;
                        for dy in -1isize..=1 {
                            for dx in -1isize..=1 {
                                acc += src.get_clamped(x as isize + dx, y as isize + dy, c);
                            }
                        }
                        out.set(x, y, c, acc / 9.0);
                    }
                }
            }
        }
        out
    }

    fn blockify(img: &ImageF32, block: usize) -> ImageF32 {
        let mut out = img.clone();
        let cc = img.channels().count();
        for by in (0..img.height()).step_by(block) {
            for bx in (0..img.width()).step_by(block) {
                for c in 0..cc {
                    let mut acc = 0.0;
                    let mut cnt = 0usize;
                    for y in by..(by + block).min(img.height()) {
                        for x in bx..(bx + block).min(img.width()) {
                            acc += img.get(x, y, c);
                            cnt += 1;
                        }
                    }
                    let m = acc / cnt as f32;
                    for y in by..(by + block).min(img.height()) {
                        for x in bx..(bx + block).min(img.width()) {
                            out.set(x, y, c, m);
                        }
                    }
                }
            }
        }
        out
    }

    #[test]
    fn brisque_rises_with_blockiness() {
        let img = probe();
        let clean = brisque(&img);
        let blocky = brisque(&blockify(&img, 8));
        assert!(blocky > clean + 5.0, "clean {clean} blocky {blocky}");
    }

    #[test]
    fn pi_rises_with_blur() {
        let img = probe();
        let clean = pi(&img);
        let blurred = pi(&blur(&img, 3));
        assert!(blurred > clean, "clean {clean} blurred {blurred}");
    }

    #[test]
    fn tres_falls_with_distortion() {
        let img = probe();
        let clean = tres(&img);
        let bad = tres(&blockify(&blur(&img, 2), 8));
        assert!(clean > bad, "clean {clean} distorted {bad}");
        assert!(clean > 40.0, "natural image should score decently, got {clean}");
    }

    #[test]
    fn ma_sim_detects_blur() {
        let img = probe();
        let sharp = ma_sim(&img);
        let blurred = ma_sim(&blur(&img, 3));
        assert!(sharp > blurred, "sharp {sharp} vs blurred {blurred}");
    }

    #[test]
    fn bpp_accounting() {
        assert!((bits_per_pixel(1000, 100, 80) - 1.0).abs() < 1e-12);
        assert_eq!(bits_per_pixel(10, 0, 0), 80.0); // degenerate canvas guard
    }
}

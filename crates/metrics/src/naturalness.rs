//! Natural-scene-statistics model: 36-dim BRISQUE feature extraction and a
//! multivariate-Gaussian "distance from natural" scorer (the NIQE scoring
//! rule applied to BRISQUE features — see DESIGN.md §1 for why the learned
//! SVR of real BRISQUE is replaced by this).

use crate::mscn::{fit_aggd, fit_ggd, mscn_map, paired_products};
use easz_image::resample::downsample2;
use easz_image::ImageF32;
use std::sync::OnceLock;

/// Number of features (18 per scale × 2 scales, as in BRISQUE).
pub const FEATURE_DIM: usize = 36;

/// Extracts the 36 BRISQUE features of an image.
///
/// Per scale: GGD (alpha, sigma²) of the MSCN map plus AGGD
/// (alpha, eta, sigma_l², sigma_r²) of the four neighbour products.
pub fn brisque_features(img: &ImageF32) -> [f64; FEATURE_DIM] {
    let mut out = [0f64; FEATURE_DIM];
    let mut current = img.clone();
    for scale in 0..2 {
        let base = scale * 18;
        let m = mscn_map(&current);
        let g = fit_ggd(m.data());
        out[base] = g.alpha;
        out[base + 1] = g.sigma_sq;
        for (pi, products) in paired_products(&m).iter().enumerate() {
            let a = fit_aggd(products);
            let o = base + 2 + pi * 4;
            out[o] = a.alpha;
            out[o + 1] = a.eta;
            out[o + 2] = a.sigma_l_sq;
            out[o + 3] = a.sigma_r_sq;
        }
        if scale == 0 {
            current = downsample2(&current);
        }
    }
    out
}

/// A fitted model of pristine-image feature statistics.
#[derive(Debug, Clone)]
pub struct NaturalnessModel {
    mean: [f64; FEATURE_DIM],
    /// Inverse of the (regularised) feature covariance.
    inv_cov: Vec<f64>,
}

impl NaturalnessModel {
    /// Fits the model to a corpus of pristine images.
    ///
    /// # Panics
    ///
    /// Panics if `corpus` is empty.
    pub fn fit(corpus: &[ImageF32]) -> Self {
        assert!(!corpus.is_empty(), "naturalness model needs a pristine corpus");
        let feats: Vec<[f64; FEATURE_DIM]> = corpus.iter().map(brisque_features).collect();
        let n = feats.len() as f64;
        let mut mean = [0f64; FEATURE_DIM];
        for f in &feats {
            for (m, &v) in mean.iter_mut().zip(f.iter()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let d = FEATURE_DIM;
        let mut cov = vec![0f64; d * d];
        for f in &feats {
            for i in 0..d {
                for j in 0..d {
                    cov[i * d + j] += (f[i] - mean[i]) * (f[j] - mean[j]);
                }
            }
        }
        for v in &mut cov {
            *v /= n.max(2.0) - 1.0;
        }
        // Diagonal loading: the corpus is small relative to 36 dims.
        let trace: f64 = (0..d).map(|i| cov[i * d + i]).sum();
        let ridge = (trace / d as f64) * 0.1 + 1e-6;
        for i in 0..d {
            cov[i * d + i] += ridge;
        }
        let inv_cov = invert(&cov, d).expect("regularised covariance is invertible");
        Self { mean, inv_cov }
    }

    /// Mahalanobis distance of an image's features from the pristine model.
    pub fn distance(&self, img: &ImageF32) -> f64 {
        let f = brisque_features(img);
        let d = FEATURE_DIM;
        let mut diff = [0f64; FEATURE_DIM];
        for i in 0..d {
            diff[i] = f[i] - self.mean[i];
        }
        let mut acc = 0.0;
        for i in 0..d {
            let mut row = 0.0;
            for (j, &dj) in diff.iter().enumerate() {
                row += self.inv_cov[i * d + j] * dj;
            }
            acc += diff[i] * row;
        }
        acc.max(0.0).sqrt()
    }

    /// The shared default model, fit lazily on pristine synthetic images
    /// (Kodak-like scenes 0..8). Deterministic across processes.
    pub fn shared() -> &'static NaturalnessModel {
        static MODEL: OnceLock<NaturalnessModel> = OnceLock::new();
        MODEL.get_or_init(|| {
            let corpus: Vec<ImageF32> = (0..8)
                .map(|i| {
                    // Fit on half-resolution crops: full Kodak-like frames
                    // would be slow and the statistics are scale-local.
                    let img = easz_data::Dataset::KodakLike.image(i);
                    img.crop(128, 128, 384, 256)
                })
                .collect();
            NaturalnessModel::fit(&corpus)
        })
    }
}

/// Gauss-Jordan inversion of a dense `d × d` matrix.
fn invert(a: &[f64], d: usize) -> Option<Vec<f64>> {
    let mut m = a.to_vec();
    let mut inv = vec![0f64; d * d];
    for i in 0..d {
        inv[i * d + i] = 1.0;
    }
    for col in 0..d {
        // Partial pivoting.
        let mut pivot = col;
        for r in col + 1..d {
            if m[r * d + col].abs() > m[pivot * d + col].abs() {
                pivot = r;
            }
        }
        if m[pivot * d + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for j in 0..d {
                m.swap(col * d + j, pivot * d + j);
                inv.swap(col * d + j, pivot * d + j);
            }
        }
        let p = m[col * d + col];
        for j in 0..d {
            m[col * d + j] /= p;
            inv[col * d + j] /= p;
        }
        for r in 0..d {
            if r == col {
                continue;
            }
            let f = m[r * d + col];
            if f == 0.0 {
                continue;
            }
            for j in 0..d {
                m[r * d + j] -= f * m[col * d + j];
                inv[r * d + j] -= f * inv[col * d + j];
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easz_data::Dataset;

    #[test]
    fn invert_small_matrix() {
        // [[4,7],[2,6]] -> inverse [[0.6,-0.7],[-0.2,0.4]]
        let a = vec![4.0, 7.0, 2.0, 6.0];
        let inv = invert(&a, 2).expect("invertible");
        let expect = [0.6, -0.7, -0.2, 0.4];
        for (x, y) in inv.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn invert_rejects_singular() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(invert(&a, 2).is_none());
    }

    #[test]
    fn features_have_expected_layout() {
        let img = Dataset::CifarLike.image(3);
        let f = brisque_features(&img);
        // Alphas live in a sane range, variances are non-negative.
        assert!(f[0] > 0.2 && f[0] < 10.0, "scale-0 mscn alpha {}", f[0]);
        assert!(f[1] >= 0.0);
        assert!(f[18] > 0.2 && f[18] < 10.0, "scale-1 mscn alpha {}", f[18]);
    }

    #[test]
    fn distorted_images_are_farther_than_pristine() {
        let corpus: Vec<ImageF32> =
            (0..6).map(|i| Dataset::KodakLike.image(i).crop(64, 64, 256, 192)).collect();
        let model = NaturalnessModel::fit(&corpus);
        let probe = Dataset::KodakLike.image(9).crop(64, 64, 256, 192);
        let d_clean = model.distance(&probe);
        // Blockiness: quantise 8x8 blocks to their mean (JPEG-at-q1 style).
        let mut blocky = probe.clone();
        let cc = blocky.channels().count();
        for by in (0..blocky.height()).step_by(8) {
            for bx in (0..blocky.width()).step_by(8) {
                for c in 0..cc {
                    let mut acc = 0.0;
                    let mut cnt = 0;
                    for y in by..(by + 8).min(blocky.height()) {
                        for x in bx..(bx + 8).min(blocky.width()) {
                            acc += blocky.get(x, y, c);
                            cnt += 1;
                        }
                    }
                    let m = acc / cnt as f32;
                    for y in by..(by + 8).min(blocky.height()) {
                        for x in bx..(bx + 8).min(blocky.width()) {
                            blocky.set(x, y, c, m);
                        }
                    }
                }
            }
        }
        let d_blocky = model.distance(&blocky);
        assert!(
            d_blocky > d_clean * 1.5,
            "blocky {d_blocky} should be much farther than clean {d_clean}"
        );
    }
}

//! LPIPS-sim: a fixed-filter-bank perceptual distance standing in for
//! LPIPS (Zhang et al. 2018) — see DESIGN.md §1.
//!
//! Features: oriented gradients (2 orientations) plus a centre-surround
//! (Laplacian) response, each at 3 dyadic scales, unit-normalised per
//! position like LPIPS normalises channel vectors. The distance is the
//! mean squared difference of the normalised feature vectors, averaged
//! over scales.
//!
//! The differentiable loss used during training lives in `easz-core`
//! (a DCT-weighted error with the same role in Eq. 2); this module is the
//! evaluation-side metric.

use easz_image::resample::downsample2;
use easz_image::{color, ImageF32};

/// Number of feature channels per position.
const CHANNELS: usize = 3;
/// Number of dyadic scales.
const SCALES: usize = 3;

/// Per-pixel feature map: `[gx, gy, laplacian]`, each position normalised.
fn feature_map(y: &ImageF32) -> Vec<[f32; CHANNELS]> {
    let (w, h) = (y.width(), y.height());
    let mut out = Vec::with_capacity(w * h);
    for yy in 0..h {
        for xx in 0..w {
            let c = y.get(xx, yy, 0);
            let gx = y.get_clamped(xx as isize + 1, yy as isize, 0) - c;
            let gy = y.get_clamped(xx as isize, yy as isize + 1, 0) - c;
            let lap = y.get_clamped(xx as isize + 1, yy as isize, 0)
                + y.get_clamped(xx as isize - 1, yy as isize, 0)
                + y.get_clamped(xx as isize, yy as isize + 1, 0)
                + y.get_clamped(xx as isize, yy as isize - 1, 0)
                - 4.0 * c;
            let mut f = [gx, gy, lap];
            // LPIPS-style unit normalisation in channel space.
            let norm = (f.iter().map(|v| v * v).sum::<f32>()).sqrt() + 1e-4;
            for v in &mut f {
                *v /= norm;
            }
            out.push(f);
        }
    }
    out
}

/// Perceptual distance between two same-shaped images (0 = identical).
///
/// Values are small (natural pairs land in ~0.0-0.6); like LPIPS, the
/// metric saturates less than MSE on structural differences.
///
/// # Panics
///
/// Panics if the images differ in size.
pub fn lpips_sim(a: &ImageF32, b: &ImageF32) -> f64 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()), "lpips_sim needs identical sizes");
    let mut ya = color::luma(a);
    let mut yb = color::luma(b);
    let mut acc = 0.0f64;
    let mut used_scales = 0usize;
    for scale in 0..SCALES {
        let fa = feature_map(&ya);
        let fb = feature_map(&yb);
        let mut scale_acc = 0.0f64;
        for (va, vb) in fa.iter().zip(fb.iter()) {
            for c in 0..CHANNELS {
                let d = (va[c] - vb[c]) as f64;
                scale_acc += d * d;
            }
        }
        acc += scale_acc / (fa.len().max(1) * CHANNELS) as f64;
        used_scales += 1;
        if scale + 1 < SCALES {
            if ya.width() < 8 || ya.height() < 8 {
                break;
            }
            ya = downsample2(&ya);
            yb = downsample2(&yb);
        }
    }
    acc / used_scales as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use easz_data::Dataset;

    #[test]
    fn identical_images_have_zero_distance() {
        let img = Dataset::CifarLike.image(0);
        assert_eq!(lpips_sim(&img, &img), 0.0);
    }

    #[test]
    fn distance_grows_with_structural_damage() {
        let img = Dataset::KodakLike.image(2).crop(100, 100, 128, 128);
        let mut slightly = img.clone();
        for v in slightly.data_mut() {
            *v = (*v * 0.98 + 0.01).clamp(0.0, 1.0);
        }
        let mut scrambled = img.clone();
        let n = scrambled.data().len();
        for i in 0..n / 2 {
            let j = n - 1 - i;
            let (a, b) = (scrambled.data()[i], scrambled.data()[j]);
            scrambled.data_mut()[i] = b;
            scrambled.data_mut()[j] = a;
        }
        let d_small = lpips_sim(&img, &slightly);
        let d_big = lpips_sim(&img, &scrambled);
        assert!(d_small < d_big, "{d_small} vs {d_big}");
        assert!(d_small < 0.05, "near-identical pair scored {d_small}");
    }

    #[test]
    fn symmetric() {
        let a = Dataset::CifarLike.image(1);
        let b = Dataset::CifarLike.image(2);
        let d1 = lpips_sim(&a, &b);
        let d2 = lpips_sim(&b, &a);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn more_sensitive_to_structure_than_to_brightness() {
        // LPIPS's selling point: a flat brightness shift matters less than
        // edge damage of the same MSE.
        let img = Dataset::KodakLike.image(5).crop(64, 64, 128, 128);
        let mut shifted = img.clone();
        for v in shifted.data_mut() {
            *v = (*v + 0.08).min(1.0);
        }
        let mut edge_damaged = img.clone();
        // Blur a band of rows (destroys edges in that band).
        for y in 40..88 {
            for x in 1..127 {
                for c in 0..3 {
                    let m = (img.get(x - 1, y, c) + img.get(x, y, c) + img.get(x + 1, y, c)) / 3.0;
                    edge_damaged.set(x, y, c, m);
                }
            }
        }
        let d_shift = lpips_sim(&img, &shifted);
        let d_edge = lpips_sim(&img, &edge_damaged);
        assert!(d_edge > d_shift, "edge {d_edge} should exceed shift {d_shift}");
    }
}

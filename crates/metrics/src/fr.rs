//! Full-reference metrics: MSE, PSNR, SSIM and MS-SSIM.

use easz_image::resample::downsample2;
use easz_image::{color, ImageF32};

/// Mean squared error between two same-shaped images (on `[0,1]` values).
///
/// # Panics
///
/// Panics if the images differ in size or channel count.
pub fn mse(a: &ImageF32, b: &ImageF32) -> f64 {
    assert_eq!(
        (a.width(), a.height(), a.channels()),
        (b.width(), b.height(), b.channels()),
        "mse needs identical shapes"
    );
    if a.data().is_empty() {
        return 0.0;
    }
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        / a.data().len() as f64
}

/// Peak signal-to-noise ratio in dB (peak = 1.0).
///
/// Returns `f64::INFINITY` for identical images.
///
/// # Panics
///
/// Panics if the images differ in shape.
pub fn psnr(a: &ImageF32, b: &ImageF32) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        f64::INFINITY
    } else {
        -10.0 * m.log10()
    }
}

/// Structural similarity (mean SSIM over an 8×8 sliding grid on luma).
///
/// Uses the standard constants `C1 = (0.01)²`, `C2 = (0.03)²`.
///
/// # Panics
///
/// Panics if the images differ in shape or are smaller than 8×8.
pub fn ssim(a: &ImageF32, b: &ImageF32) -> f64 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()), "ssim needs identical sizes");
    assert!(a.width() >= 8 && a.height() >= 8, "ssim needs at least 8x8 input");
    let ya = color::luma(a);
    let yb = color::luma(b);
    let c1 = 0.01f64 * 0.01;
    let c2 = 0.03f64 * 0.03;
    let win = 8usize;
    let mut acc = 0.0f64;
    let mut count = 0usize;
    let step = 4usize; // stride-4 sliding window: dense enough, 4x faster
    let mut y0 = 0;
    while y0 + win <= a.height() {
        let mut x0 = 0;
        while x0 + win <= a.width() {
            let (mut ma, mut mb) = (0.0f64, 0.0f64);
            for dy in 0..win {
                for dx in 0..win {
                    ma += ya.get(x0 + dx, y0 + dy, 0) as f64;
                    mb += yb.get(x0 + dx, y0 + dy, 0) as f64;
                }
            }
            let n = (win * win) as f64;
            ma /= n;
            mb /= n;
            let (mut va, mut vb, mut cov) = (0.0f64, 0.0f64, 0.0f64);
            for dy in 0..win {
                for dx in 0..win {
                    let da = ya.get(x0 + dx, y0 + dy, 0) as f64 - ma;
                    let db = yb.get(x0 + dx, y0 + dy, 0) as f64 - mb;
                    va += da * da;
                    vb += db * db;
                    cov += da * db;
                }
            }
            va /= n - 1.0;
            vb /= n - 1.0;
            cov /= n - 1.0;
            let s = ((2.0 * ma * mb + c1) * (2.0 * cov + c2))
                / ((ma * ma + mb * mb + c1) * (va + vb + c2));
            acc += s;
            count += 1;
            x0 += step;
        }
        y0 += step;
    }
    acc / count.max(1) as f64
}

/// Multi-scale SSIM with the standard 5-scale weights.
///
/// Falls back to fewer scales when the image becomes smaller than 16 pixels
/// on a side, renormalising the weights.
///
/// # Panics
///
/// Panics if the images differ in shape or are smaller than 8×8.
pub fn ms_ssim(a: &ImageF32, b: &ImageF32) -> f64 {
    const WEIGHTS: [f64; 5] = [0.0448, 0.2856, 0.3001, 0.2363, 0.1333];
    let mut ca = a.clone();
    let mut cb = b.clone();
    let mut acc = 0.0f64;
    let mut wsum = 0.0f64;
    for (level, &w) in WEIGHTS.iter().enumerate() {
        acc += w * ssim(&ca, &cb).max(1e-6).ln();
        wsum += w;
        if level + 1 < WEIGHTS.len() {
            if ca.width() / 2 < 16 || ca.height() / 2 < 16 {
                break;
            }
            ca = downsample2(&ca);
            cb = downsample2(&cb);
        }
    }
    (acc / wsum).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use easz_image::Channels;

    fn gradient(w: usize, h: usize) -> ImageF32 {
        let mut img = ImageF32::new(w, h, Channels::Rgb);
        for y in 0..h {
            for x in 0..w {
                for c in 0..3 {
                    img.set(x, y, c, ((x * 3 + y * 2 + c * 17) % 97) as f32 / 96.0);
                }
            }
        }
        img
    }

    fn noisy(img: &ImageF32, amp: f32, seed: u64) -> ImageF32 {
        let mut out = img.clone();
        let mut s = seed;
        for v in out.data_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let n = ((s >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 2.0 * amp;
            *v = (*v + n).clamp(0.0, 1.0);
        }
        out
    }

    #[test]
    fn identical_images_are_perfect() {
        let img = gradient(32, 32);
        assert_eq!(mse(&img, &img), 0.0);
        assert!(psnr(&img, &img).is_infinite());
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-9);
        assert!((ms_ssim(&img, &img) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn psnr_matches_known_mse() {
        let a = gradient(16, 16);
        let mut b = a.clone();
        for v in b.data_mut() {
            *v = (*v + 0.1).clamp(0.0, 1.0);
        }
        let m = mse(&a, &b);
        let p = psnr(&a, &b);
        assert!((p - (-10.0 * m.log10())).abs() < 1e-9);
    }

    #[test]
    fn metrics_degrade_with_noise() {
        let img = gradient(64, 64);
        let small = noisy(&img, 0.02, 1);
        let big = noisy(&img, 0.2, 2);
        assert!(psnr(&img, &small) > psnr(&img, &big));
        assert!(ssim(&img, &small) > ssim(&img, &big));
        assert!(ms_ssim(&img, &small) > ms_ssim(&img, &big));
    }

    #[test]
    fn ssim_penalises_structure_loss_more_than_bias() {
        // Constant luminance shift preserves structure: SSIM stays high.
        let img = gradient(64, 64);
        let mut shifted = img.clone();
        for v in shifted.data_mut() {
            *v = (*v + 0.05).min(1.0);
        }
        let shuffled = noisy(&img, 0.25, 3);
        assert!(ssim(&img, &shifted) > ssim(&img, &shuffled));
    }

    #[test]
    fn ms_ssim_handles_small_images() {
        let img = gradient(24, 24);
        let other = noisy(&img, 0.1, 4);
        let v = ms_ssim(&img, &other);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn mse_rejects_shape_mismatch() {
        let _ = mse(&gradient(8, 8), &gradient(9, 8));
    }
}

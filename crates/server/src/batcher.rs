//! The decode gateway: a cross-connection batching scheduler.
//!
//! Without it, each connection decodes alone and the transformer forward —
//! the dominant server-side cost — runs once per stream. The gateway parks
//! per-connection `DECODE` requests in a bounded queue; a scheduler thread
//! closes a *batching window* when either [`GatewayConfig::max_batch`] jobs
//! have accumulated or [`GatewayConfig::max_wait_us`] has elapsed since the
//! window opened, then hands the whole window to a small decode-worker
//! pool sharing one [`EaszDecoder`]. The decoder fuses the window —
//! containers with matching erase *counts* share a single forward even
//! with distinct mask positions (`MultiMaskPlan`) — and each reply (or
//! per-stream typed error) is routed back to its originating connection
//! over a per-request channel.
//!
//! The gateway degrades gracefully rather than blocking: a full queue or a
//! shutdown in progress hands the container back to the connection handler,
//! which decodes it inline exactly as a gateway-less server would.

use crate::metrics::ServerMetrics;
use easz_core::{DecodeEngine, EaszDecoder, EaszEncoded, EaszError};
use easz_image::ImageF32;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tunables of the decode gateway (see
/// [`EaszServer::with_gateway`](crate::EaszServer::with_gateway)).
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// A batching window dispatches as soon as it holds this many requests.
    pub max_batch: usize,
    /// A batching window dispatches at latest this many microseconds after
    /// its first request arrived — the latency each request is willing to
    /// pay for a chance to share a forward.
    pub max_wait_us: u64,
    /// Decode worker threads draining dispatched windows. More than one
    /// lets a new window decode while a slow one is still in flight.
    pub workers: usize,
    /// Requests parked in the queue before the gateway starts refusing
    /// (refused requests decode inline on their connection's thread).
    pub queue_depth: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self { max_batch: 8, max_wait_us: 2_000, workers: 2, queue_depth: 256 }
    }
}

/// One parked decode request: the parsed container, the engine tier it
/// decodes on, and the channel its reply returns on.
struct Job {
    container: EaszEncoded,
    engine: DecodeEngine,
    enqueued: Instant,
    reply: mpsc::Sender<Result<ImageF32, EaszError>>,
}

/// Shared scheduler state behind the queue mutex.
#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Dispatched-window state behind the worker mutex.
#[derive(Default)]
struct ReadyState {
    windows: VecDeque<Vec<Job>>,
    /// Set once the scheduler has exited; workers drain and stop.
    scheduler_done: bool,
}

/// The gateway: submission queue, window scheduler and worker rendezvous.
///
/// Thread bodies ([`run_scheduler`](Self::run_scheduler),
/// [`run_worker`](Self::run_worker)) are spawned by the server inside its
/// connection scope so they can borrow the shared decoder.
pub(crate) struct Batcher {
    config: GatewayConfig,
    metrics: Arc<ServerMetrics>,
    queue: Mutex<QueueState>,
    queue_cond: Condvar,
    ready: Mutex<ReadyState>,
    ready_cond: Condvar,
}

impl Batcher {
    pub fn new(config: GatewayConfig, metrics: Arc<ServerMetrics>) -> Self {
        assert!(config.max_batch > 0, "gateway max_batch must be positive");
        assert!(config.workers > 0, "gateway needs at least one worker");
        assert!(config.queue_depth > 0, "gateway queue_depth must be positive");
        Self {
            config,
            metrics,
            queue: Mutex::new(QueueState::default()),
            queue_cond: Condvar::new(),
            ready: Mutex::new(ReadyState::default()),
            ready_cond: Condvar::new(),
        }
    }

    /// Parks a parsed container for batched decoding on the given engine
    /// tier, returning the receiver its result arrives on — or the
    /// container back if the gateway cannot take it (full queue or
    /// shutdown), in which case the caller decodes inline. Jobs on
    /// different tiers may share a window but never a model forward (the
    /// tier joins the decoder's fusion key).
    pub fn submit(
        &self,
        container: EaszEncoded,
        engine: DecodeEngine,
    ) -> Result<mpsc::Receiver<Result<ImageF32, EaszError>>, EaszEncoded> {
        let mut state = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if state.shutdown || state.jobs.len() >= self.config.queue_depth {
            return Err(container);
        }
        let (tx, rx) = mpsc::channel();
        state.jobs.push_back(Job { container, engine, enqueued: Instant::now(), reply: tx });
        self.metrics.record_queue_depth(state.jobs.len());
        drop(state);
        self.queue_cond.notify_one();
        Ok(rx)
    }

    /// Signals shutdown: no new submissions are accepted, the scheduler
    /// flushes whatever is queued into final windows and exits, and the
    /// workers drain the remaining windows before stopping. Already-parked
    /// jobs still get replies, so draining connections are answered.
    pub fn shutdown(&self) {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).shutdown = true;
        self.queue_cond.notify_all();
        self.ready_cond.notify_all();
    }

    /// The scheduler thread: forms batching windows and hands them to the
    /// workers. Runs until [`shutdown`](Self::shutdown) and the queue is
    /// drained.
    pub fn run_scheduler(&self) {
        let max_wait = Duration::from_micros(self.config.max_wait_us);
        loop {
            let mut state = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            while state.jobs.is_empty() && !state.shutdown {
                state = self.queue_cond.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            if state.jobs.is_empty() {
                break; // shutdown with nothing left to flush
            }
            // A window is open — and has been since its head job arrived,
            // which is what the `max_wait_us` promise is measured from (a
            // leftover job from an earlier burst must not restart the
            // budget). Collect until the window is full, the budget is
            // spent, or shutdown asks for an immediate flush.
            let opened = state.jobs.front().expect("window has a head job").enqueued;
            while state.jobs.len() < self.config.max_batch && !state.shutdown {
                let Some(remaining) = max_wait.checked_sub(opened.elapsed()) else { break };
                let (next, timeout) = self
                    .queue_cond
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
            let width = state.jobs.len().min(self.config.max_batch);
            let window: Vec<Job> = state.jobs.drain(..width).collect();
            self.metrics.record_queue_depth(state.jobs.len());
            drop(state);
            // Hand over — but never outrun the workers: the ready backlog
            // is bounded at one pending window per worker, so under
            // sustained overload jobs pile up in the *submission* queue,
            // whose bound is what makes `submit` refuse and degrade to
            // inline decode (and what the queue-depth metrics watch).
            let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
            while ready.windows.len() >= self.config.workers {
                ready = self.ready_cond.wait(ready).unwrap_or_else(|e| e.into_inner());
            }
            ready.windows.push_back(window);
            drop(ready);
            self.ready_cond.notify_all();
        }
        let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
        ready.scheduler_done = true;
        drop(ready);
        self.ready_cond.notify_all();
    }

    /// A decode worker: drains dispatched windows through the shared
    /// decoder until the scheduler is done and no windows remain.
    pub fn run_worker(&self, decoder: &EaszDecoder<'_>) {
        loop {
            let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
            while ready.windows.is_empty() && !ready.scheduler_done {
                ready = self.ready_cond.wait(ready).unwrap_or_else(|e| e.into_inner());
            }
            let Some(window) = ready.windows.pop_front() else {
                break; // scheduler done and nothing left
            };
            drop(ready);
            // The pop freed a backlog slot; the scheduler may be waiting
            // for exactly that.
            self.ready_cond.notify_all();
            self.decode_window(window, decoder);
        }
    }

    /// Decodes one window and routes each result to its connection.
    fn decode_window(&self, window: Vec<Job>, decoder: &EaszDecoder<'_>) {
        let dispatched = Instant::now();
        for job in &window {
            let waited = dispatched.saturating_duration_since(job.enqueued);
            self.metrics.record_queue_wait(waited.as_micros() as u64);
        }
        let mut containers = Vec::with_capacity(window.len());
        let mut engines = Vec::with_capacity(window.len());
        let mut replies = Vec::with_capacity(window.len());
        for j in window {
            containers.push(j.container);
            engines.push(j.engine);
            replies.push(j.reply);
        }
        let started = Instant::now();
        let results = decoder.decode_batch_with(&containers, &engines);
        self.metrics.record_batch(containers.len(), started.elapsed().as_micros() as u64);
        for (reply, result) in replies.iter().zip(results) {
            // A send error means the connection died while its job was
            // queued; the result is simply dropped.
            let _ = reply.send(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easz_codecs::{JpegLikeCodec, Quality};
    use easz_core::{EaszConfig, EaszEncoder, Reconstructor, ReconstructorConfig};
    use easz_data::Dataset;

    fn container(seed: u64) -> EaszEncoded {
        let enc = EaszEncoder::new(EaszConfig { mask_seed: seed, ..EaszConfig::default() })
            .expect("encoder");
        let img = Dataset::KodakLike.image(seed as usize % 8).crop(0, 0, 64, 64);
        enc.compress(&img, &JpegLikeCodec::new(), Quality::new(75)).expect("compress")
    }

    /// Drives a batcher with a real decoder on scoped threads, shutting
    /// down cleanly when `body` returns.
    fn with_batcher<R>(
        config: GatewayConfig,
        body: impl FnOnce(&Batcher, &EaszDecoder<'_>) -> R,
    ) -> (R, Arc<ServerMetrics>) {
        let model = Reconstructor::new(ReconstructorConfig::fast());
        let decoder = EaszDecoder::new(&model);
        let metrics = Arc::new(ServerMetrics::new());
        let workers = config.workers;
        let batcher = Batcher::new(config, metrics.clone());
        // Shut down on drop — including the unwind of a failed assertion
        // in `body`, which would otherwise leave the scoped scheduler and
        // worker threads parked forever and deadlock the test instead of
        // failing it.
        struct ShutdownOnDrop<'a>(&'a Batcher);
        impl Drop for ShutdownOnDrop<'_> {
            fn drop(&mut self) {
                self.0.shutdown();
            }
        }
        let result = std::thread::scope(|scope| {
            let b = &batcher;
            let _guard = ShutdownOnDrop(b);
            scope.spawn(move || b.run_scheduler());
            for _ in 0..workers {
                let decoder = &decoder;
                scope.spawn(move || b.run_worker(decoder));
            }
            body(b, &decoder)
        });
        (result, metrics)
    }

    #[test]
    fn window_closes_on_max_batch_and_fuses_mixed_masks() {
        let config = GatewayConfig { max_batch: 3, max_wait_us: 60_000_000, ..Default::default() };
        let ((), metrics) = with_batcher(config, |batcher, decoder| {
            // Distinct seeds => distinct masks; one window must still fuse
            // them and every reply must match its serial decode.
            let containers = [container(1), container(2), container(3)];
            let receivers: Vec<_> = containers
                .iter()
                .map(|c| batcher.submit(c.clone(), DecodeEngine::TapeFree).expect("queue has room"))
                .collect();
            for (c, rx) in containers.iter().zip(receivers) {
                let batched = rx.recv().expect("reply").expect("decode");
                let serial = decoder.decode(c).expect("serial decode");
                assert_eq!(batched.data(), serial.data(), "gateway decode must match serial");
            }
        });
        let stats = metrics.snapshot();
        // The wait budget is effectively infinite, so only max_batch can
        // have closed the window: all three jobs share one batch.
        assert_eq!(stats.batches_dispatched, 1, "window must close on max_batch");
        assert_eq!(stats.batch_widths[2], 1, "the one window holds 3 jobs");
    }

    #[test]
    fn mixed_tier_window_never_fuses_but_replies_match_serial_per_tier() {
        // One window holding both tiers of the same container: each reply
        // must be bit-equal to its own tier's serial decode, and the two
        // tiers must differ — proof the fused window kept them on separate
        // forwards.
        let config = GatewayConfig { max_batch: 4, max_wait_us: 60_000_000, ..Default::default() };
        let ((), metrics) = with_batcher(config, |batcher, decoder| {
            let c = container(7);
            let tiers = [
                DecodeEngine::TapeFree,
                DecodeEngine::QuantizedInt8,
                DecodeEngine::TapeFree,
                DecodeEngine::QuantizedInt8,
            ];
            let receivers: Vec<_> = tiers
                .iter()
                .map(|&tier| batcher.submit(c.clone(), tier).expect("queue has room"))
                .collect();
            let mut images = Vec::new();
            for (&tier, rx) in tiers.iter().zip(receivers) {
                let batched = rx.recv().expect("reply").expect("decode");
                let serial = decoder.decode_as(&c, tier).expect("serial decode");
                assert_eq!(batched.data(), serial.data(), "tier {tier:?} must match serial");
                images.push(batched);
            }
            assert_ne!(images[0].data(), images[1].data(), "tiers must differ numerically");
        });
        let stats = metrics.snapshot();
        assert_eq!(stats.batches_dispatched, 1, "all four jobs share one window");
        assert_eq!(stats.batch_widths[3], 1, "the one window holds 4 jobs");
    }

    #[test]
    fn window_closes_on_max_wait() {
        let config = GatewayConfig { max_batch: 64, max_wait_us: 1_000, ..Default::default() };
        let ((), metrics) = with_batcher(config, |batcher, _| {
            let rx = batcher.submit(container(5), DecodeEngine::TapeFree).expect("queue has room");
            rx.recv().expect("reply").expect("decode");
        });
        let stats = metrics.snapshot();
        assert_eq!(stats.batches_dispatched, 1);
        assert_eq!(stats.batch_widths[0], 1, "a lone job dispatches as width 1 on timeout");
    }

    #[test]
    fn full_queue_hands_the_container_back() {
        let config = GatewayConfig {
            max_batch: 64,
            max_wait_us: 60_000_000,
            queue_depth: 2,
            ..Default::default()
        };
        // No scheduler/workers: the queue can only fill.
        let batcher = Batcher::new(config, Arc::new(ServerMetrics::new()));
        let c = container(9);
        let tier = DecodeEngine::TapeFree;
        assert!(batcher.submit(c.clone(), tier).is_ok());
        assert!(batcher.submit(c.clone(), tier).is_ok());
        let refused = batcher.submit(c.clone(), tier).expect_err("queue is full");
        assert_eq!(refused, c, "the container comes back for inline decode");
        batcher.shutdown();
        let refused = batcher.submit(c.clone(), tier).expect_err("shutdown refuses work");
        assert_eq!(refused, c);
    }

    #[test]
    fn shutdown_flushes_parked_jobs() {
        let model = Reconstructor::new(ReconstructorConfig::fast());
        let decoder = EaszDecoder::new(&model);
        let metrics = Arc::new(ServerMetrics::new());
        let config = GatewayConfig { max_batch: 64, max_wait_us: 60_000_000, ..Default::default() };
        let batcher = Batcher::new(config, metrics);
        let c = container(4);
        std::thread::scope(|scope| {
            let rx = batcher.submit(c.clone(), DecodeEngine::TapeFree).expect("queue has room");
            // Scheduler started *after* submission, with an hour-long wait
            // budget: only the shutdown flush can dispatch the window.
            scope.spawn(|| batcher.run_scheduler());
            scope.spawn(|| batcher.run_worker(&decoder));
            batcher.shutdown();
            let flushed = rx.recv().expect("flushed reply").expect("decode");
            let serial = decoder.decode(&c).expect("serial decode");
            assert_eq!(flushed.data(), serial.data());
        });
    }
}

//! The decode gateway: a cross-connection batching scheduler.
//!
//! Without it, each connection decodes alone and the transformer forward —
//! the dominant server-side cost — runs once per stream. The gateway parks
//! per-connection `DECODE` requests in a bounded queue; a scheduler thread
//! closes a *batching window* when either [`GatewayConfig::max_batch`] jobs
//! have accumulated or the window's wait budget has elapsed since the
//! window opened, then hands the whole window to a small decode-worker
//! pool sharing one [`EaszDecoder`]. The decoder fuses the window —
//! containers with matching erase *counts* share a single forward even
//! with distinct mask positions (`MultiMaskPlan`) — and each reply (or
//! per-stream typed error) is routed back to its originating connection
//! through a reply callback.
//!
//! Fairness: jobs are parked per *source* (one source per connection) and
//! windows are drawn round-robin, one job per source per cycle, so a
//! connection flooding the queue cannot fill every window while others
//! starve. The `max_wait_us` promise is still measured from the oldest
//! parked job, whichever source it belongs to.
//!
//! With [`GatewayConfig::adaptive_wait`] enabled the wait budget shrinks
//! below `max_wait_us` when the observed inter-arrival EWMA says the queue
//! will not plausibly fill a window within the budget — sparse traffic
//! stops paying latency for batching that will never materialise.
//!
//! The gateway degrades gracefully rather than blocking: a full queue or a
//! shutdown in progress hands the container back to the connection handler,
//! which decodes it inline (threaded path) or sheds it with a typed `BUSY`
//! error (reactor path).

use crate::fault;
use crate::metrics::ServerMetrics;
use crate::trace::{SpanCtx, TraceStage};
use easz_core::{DecodeEngine, EaszDecoder, EaszEncoded, EaszError};
use easz_image::ImageF32;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Turns a caught panic payload into the `Internal` error's message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Tunables of the decode gateway (see
/// [`EaszServer::with_gateway`](crate::EaszServer::with_gateway)).
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// A batching window dispatches as soon as it holds this many requests.
    pub max_batch: usize,
    /// A batching window dispatches at latest this many microseconds after
    /// its first request arrived — the latency each request is willing to
    /// pay for a chance to share a forward.
    pub max_wait_us: u64,
    /// Decode worker threads draining dispatched windows. More than one
    /// lets a new window decode while a slow one is still in flight.
    pub workers: usize,
    /// Requests parked in the queue before the gateway starts refusing
    /// (refused requests decode inline on their connection's thread, or
    /// are shed with `BUSY` on the reactor path).
    pub queue_depth: usize,
    /// Scale the wait budget by the observed arrival rate: when the
    /// inter-arrival EWMA says the window cannot plausibly fill within
    /// `max_wait_us`, dispatch early instead of sleeping out the full
    /// budget. `max_wait_us` remains the hard ceiling either way.
    pub adaptive_wait: bool,
    /// Per-request deadline in microseconds, measured from admission
    /// (`0` = no deadline). A job that no worker has picked up when its
    /// deadline passes is swept unstarted and answered with the typed
    /// `DEADLINE_EXCEEDED` error instead of parking its handler in
    /// `reply.recv()` for as long as the pool is stalled. The deadline
    /// bounds *scheduling*, not decode duration: a job whose decode began
    /// in time completes normally even if it finishes late.
    pub deadline_us: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_wait_us: 2_000,
            workers: 2,
            queue_depth: 256,
            adaptive_wait: false,
            deadline_us: 0,
        }
    }
}

/// How a decode result travels back to its connection: the threaded path
/// wraps an `mpsc` sender, the reactor path serialises the reply frame and
/// posts it to the event loop's completion queue. The request's trace span
/// (if tracing is on) rides along so the connection side can stamp the
/// reply milestones and close it.
pub(crate) type ReplyFn =
    Box<dyn FnOnce(Result<ImageF32, EaszError>, Option<SpanCtx>) + Send + 'static>;

/// One parked decode request: the parsed container, the engine tier it
/// decodes on, the submitting source (connection) and the callback its
/// reply returns through.
struct Job {
    container: EaszEncoded,
    engine: DecodeEngine,
    /// The submitting connection, for the fairness draw's rotation (kept
    /// on the job so tests can assert draw order).
    #[cfg_attr(not(test), allow(dead_code))]
    source: u64,
    enqueued: Instant,
    /// Sweep-by instant ([`GatewayConfig::deadline_us`]; `None` = never).
    deadline: Option<Instant>,
    /// Trace span carried with the request (`None` when tracing is off).
    span: Option<SpanCtx>,
    reply: ReplyFn,
}

impl Job {
    /// Stamps a trace milestone, if this job carries a span.
    #[inline]
    fn stamp(&mut self, stage: TraceStage) {
        if let Some(span) = &mut self.span {
            span.stamp(stage);
        }
    }
}

impl Job {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// Shared scheduler state behind the queue mutex: per-source queues plus a
/// round-robin rotation of sources that currently have parked jobs.
#[derive(Default)]
struct QueueState {
    queues: HashMap<u64, VecDeque<Job>>,
    /// Sources with at least one parked job, in draw order.
    rotation: VecDeque<u64>,
    /// Total parked jobs across all sources (the queue-depth bound).
    total: usize,
    shutdown: bool,
    /// When the previous submission arrived, for the inter-arrival EWMA.
    last_arrival: Option<Instant>,
    /// EWMA of µs between submissions (`0` = no estimate yet).
    arrival_ewma_us: u64,
}

impl QueueState {
    /// Enqueue time of the oldest parked job across all sources — the
    /// instant the current batching window opened.
    fn oldest_enqueued(&self) -> Option<Instant> {
        self.queues.values().filter_map(|q| q.front()).map(|j| j.enqueued).min()
    }

    /// Draws up to `max_batch` jobs round-robin: one job per source per
    /// cycle, so every active source lands in the window before any source
    /// gets a second slot.
    fn draw_window(&mut self, max_batch: usize) -> Vec<Job> {
        let mut window = Vec::with_capacity(max_batch.min(self.total));
        while window.len() < max_batch {
            let Some(source) = self.rotation.pop_front() else { break };
            let queue = self.queues.get_mut(&source).expect("rotated source has a queue");
            let mut job = queue.pop_front().expect("rotated source queue is nonempty");
            self.total -= 1;
            job.stamp(TraceStage::WindowClosed);
            window.push(job);
            if queue.is_empty() {
                self.queues.remove(&source);
            } else {
                self.rotation.push_back(source);
            }
        }
        window
    }
}

/// Dispatched-window state behind the worker mutex.
#[derive(Default)]
struct ReadyState {
    windows: VecDeque<Vec<Job>>,
    /// Set once the scheduler has exited; workers drain and stop.
    scheduler_done: bool,
}

/// Why [`Batcher::run_worker`] returned — the supervisor's signal to
/// either stop (clean shutdown) or respawn the worker (a caught panic may
/// have left thread-affine decode state inconsistent, so the crash-only
/// answer is a fresh worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerExit {
    /// The scheduler finished and every window is drained.
    Shutdown,
    /// A decode panic was caught in this worker's last window; every job
    /// in the window was still answered. Re-enter [`Batcher::run_worker`]
    /// to resume with a clean slate.
    Poisoned,
}

/// The wait budget (µs) for the currently open window, given how many jobs
/// it already holds and the observed inter-arrival EWMA.
///
/// Without `adaptive_wait` (or before any estimate exists) this is simply
/// `max_wait_us`. Adaptively: if arrivals are slower than the whole budget
/// there is no point waiting at all; otherwise wait just long enough for
/// the remaining slots to plausibly fill (25% slack), capped at
/// `max_wait_us`.
fn effective_wait_us(config: &GatewayConfig, queued: usize, ewma_us: u64) -> u64 {
    if !config.adaptive_wait || ewma_us == 0 {
        return config.max_wait_us;
    }
    if ewma_us >= config.max_wait_us {
        return 0;
    }
    let remaining_slots = config.max_batch.saturating_sub(queued) as u64;
    config.max_wait_us.min(remaining_slots.saturating_mul(ewma_us).saturating_mul(5) / 4)
}

/// The gateway: submission queue, window scheduler and worker rendezvous.
///
/// Thread bodies ([`run_scheduler`](Self::run_scheduler),
/// [`run_worker`](Self::run_worker)) are spawned by the server inside its
/// connection scope so they can borrow the shared decoder.
pub(crate) struct Batcher {
    config: GatewayConfig,
    metrics: Arc<ServerMetrics>,
    queue: Mutex<QueueState>,
    queue_cond: Condvar,
    ready: Mutex<ReadyState>,
    ready_cond: Condvar,
}

impl Batcher {
    pub fn new(config: GatewayConfig, metrics: Arc<ServerMetrics>) -> Self {
        assert!(config.max_batch > 0, "gateway max_batch must be positive");
        assert!(config.workers > 0, "gateway needs at least one worker");
        assert!(config.queue_depth > 0, "gateway queue_depth must be positive");
        Self {
            config,
            metrics,
            queue: Mutex::new(QueueState::default()),
            queue_cond: Condvar::new(),
            ready: Mutex::new(ReadyState::default()),
            ready_cond: Condvar::new(),
        }
    }

    /// Parks a parsed container for batched decoding on the given engine
    /// tier. `source` identifies the submitting connection for the
    /// round-robin fairness draw; `reply` is invoked exactly once with the
    /// result, on a decode-worker thread. Returns the container and
    /// callback back if the gateway cannot take the job (full queue or
    /// shutdown), in which case the caller decodes inline or sheds. Jobs
    /// on different tiers may share a window but never a model forward
    /// (the tier joins the decoder's fusion key).
    // The large Err variant is the point: the rejected job travels back to
    // the caller whole so the threaded path can decode it inline and the
    // reactor can shed it, without either path cloning the container.
    #[allow(clippy::result_large_err)]
    pub fn submit(
        &self,
        container: EaszEncoded,
        engine: DecodeEngine,
        source: u64,
        span: Option<SpanCtx>,
        reply: ReplyFn,
    ) -> Result<(), (EaszEncoded, Option<SpanCtx>, ReplyFn)> {
        // Fault hook (compiles out of default builds): refuse as if the
        // queue were saturated, exercising the inline/shed degradation.
        if fault::submit_refuse() {
            return Err((container, span, reply));
        }
        let mut state = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if state.shutdown || state.total >= self.config.queue_depth {
            return Err((container, span, reply));
        }
        let now = Instant::now();
        if let Some(prev) = state.last_arrival {
            let dt = now.saturating_duration_since(prev).as_micros().min(u64::MAX as u128) as u64;
            state.arrival_ewma_us =
                if state.arrival_ewma_us == 0 { dt } else { (7 * state.arrival_ewma_us + dt) / 8 };
            self.metrics.record_arrival_ewma(state.arrival_ewma_us);
        }
        state.last_arrival = Some(now);
        let deadline = (self.config.deadline_us > 0)
            .then(|| now + Duration::from_micros(self.config.deadline_us));
        let mut job = Job { container, engine, source, enqueued: now, deadline, span, reply };
        job.stamp(TraceStage::Enqueued);
        let queue = state.queues.entry(source).or_default();
        let newly_active = queue.is_empty();
        queue.push_back(job);
        if newly_active {
            state.rotation.push_back(source);
        }
        state.total += 1;
        self.metrics.record_queue_depth(state.total);
        drop(state);
        self.queue_cond.notify_one();
        Ok(())
    }

    /// Signals shutdown: no new submissions are accepted, the scheduler
    /// flushes whatever is queued into final windows and exits, and the
    /// workers drain the remaining windows before stopping. Already-parked
    /// jobs still get replies, so draining connections are answered.
    pub fn shutdown(&self) {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).shutdown = true;
        self.queue_cond.notify_all();
        self.ready_cond.notify_all();
    }

    /// The sweep cadence when deadlines are enabled: expired jobs are
    /// answered at most one tick past their deadline, and the scheduler's
    /// waits tick at this period instead of blocking indefinitely.
    fn sweep_tick(&self) -> Option<Duration> {
        (self.config.deadline_us > 0)
            .then(|| Duration::from_micros((self.config.deadline_us / 4).clamp(1_000, 50_000)))
    }

    /// Sweeps expired jobs from everywhere they can park — the submission
    /// queues, the dispatched-window backlog, and `local` (a window the
    /// scheduler holds while waiting for a backlog slot) — and answers
    /// each with `DEADLINE_EXCEEDED` outside all locks. No-op when
    /// deadlines are off.
    fn sweep_expired(&self, local: &mut Vec<Job>) {
        if self.config.deadline_us == 0 {
            return;
        }
        let now = Instant::now();
        let mut expired: Vec<(Option<SpanCtx>, ReplyFn)> = Vec::new();
        {
            let mut state = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            let QueueState { queues, rotation, total, .. } = &mut *state;
            for queue in queues.values_mut() {
                // Deadlines are admission-ordered within a source, so the
                // expired jobs are exactly a front prefix.
                while queue.front().is_some_and(|j| j.expired(now)) {
                    let job = queue.pop_front().expect("checked front");
                    expired.push((job.span, job.reply));
                    *total -= 1;
                }
            }
            queues.retain(|_, q| !q.is_empty());
            rotation.retain(|s| queues.contains_key(s));
            self.metrics.record_queue_depth(state.total);
        }
        {
            let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
            for window in ready.windows.iter_mut() {
                Self::sweep_window(window, now, &mut expired);
            }
            let emptied = ready.windows.iter().any(|w| w.is_empty());
            if emptied {
                ready.windows.retain(|w| !w.is_empty());
                // Empty windows freed backlog slots the scheduler may be
                // waiting on.
                self.ready_cond.notify_all();
            }
        }
        Self::sweep_window(local, now, &mut expired);
        for (span, reply) in expired {
            self.metrics.record_deadline_expired();
            reply(Err(EaszError::DeadlineExceeded), span);
        }
    }

    /// Moves the expired jobs of one window into `expired`, preserving the
    /// order of the survivors.
    fn sweep_window(
        window: &mut Vec<Job>,
        now: Instant,
        expired: &mut Vec<(Option<SpanCtx>, ReplyFn)>,
    ) {
        if window.iter().any(|j| j.expired(now)) {
            let jobs = std::mem::take(window);
            for job in jobs {
                if job.expired(now) {
                    expired.push((job.span, job.reply));
                } else {
                    window.push(job);
                }
            }
        }
    }

    /// The scheduler thread: forms batching windows and hands them to the
    /// workers. Runs until [`shutdown`](Self::shutdown) and the queue is
    /// drained.
    pub fn run_scheduler(&self) {
        let tick = self.sweep_tick();
        loop {
            let mut state = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            while state.total == 0 && !state.shutdown {
                match tick {
                    None => {
                        state = self.queue_cond.wait(state).unwrap_or_else(|e| e.into_inner());
                    }
                    Some(tick) => {
                        // Tick even while idle: the ready backlog can still
                        // hold jobs aging toward their deadline.
                        let (next, timeout) = self
                            .queue_cond
                            .wait_timeout(state, tick)
                            .unwrap_or_else(|e| e.into_inner());
                        state = next;
                        if timeout.timed_out() {
                            drop(state);
                            self.sweep_expired(&mut Vec::new());
                            state = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                        }
                    }
                }
            }
            if state.total == 0 {
                break; // shutdown with nothing left to flush
            }
            // A window is open — and has been since its oldest job arrived,
            // which is what the wait-budget promise is measured from (a
            // leftover job from an earlier burst must not restart the
            // budget). Collect until the window is full, the budget is
            // spent, or shutdown asks for an immediate flush. The budget
            // itself is re-evaluated on every wake: with adaptive waiting
            // it shrinks as the arrival estimate says further jobs are
            // unlikely to land in time.
            let opened = state.oldest_enqueued().expect("open window has a head job");
            while state.total < self.config.max_batch && !state.shutdown {
                let budget = Duration::from_micros(effective_wait_us(
                    &self.config,
                    state.total,
                    state.arrival_ewma_us,
                ));
                let Some(remaining) = budget.checked_sub(opened.elapsed()) else { break };
                let (next, timeout) = self
                    .queue_cond
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
            let mut window = state.draw_window(self.config.max_batch);
            self.metrics.record_queue_depth(state.total);
            drop(state);
            // Hand over — but never outrun the workers: the ready backlog
            // is bounded at one pending window per worker, so under
            // sustained overload jobs pile up in the *submission* queue,
            // whose bound is what makes `submit` refuse and degrade to
            // inline decode (and what the queue-depth metrics watch).
            // With deadlines on, the wait ticks and sweeps instead of
            // parking: a stalled worker pool must not let drawn or queued
            // jobs age past their deadline unanswered.
            let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
            while ready.windows.len() >= self.config.workers {
                match tick {
                    None => {
                        ready = self.ready_cond.wait(ready).unwrap_or_else(|e| e.into_inner());
                    }
                    Some(tick) => {
                        let (next, _) = self
                            .ready_cond
                            .wait_timeout(ready, tick)
                            .unwrap_or_else(|e| e.into_inner());
                        ready = next;
                        drop(ready);
                        self.sweep_expired(&mut window);
                        ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
                        if window.is_empty() {
                            break; // the whole window expired while parked
                        }
                    }
                }
            }
            if !window.is_empty() {
                ready.windows.push_back(window);
            }
            drop(ready);
            self.ready_cond.notify_all();
        }
        let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
        ready.scheduler_done = true;
        drop(ready);
        self.ready_cond.notify_all();
    }

    /// A decode worker: drains dispatched windows through the shared
    /// decoder until the scheduler is done and no windows remain — or
    /// until a caught decode panic poisons it, at which point it returns
    /// [`WorkerExit::Poisoned`] (every job of the poisoned window was
    /// still answered) and the supervisor re-enters with a clean slate.
    pub fn run_worker(&self, decoder: &EaszDecoder<'_>) -> WorkerExit {
        loop {
            let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
            while ready.windows.is_empty() && !ready.scheduler_done {
                ready = self.ready_cond.wait(ready).unwrap_or_else(|e| e.into_inner());
            }
            let Some(window) = ready.windows.pop_front() else {
                return WorkerExit::Shutdown; // scheduler done and nothing left
            };
            drop(ready);
            // The pop freed a backlog slot; the scheduler may be waiting
            // for exactly that.
            self.ready_cond.notify_all();
            if self.decode_window(window, decoder) {
                return WorkerExit::Poisoned;
            }
        }
    }

    /// Decodes one window and routes each result to its connection.
    /// Returns `true` if a panic was caught (the worker should be
    /// respawned); even then, every job received exactly one reply.
    fn decode_window(&self, window: Vec<Job>, decoder: &EaszDecoder<'_>) -> bool {
        let dispatched = Instant::now();
        // Jobs already past their deadline at dispatch are answered
        // without decoding — the deadline bounds time-to-decode-start.
        let (mut window, expired): (Vec<Job>, Vec<Job>) =
            window.into_iter().partition(|j| !j.expired(dispatched));
        for job in expired {
            self.metrics.record_deadline_expired();
            (job.reply)(Err(EaszError::DeadlineExceeded), job.span);
        }
        if window.is_empty() {
            return false;
        }
        for job in &mut window {
            let waited = dispatched.saturating_duration_since(job.enqueued);
            self.metrics.record_queue_wait(waited.as_micros() as u64);
            job.stamp(TraceStage::Dispatched);
        }
        // Fault hooks (compile out of default builds): a stalled decode
        // for the deadline machinery, per-job forced panics for the
        // isolation machinery.
        if let Some(delay) = fault::decode_delay() {
            std::thread::sleep(delay);
        }
        let injected: Vec<bool> = window.iter().map(|_| fault::decode_panic()).collect();
        let mut containers = Vec::with_capacity(window.len());
        let mut engines = Vec::with_capacity(window.len());
        let mut replies = Vec::with_capacity(window.len());
        let mut spans = Vec::with_capacity(window.len());
        for mut j in window {
            j.stamp(TraceStage::DecodeStart);
            containers.push(j.container);
            engines.push(j.engine);
            replies.push(j.reply);
            spans.push(j.span);
        }
        let started = Instant::now();
        let fused = catch_unwind(AssertUnwindSafe(|| {
            if injected.contains(&true) {
                panic!("{}", fault::INJECTED_PANIC);
            }
            decoder.decode_batch_with_stats(&containers, &engines)
        }));
        let decode_us = started.elapsed().as_micros() as u64;
        for span in spans.iter_mut().flatten() {
            span.stamp(TraceStage::DecodeEnd);
        }
        let (results, groups) = match fused {
            Ok(out) => out,
            Err(_) => {
                // The fused forward panicked. Serial decode is
                // byte-identical to the fused path (the standing
                // invariant), so re-decoding each job alone under its own
                // isolation boundary loses nothing — only the culprit
                // answers with `INTERNAL`, its windowmates still get their
                // images, and the worker reports itself poisoned.
                self.metrics.record_panic_caught();
                self.decode_serial_isolated(
                    &containers,
                    &engines,
                    replies,
                    spans,
                    &injected,
                    decoder,
                );
                return true;
            }
        };
        // One histogram record per fused forward group, not per window: the
        // batch-width histogram measures how many containers actually
        // shared a transformer forward, so a window the decoder had to
        // split (mixed models, mixed tiers, mixed kept counts) reports its
        // true fusion widths. Decode time is apportioned by group width,
        // remainder to the last group so the total is preserved. A window
        // whose every job failed validation ran no forward and records
        // nothing.
        let fused_width: usize = groups.iter().map(|&(_, width)| width).sum();
        let mut spent = 0u64;
        for (gi, &(_, width)) in groups.iter().enumerate() {
            let us = if gi + 1 == groups.len() {
                decode_us - spent
            } else {
                decode_us * width as u64 / fused_width as u64
            };
            spent += us;
            self.metrics.record_batch(width, us);
        }
        // Every job in the window rode the same fused decode, so the
        // window's decode wall time is each job's decode latency.
        for _ in 0..replies.len() {
            self.metrics.record_decode_sample(decode_us);
        }
        for ((reply, result), span) in replies.into_iter().zip(results).zip(spans) {
            // If the connection died while its job was queued the callback
            // finds nobody to deliver to and the result is simply dropped.
            reply(result, span);
        }
        false
    }

    /// The poisoned-window fallback: decodes each job alone, each under
    /// its own `catch_unwind`, so exactly the panicking container fails
    /// (with `INTERNAL`) and every other job still gets its result.
    fn decode_serial_isolated(
        &self,
        containers: &[EaszEncoded],
        engines: &[DecodeEngine],
        replies: Vec<ReplyFn>,
        spans: Vec<Option<SpanCtx>>,
        injected: &[bool],
        decoder: &EaszDecoder<'_>,
    ) {
        for ((i, reply), mut span) in replies.into_iter().enumerate().zip(spans) {
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if injected[i] {
                    panic!("{}", fault::INJECTED_PANIC);
                }
                decoder.decode_as(&containers[i], engines[i])
            }));
            let decode_us = started.elapsed().as_micros() as u64;
            self.metrics.record_decode_sample(decode_us);
            if let Some(span) = &mut span {
                span.stamp(TraceStage::DecodeEnd);
            }
            match outcome {
                Ok(result) => {
                    if result.is_ok() {
                        self.metrics.record_batch(1, decode_us);
                    }
                    reply(result, span);
                }
                Err(payload) => {
                    self.metrics.record_panic_caught();
                    reply(Err(EaszError::Internal(panic_message(payload))), span);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easz_codecs::{JpegLikeCodec, Quality};
    use easz_core::{EaszConfig, EaszEncoder, Reconstructor, ReconstructorConfig};
    use easz_data::Dataset;
    use std::sync::mpsc;

    fn container(seed: u64) -> EaszEncoded {
        let enc = EaszEncoder::new(EaszConfig { mask_seed: seed, ..EaszConfig::default() })
            .expect("encoder");
        let img = Dataset::KodakLike.image(seed as usize % 8).crop(0, 0, 64, 64);
        enc.compress(&img, &JpegLikeCodec::new(), Quality::new(75)).expect("compress")
    }

    /// Submits through a channel-backed reply, mirroring the threaded path.
    fn submit_chan(
        batcher: &Batcher,
        container: EaszEncoded,
        engine: DecodeEngine,
        source: u64,
    ) -> Result<mpsc::Receiver<Result<ImageF32, EaszError>>, EaszEncoded> {
        let (tx, rx) = mpsc::channel();
        batcher
            .submit(
                container,
                engine,
                source,
                None,
                Box::new(move |result, _span| {
                    let _ = tx.send(result);
                }),
            )
            .map(|()| rx)
            .map_err(|(c, _, _)| c)
    }

    /// Drives a batcher with a real decoder on scoped threads, shutting
    /// down cleanly when `body` returns.
    fn with_batcher<R>(
        config: GatewayConfig,
        body: impl FnOnce(&Batcher, &EaszDecoder<'_>) -> R,
    ) -> (R, Arc<ServerMetrics>) {
        let model = Reconstructor::new(ReconstructorConfig::fast());
        let decoder = EaszDecoder::new(&model);
        let metrics = Arc::new(ServerMetrics::new());
        let workers = config.workers;
        let batcher = Batcher::new(config, metrics.clone());
        // Shut down on drop — including the unwind of a failed assertion
        // in `body`, which would otherwise leave the scoped scheduler and
        // worker threads parked forever and deadlock the test instead of
        // failing it.
        struct ShutdownOnDrop<'a>(&'a Batcher);
        impl Drop for ShutdownOnDrop<'_> {
            fn drop(&mut self) {
                self.0.shutdown();
            }
        }
        let result = std::thread::scope(|scope| {
            let b = &batcher;
            let _guard = ShutdownOnDrop(b);
            scope.spawn(move || b.run_scheduler());
            for _ in 0..workers {
                let decoder = &decoder;
                let metrics = &metrics;
                // The same supervisor loop the server runs: a poisoned
                // worker is respawned until clean shutdown.
                scope.spawn(move || loop {
                    match b.run_worker(decoder) {
                        WorkerExit::Shutdown => break,
                        WorkerExit::Poisoned => metrics.record_worker_respawn(),
                    }
                });
            }
            body(b, &decoder)
        });
        (result, metrics)
    }

    #[test]
    fn window_closes_on_max_batch_and_fuses_mixed_masks() {
        let config = GatewayConfig { max_batch: 3, max_wait_us: 60_000_000, ..Default::default() };
        let ((), metrics) = with_batcher(config, |batcher, decoder| {
            // Distinct seeds => distinct masks; one window must still fuse
            // them and every reply must match its serial decode.
            let containers = [container(1), container(2), container(3)];
            let receivers: Vec<_> = containers
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    submit_chan(batcher, c.clone(), DecodeEngine::TapeFree, i as u64)
                        .expect("queue has room")
                })
                .collect();
            for (c, rx) in containers.iter().zip(receivers) {
                let batched = rx.recv().expect("reply").expect("decode");
                let serial = decoder.decode(c).expect("serial decode");
                assert_eq!(batched.data(), serial.data(), "gateway decode must match serial");
            }
        });
        let stats = metrics.snapshot();
        // The wait budget is effectively infinite, so only max_batch can
        // have closed the window: all three jobs share one batch.
        assert_eq!(stats.batches_dispatched, 1, "window must close on max_batch");
        assert_eq!(stats.batch_widths[2], 1, "the one window holds 3 jobs");
    }

    #[test]
    fn mixed_tier_window_never_fuses_but_replies_match_serial_per_tier() {
        // One window holding both tiers of the same container: each reply
        // must be bit-equal to its own tier's serial decode, and the two
        // tiers must differ — proof the fused window kept them on separate
        // forwards.
        let config = GatewayConfig { max_batch: 4, max_wait_us: 60_000_000, ..Default::default() };
        let ((), metrics) = with_batcher(config, |batcher, decoder| {
            let c = container(7);
            let tiers = [
                DecodeEngine::TapeFree,
                DecodeEngine::QuantizedInt8,
                DecodeEngine::TapeFree,
                DecodeEngine::QuantizedInt8,
            ];
            let receivers: Vec<_> = tiers
                .iter()
                .map(|&tier| submit_chan(batcher, c.clone(), tier, 1).expect("queue has room"))
                .collect();
            let mut images = Vec::new();
            for (&tier, rx) in tiers.iter().zip(receivers) {
                let batched = rx.recv().expect("reply").expect("decode");
                let serial = decoder.decode_as(&c, tier).expect("serial decode");
                assert_eq!(batched.data(), serial.data(), "tier {tier:?} must match serial");
                images.push(batched);
            }
            assert_ne!(images[0].data(), images[1].data(), "tiers must differ numerically");
        });
        let stats = metrics.snapshot();
        // One window, but the decoder split it into two per-tier forwards —
        // and the histogram records fusion groups, so it shows two width-2
        // batches, never a width-4 one.
        assert_eq!(stats.batches_dispatched, 2, "one forward group per tier");
        assert_eq!(stats.batch_widths[1], 2, "each tier fused its own pair");
        assert_eq!(stats.batch_widths[3], 0, "no cross-tier width-4 fusion");
    }

    #[test]
    fn window_closes_on_max_wait() {
        let config = GatewayConfig { max_batch: 64, max_wait_us: 1_000, ..Default::default() };
        let ((), metrics) = with_batcher(config, |batcher, _| {
            let rx = submit_chan(batcher, container(5), DecodeEngine::TapeFree, 1)
                .expect("queue has room");
            rx.recv().expect("reply").expect("decode");
        });
        let stats = metrics.snapshot();
        assert_eq!(stats.batches_dispatched, 1);
        assert_eq!(stats.batch_widths[0], 1, "a lone job dispatches as width 1 on timeout");
    }

    #[test]
    fn full_queue_hands_the_container_back() {
        let config = GatewayConfig {
            max_batch: 64,
            max_wait_us: 60_000_000,
            queue_depth: 2,
            ..Default::default()
        };
        // No scheduler/workers: the queue can only fill.
        let batcher = Batcher::new(config, Arc::new(ServerMetrics::new()));
        let c = container(9);
        let tier = DecodeEngine::TapeFree;
        assert!(submit_chan(&batcher, c.clone(), tier, 1).is_ok());
        assert!(submit_chan(&batcher, c.clone(), tier, 2).is_ok());
        let refused = submit_chan(&batcher, c.clone(), tier, 3).expect_err("queue is full");
        assert_eq!(refused, c, "the container comes back for inline decode");
        batcher.shutdown();
        let refused = submit_chan(&batcher, c.clone(), tier, 1).expect_err("shutdown refuses work");
        assert_eq!(refused, c);
    }

    #[test]
    fn shutdown_flushes_parked_jobs() {
        let model = Reconstructor::new(ReconstructorConfig::fast());
        let decoder = EaszDecoder::new(&model);
        let metrics = Arc::new(ServerMetrics::new());
        let config = GatewayConfig { max_batch: 64, max_wait_us: 60_000_000, ..Default::default() };
        let batcher = Batcher::new(config, metrics);
        let c = container(4);
        std::thread::scope(|scope| {
            let rx = submit_chan(&batcher, c.clone(), DecodeEngine::TapeFree, 1)
                .expect("queue has room");
            // Scheduler started *after* submission, with an hour-long wait
            // budget: only the shutdown flush can dispatch the window.
            scope.spawn(|| batcher.run_scheduler());
            scope.spawn(|| batcher.run_worker(&decoder));
            batcher.shutdown();
            let flushed = rx.recv().expect("flushed reply").expect("decode");
            let serial = decoder.decode(&c).expect("serial decode");
            assert_eq!(flushed.data(), serial.data());
        });
    }

    #[test]
    fn gateway_stamps_every_queue_milestone_on_the_span() {
        use crate::trace::{TraceConfig, Tracer};
        let tracer = Tracer::new(TraceConfig::default());
        let config = GatewayConfig { max_batch: 1, max_wait_us: 1_000, ..Default::default() };
        let ((), _) = with_batcher(config, |batcher, _| {
            let mut span = tracer.begin(crate::protocol::DECODE, 1);
            span.stamp(TraceStage::Admitted);
            let (tx, rx) = mpsc::channel();
            batcher
                .submit(
                    container(1),
                    DecodeEngine::TapeFree,
                    1,
                    Some(span),
                    Box::new(move |result, span| {
                        let _ = tx.send((result, span));
                    }),
                )
                .unwrap_or_else(|_| panic!("queue has room"));
            let (result, span) = rx.recv().expect("reply");
            result.expect("decode");
            let span = span.expect("the span rides back with the reply");
            for stage in [
                TraceStage::Admitted,
                TraceStage::Enqueued,
                TraceStage::WindowClosed,
                TraceStage::Dispatched,
                TraceStage::DecodeStart,
                TraceStage::DecodeEnd,
            ] {
                assert!(span.stamped(stage), "stage {} must be stamped", stage.name());
            }
        });
    }

    #[test]
    fn window_draw_is_round_robin_across_sources() {
        // One flooding source (4 jobs) plus two light ones: the draw must
        // interleave one-per-source before giving the flooder extra slots.
        let config = GatewayConfig { max_wait_us: 60_000_000, ..Default::default() };
        let batcher = Batcher::new(config, Arc::new(ServerMetrics::new()));
        let tier = DecodeEngine::TapeFree;
        for _ in 0..4 {
            submit_chan(&batcher, container(1), tier, 10).expect("room");
        }
        submit_chan(&batcher, container(2), tier, 20).expect("room");
        submit_chan(&batcher, container(3), tier, 30).expect("room");
        submit_chan(&batcher, container(2), tier, 20).expect("room");
        let mut state = batcher.queue.lock().unwrap();
        let drawn: Vec<u64> = state.draw_window(8).iter().map(|j| j.source).collect();
        assert_eq!(drawn, vec![10, 20, 30, 10, 20, 10, 10], "one job per source per cycle");
        assert_eq!(state.total, 0);
        assert!(state.rotation.is_empty() && state.queues.is_empty());
    }

    #[test]
    fn partial_draw_keeps_remaining_sources_rotated() {
        let config = GatewayConfig { max_wait_us: 60_000_000, ..Default::default() };
        let batcher = Batcher::new(config, Arc::new(ServerMetrics::new()));
        let tier = DecodeEngine::TapeFree;
        for source in [1u64, 2, 1, 2, 1] {
            submit_chan(&batcher, container(source), tier, source).expect("room");
        }
        let mut state = batcher.queue.lock().unwrap();
        let first: Vec<u64> = state.draw_window(3).iter().map(|j| j.source).collect();
        assert_eq!(first, vec![1, 2, 1]);
        assert_eq!(state.total, 2);
        let second: Vec<u64> = state.draw_window(3).iter().map(|j| j.source).collect();
        assert_eq!(second, vec![2, 1], "leftovers drain in rotation order");
    }

    #[test]
    fn adaptive_wait_budget_tracks_arrival_rate() {
        let fixed = GatewayConfig { max_batch: 8, max_wait_us: 2_000, ..Default::default() };
        // Disabled or no estimate yet: always the full budget.
        assert_eq!(effective_wait_us(&fixed, 3, 500), 2_000);
        let adaptive = GatewayConfig { adaptive_wait: true, ..fixed };
        assert_eq!(effective_wait_us(&adaptive, 3, 0), 2_000, "no estimate yet");
        // Arrivals slower than the whole budget: dispatch immediately.
        assert_eq!(effective_wait_us(&adaptive, 1, 2_000), 0);
        assert_eq!(effective_wait_us(&adaptive, 1, 50_000), 0);
        // Dense traffic: wait just long enough for the remaining slots
        // (25% slack), never beyond the ceiling.
        assert_eq!(effective_wait_us(&adaptive, 6, 100), 250, "2 slots * 100µs * 5/4");
        assert_eq!(effective_wait_us(&adaptive, 0, 500), 2_000, "capped at max_wait_us");
        assert_eq!(effective_wait_us(&adaptive, 8, 100), 0, "full window waits for nothing");
    }

    #[test]
    fn submissions_feed_the_arrival_ewma() {
        let config = GatewayConfig { max_wait_us: 60_000_000, ..Default::default() };
        let metrics = Arc::new(ServerMetrics::new());
        let batcher = Batcher::new(config, metrics.clone());
        let tier = DecodeEngine::TapeFree;
        submit_chan(&batcher, container(1), tier, 1).expect("room");
        assert_eq!(metrics.arrival_ewma_us(), 0, "one sample has no interval yet");
        std::thread::sleep(Duration::from_millis(2));
        submit_chan(&batcher, container(2), tier, 1).expect("room");
        let first = metrics.arrival_ewma_us();
        assert!(first >= 1_000, "interval of >=2ms must register, got {first}µs");
        // One back-to-back submission suffices logically ((7e + dt)/8 < e
        // whenever dt < e), but a loaded machine can stall any single
        // submit past `first` (and a run of stalls inflates the EWMA, so
        // one fast submit stops sufficing) — keep submitting until the
        // geometric decay wins.
        let mut second = first;
        for _ in 0..500 {
            submit_chan(&batcher, container(3), tier, 1).expect("room");
            second = metrics.arrival_ewma_us();
            if second < first {
                break;
            }
        }
        assert!(second < first, "back-to-back submissions must pull the EWMA down");
    }

    #[test]
    fn deadline_sweeps_parked_jobs_when_workers_stall() {
        // One-slot windows, a 20ms deadline, and *no* workers: every job
        // parks — in the ready backlog, in the scheduler's hand, or in the
        // queue — and only the sweep can answer. Pre-deadline every reply
        // channel must be blocked; post-deadline every job must surface as
        // `DEADLINE_EXCEEDED` instead of parking its handler forever.
        let config = GatewayConfig {
            max_batch: 1,
            max_wait_us: 1_000,
            workers: 1,
            deadline_us: 20_000,
            ..Default::default()
        };
        let metrics = Arc::new(ServerMetrics::new());
        let batcher = Batcher::new(config, metrics.clone());
        std::thread::scope(|scope| {
            let receivers: Vec<_> = (0..3u64)
                .map(|i| {
                    submit_chan(&batcher, container(i), DecodeEngine::TapeFree, i).expect("room")
                })
                .collect();
            scope.spawn(|| batcher.run_scheduler());
            for rx in receivers {
                let result = rx.recv_timeout(Duration::from_secs(20)).expect("swept reply");
                assert!(
                    matches!(result, Err(EaszError::DeadlineExceeded)),
                    "stalled job must be swept, got {result:?}"
                );
            }
            batcher.shutdown();
        });
        assert_eq!(metrics.snapshot().deadlines_expired, 3);
    }

    #[test]
    fn injected_panic_fails_only_its_job_and_the_worker_respawns() {
        let _fault = fault::install(fault::FaultPlan {
            decode_panic_oneshot: 1,
            ..fault::FaultPlan::default()
        });
        let config = GatewayConfig {
            max_batch: 3,
            max_wait_us: 60_000_000,
            workers: 1,
            ..Default::default()
        };
        let ((), metrics) = with_batcher(config, |batcher, decoder| {
            let containers = [container(1), container(2), container(3)];
            let receivers: Vec<_> = containers
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    submit_chan(batcher, c.clone(), DecodeEngine::TapeFree, i as u64)
                        .expect("queue has room")
                })
                .collect();
            // The oneshot fires on the window's first job: it alone gets
            // the typed `Internal`, its windowmates still decode to the
            // serial reference.
            let mut results = receivers.iter().map(|rx| rx.recv().expect("reply"));
            let first = results.next().expect("first job");
            match first {
                Err(EaszError::Internal(msg)) => {
                    assert!(msg.contains(fault::INJECTED_PANIC), "got {msg:?}")
                }
                other => panic!("expected Internal for the panicking job, got {other:?}"),
            }
            for (c, result) in containers[1..].iter().zip(results) {
                let image = result.expect("windowmates survive the panic");
                let serial = decoder.decode(c).expect("serial decode");
                assert_eq!(image.data(), serial.data(), "windowmate must match serial");
            }
            // The pool recovered: a fresh job decodes on the respawned
            // worker.
            let rx = submit_chan(batcher, container(9), DecodeEngine::TapeFree, 9)
                .expect("queue has room");
            rx.recv().expect("reply").expect("respawned worker decodes");
        });
        let stats = metrics.snapshot();
        assert!(stats.panics_caught >= 1, "the catch must be counted");
        assert_eq!(stats.worker_respawns, 1, "exactly one respawn");
    }

    #[test]
    fn injected_submit_refusal_degrades_like_a_full_queue() {
        let _fault = fault::install(fault::FaultPlan {
            submit_refuse_permille: 1000,
            ..fault::FaultPlan::default()
        });
        let batcher = Batcher::new(GatewayConfig::default(), Arc::new(ServerMetrics::new()));
        let c = container(2);
        let refused = submit_chan(&batcher, c.clone(), DecodeEngine::TapeFree, 1)
            .expect_err("every submit refused");
        assert_eq!(refused, c, "the container comes back for inline decode");
    }
}

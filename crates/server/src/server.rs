//! The decode server: an accept loop handing each connection to a scoped
//! handler thread, all sharing one [`EaszDecoder`] (and therefore one
//! model zoo) behind the framing protocol of [`crate::protocol`].

use crate::batcher::{panic_message, Batcher, GatewayConfig, WorkerExit};
use crate::fault;
use crate::metrics::{ServerMetrics, ServerStats};
use crate::protocol::{self, EngineTier, ErrorCode, FrameReadError, WireError};
use crate::reactor::{self, ReactorConfig};
use crate::trace::{SpanCtx, TraceConfig, TraceStage, Tracer};
use easz_codecs::CodecRegistry;
use easz_core::{DecodeEngine, EaszDecoder, EaszEncoded, EaszError, Reconstructor};
use easz_image::ImageF32;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Registry of live connection sockets so shutdown can unblock handler
/// threads stuck in a read — a blocked `recv` only returns once its socket
/// is shut down, and `thread::scope` will not join before then.
#[derive(Debug, Default)]
struct Connections {
    streams: Mutex<Vec<(u64, TcpStream)>>,
    next_id: AtomicU64,
}

impl Connections {
    /// Registers a connection, returning its registry id. `None` if the
    /// socket could not be cloned — that connection just cannot be
    /// force-closed.
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().expect("connection registry poisoned").push((id, clone));
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.streams.lock().expect("connection registry poisoned").retain(|(i, _)| *i != id);
    }

    /// Shuts every registered socket down, waking blocked reads with EOF.
    fn shutdown_all(&self) {
        for (_, stream) in self.streams.lock().expect("connection registry poisoned").iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// Tunables of a [`EaszServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Largest inbound frame payload accepted; a frame announcing more is
    /// answered with [`ErrorCode::Oversize`] and the connection is closed.
    pub max_frame_len: usize,
    /// Largest number of containers accepted in one `DECODE_BATCH` frame.
    pub max_batch: usize,
    /// Per-connection read timeout; an idle connection past it is closed.
    /// `None` (the default) or a zero duration keeps connections open
    /// indefinitely (a zero `Duration` is invalid for the OS socket
    /// timeout, so it is normalised to "no timeout" rather than erroring).
    pub read_timeout: Option<Duration>,
    /// The cross-connection decode gateway. `None` (the default) decodes
    /// each request on its own connection thread; `Some` parks requests in
    /// a batching window so concurrent connections share transformer
    /// forwards (see [`GatewayConfig`]).
    pub gateway: Option<GatewayConfig>,
    /// The event-driven reactor front end. `None` (the default) serves
    /// each connection on its own blocking handler thread; `Some` runs one
    /// epoll readiness loop over nonblocking sockets instead (see
    /// [`ReactorConfig`]). The reactor always decodes through the gateway:
    /// when no gateway is configured alongside it, a default one (with
    /// adaptive batching windows) is used.
    pub reactor: Option<ReactorConfig>,
    /// Request tracing. `None` (the default) captures no spans — request
    /// structs carry no trace context and the instrumented sites reduce to
    /// inlined `Option` checks; `Some` attaches a [`Tracer`] whose sampled
    /// spans and slow-request log are served via the `TRACE` frame (see
    /// [`TraceConfig`]). The always-on latency histograms in
    /// [`ServerMetrics`] do not depend on this.
    pub trace: Option<TraceConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_frame_len: 16 << 20,
            max_batch: 64,
            read_timeout: None,
            gateway: None,
            reactor: None,
            trace: None,
        }
    }
}

/// A batched `.easz` decode server over TCP.
///
/// One model zoo serves every connection: handler threads run under
/// [`std::thread::scope`] and share a single [`EaszDecoder`], so a
/// `DECODE_BATCH` request turns into [`EaszDecoder::decode_batch`] — one
/// transformer forward per shared-mask group rather than one per stream.
/// The generic model answers containers carrying model id 0 (including
/// every pre-zoo container); [`with_model`](Self::with_model) mounts
/// fine-tuned models under nonzero ids, and a container naming an
/// unmounted id gets a typed `UNKNOWN_MODEL` error instead of a wrong
/// reconstruction.
///
/// ```no_run
/// use easz_core::zoo;
/// use easz_server::{EaszClient, EaszServer};
///
/// let model = zoo::pretrained(zoo::PretrainSpec::quick());
/// let handle = EaszServer::new(model).spawn("127.0.0.1:0").expect("bind");
/// let mut client = EaszClient::connect(handle.addr()).expect("connect");
/// assert_eq!(client.ping().expect("ping"), easz_server::protocol::PROTOCOL_VERSION);
/// handle.shutdown().expect("clean shutdown");
/// ```
pub struct EaszServer {
    model: Arc<Reconstructor>,
    /// Fine-tuned zoo models mounted under nonzero ids, sorted by id.
    extra_models: Vec<(u8, Arc<Reconstructor>)>,
    registry: CodecRegistry,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
}

impl std::fmt::Debug for EaszServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EaszServer")
            .field("registry", &self.registry)
            .field("config", &self.config)
            .finish()
    }
}

impl EaszServer {
    /// Creates a server around a trained reconstructor with the default
    /// codec registry and configuration.
    pub fn new(model: Arc<Reconstructor>) -> Self {
        Self {
            model,
            extra_models: Vec::new(),
            registry: CodecRegistry::with_defaults(),
            config: ServerConfig::default(),
            metrics: Arc::new(ServerMetrics::new()),
        }
    }

    /// Replaces the codec registry (e.g. an allow-list of inner codecs).
    pub fn with_registry(mut self, registry: CodecRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Mounts a zoo model under `id`, serving containers whose header
    /// carries that model id. Id `0` replaces the generic model passed to
    /// [`new`](Self::new); mounting the same nonzero id twice keeps the
    /// later model. The gateway never fuses requests across model ids, so
    /// mounted models stay bit-exact to their local serial decodes.
    pub fn with_model(mut self, id: u8, model: Arc<Reconstructor>) -> Self {
        if id == 0 {
            self.model = model;
            return self;
        }
        match self.extra_models.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => self.extra_models[pos].1 = model,
            Err(pos) => self.extra_models.insert(pos, (id, model)),
        }
        self
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the per-connection read timeout: an idle or half-open client
    /// past it is disconnected instead of pinning its handler thread. A
    /// zero duration means "no timeout".
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.config.read_timeout = Some(timeout);
        self
    }

    /// Enables the cross-connection decode gateway: requests from every
    /// connection are parked into batching windows (closed on
    /// [`max_batch`](GatewayConfig::max_batch) or
    /// [`max_wait_us`](GatewayConfig::max_wait_us)) and decoded by a shared
    /// worker pool, so concurrent clients share transformer forwards even
    /// when their mask seeds differ. Replies are byte-identical to
    /// ungatewayed decoding.
    pub fn with_gateway(mut self, gateway: GatewayConfig) -> Self {
        self.config.gateway = Some(gateway);
        self
    }

    /// Selects the event-driven reactor front end: one epoll readiness
    /// loop over nonblocking sockets replaces the thread-per-connection
    /// accept loop, scaling in connections instead of threads and adding
    /// admission control (`BUSY` beyond
    /// [`max_connections`](ReactorConfig::max_connections)) and load
    /// shedding (`BUSY` instead of inline decode when the gateway queue
    /// saturates). Decode replies stay byte-identical to the threaded
    /// path. Linux-only; serving fails with
    /// [`io::ErrorKind::Unsupported`] elsewhere.
    pub fn with_reactor(mut self, reactor: ReactorConfig) -> Self {
        self.config.reactor = Some(reactor);
        self
    }

    /// Enables request tracing on both front ends: every request carries a
    /// span stamping its pipeline milestones, every `sample_every`-th span
    /// (plus every request slower than `slow_threshold_us`, always) is
    /// kept in a fixed-size ring, and decode-stage hooks are installed on
    /// the shared decoder. Drain the spans with [`EaszClient::trace`]
    /// (crate::EaszClient::trace) or the `easz-top` inspector. Replies
    /// stay byte-identical with tracing on or off.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.config.trace = Some(trace);
        self
    }

    /// The server's live metrics registry (also served to clients via the
    /// `STATS` frame). The handle survives the server, so an embedder can
    /// scrape it after shutdown.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        self.metrics.clone()
    }

    /// Serves connections on `listener` until the process exits, blocking
    /// the calling thread. Each connection gets a scoped handler thread;
    /// a handler failure (connection reset mid-reply) never takes down the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Only fatal accept-loop errors; per-connection I/O errors are
    /// swallowed after closing that connection.
    pub fn serve(self, listener: TcpListener) -> io::Result<()> {
        self.serve_until(listener, &AtomicBool::new(false), &Connections::default())
    }

    /// Binds `addr` and serves on a background thread, returning a handle
    /// that reports the bound address and can shut the server down.
    ///
    /// # Errors
    ///
    /// Bind or thread-spawn failures.
    pub fn spawn(self, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
        self.spawn_on(TcpListener::bind(addr)?)
    }

    /// As [`spawn`](Self::spawn), but serves an already-bound listener —
    /// for embedders (and `easz-serve`) that bind themselves and keep the
    /// handle around for signal-driven graceful drain.
    ///
    /// # Errors
    ///
    /// Local-address lookup or thread-spawn failures.
    pub fn spawn_on(self, listener: TcpListener) -> io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Connections::default());
        let metrics = self.metrics.clone();
        let (flag, conns) = (shutdown.clone(), connections.clone());
        let thread = std::thread::Builder::new()
            .name("easz-serve".into())
            .spawn(move || self.serve_until(listener, &flag, &conns))?;
        Ok(ServerHandle { addr, shutdown, connections, metrics, thread: Some(thread) })
    }

    fn serve_until(
        self,
        listener: TcpListener,
        shutdown: &AtomicBool,
        connections: &Connections,
    ) -> io::Result<()> {
        let Self { model, extra_models, registry, config, metrics } = self;
        let mut decoder = EaszDecoder::with_registry(&model, registry);
        for (id, extra) in &extra_models {
            decoder.add_model(*id, extra);
        }
        // With tracing on, the shared decoder reports its per-stage wall
        // times (parse/plan/forward/finish) into the tracer's accumulators.
        let tracer = config.trace.map(|cfg| Arc::new(Tracer::new(cfg)));
        if let Some(tracer) = &tracer {
            let sink = tracer.clone();
            decoder.set_stage_sink(Arc::new(move |stage, us| sink.record_decode_stage(stage, us)));
        }
        let tracer = tracer.as_deref();
        let decoder = decoder;
        // The reactor's event loop must never block on a forward, so it
        // always decodes through a gateway — a default one (with adaptive
        // windows, since the reactor targets bursty fleet traffic) when
        // the embedder configured none.
        let gateway = match (&config.reactor, config.gateway.clone()) {
            (Some(_), None) => Some(GatewayConfig { adaptive_wait: true, ..Default::default() }),
            (_, gateway) => gateway,
        };
        let batcher = gateway.clone().map(|g| Batcher::new(g, metrics.clone()));
        std::thread::scope(|scope| {
            // The gateway threads live inside the connection scope so they
            // can borrow the shared decoder; they exit when `shutdown()`
            // below flushes the queue.
            if let Some(batcher) = &batcher {
                let workers = gateway.as_ref().expect("gateway config present").workers;
                scope.spawn(|| batcher.run_scheduler());
                for _ in 0..workers {
                    let decoder = &decoder;
                    let metrics = &metrics;
                    // Supervisor loop: a worker poisoned by a caught decode
                    // panic is respawned in place (same thread, fresh
                    // `run_worker`), so the pool never shrinks under faults.
                    scope.spawn(move || loop {
                        match batcher.run_worker(decoder) {
                            WorkerExit::Shutdown => break,
                            WorkerExit::Poisoned => metrics.record_worker_respawn(),
                        }
                    });
                }
            }
            let result = if let Some(reactor_config) = &config.reactor {
                reactor::run(
                    listener,
                    shutdown,
                    &config,
                    reactor_config,
                    &metrics,
                    batcher.as_ref().expect("the reactor always runs with a gateway"),
                    tracer,
                )
            } else {
                loop {
                    let (stream, _) = match listener.accept() {
                        Ok(conn) => conn,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => break Err(e),
                    };
                    if shutdown.load(Ordering::Acquire) {
                        // The waking connection is dropped unanswered; the
                        // scope drains in-flight handlers (unblocked by
                        // `shutdown_all`) before we return.
                        break Ok(());
                    }
                    let ctx = ConnCtx {
                        decoder: &decoder,
                        config: &config,
                        metrics: &metrics,
                        batcher: batcher.as_ref(),
                        tracer,
                        source: 0,
                    };
                    scope.spawn(move || {
                        // A connection that cannot be registered (fd pressure
                        // broke the try_clone) could never be force-closed and
                        // would pin shutdown forever — refuse it instead of
                        // serving it.
                        let Some(id) = connections.register(&stream) else {
                            ctx.metrics.record_connection_refused();
                            return;
                        };
                        // The registry id doubles as the gateway fairness
                        // source: one id per connection.
                        let ctx = ConnCtx { source: id, ..ctx };
                        // Re-check after registering: a shutdown signalled
                        // between accept and register has already swept the
                        // registry, and this handler must not start a blocking
                        // read it would never be woken from.
                        if !shutdown.load(Ordering::Acquire) {
                            ctx.metrics.record_connection_open();
                            let _ = handle_connection(stream, &ctx);
                            ctx.metrics.record_connection_close();
                        }
                        connections.deregister(id);
                    });
                }
            };
            // Stop the gateway before the scope joins: the scheduler
            // flushes parked jobs into final windows, workers drain them
            // (so draining connections still get replies), then all gateway
            // threads exit.
            if let Some(batcher) = &batcher {
                batcher.shutdown();
            }
            result
        })
    }
}

/// Everything a connection handler needs, bundled so handler signatures
/// stay readable.
#[derive(Clone, Copy)]
struct ConnCtx<'a> {
    decoder: &'a EaszDecoder<'a>,
    config: &'a ServerConfig,
    metrics: &'a ServerMetrics,
    batcher: Option<&'a Batcher>,
    /// The request tracer, when tracing is enabled.
    tracer: Option<&'a Tracer>,
    /// This connection's gateway fairness source id.
    source: u64,
}

/// What a gateway-parked request's channel carries back: the result plus
/// the request's trace span (stamped through the queue milestones).
type GatewayReply = (Result<ImageF32, EaszError>, Option<SpanCtx>);

impl ConnCtx<'_> {
    /// Opens a trace span for a freshly read request frame (`None` when
    /// tracing is off), already stamped `Admitted` — the threaded front
    /// end has no admission gate, so assembly is admission.
    fn begin_span(&self, frame_type: u8) -> Option<SpanCtx> {
        self.tracer.map(|t| {
            let mut span = t.begin(frame_type, self.source);
            span.stamp(TraceStage::Admitted);
            span
        })
    }

    /// Parks `encoded` in the gateway with a channel-backed reply, so this
    /// handler thread can block on the receiver.
    fn submit_gateway(
        &self,
        batcher: &Batcher,
        encoded: EaszEncoded,
        engine: DecodeEngine,
        span: Option<SpanCtx>,
    ) -> Result<std::sync::mpsc::Receiver<GatewayReply>, Box<(EaszEncoded, Option<SpanCtx>)>> {
        let (tx, rx) = std::sync::mpsc::channel();
        batcher
            .submit(
                encoded,
                engine,
                self.source,
                span,
                Box::new(move |result, span| {
                    let _ = tx.send((result, span));
                }),
            )
            .map(|()| rx)
            .map_err(|(back, span, _)| Box::new((back, span)))
    }

    /// Decodes one parsed container on `engine` — through the gateway when
    /// enabled and willing, inline otherwise. `Err(())` means the gateway
    /// accepted the job but shut down before answering; the connection
    /// should close.
    fn decode(
        &self,
        encoded: EaszEncoded,
        engine: DecodeEngine,
        span: Option<SpanCtx>,
    ) -> Result<GatewayReply, ()> {
        if let Some(batcher) = self.batcher {
            match self.submit_gateway(batcher, encoded, engine, span) {
                Ok(rx) => return rx.recv().map_err(|_| ()),
                Err(refused) => {
                    // Full queue or shutdown: degrade to inline decode.
                    let (back, span) = *refused;
                    self.metrics.record_inline_decode();
                    return Ok(self.decode_inline(&back, engine, span));
                }
            }
        }
        self.metrics.record_inline_decode();
        Ok(self.decode_inline(&encoded, engine, span))
    }

    /// Inline decode on this handler thread, with the decode milestones
    /// stamped and the decode-time histogram fed.
    fn decode_inline(
        &self,
        encoded: &EaszEncoded,
        engine: DecodeEngine,
        mut span: Option<SpanCtx>,
    ) -> GatewayReply {
        if let Some(span) = &mut span {
            span.stamp(TraceStage::DecodeStart);
        }
        let started = Instant::now();
        let result = decode_isolated(self.decoder, self.metrics, encoded, engine);
        self.metrics.record_decode_sample(started.elapsed().as_micros() as u64);
        if let Some(span) = &mut span {
            span.stamp(TraceStage::DecodeEnd);
        }
        (result, span)
    }
}

/// Runs one inline decode under the same isolation boundary as the gateway
/// workers: the fault hooks (injected stalls and panics) apply, and a
/// panicking container fails *its own* request with a typed
/// [`EaszError::Internal`] instead of unwinding through the handler thread
/// and killing the connection.
fn decode_isolated(
    decoder: &EaszDecoder<'_>,
    metrics: &ServerMetrics,
    encoded: &EaszEncoded,
    engine: DecodeEngine,
) -> Result<ImageF32, EaszError> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    if let Some(delay) = fault::decode_delay() {
        std::thread::sleep(delay);
    }
    let injected = fault::decode_panic();
    match catch_unwind(AssertUnwindSafe(|| {
        if injected {
            panic!("{}", fault::INJECTED_PANIC);
        }
        decoder.decode_as(encoded, engine)
    })) {
        Ok(result) => result,
        Err(payload) => {
            metrics.record_panic_caught();
            Err(EaszError::Internal(panic_message(payload)))
        }
    }
}

/// Handle to a server running on a background thread (see
/// [`EaszServer::spawn`]).
///
/// Dropping the handle shuts the server down; call
/// [`shutdown`](Self::shutdown) instead to observe the accept loop's exit
/// status. Shutdown drains in-flight connections before returning.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    connections: Arc<Connections>,
    metrics: Arc<ServerMetrics>,
    thread: Option<JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The address the server is listening on (with the ephemeral port
    /// resolved, so `spawn("127.0.0.1:0")` is directly connectable).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The running server's metrics registry — the same counters the
    /// `STATS` frame serves, scrapeable in-process (and after shutdown).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    fn signal(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock handler threads stuck mid-read (idle keep-alive clients
        // would otherwise pin the scope join forever), then wake the
        // blocking accept; a connect error just means it is already dead.
        self.connections.shutdown_all();
        let _ = TcpStream::connect(self.addr);
    }

    /// Stops accepting, drains in-flight connections and returns the accept
    /// loop's exit status.
    ///
    /// # Errors
    ///
    /// The accept loop's fatal error, if it died before shutdown.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.signal();
        match self.thread.take().expect("thread present until shutdown/drop").join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.signal();
            let _ = thread.join();
        }
    }
}

/// Serves one connection until clean EOF, a timeout, or a framing-level
/// violation. Container-level failures are answered with typed error frames
/// and never close the connection, let alone the server.
fn handle_connection(mut stream: TcpStream, ctx: &ConnCtx<'_>) -> io::Result<()> {
    let (config, metrics) = (ctx.config, ctx.metrics);
    // A zero Duration means "no timeout" here, but is InvalidInput to the
    // OS call — normalise it instead of silently dropping the connection.
    stream.set_read_timeout(config.read_timeout.filter(|t| !t.is_zero()))?;
    loop {
        let (frame_type, payload) = match protocol::read_frame(&mut stream, config.max_frame_len) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()), // clean EOF between frames
            Err(FrameReadError::Oversize { announced, limit }) => {
                let err = WireError {
                    code: ErrorCode::Oversize,
                    message: format!("frame announces {announced} bytes, limit is {limit}"),
                };
                // Unread payload bytes follow, so framing is lost: close —
                // but drain what the peer already sent first, else the
                // kernel turns our close into an RST that discards the
                // error frame before the peer can read it.
                metrics.record_error(ErrorCode::Oversize);
                let result = protocol::write_frame(&mut stream, protocol::ERROR, &err.to_payload());
                drain_bounded(&mut stream, announced);
                return result;
            }
            Err(FrameReadError::Io(e)) => {
                return match e.kind() {
                    // Mid-frame disconnects and idle timeouts end the
                    // connection without being server errors.
                    io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::ConnectionReset => Ok(()),
                    _ => Err(e),
                };
            }
        };
        // The frame is assembled: the service-time clock (always on) and
        // the request's trace span (tracing only) both start here.
        let received = Instant::now();
        match frame_type {
            protocol::DECODE | protocol::DECODE_TIERED => {
                // A tiered request prefixes the container with one engine
                // byte that overrides the container's standing preference.
                let (tier, container) = if frame_type == protocol::DECODE_TIERED {
                    match split_tier(&payload) {
                        Ok(pair) => pair,
                        Err(message) => {
                            send_wire_error(&mut stream, ErrorCode::Protocol, message, metrics)?;
                            continue;
                        }
                    }
                } else {
                    (None, payload.as_slice())
                };
                metrics.record_requests(1);
                let (result, span) = match EaszEncoded::from_bytes(container) {
                    Err(e) => (Err(e), ctx.begin_span(frame_type)),
                    // A gateway recv failure means shutdown beat the reply;
                    // the connection is closing anyway.
                    Ok(encoded) => {
                        let engine =
                            tier.map_or_else(|| encoded.preferred_engine(), EngineTier::engine);
                        match ctx.decode(encoded, engine, ctx.begin_span(frame_type)) {
                            Ok(reply) => reply,
                            Err(()) => return Ok(()),
                        }
                    }
                };
                write_traced_reply(&mut stream, ctx, result, span, received)?;
            }
            protocol::DECODE_BATCH | protocol::DECODE_BATCH_TIERED => {
                let (tier, batch_payload) = if frame_type == protocol::DECODE_BATCH_TIERED {
                    match split_tier(&payload) {
                        Ok(pair) => pair,
                        Err(message) => {
                            send_wire_error(&mut stream, ErrorCode::Protocol, message, metrics)?;
                            continue;
                        }
                    }
                } else {
                    (None, payload.as_slice())
                };
                match protocol::decode_batch_payload(batch_payload, config.max_batch) {
                    Err(message) => {
                        send_wire_error(&mut stream, ErrorCode::Protocol, message, metrics)?;
                    }
                    Ok(containers) => {
                        metrics.record_requests(containers.len() as u64);
                        handle_decode_batch(
                            &mut stream,
                            ctx,
                            &containers,
                            tier,
                            frame_type,
                            received,
                        )?;
                    }
                }
            }
            protocol::PING => {
                if payload.len() == 1 {
                    protocol::write_frame(
                        &mut stream,
                        protocol::PONG,
                        &[protocol::PROTOCOL_VERSION],
                    )?;
                } else {
                    let message = format!("ping payload must be 1 byte, got {}", payload.len());
                    send_wire_error(&mut stream, ErrorCode::Protocol, message, metrics)?;
                }
            }
            protocol::STATS => {
                if payload.is_empty() {
                    let snapshot: ServerStats = metrics.snapshot();
                    protocol::write_frame(
                        &mut stream,
                        protocol::STATS_REPLY,
                        &snapshot.to_payload(),
                    )?;
                } else {
                    let message = format!("stats payload must be empty, got {}", payload.len());
                    send_wire_error(&mut stream, ErrorCode::Protocol, message, metrics)?;
                }
            }
            protocol::TRACE => {
                if payload.is_empty() {
                    // With tracing off the reply is a valid empty report,
                    // so inspectors degrade instead of erroring.
                    let report = ctx.tracer.map(Tracer::drain).unwrap_or_default();
                    protocol::write_frame(
                        &mut stream,
                        protocol::TRACE_REPLY,
                        &report.to_payload(),
                    )?;
                } else {
                    let message = format!("trace payload must be empty, got {}", payload.len());
                    send_wire_error(&mut stream, ErrorCode::Protocol, message, metrics)?;
                }
            }
            other => {
                let err = WireError {
                    code: ErrorCode::UnknownFrame,
                    message: format!("unknown frame type 0x{other:02x}"),
                };
                // The peer speaks something else: answer once and close.
                metrics.record_error(ErrorCode::UnknownFrame);
                return protocol::write_frame(&mut stream, protocol::ERROR, &err.to_payload());
            }
        }
    }
}

/// A batch reply slot: what the i-th container is waiting on.
enum BatchSlot {
    /// The container did not parse; answered with its typed error.
    ParseError(EaszError),
    /// Result already in hand (ungatewayed bulk decode, or inline
    /// fallback), with the member's trace span.
    Done(Result<ImageF32, EaszError>, Option<SpanCtx>),
    /// Parked in the gateway; the result arrives on this channel.
    Pending(std::sync::mpsc::Receiver<GatewayReply>),
}

/// Splits the leading engine-tier byte off a tiered request payload
/// (shared with the reactor's frame dispatcher).
///
/// # Errors
///
/// A `PROTOCOL`-class message for an empty payload or a reserved tier byte
/// (the connection stays open; only the request is unhonourable).
pub(crate) fn split_tier(payload: &[u8]) -> Result<(Option<EngineTier>, &[u8]), String> {
    let (&tier_byte, rest) =
        payload.split_first().ok_or("tiered request is missing its engine byte")?;
    let tier = EngineTier::from_byte(tier_byte)
        .ok_or_else(|| format!("unknown engine tier byte {tier_byte}"))?;
    Ok((Some(tier), rest))
}

/// Decodes a `DECODE_BATCH`/`DECODE_BATCH_TIERED` request and replies
/// strictly in request order. `tier`, when present, overrides every
/// container's standing engine preference.
///
/// Without a gateway the parsed containers go through one bulk
/// [`EaszDecoder::decode_batch_with`] exactly as before; with a gateway
/// each container is parked individually, so a window can fuse them with
/// requests from *other* connections too (though never across engine
/// tiers).
fn handle_decode_batch(
    stream: &mut TcpStream,
    ctx: &ConnCtx<'_>,
    containers: &[&[u8]],
    tier: Option<EngineTier>,
    frame_type: u8,
    received: Instant,
) -> io::Result<()> {
    let engine_for =
        |encoded: &EaszEncoded| tier.map_or_else(|| encoded.preferred_engine(), EngineTier::engine);
    // Parse every container first so decodable streams share batched
    // forwards regardless of corrupt neighbours. Each parsed member gets
    // its own trace span — a batch frame is one wire frame but many
    // requests.
    let mut slots: Vec<BatchSlot> = Vec::with_capacity(containers.len());
    if let Some(batcher) = ctx.batcher {
        for container in containers {
            slots.push(match EaszEncoded::from_bytes(container) {
                Err(e) => BatchSlot::ParseError(e),
                Ok(encoded) => {
                    let engine = engine_for(&encoded);
                    let span = ctx.begin_span(frame_type);
                    match ctx.submit_gateway(batcher, encoded, engine, span) {
                        Ok(rx) => BatchSlot::Pending(rx),
                        Err(refused) => {
                            let (back, span) = *refused;
                            ctx.metrics.record_inline_decode();
                            let (result, span) = ctx.decode_inline(&back, engine, span);
                            BatchSlot::Done(result, span)
                        }
                    }
                }
            });
        }
    } else {
        let mut statuses: Vec<Result<(), EaszError>> = Vec::with_capacity(containers.len());
        let mut good: Vec<EaszEncoded> = Vec::with_capacity(containers.len());
        let mut engines: Vec<DecodeEngine> = Vec::with_capacity(containers.len());
        for container in containers {
            match EaszEncoded::from_bytes(container) {
                Ok(encoded) => {
                    engines.push(engine_for(&encoded));
                    good.push(encoded);
                    statuses.push(Ok(()));
                }
                Err(e) => statuses.push(Err(e)),
            }
        }
        let mut spans: Vec<Option<SpanCtx>> =
            good.iter().map(|_| ctx.begin_span(frame_type)).collect();
        use std::panic::{catch_unwind, AssertUnwindSafe};
        if let Some(delay) = fault::decode_delay() {
            std::thread::sleep(delay);
        }
        // Fault flags are drawn per container *before* the fused attempt so
        // the serial fallback re-fires the same panics: only the culprit
        // containers fail, their batchmates decode byte-identically.
        let injected: Vec<bool> = good.iter().map(|_| fault::decode_panic()).collect();
        for span in spans.iter_mut().flatten() {
            span.stamp(TraceStage::DecodeStart);
        }
        let started = std::time::Instant::now();
        let fused_attempt = catch_unwind(AssertUnwindSafe(|| {
            if injected.contains(&true) {
                panic!("{}", fault::INJECTED_PANIC);
            }
            ctx.decoder.decode_batch_with_stats(&good, &engines)
        }));
        let fused_us = started.elapsed().as_micros() as u64;
        for span in spans.iter_mut().flatten() {
            span.stamp(TraceStage::DecodeEnd);
        }
        for _ in 0..good.len() {
            ctx.metrics.record_decode_sample(fused_us);
        }
        let decoded: Vec<Result<ImageF32, EaszError>> = match fused_attempt {
            Ok((decoded, groups)) => {
                let decode_us = started.elapsed().as_micros() as u64;
                // One histogram entry per fused forward group, with the wall
                // time apportioned by group width (the remainder lands on the
                // last group so the totals stay exact) — same accounting as
                // the gateway's decode windows.
                let fused: usize = groups.iter().map(|&(_, width)| width).sum();
                let mut spent = 0u64;
                for (gi, &(_, width)) in groups.iter().enumerate() {
                    let us = if gi + 1 == groups.len() {
                        decode_us - spent
                    } else {
                        decode_us * width as u64 / fused as u64
                    };
                    spent += us;
                    ctx.metrics.record_batch(width, us);
                }
                decoded
            }
            Err(_) => {
                // The fused forward panicked: isolate per container so only
                // the culprit fails with a typed INTERNAL.
                ctx.metrics.record_panic_caught();
                good.iter()
                    .zip(&engines)
                    .enumerate()
                    .map(|(i, (encoded, &engine))| {
                        let started = std::time::Instant::now();
                        match catch_unwind(AssertUnwindSafe(|| {
                            if injected[i] {
                                panic!("{}", fault::INJECTED_PANIC);
                            }
                            ctx.decoder.decode_as(encoded, engine)
                        })) {
                            Ok(result) => {
                                if result.is_ok() {
                                    ctx.metrics
                                        .record_batch(1, started.elapsed().as_micros() as u64);
                                }
                                result
                            }
                            Err(payload) => {
                                ctx.metrics.record_panic_caught();
                                Err(EaszError::Internal(panic_message(payload)))
                            }
                        }
                    })
                    .collect()
            }
        };
        let mut decoded = decoded.into_iter().zip(spans);
        for status in statuses {
            slots.push(match status {
                Ok(()) => {
                    let (result, span) = decoded.next().expect("one decode per parsed container");
                    BatchSlot::Done(result, span)
                }
                Err(e) => BatchSlot::ParseError(e),
            });
        }
    }
    for slot in slots {
        let (result, span) = match slot {
            BatchSlot::ParseError(e) => (Err(e), None),
            BatchSlot::Done(result, span) => (result, span),
            BatchSlot::Pending(rx) => match rx.recv() {
                Ok(reply) => reply,
                // Gateway shutdown dropped the job; close the connection.
                Err(_) => return Ok(()),
            },
        };
        write_traced_reply(stream, ctx, result, span, received)?;
    }
    Ok(())
}

/// Reads and discards up to `limit` pending bytes so closing the socket
/// does not reset the connection under the peer's feet. Bounded in time
/// (two seconds) as well as bytes — a peer that keeps trickling data gets
/// the reset it asked for.
fn drain_bounded(stream: &mut TcpStream, limit: usize) {
    use std::io::Read;
    use std::time::{Duration, Instant};
    if stream.set_read_timeout(Some(Duration::from_millis(250))).is_err() {
        return;
    }
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut remaining = limit;
    let mut sink = [0u8; 64 * 1024];
    while remaining > 0 && Instant::now() < deadline {
        let chunk = remaining.min(sink.len());
        match stream.read(&mut sink[..chunk]) {
            Ok(0) | Err(_) => return,
            Ok(n) => remaining -= n,
        }
    }
}

/// Writes a decode reply with the observability bookkeeping of the
/// threaded path: the always-on service-time histogram sample (assembled
/// frame → reply written) and, with tracing on, the span's reply
/// milestones and its hand-off to the tracer.
fn write_traced_reply(
    stream: &mut TcpStream,
    ctx: &ConnCtx<'_>,
    result: Result<ImageF32, EaszError>,
    mut span: Option<SpanCtx>,
    received: Instant,
) -> io::Result<()> {
    if let Some(span) = &mut span {
        span.stamp(TraceStage::ReplyQueued);
    }
    let ok = result.is_ok();
    let written = send_decode_result(stream, result, ctx.metrics);
    ctx.metrics.record_service(received.elapsed().as_micros() as u64);
    if let (Some(tracer), Some(mut span)) = (ctx.tracer, span) {
        span.stamp(TraceStage::ReplyWritten);
        tracer.finish(span, ok && written.is_ok());
    }
    written
}

fn send_decode_result(
    stream: &mut TcpStream,
    result: Result<ImageF32, EaszError>,
    metrics: &ServerMetrics,
) -> io::Result<()> {
    metrics.record_decode(result.is_ok());
    match result {
        Ok(image) => {
            protocol::write_frame(stream, protocol::IMAGE, &protocol::encode_image(&image.to_u8()))
        }
        Err(e) => {
            let err = WireError::from_easz(&e);
            metrics.record_error(err.code);
            protocol::write_frame(stream, protocol::ERROR, &err.to_payload())
        }
    }
}

/// Writes one typed error frame, counting it in the metrics registry.
fn send_wire_error(
    stream: &mut TcpStream,
    code: ErrorCode,
    message: String,
    metrics: &ServerMetrics,
) -> io::Result<()> {
    metrics.record_error(code);
    let err = WireError { code, message };
    protocol::write_frame(stream, protocol::ERROR, &err.to_payload())
}

//! # easz-server
//!
//! The serving tier of the Easz reproduction: a batched `.easz` decode
//! server over TCP, its framing [`protocol`], and a blocking client.
//!
//! The paper's deployment story (Fig. 2) is asymmetric — model-free edge
//! encoders streaming to a server that owns the transformer — and this
//! crate moves the bytes between the two halves that `easz-core` already
//! provides. The server's job is *amortisation*: containers arriving in one
//! `DECODE_BATCH` frame are decoded through
//! [`EaszDecoder::decode_batch`](easz_core::EaszDecoder::decode_batch), and
//! with the **decode gateway** enabled
//! ([`EaszServer::with_gateway`]) requests from *different* connections are
//! parked into batching windows and fused too — one transformer forward
//! per window group, even when every edge sender rolls its own mask seed
//! (the multi-mask fused forward in `easz-core`).
//!
//! The wire format (both the `.easz` container and this crate's framing)
//! is specified normatively in `docs/FORMAT.md` at the repository root.
//!
//! * [`EaszServer`] — multi-threaded accept loop (`std::net::TcpListener` +
//!   `std::thread::scope`, no external dependencies); one shared model,
//!   one handler thread per connection.
//! * [`GatewayConfig`] — the cross-connection batching scheduler: window
//!   size (`max_batch`), window latency budget (`max_wait_us`), decode
//!   worker count, queue bound.
//! * [`ServerMetrics`] / [`ServerStats`] — per-error-code counters, the
//!   batch-width histogram and queue-depth/latency gauges, served to
//!   clients via the `STATS` frame and scrapeable in-process.
//! * [`EaszClient`] — blocking request/reply client.
//! * [`protocol`] — frame I/O and payload codecs, usable directly by
//!   alternative clients or tests.
//! * `easz-serve` — the binary: `cargo run --release -p easz-server --bin
//!   easz-serve -- --addr 127.0.0.1:4860 --gateway-max-batch 8`.
//!
//! ```no_run
//! use easz_core::{zoo, EaszConfig, EaszEncoder};
//! use easz_codecs::{JpegLikeCodec, Quality};
//! use easz_data::Dataset;
//! use easz_server::{EaszClient, EaszServer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Server half (normally another machine).
//! let model = zoo::pretrained(zoo::PretrainSpec::quick());
//! let handle = EaszServer::new(model).spawn("127.0.0.1:0")?;
//!
//! // Edge half: compress, frame, send; get the decoded image back.
//! let encoder = EaszEncoder::new(EaszConfig::default())?;
//! let image = Dataset::KodakLike.image(0);
//! let wire = encoder.compress(&image, &JpegLikeCodec::new(), Quality::new(75))?.to_bytes();
//! let mut client = EaszClient::connect(handle.addr())?;
//! let restored = client.decode(&wire)?;
//! assert_eq!(restored.width(), image.width());
//! handle.shutdown()?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod batcher;
mod client;
mod metrics;
pub mod protocol;
mod server;

pub use batcher::GatewayConfig;
pub use client::{ClientError, EaszClient};
pub use metrics::{ServerMetrics, ServerStats, WIDTH_BUCKETS};
pub use protocol::{EngineTier, ErrorCode, WireError};
pub use server::{EaszServer, ServerConfig, ServerHandle};

//! # easz-server
//!
//! The serving tier of the Easz reproduction: a batched `.easz` decode
//! server over TCP, its framing [`protocol`], and a blocking client.
//!
//! The paper's deployment story (Fig. 2) is asymmetric — model-free edge
//! encoders streaming to a server that owns the transformer — and this
//! crate moves the bytes between the two halves that `easz-core` already
//! provides. The server's job is *amortisation*: containers arriving in one
//! `DECODE_BATCH` frame are decoded through
//! [`EaszDecoder::decode_batch`](easz_core::EaszDecoder::decode_batch), and
//! with the **decode gateway** enabled
//! ([`EaszServer::with_gateway`]) requests from *different* connections are
//! parked into batching windows and fused too — one transformer forward
//! per window group, even when every edge sender rolls its own mask seed
//! (the multi-mask fused forward in `easz-core`).
//!
//! The wire format (both the `.easz` container and this crate's framing)
//! is specified normatively in `docs/FORMAT.md` at the repository root.
//!
//! * [`EaszServer`] — multi-threaded accept loop (`std::net::TcpListener` +
//!   `std::thread::scope`, no external dependencies); one shared model,
//!   one handler thread per connection.
//! * [`GatewayConfig`] — the cross-connection batching scheduler: window
//!   size (`max_batch`), window latency budget (`max_wait_us`), decode
//!   worker count, queue bound, adaptive windows (`adaptive_wait`).
//! * [`ReactorConfig`] — the event-driven reactor front end (below).
//! * [`ServerMetrics`] / [`ServerStats`] — per-error-code counters, the
//!   batch-width histogram and queue-depth/latency gauges, served to
//!   clients via the `STATS` frame and scrapeable in-process.
//! * [`EaszClient`] — blocking request/reply client.
//! * [`protocol`] — frame I/O and payload codecs, usable directly by
//!   alternative clients or tests.
//! * `easz-serve` — the binary: `cargo run --release -p easz-server --bin
//!   easz-serve -- --addr 127.0.0.1:4860 --gateway-max-batch 8`.
//!
//! ```no_run
//! use easz_core::{zoo, EaszConfig, EaszEncoder};
//! use easz_codecs::{JpegLikeCodec, Quality};
//! use easz_data::Dataset;
//! use easz_server::{EaszClient, EaszServer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Server half (normally another machine).
//! let model = zoo::pretrained(zoo::PretrainSpec::quick());
//! let handle = EaszServer::new(model).spawn("127.0.0.1:0")?;
//!
//! // Edge half: compress, frame, send; get the decoded image back.
//! let encoder = EaszEncoder::new(EaszConfig::default())?;
//! let image = Dataset::KodakLike.image(0);
//! let wire = encoder.compress(&image, &JpegLikeCodec::new(), Quality::new(75))?.to_bytes();
//! let mut client = EaszClient::connect(handle.addr())?;
//! let restored = client.decode(&wire)?;
//! assert_eq!(restored.width(), image.width());
//! handle.shutdown()?;
//! # Ok(())
//! # }
//! ```
//!
//! ## The reactor front end
//!
//! The default front end spends one OS thread (stack, scheduler slot,
//! blocking reads) per connection — fine for tens of clients, wrong for
//! the paper's fleet topology of thousands of intermittent IoT encoders.
//! [`EaszServer::with_reactor`] swaps it for a single **readiness loop**
//! (Linux epoll via a thin in-crate syscall shim, no external
//! dependencies): nonblocking listener and sockets, level-triggered
//! readiness, and per-connection state machines.
//!
//! * **Framing state machine** — each connection incrementally assembles
//!   length-prefixed frames across arbitrary packet boundaries, with the
//!   payload buffer allocated only after the announced length passes
//!   `max_frame_len`. Outbound replies survive partial writes in a
//!   compacting buffer, and pipelined replies leave strictly in request
//!   order even though decode workers complete out of order.
//! * **Fairness draw** — the reactor submits every decode to the gateway
//!   tagged with its connection id, and the gateway forms windows by a
//!   round-robin draw across sources: one job per connection per cycle,
//!   so a flooding client cannot fill every window.
//! * **Admission control & shedding** — accepts beyond
//!   [`ReactorConfig::max_connections`] and well-framed decodes that hit
//!   a saturated gateway queue are answered with the typed `BUSY` error
//!   frame (`docs/FORMAT.md` §2.2) instead of being silently dropped or
//!   decoded inline on the loop.
//! * **Backpressure** — a connection with too many decodes in flight or
//!   too many unflushed reply bytes stops being read until it drains; the
//!   kernel receive buffer then throttles the peer.
//! * **Adaptive windows** — with [`GatewayConfig::adaptive_wait`] (the
//!   reactor's default gateway enables it) the batching window's wait
//!   budget follows the observed inter-arrival EWMA: sparse traffic
//!   dispatches immediately, bursts wait just long enough to fill.
//!
//! Replies on the reactor path are byte-identical to the threaded path
//! and to serial local decoding — enforced by the loopback test suite.
//! The threaded path remains the default.
//!
//! ## Failure model
//!
//! The server degrades instead of dying, in a fixed order of escalation —
//! each stage answers with a *typed* error frame and each stage's blast
//! radius is one request (never a worker, never a connection, never the
//! process):
//!
//! 1. **`BUSY` shed (code 35)** — overload. Admission control refuses
//!    connections beyond [`ReactorConfig::max_connections`]; a saturated
//!    gateway queue sheds the decode. Cheapest refusal, fired first.
//! 2. **Deadline expiry (code 38, `DEADLINE_EXCEEDED`)** — a job admitted
//!    to the gateway carries a deadline ([`GatewayConfig::deadline_us`]);
//!    if no worker picks it up in time it is swept unstarted and answered,
//!    so a stalled pool can never park a handler in `reply.recv()`
//!    forever.
//! 3. **Panic isolation (code 37, `INTERNAL`)** — every decode (gateway
//!    worker, threaded handler, reactor job) runs under `catch_unwind`; a
//!    panicking container fails *its own* request, the supervisor respawns
//!    the poisoned worker, and the connection keeps serving.
//! 4. **Graceful drain** — shutdown (or SIGTERM in `easz-serve`) stops
//!    accepting, flushes parked gateway jobs, and answers everything
//!    in-flight before closing — the shutdown-flush invariant.
//!
//! The client side mirrors this: [`EaszClient`] takes a [`RetryPolicy`]
//! (capped exponential backoff with seeded jitter) and retries exactly the
//! failures the model declares retryable — connect errors and `BUSY` —
//! on idempotent requests only.
//!
//! Every stage is testable on demand: the [`fault`] module injects seeded,
//! deterministic faults (torn writes, EINTR storms, aborted accepts,
//! stalled or panicking decodes) at the syscall shim, protocol, and
//! gateway layers; `tests/chaos.rs` soaks both front ends under
//! randomized schedules and asserts exactly-one-reply, metrics
//! reconciliation, and byte-identity of every successful reply.
//!
//! ## Observability
//!
//! Three layers, identical on both front ends:
//!
//! 1. **Latency histograms (always on)** — [`ServerMetrics`] buckets queue
//!    wait, decode time, and end-to-end service time into log2 µs
//!    histograms ([`LATENCY_BUCKETS`] buckets), served in the `STATS`
//!    payload (v4, `docs/FORMAT.md` §2.5) with derivable
//!    p50/p90/p99/p999 via [`ServerStats::service_percentile_us`] and
//!    friends. The cost is one atomic increment per sample, so it is not
//!    gated.
//! 2. **Request tracing (opt-in)** — [`EaszServer::with_trace`] attaches a
//!    [`Tracer`]: every request carries a `Copy` [`SpanCtx`] stamping
//!    frame-assembled → admitted → enqueued → window-closed → dispatched
//!    → decode start/end → reply-queued → reply-written in monotonic µs.
//!    A 1-in-N sampling knob ([`TraceConfig::sample_every`]) bounds
//!    retention; requests slower than
//!    [`TraceConfig::slow_threshold_us`] are *always* captured into a
//!    slow-request log. Kept spans land in a fixed-size lock-light ring
//!    drained by the `TRACE` frame (`docs/FORMAT.md` §2.7). Decode-side
//!    stage hooks (parse / plan / fused-forward / finish, via
//!    [`easz_core::StageSink`]) aggregate per-stage wall time into the
//!    same report. With tracing off nothing allocates and no clock is
//!    read — the byte-identity and chaos suites run in that state.
//! 3. **`easz-top`** — a terminal inspector polling `STATS` + `TRACE`:
//!    throughput, latency percentiles, queue depth, batch-width
//!    histogram, decode-stage breakdown and the latest slow requests.
//!    `cargo run --release -p easz-server --bin easz-top -- --addr
//!    127.0.0.1:4860` (add `--once` for a single non-interactive
//!    snapshot).

#![warn(missing_docs)]

mod batcher;
mod client;
pub mod fault;
mod metrics;
pub mod protocol;
mod reactor;
mod server;
mod trace;

pub use batcher::GatewayConfig;
pub use client::{ClientError, EaszClient, RetryPolicy};
pub use metrics::{
    latency_bucket, latency_bucket_upper_us, latency_percentile_us, ServerMetrics, ServerStats,
    LATENCY_BUCKETS, WIDTH_BUCKETS,
};
pub use protocol::{EngineTier, ErrorCode, WireError};
pub use reactor::ReactorConfig;
pub use server::{EaszServer, ServerConfig, ServerHandle};
pub use trace::{
    SpanCtx, TraceConfig, TraceReport, TraceSpan, TraceStage, Tracer, STAMP_UNSET, TRACE_STAGES,
};

//! Deterministic fault injection for the serving stack.
//!
//! Production traffic delivers partial writes, EINTR storms, aborted
//! accepts, stalled decodes and poisoned payloads — but never on demand.
//! This module makes those faults *schedulable*: a seeded `FaultPlan`
//! installs a process-global `FaultInjector` whose decisions are a pure
//! function of the seed, so a chaos run that fails reproduces exactly from
//! its seed. Injection points are threaded through the reactor syscall
//! shim (spurious `epoll_wait` wakeups, aborted accepts, short reads and
//! writes), the protocol read/write paths (torn frame writes, simulated
//! EINTR), and the decode gateway (delayed decodes, refused submissions,
//! forced worker panics).
//!
//! The hooks compile to inlined `false`/`None` constants outside test
//! builds unless the non-default `fault-injection` cargo feature is on —
//! release binaries and benchmarks carry zero overhead.
//!
//! Only one plan can be active per process: `install` holds a
//! serialization lock for the guard's lifetime, so concurrently running
//! tests that inject faults queue behind each other instead of
//! cross-contaminating.

/// Message carried by every injected decode panic. The isolation
/// boundaries report it back inside the `INTERNAL` error, and the panic
/// hook `install`ed with a plan suppresses the default stderr backtrace
/// for exactly this message (real panics still print).
pub const INJECTED_PANIC: &str = "injected decode panic";

#[cfg(any(test, feature = "fault-injection"))]
mod active {
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::Duration;

    /// A seeded schedule of faults. Every `*_permille` field is the
    /// per-call probability (out of 1000) that the matching hook fires;
    /// the `*_oneshot` counters force the next N calls deterministically
    /// (consumed before any probability roll).
    #[derive(Debug, Clone, Default)]
    pub struct FaultPlan {
        /// Seed for the injector's xorshift stream; equal seeds and equal
        /// call sequences make identical decisions.
        pub seed: u64,
        /// Simulated transport EINTR before a blocking frame read.
        pub read_interrupt_permille: u16,
        /// Tear a frame write into two flushed chunks (short write).
        pub write_split_permille: u16,
        /// Fail an accept attempt as if the peer aborted the handshake.
        pub accept_abort_permille: u16,
        /// Return a spurious zero-event wakeup from `epoll_wait`.
        pub epoll_spurious_permille: u16,
        /// Clamp a reactor read to a single byte (short read).
        pub short_read_permille: u16,
        /// Stall a gateway/inline decode by [`decode_delay_us`](Self::decode_delay_us).
        pub decode_delay_permille: u16,
        /// Microseconds each injected decode stall sleeps.
        pub decode_delay_us: u64,
        /// Panic inside the decode worker for this job.
        pub decode_panic_permille: u16,
        /// Refuse a gateway submission as if the queue were saturated.
        pub submit_refuse_permille: u16,
        /// Force the next N decodes to panic (before any roll).
        pub decode_panic_oneshot: u32,
        /// Force the next N decodes to stall (before any roll).
        pub decode_delay_oneshot: u32,
    }

    /// How many times each hook actually fired under the active plan —
    /// chaos tests assert on these so a schedule that injected nothing
    /// cannot pass vacuously.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct FaultCounters {
        /// Simulated EINTRs taken by `protocol::read_frame`.
        pub read_interrupts: u64,
        /// Frame writes torn in two by `protocol::write_frame`.
        pub write_splits: u64,
        /// Accept attempts failed in the reactor accept loop.
        pub accept_aborts: u64,
        /// Spurious zero-event wakeups returned by the epoll shim.
        pub epoll_spurious: u64,
        /// Reactor reads clamped to one byte.
        pub short_reads: u64,
        /// Decodes stalled by an injected delay.
        pub decode_delays: u64,
        /// Decodes panicked on purpose.
        pub decode_panics: u64,
        /// Gateway submissions refused as if the queue were full.
        pub submit_refusals: u64,
    }

    /// The installed plan plus its RNG stream and firing counters.
    #[derive(Debug)]
    pub struct FaultInjector {
        plan: FaultPlan,
        state: u64,
        counters: FaultCounters,
    }

    impl FaultInjector {
        fn new(plan: FaultPlan) -> Self {
            // Split-mix the seed into a never-zero xorshift state, the
            // same construction `tests/parse_fuzz.rs` uses.
            let state =
                plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x0123_4567_89AB_CDEF)
                    | 1;
            Self { plan, state, counters: FaultCounters::default() }
        }

        fn next(&mut self) -> u64 {
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            self.state ^= self.state << 17;
            self.state
        }

        fn roll(&mut self, permille: u16) -> bool {
            permille > 0 && self.next() % 1000 < u64::from(permille)
        }
    }

    static ACTIVE: Mutex<Option<FaultInjector>> = Mutex::new(None);
    static SERIAL: Mutex<()> = Mutex::new(());

    /// Uninstalls the plan (and releases the cross-test serialization
    /// lock) when dropped.
    #[must_use = "dropping the guard uninstalls the fault plan"]
    pub struct FaultGuard {
        _serial: MutexGuard<'static, ()>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *ACTIVE.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }

    /// Installs `plan` process-wide until the returned guard drops.
    ///
    /// Blocks while another guard is alive: fault-injecting tests
    /// serialize instead of observing each other's faults. Also installs
    /// (once per process) a panic hook that silences the default stderr
    /// report for [`INJECTED_PANIC`](super::INJECTED_PANIC) panics —
    /// they are caught on purpose and would otherwise flood test output —
    /// while forwarding every other panic to the previous hook.
    pub fn install(plan: FaultPlan) -> FaultGuard {
        static HOOK: OnceLock<()> = OnceLock::new();
        HOOK.get_or_init(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains(super::INJECTED_PANIC))
                    || info
                        .payload()
                        .downcast_ref::<String>()
                        .is_some_and(|s| s.contains(super::INJECTED_PANIC));
                if !injected {
                    previous(info);
                }
            }));
        });
        let serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        *ACTIVE.lock().unwrap_or_else(|e| e.into_inner()) = Some(FaultInjector::new(plan));
        FaultGuard { _serial: serial }
    }

    /// Snapshot of the active plan's firing counters (all zero when no
    /// plan is installed).
    pub fn counters() -> FaultCounters {
        ACTIVE
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|i| i.counters)
            .unwrap_or_default()
    }

    fn with<R>(default: R, f: impl FnOnce(&mut FaultInjector) -> R) -> R {
        let mut guard = ACTIVE.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_mut() {
            Some(injector) => f(injector),
            None => default,
        }
    }

    /// Hook: should this blocking frame read take a simulated-EINTR retry?
    pub fn read_interrupted() -> bool {
        with(false, |i| {
            let p = i.plan.read_interrupt_permille;
            i.roll(p) && {
                i.counters.read_interrupts += 1;
                true
            }
        })
    }

    /// Hook: tear a `len`-byte frame payload at the returned offset
    /// (`None` = write it whole). Never fires for payloads under 2 bytes.
    pub fn write_split(len: usize) -> Option<usize> {
        if len < 2 {
            return None;
        }
        with(None, |i| {
            let p = i.plan.write_split_permille;
            if i.roll(p) {
                i.counters.write_splits += 1;
                Some(1 + (i.next() as usize) % (len - 1))
            } else {
                None
            }
        })
    }

    /// Hook: should this accept attempt fail as an aborted handshake?
    pub fn accept_abort() -> bool {
        with(false, |i| {
            let p = i.plan.accept_abort_permille;
            i.roll(p) && {
                i.counters.accept_aborts += 1;
                true
            }
        })
    }

    /// Hook: should this `epoll_wait` return a spurious zero-event wake?
    pub fn epoll_spurious() -> bool {
        with(false, |i| {
            let p = i.plan.epoll_spurious_permille;
            i.roll(p) && {
                i.counters.epoll_spurious += 1;
                true
            }
        })
    }

    /// Hook: should this reactor read be clamped to a single byte?
    pub fn short_read() -> bool {
        with(false, |i| {
            let p = i.plan.short_read_permille;
            i.roll(p) && {
                i.counters.short_reads += 1;
                true
            }
        })
    }

    /// Hook: how long should this decode stall before starting (`None` =
    /// no stall)?
    pub fn decode_delay() -> Option<Duration> {
        with(None, |i| {
            let forced = i.plan.decode_delay_oneshot > 0;
            if forced {
                i.plan.decode_delay_oneshot -= 1;
            }
            let p = i.plan.decode_delay_permille;
            if forced || i.roll(p) {
                i.counters.decode_delays += 1;
                Some(Duration::from_micros(i.plan.decode_delay_us))
            } else {
                None
            }
        })
    }

    /// Hook: should this decode panic inside its isolation boundary?
    pub fn decode_panic() -> bool {
        with(false, |i| {
            let forced = i.plan.decode_panic_oneshot > 0;
            if forced {
                i.plan.decode_panic_oneshot -= 1;
            }
            let p = i.plan.decode_panic_permille;
            (forced || i.roll(p)) && {
                i.counters.decode_panics += 1;
                true
            }
        })
    }

    /// Hook: should this gateway submission be refused as queue-full?
    pub fn submit_refuse() -> bool {
        with(false, |i| {
            let p = i.plan.submit_refuse_permille;
            i.roll(p) && {
                i.counters.submit_refusals += 1;
                true
            }
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn hooks_are_inert_without_an_installed_plan() {
            assert!(!read_interrupted());
            assert!(write_split(1024).is_none());
            assert!(!accept_abort() && !epoll_spurious() && !short_read());
            assert!(decode_delay().is_none());
            assert!(!decode_panic() && !submit_refuse());
            assert_eq!(counters(), FaultCounters::default());
        }

        #[test]
        fn decisions_are_a_pure_function_of_the_seed() {
            let plan = FaultPlan {
                seed: 42,
                write_split_permille: 500,
                decode_panic_permille: 250,
                ..FaultPlan::default()
            };
            let run = |plan: FaultPlan| {
                let _guard = install(plan);
                let splits: Vec<Option<usize>> = (0..64).map(|_| write_split(100)).collect();
                let panics: Vec<bool> = (0..64).map(|_| decode_panic()).collect();
                (splits, panics, counters())
            };
            let a = run(plan.clone());
            let b = run(plan.clone());
            assert_eq!(a, b, "same seed, same call sequence, same decisions");
            let c = run(FaultPlan { seed: 43, ..plan });
            assert_ne!(a.0, c.0, "a different seed diverges");
            assert!(a.2.write_splits > 0 && a.2.decode_panics > 0, "plan must actually fire");
        }

        #[test]
        fn oneshots_fire_exactly_n_times_then_fall_back_to_the_roll() {
            let _guard = install(FaultPlan {
                decode_panic_oneshot: 2,
                decode_delay_oneshot: 1,
                decode_delay_us: 7,
                ..FaultPlan::default()
            });
            assert!(decode_panic() && decode_panic());
            assert!(!decode_panic(), "oneshot exhausted, permille is 0");
            assert_eq!(decode_delay(), Some(Duration::from_micros(7)));
            assert!(decode_delay().is_none());
            let c = counters();
            assert_eq!((c.decode_panics, c.decode_delays), (2, 1));
        }

        #[test]
        fn guard_drop_uninstalls() {
            {
                let _guard =
                    install(FaultPlan { submit_refuse_permille: 1000, ..FaultPlan::default() });
                assert!(submit_refuse());
            }
            assert!(!submit_refuse(), "plan must not outlive its guard");
        }

        #[test]
        fn write_split_always_leaves_both_chunks_nonempty() {
            let _guard = install(FaultPlan { write_split_permille: 1000, ..FaultPlan::default() });
            for len in 2..64 {
                let at = write_split(len).expect("permille 1000 always fires");
                assert!(at > 0 && at < len, "split {at} of {len}");
            }
            assert!(write_split(1).is_none(), "1-byte payloads cannot tear");
            assert!(write_split(0).is_none());
        }
    }
}

#[cfg(any(test, feature = "fault-injection"))]
pub use active::*;

/// Inert hook stubs: with the `fault-injection` feature off (and outside
/// this crate's own test builds) every decision is a constant the
/// optimizer deletes, so the default build pays nothing for the hooks.
#[cfg(not(any(test, feature = "fault-injection")))]
mod inert {
    use std::time::Duration;

    /// Always `false` in default builds.
    #[inline(always)]
    pub fn read_interrupted() -> bool {
        false
    }

    /// Always `None` in default builds.
    #[inline(always)]
    pub fn write_split(_len: usize) -> Option<usize> {
        None
    }

    /// Always `false` in default builds.
    #[inline(always)]
    pub fn accept_abort() -> bool {
        false
    }

    /// Always `false` in default builds.
    #[inline(always)]
    pub fn epoll_spurious() -> bool {
        false
    }

    /// Always `false` in default builds.
    #[inline(always)]
    pub fn short_read() -> bool {
        false
    }

    /// Always `None` in default builds.
    #[inline(always)]
    pub fn decode_delay() -> Option<Duration> {
        None
    }

    /// Always `false` in default builds.
    #[inline(always)]
    pub fn decode_panic() -> bool {
        false
    }

    /// Always `false` in default builds.
    #[inline(always)]
    pub fn submit_refuse() -> bool {
        false
    }
}

#[cfg(not(any(test, feature = "fault-injection")))]
pub use inert::*;

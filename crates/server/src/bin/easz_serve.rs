//! `easz-serve` — stand up a batched `.easz` decode server.
//!
//! ```sh
//! cargo run --release -p easz-server --bin easz-serve -- --addr 127.0.0.1:4860
//! ```
//!
//! The first run pretrains the quick reconstructor (minutes on one CPU
//! core); afterwards weights load from `target/easz-weights/`. The wire
//! protocol is specified in `docs/FORMAT.md`. Both decode tiers are always
//! served: containers carrying the quantized opt-in flag (and `DECODE_TIERED`
//! requests naming tier 1) run on the int8 fast path, everything else on the
//! bit-exact f32 path.

use easz_core::zoo;
use easz_server::{EaszServer, GatewayConfig, ReactorConfig, ServerConfig, TraceConfig};
use std::net::TcpListener;
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "usage: easz-serve [--addr HOST:PORT] [--model DOMAIN]...
                  [--max-frame-len BYTES] [--max-batch N]
                  [--read-timeout-ms MS] [--gateway-max-batch N]
                  [--gateway-max-wait-us US] [--gateway-workers N]
                  [--gateway-adaptive-wait] [--gateway-deadline-us US]
                  [--reactor] [--reactor-max-conns N]
                  [--reactor-max-inflight N]
                  [--trace-sample N] [--trace-slow-us US] [--trace-ring N]

  --addr HOST:PORT        listen address (default 127.0.0.1:4860)
  --model DOMAIN          also serve the fine-tuned zoo model for DOMAIN
                          ('textured' or 'flat') under its zoo model id;
                          repeatable. The generic model always serves id 0.
                          First use fine-tunes from the pretrained weights
                          (seconds), then loads from target/easz-weights/
  --max-frame-len BYTES   largest accepted request frame payload (default 16 MiB)
  --max-batch N           largest accepted DECODE_BATCH count (default 64)
  --read-timeout-ms MS    disconnect a connection idle for MS milliseconds
                          (default: never; 0 also means never)
  --gateway-max-batch N   cross-connection decode gateway window size
                          (default 8). Passing ANY --gateway-* flag enables
                          the gateway; without one it stays disabled.
  --gateway-max-wait-us US window latency budget in microseconds (default 2000)
  --gateway-workers N     gateway decode worker threads (default 2)
  --gateway-adaptive-wait scale the window wait budget by the observed
                          arrival rate (sparse traffic dispatches early)
  --gateway-deadline-us US answer a queued decode with DEADLINE_EXCEEDED when
                          no worker starts it within US microseconds
                          (default 0 = wait forever)
  --reactor               serve through the epoll reactor front end (one
                          readiness loop instead of one thread per
                          connection; Linux only). Decodes always go through
                          the gateway — a default adaptive one if no
                          --gateway-* flag is given.
  --reactor-max-conns N   connections admitted before BUSY (default 4096)
  --reactor-max-inflight N per-connection in-flight decode cap (default 32)
  --trace-sample N        capture every Nth request as a trace span served
                          through TRACE frames / easz-top (0 = only slow
                          requests). Passing ANY --trace-* flag enables
                          tracing; without one it stays off (latency
                          histograms in STATS are always on).
  --trace-slow-us US      always capture requests slower than US
                          microseconds into the slow-request log
                          (default 50000; 0 disables slow capture)
  --trace-ring N          recent-span ring capacity (default 512)";

fn main() {
    let mut addr = "127.0.0.1:4860".to_string();
    let mut config = ServerConfig::default();
    let mut gateway: Option<GatewayConfig> = None;
    let mut reactor: Option<ReactorConfig> = None;
    let mut trace: Option<TraceConfig> = None;
    let mut domains: Vec<zoo::FinetuneDomain> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n{USAGE}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--model" => {
                let name = value("--model");
                let Some(domain) = zoo::FinetuneDomain::parse(&name) else {
                    eprintln!("unknown model domain {name:?} (try 'textured' or 'flat')\n{USAGE}");
                    exit(2);
                };
                if !domains.contains(&domain) {
                    domains.push(domain);
                }
            }
            "--max-frame-len" => config.max_frame_len = parse(&value("--max-frame-len")),
            "--max-batch" => config.max_batch = parse(&value("--max-batch")),
            "--read-timeout-ms" => {
                config.read_timeout =
                    Some(Duration::from_millis(parse(&value("--read-timeout-ms")) as u64));
            }
            "--gateway-max-batch" => {
                gateway.get_or_insert_with(GatewayConfig::default).max_batch =
                    parse(&value("--gateway-max-batch"));
            }
            "--gateway-max-wait-us" => {
                gateway.get_or_insert_with(GatewayConfig::default).max_wait_us =
                    parse(&value("--gateway-max-wait-us")) as u64;
            }
            "--gateway-workers" => {
                gateway.get_or_insert_with(GatewayConfig::default).workers =
                    parse(&value("--gateway-workers"));
            }
            "--gateway-adaptive-wait" => {
                gateway.get_or_insert_with(GatewayConfig::default).adaptive_wait = true;
            }
            "--gateway-deadline-us" => {
                gateway.get_or_insert_with(GatewayConfig::default).deadline_us =
                    parse(&value("--gateway-deadline-us")) as u64;
            }
            "--reactor" => {
                reactor.get_or_insert_with(ReactorConfig::default);
            }
            "--reactor-max-conns" => {
                reactor.get_or_insert_with(ReactorConfig::default).max_connections =
                    parse(&value("--reactor-max-conns"));
            }
            "--reactor-max-inflight" => {
                reactor.get_or_insert_with(ReactorConfig::default).max_inflight =
                    parse(&value("--reactor-max-inflight"));
            }
            "--trace-sample" => {
                trace.get_or_insert_with(TraceConfig::default).sample_every =
                    parse(&value("--trace-sample")) as u64;
            }
            "--trace-slow-us" => {
                trace.get_or_insert_with(TraceConfig::default).slow_threshold_us =
                    parse(&value("--trace-slow-us")) as u64;
            }
            "--trace-ring" => {
                trace.get_or_insert_with(TraceConfig::default).capacity =
                    parse(&value("--trace-ring"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                exit(2);
            }
        }
    }
    config.gateway = gateway;
    config.reactor = reactor;
    config.trace = trace;

    println!("loading (or pretraining once) the reconstruction model...");
    let model = zoo::pretrained(zoo::PretrainSpec::quick());
    let mut server = EaszServer::new(model);
    for &domain in &domains {
        println!("loading (or fine-tuning once) the '{}' zoo model...", domain.name());
        let tuned = zoo::finetuned(zoo::FinetuneSpec::quick(domain));
        server = server.with_model(domain.model_id(), tuned);
    }
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            exit(1);
        }
    };
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    let gateway_desc = match &config.gateway {
        Some(g) => format!(
            "gateway on: window {} reqs / {} µs{}, {} workers",
            g.max_batch,
            g.max_wait_us,
            if g.adaptive_wait { " (adaptive)" } else { "" },
            g.workers
        ),
        None if config.reactor.is_some() => "gateway on: reactor default (adaptive)".to_string(),
        None => "gateway off".to_string(),
    };
    let front_desc = match &config.reactor {
        Some(r) => format!("reactor front end, {} conns max", r.max_connections),
        None => "threaded front end".to_string(),
    };
    let model_desc = if domains.is_empty() {
        "generic model only".to_string()
    } else {
        format!(
            "models: generic + {}",
            domains
                .iter()
                .map(|d| format!("{} (id {})", d.name(), d.model_id()))
                .collect::<Vec<_>>()
                .join(" + ")
        )
    };
    println!(
        "easz-serve listening on {bound} (max frame {} B, max batch {}, {front_desc}, \
         {gateway_desc}, {model_desc})",
        config.max_frame_len, config.max_batch
    );
    let server = server.with_config(config);
    #[cfg(unix)]
    match sig::install() {
        Ok(pipe) => {
            let handle = match server.spawn_on(listener) {
                Ok(handle) => handle,
                Err(e) => {
                    eprintln!("cannot start server: {e}");
                    exit(1);
                }
            };
            sig::wait(pipe);
            println!("shutdown signal received; draining in-flight connections...");
            if let Err(e) = handle.shutdown() {
                eprintln!("accept loop failed: {e}");
                exit(1);
            }
            println!("drained; bye");
            return;
        }
        Err(e) => {
            eprintln!("cannot install signal handlers ({e}); serving without graceful drain");
        }
    }
    if let Err(e) = server.serve(listener) {
        eprintln!("accept loop failed: {e}");
        exit(1);
    }
}

/// SIGTERM/SIGINT → graceful drain, via the classic self-pipe trick: the
/// handler does one async-signal-safe `write(2)` to a pipe the main thread
/// blocks reading, and the drain itself (stop accepting, flush the gateway,
/// answer everything in flight) runs on the main thread through
/// `ServerHandle::shutdown`. No `libc` crate: the two syscalls are declared
/// against the libc the standard library already links, same as the
/// reactor's epoll shim.
#[cfg(unix)]
mod sig {
    use std::io::Read;
    use std::os::fd::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::sync::OnceLock;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    static WRITE_FD: OnceLock<RawFd> = OnceLock::new();

    extern "C" fn on_signal(_signum: i32) {
        if let Some(&fd) = WRITE_FD.get() {
            let byte = 1u8;
            // SAFETY: write(2) is async-signal-safe; the fd is leaked for
            // the life of the process so it cannot dangle.
            unsafe { write(fd, &byte, 1) };
        }
    }

    /// Installs the handlers and returns the read half of the self-pipe;
    /// one byte arrives per delivered signal.
    pub fn install() -> std::io::Result<UnixStream> {
        let (reader, writer) = UnixStream::pair()?;
        let fd = writer.as_raw_fd();
        // The handler may fire at any point for the rest of the process:
        // the write half must never close.
        std::mem::forget(writer);
        WRITE_FD.set(fd).expect("signal handlers installed once");
        // SAFETY: on_signal only touches async-signal-safe state.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
        Ok(reader)
    }

    /// Blocks until the first signal lands.
    pub fn wait(mut pipe: UnixStream) {
        let mut byte = [0u8; 1];
        let _ = pipe.read(&mut byte);
    }
}

fn parse(value: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {value}\n{USAGE}");
        exit(2);
    })
}

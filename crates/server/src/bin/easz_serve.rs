//! `easz-serve` — stand up a batched `.easz` decode server.
//!
//! ```sh
//! cargo run --release -p easz-server --bin easz-serve -- --addr 127.0.0.1:4860
//! ```
//!
//! The first run pretrains the quick reconstructor (minutes on one CPU
//! core); afterwards weights load from `target/easz-weights/`. The wire
//! protocol is specified in `docs/FORMAT.md`.

use easz_core::zoo;
use easz_server::{EaszServer, ServerConfig};
use std::net::TcpListener;
use std::process::exit;

const USAGE: &str = "usage: easz-serve [--addr HOST:PORT] [--max-frame-len BYTES] [--max-batch N]

  --addr HOST:PORT      listen address (default 127.0.0.1:4860)
  --max-frame-len BYTES largest accepted request frame payload (default 16 MiB)
  --max-batch N         largest accepted DECODE_BATCH count (default 64)";

fn main() {
    let mut addr = "127.0.0.1:4860".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n{USAGE}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--max-frame-len" => config.max_frame_len = parse(&value("--max-frame-len")),
            "--max-batch" => config.max_batch = parse(&value("--max-batch")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                exit(2);
            }
        }
    }

    println!("loading (or pretraining once) the reconstruction model...");
    let model = zoo::pretrained(zoo::PretrainSpec::quick());
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            exit(1);
        }
    };
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    println!(
        "easz-serve listening on {bound} (max frame {} B, max batch {})",
        config.max_frame_len, config.max_batch
    );
    if let Err(e) = EaszServer::new(model).with_config(config).serve(listener) {
        eprintln!("accept loop failed: {e}");
        exit(1);
    }
}

fn parse(value: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {value}\n{USAGE}");
        exit(2);
    })
}

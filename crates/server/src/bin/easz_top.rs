//! `easz-top` — live terminal inspector for a running `easz-serve`.
//!
//! ```sh
//! cargo run --release -p easz-server --bin easz-top -- --addr 127.0.0.1:4860
//! ```
//!
//! Polls the server's `STATS` and `TRACE` frames on an interval and renders
//! throughput, latency percentiles (queue wait, decode, end-to-end
//! service), queue depth, the batch-width histogram, per-stage decode
//! timing and the latest slow requests with their per-stage breakdowns.
//! Works against any server — one running without `--trace-*` flags simply
//! shows the always-on histogram rows and an empty span section.
//!
//! `--once` prints a single report and exits (used by CI as a smoke test).

use easz_core::DecodeStage;
use easz_server::{EaszClient, ServerStats, TraceReport, TraceSpan, TraceStage};
use std::process::exit;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: easz-top [--addr HOST:PORT] [--interval-ms MS] [--once]

  --addr HOST:PORT   server to inspect (default 127.0.0.1:4860)
  --interval-ms MS   refresh interval in milliseconds (default 1000)
  --once             print one report and exit (no screen clearing)";

fn main() {
    let mut addr = "127.0.0.1:4860".to_string();
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n{USAGE}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--interval-ms" => {
                let ms: u64 = value("--interval-ms").parse().unwrap_or_else(|_| {
                    eprintln!("--interval-ms needs a number\n{USAGE}");
                    exit(2);
                });
                interval = Duration::from_millis(ms.max(1));
            }
            "--once" => once = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                exit(2);
            }
        }
    }

    let mut client = match EaszClient::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("easz-top: cannot connect to {addr}: {e}");
            exit(1);
        }
    };
    // Slow spans accumulate across polls (the server retains its slow log),
    // so remember the newest id already rendered to mark fresh arrivals.
    let mut previous: Option<(Instant, ServerStats)> = None;
    loop {
        let polled = Instant::now();
        let stats = match client.stats() {
            Ok(stats) => stats,
            Err(e) => {
                eprintln!("easz-top: STATS poll failed: {e}");
                exit(1);
            }
        };
        let trace = match client.trace() {
            Ok(trace) => trace,
            Err(e) => {
                eprintln!("easz-top: TRACE poll failed: {e}");
                exit(1);
            }
        };
        if !once {
            // Clear and home, then redraw the whole frame.
            print!("\x1b[2J\x1b[H");
        }
        render(&addr, &stats, &trace, previous.as_ref().map(|(at, s)| (polled - *at, s)));
        if once {
            return;
        }
        previous = Some((polled, stats));
        std::thread::sleep(interval);
    }
}

/// Requests per second between two snapshots, or `None` on the first poll.
fn throughput(window: Option<(Duration, &ServerStats)>, now: &ServerStats) -> Option<f64> {
    let (elapsed, prev) = window?;
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return None;
    }
    Some((now.decode_requests.saturating_sub(prev.decode_requests)) as f64 / secs)
}

fn render(
    addr: &str,
    stats: &ServerStats,
    trace: &TraceReport,
    window: Option<(Duration, &ServerStats)>,
) {
    println!("easz-top — {addr}");
    let rate = match throughput(window, stats) {
        Some(rate) => format!("{rate:.1} req/s"),
        None => "n/a (first poll)".to_string(),
    };
    println!(
        "requests {:>10}   ok {:>10}   err {:>8}   shed {:>6}   throughput {rate}",
        stats.decode_requests, stats.decode_ok, stats.decode_err, stats.requests_shed
    );
    println!(
        "conns    {:>10}   accepted {:>6}   refused {:>5}   batches {:>6}   inline {:>6}",
        stats.connections_active,
        stats.connections_accepted,
        stats.connections_refused,
        stats.batches_dispatched,
        stats.inline_decodes
    );
    println!(
        "queue    depth {:>5}   peak {:>7}   arrival-gap ewma {} ",
        stats.queue_depth,
        stats.queue_peak,
        fmt_us(stats.arrival_ewma_us)
    );

    println!("\nlatency (µs)        p50        p90        p99       p999      count");
    for (name, histo) in [
        ("queue wait", &stats.queue_wait_histo),
        ("decode", &stats.decode_histo),
        ("service e2e", &stats.service_histo),
    ] {
        let count: u64 = histo.iter().sum();
        print!("  {name:<14}");
        for q in [0.50, 0.90, 0.99, 0.999] {
            print!(" {:>10}", easz_server::latency_percentile_us(histo, q));
        }
        println!(" {count:>10}");
    }

    let widths: Vec<String> = stats
        .batch_widths
        .iter()
        .enumerate()
        .filter(|(_, n)| **n > 0)
        .map(|(w, n)| {
            if w + 1 == stats.batch_widths.len() {
                format!("{w}+:{n}")
            } else {
                format!("{w}:{n}")
            }
        })
        .collect();
    println!(
        "\nbatch widths   {}",
        if widths.is_empty() { "(none dispatched)".to_string() } else { widths.join("  ") }
    );

    println!("\ndecode stages        calls   total (µs)     mean (µs)");
    for stage in DecodeStage::ALL {
        let (count, total_us) = trace.decode_stages[stage.index()];
        let mean = total_us.checked_div(count).unwrap_or(0);
        println!("  {:<16} {count:>9} {total_us:>12} {mean:>13}", stage.name());
    }

    println!("\nrecent spans ({}) — sampled requests since the last poll", trace.recent.len());
    for span in trace.recent.iter().rev().take(5) {
        print_span("  ", span);
    }

    println!("\nslow requests ({}) — newest last", trace.slow.len());
    for span in &trace.slow {
        print_span("  ", span);
    }
}

/// One span line: identity, outcome, total, then the per-stage breakdown
/// (delta between consecutive reached stamps — the time *in* each leg).
fn print_span(indent: &str, span: &TraceSpan) {
    let mut legs = String::new();
    let mut last = 0u32;
    for stage in TraceStage::ALL {
        if let Some(at) = span.stage_us(stage) {
            let delta = at.saturating_sub(last);
            last = at;
            if !legs.is_empty() {
                legs.push_str("  ");
            }
            legs.push_str(&format!("{}+{delta}", stage.name()));
        }
    }
    println!(
        "{indent}#{:<6} frame 0x{:02x} conn {:<4} {} total {:>8} | {legs}",
        span.id,
        span.frame,
        span.source,
        if span.ok { "ok " } else { "ERR" },
        fmt_us(u64::from(span.total_us())),
    );
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

//! The event-driven reactor front end: one thread, an epoll instance, and
//! nonblocking sockets, absorbing thousands of connections that the
//! thread-per-connection path would pay a stack and a scheduler slot each
//! for.
//!
//! Architecture (see the crate docs for the narrative version):
//!
//! - **Readiness loop** — [`run`] owns the listener, a [`sys::Epoll`]
//!   instance and every connection. Level-triggered readiness: each event
//!   drains its fd until `WouldBlock`, bounded per event for loop fairness.
//! - **Framing** — each connection owns a [`conn::FrameAssembler`] (the
//!   incremental twin of `protocol::read_frame`), an outbound
//!   [`conn::OutBuf`] surviving partial writes, and a [`conn::ReplyQueue`]
//!   keeping pipelined replies in request order while decode workers
//!   complete in any order.
//! - **Decode hand-off** — complete `DECODE`-family frames are submitted
//!   to the shared gateway [`Batcher`](crate::batcher::Batcher) with the
//!   connection id as the fairness source; the reply closure serializes
//!   the `IMAGE`/`ERROR` frame on the worker thread and posts it to a
//!   completion queue, waking the loop through a socketpair waker. The
//!   loop itself never decodes.
//! - **Backpressure** — a connection with too many decodes in flight or
//!   too many unflushed reply bytes stops being read (its `EPOLLIN`
//!   interest is dropped) until it drains; the kernel's receive buffer
//!   then throttles the peer.
//! - **Admission & shedding** — accepts beyond
//!   [`ReactorConfig::max_connections`] are answered with a best-effort
//!   `BUSY` error frame and closed; well-framed decode requests that the
//!   gateway refuses (full queue) are answered with `BUSY` instead of
//!   decoding inline, because the loop must never block on a forward.
//! - **Shutdown** — mirrors the threaded path's invariant: the gateway is
//!   flushed, every parked job's reply is written out (bounded by
//!   [`ReactorConfig::drain_grace`]), then sockets close.

#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
mod conn;
#[cfg(target_os = "linux")]
mod sys;

use std::time::Duration;

/// Tunables of the reactor front end (see
/// [`EaszServer::with_reactor`](crate::EaszServer::with_reactor)).
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Connections served concurrently before accepts are refused with a
    /// `BUSY` error frame. Also sets the listener's accept backlog (capped
    /// by the kernel's `net.core.somaxconn`), so a connect burst queues in
    /// the kernel instead of dropping SYNs while the loop is busy.
    pub max_connections: usize,
    /// Decode requests one connection may have in flight before the
    /// reactor stops reading from it (resumed as replies flush).
    pub max_inflight: usize,
    /// Unflushed outbound bytes one connection may accumulate before the
    /// reactor stops reading from it (a slow reader cannot balloon server
    /// memory past roughly this per connection).
    pub write_buffer_cap: usize,
    /// How long shutdown keeps flushing already-accepted work to slow
    /// readers before force-closing.
    pub drain_grace: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            max_connections: 4096,
            max_inflight: 32,
            write_buffer_cap: 8 << 20,
            drain_grace: Duration::from_secs(5),
        }
    }
}

#[cfg(target_os = "linux")]
pub(crate) use linux::run;

#[cfg(not(target_os = "linux"))]
pub(crate) fn run(
    _listener: std::net::TcpListener,
    _shutdown: &std::sync::atomic::AtomicBool,
    _config: &crate::server::ServerConfig,
    _reactor: &ReactorConfig,
    _metrics: &std::sync::Arc<crate::metrics::ServerMetrics>,
    _batcher: &crate::batcher::Batcher,
    _tracer: Option<&crate::trace::Tracer>,
) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "the reactor front end requires Linux epoll; use the threaded path",
    ))
}

#[cfg(target_os = "linux")]
mod linux {
    use super::conn::{FrameAssembler, FrameEvent, OutBuf, ReplyMeta, ReplyQueue};
    use super::sys::{Epoll, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
    use super::ReactorConfig;
    use crate::batcher::Batcher;
    use crate::metrics::ServerMetrics;
    use crate::protocol::{self, EngineTier, ErrorCode, WireError};
    use crate::server::ServerConfig;
    use crate::trace::{SpanCtx, TraceStage, Tracer};
    use easz_core::EaszEncoded;
    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    const TOKEN_LISTENER: u64 = 0;
    const TOKEN_WAKER: u64 = 1;
    const FIRST_CONN_TOKEN: u64 = 2;

    /// Bytes read from one connection per readiness event before yielding
    /// to the next — a flooding peer cannot monopolise the loop.
    const READ_BUDGET: usize = 256 * 1024;

    /// The loop's base tick: shutdown flags, idle sweeps and drain
    /// deadlines are all observed within this latency even without events.
    const TICK: Duration = Duration::from_millis(250);

    /// How long a connection that triggered an oversize frame is kept open
    /// to swallow the announced payload, so closing does not RST the error
    /// reply out from under the peer (the threaded path's `drain_bounded`).
    const OVERSIZE_LINGER: Duration = Duration::from_secs(2);

    /// One decode completion crossing from a worker thread to the loop:
    /// `(connection id, reply slot, serialized reply frame, trace span,
    /// ok)` — the span (if sampled) and outcome ride along so the reply
    /// slot can account them at write time.
    type Completion = (u64, u64, Vec<u8>, Option<SpanCtx>, bool);

    /// Decode completions posted by worker threads, drained by the loop.
    struct Completions {
        posted: Mutex<Vec<Completion>>,
        /// Write half of the waker socketpair; one byte per post batch
        /// (best-effort — a full pipe already guarantees a pending wake).
        waker: UnixStream,
    }

    impl Completions {
        fn post(&self, conn_id: u64, seq: u64, frame: Vec<u8>, span: Option<SpanCtx>, ok: bool) {
            let was_empty = {
                let mut posted = self.posted.lock().unwrap_or_else(|e| e.into_inner());
                let was_empty = posted.is_empty();
                posted.push((conn_id, seq, frame, span, ok));
                was_empty
            };
            // Only the empty→non-empty transition needs a wake: a post that
            // observed a non-empty queue did so before the loop's drain took
            // the lock, so the wake byte for the earlier post still covers
            // it. Saves one syscall per reply under burst load.
            if was_empty {
                let _ = (&self.waker).write(&[1]);
            }
        }

        fn drain(&self) -> Vec<Completion> {
            std::mem::take(&mut *self.posted.lock().unwrap_or_else(|e| e.into_inner()))
        }
    }

    /// One nonblocking connection under the reactor.
    struct Connection {
        stream: TcpStream,
        assembler: FrameAssembler,
        out: OutBuf,
        replies: ReplyQueue,
        last_activity: Instant,
        /// No further input is parsed (EOF, terminal frame, or shutdown).
        read_closed: bool,
        /// Close once every reply has been flushed to the socket.
        close_when_flushed: bool,
        /// Force-close time for an oversize-draining connection.
        close_deadline: Option<Instant>,
        /// Currently registered epoll interest.
        interest: u32,
    }

    impl Connection {
        fn new(stream: TcpStream, max_frame_len: usize) -> Self {
            Self {
                stream,
                assembler: FrameAssembler::new(max_frame_len),
                out: OutBuf::default(),
                replies: ReplyQueue::default(),
                last_activity: Instant::now(),
                read_closed: false,
                close_when_flushed: false,
                close_deadline: None,
                interest: EPOLLIN,
            }
        }

        /// Whether reading is paused by backpressure.
        fn paused(&self, reactor: &ReactorConfig) -> bool {
            self.replies.len() >= reactor.max_inflight || self.out.len() >= reactor.write_buffer_cap
        }
    }

    /// Serializes a typed error into a ready-to-queue `ERROR` frame.
    fn error_frame(code: ErrorCode, message: String) -> Vec<u8> {
        protocol::frame_bytes(protocol::ERROR, &WireError { code, message }.to_payload())
    }

    /// Runs the reactor until shutdown. Mirrors the threaded
    /// `serve_until` contract: only fatal listener errors surface,
    /// per-connection failures close that connection silently.
    pub(crate) fn run(
        listener: TcpListener,
        shutdown: &AtomicBool,
        config: &ServerConfig,
        reactor: &ReactorConfig,
        metrics: &Arc<ServerMetrics>,
        batcher: &Batcher,
        tracer: Option<&Tracer>,
    ) -> io::Result<()> {
        let epoll = Epoll::new()?;
        listener.set_nonblocking(true)?;
        // Deepen the accept backlog to the connection budget: the loop
        // accepts between decode completions, not from a dedicated thread,
        // so std's default backlog of 128 overflows under a connect burst
        // and every dropped SYN costs that client a ~1s retransmission.
        super::sys::relisten(
            listener.as_raw_fd(),
            reactor.max_connections.clamp(128, i32::MAX as usize) as i32,
        )?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        let (waker_rx, waker_tx) = UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;
        epoll.add(waker_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKER)?;
        let completions = Arc::new(Completions { posted: Mutex::new(Vec::new()), waker: waker_tx });

        let idle_timeout = config.read_timeout.filter(|t| !t.is_zero());
        let mut conns: HashMap<u64, Connection> = HashMap::new();
        let mut next_token = FIRST_CONN_TOKEN;
        let mut events = Vec::with_capacity(1024);
        let mut scratch = vec![0u8; 64 * 1024];
        let mut next_idle_sweep = Instant::now() + TICK;
        // `Some(deadline)` once shutdown has been observed and the gateway
        // flushed; the loop then only drains outbound replies.
        let mut draining: Option<Instant> = None;

        loop {
            epoll.wait(&mut events, Some(TICK))?;
            let now = Instant::now();

            if draining.is_none() && shutdown.load(Ordering::Acquire) {
                // Stop accepting, stop reading, flush the gateway: every
                // already-parked job still gets its reply written out —
                // the shutdown-flush invariant, readiness-style.
                let _ = epoll.delete(listener.as_raw_fd());
                for conn in conns.values_mut() {
                    conn.read_closed = true;
                    conn.close_when_flushed = true;
                }
                batcher.shutdown();
                draining = Some(now + reactor.drain_grace);
            }

            // Connections touched this iteration, pumped (flush + write +
            // re-arm) once at the end.
            let mut touched: Vec<u64> = Vec::new();

            for ev in &events {
                let (bits, token) = (ev.events, ev.data);
                match token {
                    TOKEN_LISTENER => {
                        if draining.is_none() {
                            accept_ready(
                                &listener,
                                &epoll,
                                config,
                                reactor,
                                metrics,
                                &mut conns,
                                &mut next_token,
                            )?;
                        }
                    }
                    TOKEN_WAKER => {
                        // Drain the wake bytes; completions are collected
                        // below regardless.
                        while let Ok(n) = (&waker_rx).read(&mut scratch) {
                            if n == 0 {
                                break;
                            }
                        }
                    }
                    token => {
                        let Some(conn) = conns.get_mut(&token) else { continue };
                        if bits & EPOLLERR != 0 {
                            close_conn(&epoll, &mut conns, token, metrics);
                            continue;
                        }
                        if bits & (EPOLLIN | EPOLLHUP) != 0 && !conn.read_closed {
                            read_ready(
                                conn,
                                token,
                                config,
                                reactor,
                                metrics,
                                batcher,
                                tracer,
                                &completions,
                                &mut scratch,
                            );
                        } else if bits & EPOLLHUP != 0 && conn.out.is_empty() {
                            // Hangup with nothing left to deliver.
                            close_conn(&epoll, &mut conns, token, metrics);
                            continue;
                        }
                        touched.push(token);
                    }
                }
            }

            // Route decode completions to their reply slots. A missing
            // connection simply drops the frame — it died while its job
            // was queued (the span dies with it: the reply was never
            // written, so `reply-written` would be a lie).
            for (conn_id, seq, frame, span, ok) in completions.drain() {
                if let Some(conn) = conns.get_mut(&conn_id) {
                    conn.replies.fill(seq, frame, span, ok);
                    touched.push(conn_id);
                }
            }

            // While draining, every connection needs pumping: progress
            // comes from completions and writability, not reads.
            if draining.is_some() {
                touched.extend(conns.keys().copied());
            }
            touched.sort_unstable();
            touched.dedup();
            for token in touched {
                if !pump(&mut conns, token, &epoll, reactor, metrics, tracer, now) {
                    close_conn(&epoll, &mut conns, token, metrics);
                }
            }

            if let Some(deadline) = draining {
                if conns.is_empty() {
                    return Ok(());
                }
                if now >= deadline {
                    // Grace spent: abandon slow readers.
                    let tokens: Vec<u64> = conns.keys().copied().collect();
                    for token in tokens {
                        close_conn(&epoll, &mut conns, token, metrics);
                    }
                    return Ok(());
                }
                continue;
            }

            if now >= next_idle_sweep {
                next_idle_sweep = now + TICK;
                // Expired linger deadlines (oversize connections kept open
                // to swallow their announced payload) close here: the peer
                // may never send another byte, so no readiness event can be
                // relied on to enforce the deadline.
                let expired: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| c.close_deadline.is_some_and(|d| now >= d))
                    .map(|(t, _)| *t)
                    .collect();
                for token in expired {
                    let _ = pump(&mut conns, token, &epoll, reactor, metrics, tracer, now);
                    close_conn(&epoll, &mut conns, token, metrics);
                }
                if let Some(timeout) = idle_timeout {
                    // Idle = nothing owed to the peer and nothing heard
                    // from it; a connection waiting on its own decode is
                    // not idle (the threaded path's read timeout likewise
                    // only ticks between requests).
                    let stale: Vec<u64> = conns
                        .iter()
                        .filter(|(_, c)| {
                            c.replies.is_empty()
                                && c.out.is_empty()
                                && now.saturating_duration_since(c.last_activity) > timeout
                        })
                        .map(|(t, _)| *t)
                        .collect();
                    for token in stale {
                        close_conn(&epoll, &mut conns, token, metrics);
                    }
                }
            }
        }
    }

    /// Accepts every pending connection, admitting or refusing each.
    fn accept_ready(
        listener: &TcpListener,
        epoll: &Epoll,
        config: &ServerConfig,
        reactor: &ReactorConfig,
        metrics: &Arc<ServerMetrics>,
        conns: &mut HashMap<u64, Connection>,
        next_token: &mut u64,
    ) -> io::Result<()> {
        loop {
            let (stream, _) = match listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (the peer
                // vanished between SYN and accept) must not kill the loop.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e),
            };
            if crate::fault::accept_abort() {
                // Injected ECONNABORTED-after-accept: the peer vanished
                // between SYN and our accept; drop it and keep accepting.
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue; // dropped: an unpollable socket cannot be served
            }
            if conns.len() >= reactor.max_connections {
                // Admission control: answer with a typed BUSY frame
                // (best effort — a fresh socket's send buffer is empty,
                // so the single write virtually always lands) and close.
                metrics.record_connection_refused();
                metrics.record_error(ErrorCode::Busy);
                let frame = error_frame(
                    ErrorCode::Busy,
                    format!("server is at its {} connection limit", reactor.max_connections),
                );
                let _ = (&stream).write(&frame);
                continue;
            }
            let token = *next_token;
            *next_token += 1;
            if epoll.add(stream.as_raw_fd(), EPOLLIN, token).is_err() {
                metrics.record_connection_refused();
                continue;
            }
            metrics.record_connection_open();
            conns.insert(token, Connection::new(stream, config.max_frame_len));
        }
    }

    /// Drains a readable connection into its assembler, dispatching every
    /// complete frame, bounded by `READ_BUDGET` per call.
    #[allow(clippy::too_many_arguments)]
    fn read_ready(
        conn: &mut Connection,
        token: u64,
        config: &ServerConfig,
        reactor: &ReactorConfig,
        metrics: &Arc<ServerMetrics>,
        batcher: &Batcher,
        tracer: Option<&Tracer>,
        completions: &Arc<Completions>,
        scratch: &mut [u8],
    ) {
        let mut budget = READ_BUDGET;
        while budget > 0 && !conn.read_closed && !conn.paused(reactor) {
            let mut want = budget.min(scratch.len());
            if crate::fault::short_read() {
                // Injected short read: the kernel hands over one byte, so
                // the frame assembler must survive arbitrary fragmentation.
                want = 1;
            }
            let n = match conn.stream.read(&mut scratch[..want]) {
                Ok(0) => {
                    // EOF: no more requests, but replies already owed are
                    // still delivered before closing.
                    conn.read_closed = true;
                    conn.close_when_flushed = true;
                    return;
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.read_closed = true;
                    conn.close_when_flushed = true;
                    conn.replies = ReplyQueue::default();
                    conn.out = OutBuf::default();
                    return;
                }
            };
            budget -= n;
            conn.last_activity = Instant::now();
            let mut rest = &scratch[..n];
            while !rest.is_empty() && !conn.read_closed {
                let (consumed, event) = conn.assembler.push(rest);
                rest = &rest[consumed..];
                match event {
                    Some(FrameEvent::Frame { frame_type, payload }) => {
                        handle_frame(
                            conn,
                            token,
                            frame_type,
                            payload,
                            config,
                            metrics,
                            batcher,
                            tracer,
                            completions,
                        );
                    }
                    Some(FrameEvent::Oversize { announced, limit }) => {
                        // Framing is lost: answer once, then linger just
                        // long enough to swallow the announced bytes so
                        // the close does not RST the reply away.
                        metrics.record_error(ErrorCode::Oversize);
                        conn.replies.reserve(
                            Some(error_frame(
                                ErrorCode::Oversize,
                                format!("frame announces {announced} bytes, limit is {limit}"),
                            )),
                            ReplyMeta::inline(),
                        );
                        conn.close_when_flushed = true;
                        conn.close_deadline = Some(Instant::now() + OVERSIZE_LINGER);
                    }
                    None => {
                        if consumed == 0 {
                            return; // assembler refuses further input
                        }
                        break; // needs more bytes
                    }
                }
            }
        }
    }

    /// Dispatches one complete inbound frame. Decode work goes to the
    /// gateway; everything else is answered inline through the reply
    /// queue so pipelined responses keep request order.
    #[allow(clippy::too_many_arguments)]
    fn handle_frame(
        conn: &mut Connection,
        token: u64,
        frame_type: u8,
        payload: Vec<u8>,
        config: &ServerConfig,
        metrics: &Arc<ServerMetrics>,
        batcher: &Batcher,
        tracer: Option<&Tracer>,
        completions: &Arc<Completions>,
    ) {
        match frame_type {
            protocol::DECODE | protocol::DECODE_TIERED => {
                let (tier, container) = if frame_type == protocol::DECODE_TIERED {
                    match crate::server::split_tier(&payload) {
                        Ok(pair) => pair,
                        Err(message) => {
                            metrics.record_error(ErrorCode::Protocol);
                            conn.replies.reserve(
                                Some(error_frame(ErrorCode::Protocol, message)),
                                ReplyMeta::inline(),
                            );
                            return;
                        }
                    }
                } else {
                    (None, payload.as_slice())
                };
                metrics.record_requests(1);
                submit_container(
                    conn,
                    token,
                    frame_type,
                    container,
                    tier,
                    metrics,
                    batcher,
                    tracer,
                    completions,
                );
            }
            protocol::DECODE_BATCH | protocol::DECODE_BATCH_TIERED => {
                let (tier, batch_payload) = if frame_type == protocol::DECODE_BATCH_TIERED {
                    match crate::server::split_tier(&payload) {
                        Ok(pair) => pair,
                        Err(message) => {
                            metrics.record_error(ErrorCode::Protocol);
                            conn.replies.reserve(
                                Some(error_frame(ErrorCode::Protocol, message)),
                                ReplyMeta::inline(),
                            );
                            return;
                        }
                    }
                } else {
                    (None, payload.as_slice())
                };
                match protocol::decode_batch_payload(batch_payload, config.max_batch) {
                    Err(message) => {
                        metrics.record_error(ErrorCode::Protocol);
                        conn.replies.reserve(
                            Some(error_frame(ErrorCode::Protocol, message)),
                            ReplyMeta::inline(),
                        );
                    }
                    Ok(containers) => {
                        metrics.record_requests(containers.len() as u64);
                        for container in containers {
                            submit_container(
                                conn,
                                token,
                                frame_type,
                                container,
                                tier,
                                metrics,
                                batcher,
                                tracer,
                                completions,
                            );
                        }
                    }
                }
            }
            protocol::PING => {
                if payload.len() == 1 {
                    conn.replies.reserve(
                        Some(protocol::frame_bytes(protocol::PONG, &[protocol::PROTOCOL_VERSION])),
                        ReplyMeta::inline(),
                    );
                } else {
                    let message = format!("ping payload must be 1 byte, got {}", payload.len());
                    metrics.record_error(ErrorCode::Protocol);
                    conn.replies.reserve(
                        Some(error_frame(ErrorCode::Protocol, message)),
                        ReplyMeta::inline(),
                    );
                }
            }
            protocol::STATS => {
                if payload.is_empty() {
                    conn.replies.reserve(
                        Some(protocol::frame_bytes(
                            protocol::STATS_REPLY,
                            &metrics.snapshot().to_payload(),
                        )),
                        ReplyMeta::inline(),
                    );
                } else {
                    let message = format!("stats payload must be empty, got {}", payload.len());
                    metrics.record_error(ErrorCode::Protocol);
                    conn.replies.reserve(
                        Some(error_frame(ErrorCode::Protocol, message)),
                        ReplyMeta::inline(),
                    );
                }
            }
            protocol::TRACE => {
                if payload.is_empty() {
                    // Tracing disabled still answers with a valid empty
                    // report so inspectors degrade instead of erroring.
                    let report = tracer.map(Tracer::drain).unwrap_or_default();
                    conn.replies.reserve(
                        Some(protocol::frame_bytes(protocol::TRACE_REPLY, &report.to_payload())),
                        ReplyMeta::inline(),
                    );
                } else {
                    let message = format!("trace payload must be empty, got {}", payload.len());
                    metrics.record_error(ErrorCode::Protocol);
                    conn.replies.reserve(
                        Some(error_frame(ErrorCode::Protocol, message)),
                        ReplyMeta::inline(),
                    );
                }
            }
            other => {
                // The peer speaks something else: answer once and close.
                metrics.record_error(ErrorCode::UnknownFrame);
                conn.replies.reserve(
                    Some(error_frame(
                        ErrorCode::UnknownFrame,
                        format!("unknown frame type 0x{other:02x}"),
                    )),
                    ReplyMeta::inline(),
                );
                conn.read_closed = true;
                conn.close_when_flushed = true;
            }
        }
    }

    /// Parses one container and parks it in the gateway, reserving its
    /// ordered reply slot. Parse failures answer immediately with the
    /// container-level typed error; a refused submission (full queue or
    /// shutdown) sheds with `BUSY` — the loop never decodes inline.
    #[allow(clippy::too_many_arguments)]
    fn submit_container(
        conn: &mut Connection,
        token: u64,
        frame_type: u8,
        container: &[u8],
        tier: Option<EngineTier>,
        metrics: &Arc<ServerMetrics>,
        batcher: &Batcher,
        tracer: Option<&Tracer>,
        completions: &Arc<Completions>,
    ) {
        let received = Instant::now();
        let encoded = match EaszEncoded::from_bytes(container) {
            Ok(encoded) => encoded,
            Err(e) => {
                metrics.record_decode(false);
                let err = WireError::from_easz(&e);
                metrics.record_error(err.code);
                conn.replies.reserve(Some(error_frame(err.code, err.message)), ReplyMeta::inline());
                return;
            }
        };
        let span = tracer.map(|tracer| {
            let mut span = tracer.begin(frame_type, token);
            span.stamp(TraceStage::Admitted);
            span
        });
        let engine = tier.map_or_else(|| encoded.preferred_engine(), EngineTier::engine);
        let seq = conn.replies.reserve(None, ReplyMeta::for_decode(received, None));
        let reply_completions = Arc::clone(completions);
        let reply_metrics = Arc::clone(metrics);
        let reply = Box::new(
            move |result: Result<easz_image::ImageF32, easz_core::EaszError>,
                  span: Option<SpanCtx>| {
                // Serialize on the worker thread: `to_u8` + frame assembly
                // are per-reply costs the event loop must not pay.
                let ok = result.is_ok();
                let frame = match result {
                    Ok(image) => {
                        reply_metrics.record_decode(true);
                        protocol::frame_bytes(
                            protocol::IMAGE,
                            &protocol::encode_image(&image.to_u8()),
                        )
                    }
                    Err(e) => {
                        reply_metrics.record_decode(false);
                        let err = WireError::from_easz(&e);
                        reply_metrics.record_error(err.code);
                        protocol::frame_bytes(protocol::ERROR, &err.to_payload())
                    }
                };
                reply_completions.post(token, seq, frame, span, ok);
            },
        );
        if let Err((_, span, _)) = batcher.submit(encoded, engine, token, span, reply) {
            // Load shed: the queue is saturated and the loop cannot decode
            // inline without stalling every other connection. The refused
            // span still rides the reply slot so shed requests trace too.
            metrics.record_request_shed();
            metrics.record_error(ErrorCode::Busy);
            conn.replies.fill(
                seq,
                error_frame(ErrorCode::Busy, "decode queue is saturated, retry later".into()),
                span,
                false,
            );
        }
    }

    /// Flushes ready replies, writes what the socket will take, re-arms
    /// interest. Returns `false` when the connection should close.
    fn pump(
        conns: &mut HashMap<u64, Connection>,
        token: u64,
        epoll: &Epoll,
        reactor: &ReactorConfig,
        metrics: &Arc<ServerMetrics>,
        tracer: Option<&Tracer>,
        now: Instant,
    ) -> bool {
        let Some(conn) = conns.get_mut(&token) else { return true };
        let mut released = Vec::new();
        conn.replies.flush_into(&mut conn.out, &mut released);
        let mut alive = true;
        while !conn.out.is_empty() {
            let pending = conn.out.pending();
            // Injected torn write: hand the kernel a prefix, forcing the
            // compacting out-buffer to resume mid-frame.
            let take = crate::fault::write_split(pending.len()).unwrap_or(pending.len());
            match conn.stream.write(&pending[..take]) {
                Ok(0) => {
                    alive = false;
                    break;
                }
                Ok(n) => {
                    conn.out.advance(n);
                    conn.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    alive = false;
                    break;
                }
            }
        }
        // Account the replies whose bytes just reached the out-buffer /
        // socket: end-to-end service time for decode replies, and the
        // final two span stamps. A connection that died mid-write still
        // closes its spans — the decode outcome is what `ok` records.
        for meta in released {
            if meta.decode {
                metrics.record_service(meta.received.elapsed().as_micros() as u64);
            }
            if let (Some(tracer), Some(mut span)) = (tracer, meta.span) {
                span.stamp(TraceStage::ReplyWritten);
                tracer.finish(span, meta.ok);
            }
        }
        if !alive {
            return false;
        }
        if conn.close_when_flushed && conn.replies.is_empty() && conn.out.is_empty() {
            // An oversize linger keeps the socket open (still swallowing
            // the announced payload) until drained or out of grace.
            let lingering = conn.assembler.is_draining()
                && !conn.assembler.drained()
                && conn.close_deadline.is_some_and(|d| now < d);
            if !lingering {
                return false;
            }
        }
        let mut want = 0;
        if !conn.read_closed && !conn.paused(reactor) {
            want |= EPOLLIN;
        }
        if !conn.out.is_empty() {
            want |= EPOLLOUT;
        }
        if want != conn.interest && epoll.modify(conn.stream.as_raw_fd(), want, token).is_err() {
            return false;
        }
        conn.interest = want;
        true
    }

    /// Deregisters and drops one connection, updating the gauge.
    fn close_conn(
        epoll: &Epoll,
        conns: &mut HashMap<u64, Connection>,
        token: u64,
        metrics: &Arc<ServerMetrics>,
    ) {
        if let Some(conn) = conns.remove(&token) {
            let _ = epoll.delete(conn.stream.as_raw_fd());
            metrics.record_connection_close();
        }
    }
}

//! Per-connection framing state for the reactor: an incremental frame
//! assembler (the readiness-driven twin of [`protocol::read_frame`]), an
//! outbound buffer that survives partial writes, and the ordered reply
//! slots that keep pipelined responses in request order even though decode
//! workers complete out of order.
//!
//! Everything here is plain state-machine code with no I/O, which is what
//! makes the byte-boundary unit tests possible: `push` can be fed one byte
//! at a time and must behave identically to feeding the whole frame.

use crate::protocol::{self};
use crate::trace::{SpanCtx, TraceStage};
use std::collections::VecDeque;
use std::time::Instant;

/// One parse step's outcome (besides consuming input).
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame arrived.
    Frame {
        /// The frame-type byte.
        frame_type: u8,
        /// The payload, exactly as announced.
        payload: Vec<u8>,
    },
    /// The header announced a payload beyond the limit. The assembler has
    /// switched to draining the announced bytes; no payload was buffered.
    Oversize {
        /// Announced payload length.
        announced: usize,
        /// The assembler's limit.
        limit: usize,
    },
}

enum ParseState {
    /// Collecting the 5-byte header.
    Header { buf: [u8; protocol::FRAME_HEADER_LEN], have: usize },
    /// Collecting `want` payload bytes.
    Payload { frame_type: u8, payload: Vec<u8>, want: usize },
    /// Swallowing the rest of an oversize frame so the eventual close does
    /// not RST the error reply out from under the peer.
    Draining { remaining: usize },
}

/// Incremental parser for the length-prefixed wire framing: feed it
/// whatever chunk the socket produced, get back how much was consumed and
/// at most one event per call.
pub struct FrameAssembler {
    max_payload: usize,
    state: ParseState,
}

impl FrameAssembler {
    /// An assembler enforcing `max_payload` (the server's
    /// `max_frame_len`). The payload buffer is only allocated *after* the
    /// announced length passes the limit check, so a hostile header cannot
    /// balloon memory.
    pub fn new(max_payload: usize) -> Self {
        Self { max_payload, state: ParseState::Header { buf: [0; 5], have: 0 } }
    }

    /// Whether the assembler is swallowing an oversize frame's payload.
    pub fn is_draining(&self) -> bool {
        matches!(self.state, ParseState::Draining { .. })
    }

    /// Whether an oversize drain has consumed everything it announced.
    pub fn drained(&self) -> bool {
        matches!(self.state, ParseState::Draining { remaining: 0 })
    }

    /// Consumes bytes from `input`, returning how many were taken and at
    /// most one event. Call in a loop over the unconsumed remainder until
    /// it stops producing events or stops consuming.
    pub fn push(&mut self, input: &[u8]) -> (usize, Option<FrameEvent>) {
        let mut consumed = 0;
        loop {
            match &mut self.state {
                ParseState::Header { buf, have } => {
                    let take = (buf.len() - *have).min(input.len() - consumed);
                    buf[*have..*have + take].copy_from_slice(&input[consumed..consumed + take]);
                    *have += take;
                    consumed += take;
                    if *have < buf.len() {
                        return (consumed, None);
                    }
                    let frame_type = buf[0];
                    let announced =
                        u32::from_le_bytes(buf[1..5].try_into().expect("4 bytes")) as usize;
                    if announced > self.max_payload {
                        let limit = self.max_payload;
                        self.state = ParseState::Draining { remaining: announced };
                        return (consumed, Some(FrameEvent::Oversize { announced, limit }));
                    }
                    if announced == 0 {
                        self.state = ParseState::Header { buf: [0; 5], have: 0 };
                        return (
                            consumed,
                            Some(FrameEvent::Frame { frame_type, payload: Vec::new() }),
                        );
                    }
                    self.state = ParseState::Payload {
                        frame_type,
                        payload: Vec::with_capacity(announced),
                        want: announced,
                    };
                }
                ParseState::Payload { frame_type, payload, want } => {
                    let take = (*want - payload.len()).min(input.len() - consumed);
                    payload.extend_from_slice(&input[consumed..consumed + take]);
                    consumed += take;
                    if payload.len() < *want {
                        return (consumed, None);
                    }
                    let frame_type = *frame_type;
                    let payload = std::mem::take(payload);
                    self.state = ParseState::Header { buf: [0; 5], have: 0 };
                    return (consumed, Some(FrameEvent::Frame { frame_type, payload }));
                }
                ParseState::Draining { remaining } => {
                    let take = (*remaining).min(input.len() - consumed);
                    *remaining -= take;
                    consumed += take;
                    // Stays in Draining even at zero: an oversize frame is
                    // terminal for the connection, nothing may follow it.
                    return (consumed, None);
                }
            }
        }
    }
}

/// Outbound bytes surviving partial writes: a flat buffer plus a cursor of
/// what the socket already took. Compacted once the cursor passes half the
/// buffer so a slow reader cannot make it grow without bound from dead
/// prefix bytes.
#[derive(Default)]
pub struct OutBuf {
    buf: Vec<u8>,
    sent: usize,
}

impl OutBuf {
    /// Queues `bytes` behind whatever is still unsent.
    pub fn queue(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The bytes the socket has not taken yet.
    pub fn pending(&self) -> &[u8] {
        &self.buf[self.sent..]
    }

    /// Whether everything queued has been handed to the socket.
    pub fn is_empty(&self) -> bool {
        self.sent == self.buf.len()
    }

    /// Unsent byte count.
    pub fn len(&self) -> usize {
        self.buf.len() - self.sent
    }

    /// Marks `n` pending bytes as written, compacting when the dead prefix
    /// dominates the buffer.
    pub fn advance(&mut self, n: usize) {
        self.sent += n;
        debug_assert!(self.sent <= self.buf.len(), "advanced past the queued bytes");
        if self.sent == self.buf.len() {
            self.buf.clear();
            self.sent = 0;
        } else if self.sent > 4096 && self.sent * 2 > self.buf.len() {
            self.buf.drain(..self.sent);
            self.sent = 0;
        }
    }
}

/// Observability bookkeeping carried by a reply slot: when the request's
/// frame was assembled (for the always-on service-time histogram), its
/// trace span (when tracing is on), and whether it was a decode request
/// with a successful result.
pub struct ReplyMeta {
    /// When the request frame was fully assembled off the socket.
    pub received: Instant,
    /// The request's trace span (`None` when tracing is off or for
    /// non-decode frames).
    pub span: Option<SpanCtx>,
    /// Whether this slot answers a decode request (only those feed the
    /// service-time histogram).
    pub decode: bool,
    /// Whether the decode succeeded (set when the slot is filled).
    pub ok: bool,
}

impl ReplyMeta {
    /// Metadata for an inline, non-decode reply (PONG, STATS, errors).
    pub fn inline() -> Self {
        Self { received: Instant::now(), span: None, decode: false, ok: false }
    }

    /// Metadata for a decode request assembled at `received`.
    pub fn for_decode(received: Instant, span: Option<SpanCtx>) -> Self {
        Self { received, span, decode: true, ok: false }
    }
}

/// One pipelined reply slot: replies must leave in request order, but
/// decode workers finish in any order, so each request reserves a slot
/// that is later filled with its serialized reply frame.
pub struct ReplySlot {
    /// The request's sequence number on its connection.
    pub seq: u64,
    /// The serialized reply frame, once known.
    pub frame: Option<Vec<u8>>,
    /// Observability bookkeeping, released with the frame on flush.
    pub meta: ReplyMeta,
}

/// The ordered reply queue of one connection.
#[derive(Default)]
pub struct ReplyQueue {
    slots: VecDeque<ReplySlot>,
    next_seq: u64,
}

impl ReplyQueue {
    /// Reserves the next slot, returning its sequence number. Pass `frame`
    /// for replies known immediately (PONG, typed errors); `None` parks
    /// the slot until [`fill`](Self::fill).
    pub fn reserve(&mut self, frame: Option<Vec<u8>>, meta: ReplyMeta) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back(ReplySlot { seq, frame, meta });
        seq
    }

    /// Fills the slot `seq` with its reply frame, the span that rode
    /// through the gateway with it (now stamped `ReplyQueued`), and the
    /// decode's ok-ness. A miss is fine — the connection may have died and
    /// its slots been dropped.
    pub fn fill(&mut self, seq: u64, frame: Vec<u8>, mut span: Option<SpanCtx>, ok: bool) {
        if let Some(slot) = self.slots.iter_mut().find(|s| s.seq == seq) {
            debug_assert!(slot.frame.is_none(), "reply slot filled twice");
            if let Some(span) = &mut span {
                span.stamp(TraceStage::ReplyQueued);
            }
            slot.frame = Some(frame);
            slot.meta.span = span;
            slot.meta.ok = ok;
        }
    }

    /// Pops every leading filled slot into `out`, preserving order and
    /// appending each released slot's metadata to `released`. Stops at the
    /// first slot still waiting on its decode.
    pub fn flush_into(&mut self, out: &mut OutBuf, released: &mut Vec<ReplyMeta>) {
        while let Some(front) = self.slots.front() {
            if front.frame.is_none() {
                break;
            }
            let slot = self.slots.pop_front().expect("front exists");
            out.queue(&slot.frame.expect("front is filled"));
            released.push(slot.meta);
        }
    }

    /// Slots not yet flushed (filled or waiting).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no reply is pending or waiting.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(frame_type: u8, payload: &[u8]) -> Vec<u8> {
        protocol::frame_bytes(frame_type, payload)
    }

    /// Feeds `bytes` in two pieces split at `at`, returning every event.
    fn feed_split(asm: &mut FrameAssembler, bytes: &[u8], at: usize) -> Vec<FrameEvent> {
        let mut events = Vec::new();
        for chunk in [&bytes[..at], &bytes[at..]] {
            let mut rest = chunk;
            while !rest.is_empty() {
                let (n, event) = asm.push(rest);
                events.extend(event);
                if n == 0 {
                    break;
                }
                rest = &rest[n..];
            }
        }
        events
    }

    #[test]
    fn frame_split_at_every_byte_boundary_parses_identically() {
        let bytes = frame(0x01, b"hello framing");
        for at in 0..=bytes.len() {
            let mut asm = FrameAssembler::new(1024);
            let events = feed_split(&mut asm, &bytes, at);
            assert_eq!(
                events,
                vec![FrameEvent::Frame { frame_type: 0x01, payload: b"hello framing".to_vec() }],
                "split at byte {at}"
            );
        }
    }

    #[test]
    fn back_to_back_frames_in_one_chunk_all_surface() {
        let mut bytes = frame(0x03, &[1]);
        bytes.extend(frame(0x04, &[]));
        bytes.extend(frame(0x01, b"xyz"));
        let mut asm = FrameAssembler::new(1024);
        let events = feed_split(&mut asm, &bytes, 0);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0], FrameEvent::Frame { frame_type: 0x03, payload: vec![1] });
        assert_eq!(events[1], FrameEvent::Frame { frame_type: 0x04, payload: vec![] });
        assert_eq!(events[2], FrameEvent::Frame { frame_type: 0x01, payload: b"xyz".to_vec() });
    }

    #[test]
    fn single_byte_trickle_parses_a_zero_length_frame() {
        let bytes = frame(0x04, &[]);
        let mut asm = FrameAssembler::new(16);
        let mut events = Vec::new();
        for &b in &bytes {
            let (n, event) = asm.push(&[b]);
            assert_eq!(n, 1);
            events.extend(event);
        }
        assert_eq!(events, vec![FrameEvent::Frame { frame_type: 0x04, payload: vec![] }]);
    }

    #[test]
    fn oversize_header_reports_before_buffering_and_drains() {
        let mut asm = FrameAssembler::new(8);
        let bytes = frame(0x01, &[0u8; 20]);
        let (consumed, event) = asm.push(&bytes);
        assert_eq!(event, Some(FrameEvent::Oversize { announced: 20, limit: 8 }));
        assert_eq!(consumed, 5, "only the header is consumed by the limit check");
        assert!(asm.is_draining());
        assert!(!asm.drained());
        let (n, event) = asm.push(&bytes[consumed..]);
        assert_eq!((n, event), (20, None), "drain swallows the announced payload");
        assert!(asm.drained());
        // Nothing after an oversize frame is ever parsed.
        let (n, event) = asm.push(&frame(0x03, &[1]));
        assert_eq!((n, event), (0, None));
    }

    #[test]
    fn outbuf_tracks_partial_writes() {
        let mut out = OutBuf::default();
        out.queue(b"abcdef");
        assert_eq!(out.pending(), b"abcdef");
        out.advance(2);
        assert_eq!(out.pending(), b"cdef");
        out.queue(b"gh");
        assert_eq!(out.pending(), b"cdefgh");
        out.advance(6);
        assert!(out.is_empty());
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn reply_queue_releases_in_request_order_only() {
        let mut q = ReplyQueue::default();
        let received = Instant::now();
        let a = q.reserve(None, ReplyMeta::for_decode(received, None));
        let b = q.reserve(None, ReplyMeta::for_decode(received, None));
        let c = q.reserve(Some(b"C".to_vec()), ReplyMeta::inline());
        assert_eq!((a, b, c), (0, 1, 2));
        let mut out = OutBuf::default();
        let mut released = Vec::new();
        // Out-of-order completion: c is ready, b completes before a.
        q.fill(b, b"B".to_vec(), None, true);
        q.flush_into(&mut out, &mut released);
        assert!(out.is_empty(), "head reply still pending, nothing may leave");
        assert!(released.is_empty());
        q.fill(a, b"A".to_vec(), None, false);
        q.flush_into(&mut out, &mut released);
        assert_eq!(out.pending(), b"ABC", "replies leave strictly in request order");
        assert!(q.is_empty());
        // The released metadata tracks the flushed slots, in order.
        assert_eq!(released.len(), 3);
        assert_eq!(
            released.iter().map(|m| (m.decode, m.ok)).collect::<Vec<_>>(),
            vec![(true, false), (true, true), (false, false)],
        );
        // Filling a dropped/unknown slot is a no-op, not a panic.
        q.fill(99, b"zombie".to_vec(), None, true);
        assert!(q.is_empty());
    }
}

//! A minimal epoll shim: `extern "C"` declarations against the libc the
//! Rust standard library already links on Linux, wrapped in a safe,
//! `OwnedFd`-backed handle. The repo's no-registry convention rules out
//! the `libc` crate; these three syscall wrappers and one `#[repr(C)]`
//! struct are the entire surface the reactor needs.
//!
//! Only level-triggered readiness is used: the event loop re-arms nothing
//! and simply keeps draining until `WouldBlock`, which keeps the state
//! machine honest (a missed wakeup cannot wedge a connection — the next
//! `epoll_wait` reports the level again).

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

/// Readiness: the fd has bytes to read (or a pending accept).
pub const EPOLLIN: u32 = 0x1;
/// Readiness: the fd can take more outbound bytes.
pub const EPOLLOUT: u32 = 0x4;
/// Error condition on the fd (always reported, never subscribed).
pub const EPOLLERR: u32 = 0x8;
/// Peer hangup on the fd (always reported, never subscribed).
pub const EPOLLHUP: u32 = 0x10;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;

/// The kernel's `struct epoll_event`. On x86 the kernel ABI packs the
/// 12-byte struct; other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` / `EPOLLOUT` / `EPOLLERR` / `EPOLLHUP`).
    pub events: u32,
    /// The caller's token, returned verbatim.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
}

/// Re-issues `listen(2)` on an already-listening socket to deepen its
/// accept backlog (the kernel caps it at `net.core.somaxconn`). The std
/// library listens with a fixed backlog of 128 — far too shallow for a
/// single-threaded accept loop serving thousands of connecting clients:
/// an overflowed accept queue drops SYNs, and each drop stalls that
/// client's `connect` for a full retransmission timeout.
///
/// # Errors
///
/// The syscall's failure (`EOPNOTSUPP` for a non-listening fd, ...).
pub fn relisten(fd: RawFd, backlog: i32) -> io::Result<()> {
    // SAFETY: listen takes no pointers; the fd is owned by the caller's
    // live listener.
    let rc = unsafe { listen(fd, backlog) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// An epoll instance owning its file descriptor.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// The syscall's failure (fd exhaustion, mostly).
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is an
        // error and anything else is a fresh fd this process owns.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: the fd was just returned by the kernel and nothing else
        // holds it.
        Ok(Self { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
        let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is null (DEL) or a live, exclusive &mut for the
        // duration of the call; the kernel only reads it.
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` for `interest`, tagging its events with `token`.
    ///
    /// # Errors
    ///
    /// The syscall's failure (`EEXIST`, fd limits, ...).
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, data: token };
        self.ctl(EPOLL_CTL_ADD, fd, Some(&mut ev))
    }

    /// Re-arms an already-registered `fd` with a new interest set.
    ///
    /// # Errors
    ///
    /// The syscall's failure (`ENOENT` for an unregistered fd, ...).
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, data: token };
        self.ctl(EPOLL_CTL_MOD, fd, Some(&mut ev))
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The syscall's failure.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Waits for readiness, filling `events` (cleared first, filled up to
    /// its capacity). `None` blocks indefinitely; `Some` rounds up to at
    /// least one millisecond so a nonzero timeout cannot spin. Interrupted
    /// waits (`EINTR`) are retried internally.
    ///
    /// # Errors
    ///
    /// The syscall's failure (other than `EINTR`).
    pub fn wait(&self, events: &mut Vec<EpollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        // Injected EINTR storm: report a spurious empty wakeup, exactly
        // what a signal landing mid-wait produces. The level-triggered
        // loop must absorb it (the next wait reports the level again).
        if crate::fault::epoll_spurious() {
            return Ok(());
        }
        if events.capacity() == 0 {
            events.reserve(64);
        }
        let cap = events.capacity().min(i32::MAX as usize) as i32;
        let timeout_ms = match timeout {
            None => -1,
            Some(t) => t.as_millis().clamp(1, i32::MAX as u128) as i32,
        };
        loop {
            // SAFETY: the spare capacity holds at least `cap` events and
            // the kernel writes at most `cap`; `set_len` only runs after
            // the kernel reported how many it initialised.
            let n =
                unsafe { epoll_wait(self.fd.as_raw_fd(), events.as_mut_ptr(), cap, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            // SAFETY: the kernel initialised exactly `n` events.
            unsafe { events.set_len(n as usize) };
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_reports_readable_and_writable() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        epoll.add(b.as_raw_fd(), EPOLLIN, 42).expect("add");
        let mut events = Vec::with_capacity(8);
        epoll.wait(&mut events, Some(Duration::from_millis(10))).expect("wait");
        assert!(events.is_empty(), "no data yet, no readiness");
        a.write_all(b"ping").expect("write");
        epoll.wait(&mut events, Some(Duration::from_millis(1000))).expect("wait");
        let ev = events.first().expect("readable event");
        let (bits, token) = (ev.events, ev.data);
        assert_eq!(token, 42);
        assert!(bits & EPOLLIN != 0, "EPOLLIN expected, got {bits:#x}");
        // Re-arm for writability: an idle socket's buffer has room.
        epoll.modify(b.as_raw_fd(), EPOLLOUT, 43).expect("modify");
        epoll.wait(&mut events, Some(Duration::from_millis(1000))).expect("wait");
        let ev = events.first().expect("writable event");
        let (bits, token) = (ev.events, ev.data);
        assert_eq!(token, 43);
        assert!(bits & EPOLLOUT != 0, "EPOLLOUT expected, got {bits:#x}");
        epoll.delete(b.as_raw_fd()).expect("delete");
        epoll.wait(&mut events, Some(Duration::from_millis(10))).expect("wait");
        assert!(events.is_empty(), "deregistered fd reports nothing");
    }
}

//! Server metrics: lock-free counters the serving tier maintains and the
//! wire form they travel in (`STATS` / `STATS_REPLY` frames, specified in
//! `docs/FORMAT.md` §2.5).
//!
//! [`ServerMetrics`] is the live registry — atomics shared by every handler
//! thread, the gateway scheduler and the decode workers. [`ServerStats`] is
//! a point-in-time snapshot of it, serializable to the `STATS_REPLY`
//! payload and parseable back by clients. Counters are cumulative since
//! server start; gauges (queue depth) reflect the moment of the snapshot.

use crate::protocol::ErrorCode;
use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets in the batch-width histogram: widths `1..WIDTH_BUCKETS-1` count
/// exactly, the last bucket collects everything `>= WIDTH_BUCKETS`.
pub const WIDTH_BUCKETS: usize = 16;

/// Buckets in each log2 latency histogram: bucket `0` counts samples of
/// `0 µs`, bucket `i >= 1` counts samples in `[2^(i-1), 2^i)` µs, and the
/// last bucket absorbs everything at or above `2^(LATENCY_BUCKETS-2)` µs
/// (~18 minutes) — wide enough that no serving-path latency saturates it.
pub const LATENCY_BUCKETS: usize = 32;

/// Highest error-code byte tracked per-code (the protocol's codes are
/// `1..=15` for the container class and `32..=38` for request/framing and
/// robustness reports; anything above lands in the last slot so a future
/// code is never silently dropped).
const MAX_ERROR_CODE: usize = 63;

/// The log2 bucket a microsecond sample lands in (see [`LATENCY_BUCKETS`]).
pub fn latency_bucket(us: u64) -> usize {
    ((u64::BITS - us.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// The inclusive upper bound (µs) of a log2 latency bucket — the value a
/// percentile read out of the histogram reports. The last bucket is
/// unbounded; it reports its lower bound.
pub fn latency_bucket_upper_us(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b if b >= LATENCY_BUCKETS - 1 => 1 << (LATENCY_BUCKETS - 2),
        b => (1 << b) - 1,
    }
}

/// Reads the `q`-quantile (`0.0..=1.0`) out of a log2 latency histogram:
/// the upper bound of the bucket holding the `ceil(q * N)`-th sample.
/// Returns `0` for an empty histogram. Conservative by construction — the
/// true quantile is never above the reported value's bucket.
pub fn latency_percentile_us(histogram: &[u64; LATENCY_BUCKETS], q: f64) -> u64 {
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (bucket, count) in histogram.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return latency_bucket_upper_us(bucket);
        }
    }
    latency_bucket_upper_us(LATENCY_BUCKETS - 1)
}

/// The live metrics registry of one [`EaszServer`](crate::EaszServer).
///
/// Every field is a relaxed atomic: metrics never synchronise anything,
/// they only have to be individually consistent and cheap on the hot path.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Containers received for decoding (via `DECODE` or `DECODE_BATCH`),
    /// counted after framing but before parsing.
    decode_requests: AtomicU64,
    /// `IMAGE` replies sent.
    decode_ok: AtomicU64,
    /// Per-container `ERROR` replies sent (codes `1..=15`).
    decode_err: AtomicU64,
    /// Fused forward groups issued — one count per `(model id, tier,
    /// geometry)` fusion group a batch or gateway window dispatched.
    batches_dispatched: AtomicU64,
    /// Containers decoded outside the gateway (gateway disabled, queue
    /// full, or shutdown in progress).
    inline_decodes: AtomicU64,
    /// Current gateway queue depth (gauge).
    queue_depth: AtomicU64,
    /// High-water gateway queue depth.
    queue_peak: AtomicU64,
    /// Total microseconds jobs spent queued before their window dispatched.
    queue_wait_us: AtomicU64,
    /// Total microseconds workers spent inside `decode_batch`.
    decode_us: AtomicU64,
    /// Log2 histogram of per-job queue wait (µs); see [`latency_bucket`].
    queue_wait_histo: [AtomicU64; LATENCY_BUCKETS],
    /// Log2 histogram of per-container decode time (µs) — each container's
    /// share of its fused forward group's wall time.
    decode_histo: [AtomicU64; LATENCY_BUCKETS],
    /// Log2 histogram of end-to-end service time (µs): request frame
    /// assembled to reply bytes written.
    service_histo: [AtomicU64; LATENCY_BUCKETS],
    /// Histogram of fused forward group widths (containers per shared
    /// model forward); bucket `i` counts width `i + 1`, the last bucket
    /// counts `>= WIDTH_BUCKETS`.
    batch_widths: [AtomicU64; WIDTH_BUCKETS],
    /// `ERROR` frames sent, by code byte (protocol-level codes included).
    errors: [AtomicU64; MAX_ERROR_CODE + 1],
    /// Connections currently being served (gauge).
    connections_active: AtomicU64,
    /// Connections accepted and served since start.
    connections_accepted: AtomicU64,
    /// Connections refused at accept (admission control: the connection
    /// table was full, or the socket could not be registered).
    connections_refused: AtomicU64,
    /// Well-framed decode requests shed with a `BUSY` error because the
    /// gateway queue was saturated and no inline fallback existed.
    requests_shed: AtomicU64,
    /// EWMA of the microseconds between consecutive gateway submissions
    /// (gauge; `0` = no estimate yet). Drives the adaptive batching window.
    arrival_ewma_us: AtomicU64,
    /// Decode panics caught at an isolation boundary (each answered with
    /// the `INTERNAL` error on its own request).
    panics_caught: AtomicU64,
    /// Gateway decode workers respawned by the supervisor after a panic
    /// poisoned them.
    worker_respawns: AtomicU64,
    /// Gateway jobs swept unstarted because their deadline expired (each
    /// answered with `DEADLINE_EXCEEDED`).
    deadlines_expired: AtomicU64,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self {
            decode_requests: AtomicU64::new(0),
            decode_ok: AtomicU64::new(0),
            decode_err: AtomicU64::new(0),
            batches_dispatched: AtomicU64::new(0),
            inline_decodes: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            queue_wait_us: AtomicU64::new(0),
            decode_us: AtomicU64::new(0),
            queue_wait_histo: std::array::from_fn(|_| AtomicU64::new(0)),
            decode_histo: std::array::from_fn(|_| AtomicU64::new(0)),
            service_histo: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_widths: std::array::from_fn(|_| AtomicU64::new(0)),
            errors: std::array::from_fn(|_| AtomicU64::new(0)),
            connections_active: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            connections_refused: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            arrival_ewma_us: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            deadlines_expired: AtomicU64::new(0),
        }
    }
}

impl ServerMetrics {
    /// Fresh, all-zero registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts `n` containers accepted for decoding.
    pub fn record_requests(&self, n: u64) {
        self.decode_requests.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one decode outcome at reply time (`true` = `IMAGE`).
    pub fn record_decode(&self, ok: bool) {
        if ok {
            self.decode_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.decode_err.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one `ERROR` frame by its code byte.
    pub fn record_error(&self, code: ErrorCode) {
        let idx = (code.value() as usize).min(MAX_ERROR_CODE);
        self.errors[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one container decoded outside the gateway.
    pub fn record_inline_decode(&self) {
        self.inline_decodes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a decode batch of `width` containers and the wall time its
    /// `decode_batch` call took.
    pub fn record_batch(&self, width: usize, decode_us: u64) {
        debug_assert!(width > 0, "empty batch recorded");
        let bucket = width.saturating_sub(1).min(WIDTH_BUCKETS - 1);
        self.batch_widths[bucket].fetch_add(1, Ordering::Relaxed);
        self.batches_dispatched.fetch_add(1, Ordering::Relaxed);
        self.decode_us.fetch_add(decode_us, Ordering::Relaxed);
    }

    /// Updates the queue-depth gauge (and its high-water mark).
    pub fn record_queue_depth(&self, depth: usize) {
        let depth = depth as u64;
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Adds one job's time-in-queue to the latency accumulator and its
    /// log2 histogram bucket.
    pub fn record_queue_wait(&self, wait_us: u64) {
        self.queue_wait_us.fetch_add(wait_us, Ordering::Relaxed);
        self.queue_wait_histo[latency_bucket(wait_us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one container's decode time (its share of the fused forward
    /// group's wall time) into the decode latency histogram.
    pub fn record_decode_sample(&self, decode_us: u64) {
        self.decode_histo[latency_bucket(decode_us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's end-to-end service time (frame assembled to
    /// reply written) into the service latency histogram.
    pub fn record_service(&self, service_us: u64) {
        self.service_histo[latency_bucket(service_us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one accepted connection entering service (gauge up).
    pub fn record_connection_open(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one served connection closing (gauge down).
    pub fn record_connection_close(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Counts one connection refused at accept by admission control.
    pub fn record_connection_refused(&self) {
        self.connections_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one decode request shed with a `BUSY` error.
    pub fn record_request_shed(&self) {
        self.requests_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the gateway's current inter-arrival EWMA (µs between
    /// submissions; `0` clears the estimate).
    pub fn record_arrival_ewma(&self, ewma_us: u64) {
        self.arrival_ewma_us.store(ewma_us, Ordering::Relaxed);
    }

    /// The published inter-arrival EWMA in µs (`0` = no estimate yet).
    pub fn arrival_ewma_us(&self) -> u64 {
        self.arrival_ewma_us.load(Ordering::Relaxed)
    }

    /// Counts one decode panic caught at an isolation boundary.
    pub fn record_panic_caught(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one gateway worker respawned after a panic poisoned it.
    pub fn record_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one gateway job swept unstarted past its deadline.
    pub fn record_deadline_expired(&self) {
        self.deadlines_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot for a `STATS_REPLY`.
    pub fn snapshot(&self) -> ServerStats {
        let mut widths = [0u64; WIDTH_BUCKETS];
        for (out, w) in widths.iter_mut().zip(&self.batch_widths) {
            *out = w.load(Ordering::Relaxed);
        }
        let load_histo = |h: &[AtomicU64; LATENCY_BUCKETS]| {
            let mut out = [0u64; LATENCY_BUCKETS];
            for (out, b) in out.iter_mut().zip(h) {
                *out = b.load(Ordering::Relaxed);
            }
            out
        };
        let errors: Vec<(u8, u64)> = self
            .errors
            .iter()
            .enumerate()
            .filter_map(|(code, count)| {
                let count = count.load(Ordering::Relaxed);
                (count > 0).then_some((code as u8, count))
            })
            .collect();
        ServerStats {
            decode_requests: self.decode_requests.load(Ordering::Relaxed),
            decode_ok: self.decode_ok.load(Ordering::Relaxed),
            decode_err: self.decode_err.load(Ordering::Relaxed),
            batches_dispatched: self.batches_dispatched.load(Ordering::Relaxed),
            inline_decodes: self.inline_decodes.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            queue_wait_us: self.queue_wait_us.load(Ordering::Relaxed),
            decode_us: self.decode_us.load(Ordering::Relaxed),
            batch_widths: widths,
            errors,
            queue_wait_histo: load_histo(&self.queue_wait_histo),
            decode_histo: load_histo(&self.decode_histo),
            service_histo: load_histo(&self.service_histo),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            arrival_ewma_us: self.arrival_ewma_us.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            deadlines_expired: self.deadlines_expired.load(Ordering::Relaxed),
        }
    }
}

/// Version byte leading a `STATS_REPLY` payload. Version 2 appended the
/// connection/admission block (five `u64`s) after the error entries;
/// version 3 appended the robustness block (three `u64`s: panics caught,
/// worker respawns, deadlines expired); version 4 appends the latency
/// block (a bucket-count byte followed by three [`LATENCY_BUCKETS`]-wide
/// log2 histograms: queue wait, decode, end-to-end service time). Every
/// version is a strict prefix of its successors; lower-version payloads
/// still parse, with the missing fields reported as `0`.
pub const STATS_PAYLOAD_VERSION: u8 = 4;

/// A point-in-time snapshot of a server's [`ServerMetrics`], as carried by
/// the `STATS_REPLY` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Containers received for decoding.
    pub decode_requests: u64,
    /// `IMAGE` replies sent.
    pub decode_ok: u64,
    /// Per-container `ERROR` replies sent.
    pub decode_err: u64,
    /// Fused forward groups issued (one per `(model id, tier, geometry)`
    /// fusion group dispatched).
    pub batches_dispatched: u64,
    /// Containers decoded outside the gateway.
    pub inline_decodes: u64,
    /// Gateway queue depth at snapshot time (gauge).
    pub queue_depth: u64,
    /// High-water gateway queue depth.
    pub queue_peak: u64,
    /// Total microseconds jobs waited in the gateway queue.
    pub queue_wait_us: u64,
    /// Total microseconds spent inside `decode_batch` calls.
    pub decode_us: u64,
    /// Fused-forward-group width histogram; bucket `i` counts groups of
    /// width `i + 1` containers, the last bucket counts `>= WIDTH_BUCKETS`.
    pub batch_widths: [u64; WIDTH_BUCKETS],
    /// `(error code byte, count)` for every code observed at least once,
    /// ascending by code.
    pub errors: Vec<(u8, u64)>,
    /// Connections being served at snapshot time (gauge; payload v2).
    pub connections_active: u64,
    /// Connections accepted since start (payload v2).
    pub connections_accepted: u64,
    /// Connections refused at accept by admission control (payload v2).
    pub connections_refused: u64,
    /// Decode requests shed with a `BUSY` error (payload v2).
    pub requests_shed: u64,
    /// Inter-arrival EWMA of gateway submissions in µs (gauge; `0` = no
    /// estimate yet; payload v2).
    pub arrival_ewma_us: u64,
    /// Decode panics caught at an isolation boundary (payload v3).
    pub panics_caught: u64,
    /// Gateway workers respawned by the supervisor (payload v3).
    pub worker_respawns: u64,
    /// Gateway jobs swept unstarted past their deadline (payload v3).
    pub deadlines_expired: u64,
    /// Log2 histogram of per-job gateway queue wait in µs (payload v4);
    /// bucket semantics in [`latency_bucket`].
    pub queue_wait_histo: [u64; LATENCY_BUCKETS],
    /// Log2 histogram of per-container decode time in µs (payload v4).
    pub decode_histo: [u64; LATENCY_BUCKETS],
    /// Log2 histogram of end-to-end service time in µs — request frame
    /// assembled to reply bytes written (payload v4).
    pub service_histo: [u64; LATENCY_BUCKETS],
}

impl ServerStats {
    /// Count of `ERROR` frames sent under `code` (0 if never).
    pub fn error_count(&self, code: ErrorCode) -> u64 {
        self.errors.iter().find(|(c, _)| *c == code.value()).map_or(0, |(_, n)| *n)
    }

    /// The `q`-quantile of queue wait in µs (see [`latency_percentile_us`]).
    pub fn queue_wait_percentile_us(&self, q: f64) -> u64 {
        latency_percentile_us(&self.queue_wait_histo, q)
    }

    /// The `q`-quantile of per-container decode time in µs.
    pub fn decode_percentile_us(&self, q: f64) -> u64 {
        latency_percentile_us(&self.decode_histo, q)
    }

    /// The `q`-quantile of end-to-end service time in µs.
    pub fn service_percentile_us(&self, q: f64) -> u64 {
        latency_percentile_us(&self.service_histo, q)
    }

    /// Serializes into a `STATS_REPLY` frame payload (layout in
    /// `docs/FORMAT.md` §2.5).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            1 + 9 * 8
                + 1
                + self.batch_widths.len() * 8
                + 1
                + self.errors.len() * 9
                + 8 * 8
                + 1
                + 3 * LATENCY_BUCKETS * 8,
        );
        out.push(STATS_PAYLOAD_VERSION);
        for v in [
            self.decode_requests,
            self.decode_ok,
            self.decode_err,
            self.batches_dispatched,
            self.inline_decodes,
            self.queue_depth,
            self.queue_peak,
            self.queue_wait_us,
            self.decode_us,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.push(self.batch_widths.len() as u8);
        for w in &self.batch_widths {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.push(self.errors.len() as u8);
        for (code, count) in &self.errors {
            out.push(*code);
            out.extend_from_slice(&count.to_le_bytes());
        }
        for v in [
            self.connections_active,
            self.connections_accepted,
            self.connections_refused,
            self.requests_shed,
            self.arrival_ewma_us,
            self.panics_caught,
            self.worker_respawns,
            self.deadlines_expired,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.push(LATENCY_BUCKETS as u8);
        for histo in [&self.queue_wait_histo, &self.decode_histo, &self.service_histo] {
            for b in histo {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        out
    }

    /// Parses a `STATS_REPLY` frame payload.
    ///
    /// # Errors
    ///
    /// A description of the malformation (unknown payload version, short or
    /// trailing bytes, oversized histogram).
    pub fn from_payload(payload: &[u8]) -> Result<Self, String> {
        let mut r = Reader { payload, pos: 0 };
        let version = r.u8()?;
        if version == 0 || version > STATS_PAYLOAD_VERSION {
            return Err(format!("unknown stats payload version {version}"));
        }
        let decode_requests = r.u64()?;
        let decode_ok = r.u64()?;
        let decode_err = r.u64()?;
        let batches_dispatched = r.u64()?;
        let inline_decodes = r.u64()?;
        let queue_depth = r.u64()?;
        let queue_peak = r.u64()?;
        let queue_wait_us = r.u64()?;
        let decode_us = r.u64()?;
        let n_widths = r.u8()? as usize;
        if n_widths != WIDTH_BUCKETS {
            return Err(format!(
                "stats histogram has {n_widths} buckets, expected {WIDTH_BUCKETS}"
            ));
        }
        let mut batch_widths = [0u64; WIDTH_BUCKETS];
        for w in &mut batch_widths {
            *w = r.u64()?;
        }
        let n_errors = r.u8()? as usize;
        let mut errors = Vec::with_capacity(n_errors);
        for _ in 0..n_errors {
            let code = r.u8()?;
            errors.push((code, r.u64()?));
        }
        let (connections_active, connections_accepted, connections_refused) =
            if version >= 2 { (r.u64()?, r.u64()?, r.u64()?) } else { (0, 0, 0) };
        let (requests_shed, arrival_ewma_us) =
            if version >= 2 { (r.u64()?, r.u64()?) } else { (0, 0) };
        let (panics_caught, worker_respawns, deadlines_expired) =
            if version >= 3 { (r.u64()?, r.u64()?, r.u64()?) } else { (0, 0, 0) };
        let mut queue_wait_histo = [0u64; LATENCY_BUCKETS];
        let mut decode_histo = [0u64; LATENCY_BUCKETS];
        let mut service_histo = [0u64; LATENCY_BUCKETS];
        if version >= 4 {
            let n_latency = r.u8()? as usize;
            if n_latency != LATENCY_BUCKETS {
                return Err(format!(
                    "stats latency histograms have {n_latency} buckets, expected {LATENCY_BUCKETS}"
                ));
            }
            for histo in [&mut queue_wait_histo, &mut decode_histo, &mut service_histo] {
                for b in histo.iter_mut() {
                    *b = r.u64()?;
                }
            }
        }
        if r.pos != payload.len() {
            return Err(format!(
                "{} trailing bytes after the stats payload",
                payload.len() - r.pos
            ));
        }
        Ok(Self {
            decode_requests,
            decode_ok,
            decode_err,
            batches_dispatched,
            inline_decodes,
            queue_depth,
            queue_peak,
            queue_wait_us,
            decode_us,
            batch_widths,
            errors,
            connections_active,
            connections_accepted,
            connections_refused,
            requests_shed,
            arrival_ewma_us,
            panics_caught,
            worker_respawns,
            deadlines_expired,
            queue_wait_histo,
            decode_histo,
            service_histo,
        })
    }
}

/// Cursor over a stats payload with typed, bounds-checked reads.
struct Reader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> Result<u8, String> {
        let b = *self
            .payload
            .get(self.pos)
            .ok_or_else(|| format!("stats payload truncated at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let end = self.pos + 8;
        let bytes = self
            .payload
            .get(self.pos..end)
            .ok_or_else(|| format!("stats payload truncated at byte {}", self.pos))?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_payload_round_trips() {
        let m = ServerMetrics::new();
        m.record_requests(5);
        m.record_decode(true);
        m.record_decode(true);
        m.record_decode(false);
        m.record_error(ErrorCode::BadMagic);
        m.record_error(ErrorCode::BadMagic);
        m.record_error(ErrorCode::Protocol);
        m.record_batch(3, 1500);
        m.record_batch(1, 200);
        m.record_batch(WIDTH_BUCKETS + 10, 9000); // overflow bucket
        m.record_inline_decode();
        m.record_queue_depth(4);
        m.record_queue_depth(2);
        m.record_queue_wait(750);
        m.record_decode_sample(1500);
        m.record_service(2500);
        m.record_connection_open();
        m.record_connection_open();
        m.record_connection_close();
        m.record_connection_refused();
        m.record_request_shed();
        m.record_arrival_ewma(1234);
        m.record_panic_caught();
        m.record_panic_caught();
        m.record_worker_respawn();
        m.record_deadline_expired();
        let stats = m.snapshot();
        assert_eq!(stats.decode_requests, 5);
        assert_eq!((stats.decode_ok, stats.decode_err), (2, 1));
        assert_eq!(stats.error_count(ErrorCode::BadMagic), 2);
        assert_eq!(stats.error_count(ErrorCode::Protocol), 1);
        assert_eq!(stats.error_count(ErrorCode::Oversize), 0);
        assert_eq!(stats.batches_dispatched, 3);
        assert_eq!(stats.batch_widths[0], 1);
        assert_eq!(stats.batch_widths[2], 1);
        assert_eq!(stats.batch_widths[WIDTH_BUCKETS - 1], 1);
        assert_eq!(stats.decode_us, 10700);
        assert_eq!(stats.inline_decodes, 1);
        assert_eq!((stats.queue_depth, stats.queue_peak), (2, 4));
        assert_eq!(stats.queue_wait_us, 750);
        assert_eq!((stats.connections_active, stats.connections_accepted), (1, 2));
        assert_eq!((stats.connections_refused, stats.requests_shed), (1, 1));
        assert_eq!(stats.arrival_ewma_us, 1234);
        assert_eq!(stats.panics_caught, 2);
        assert_eq!((stats.worker_respawns, stats.deadlines_expired), (1, 1));
        assert_eq!(stats.queue_wait_histo[latency_bucket(750)], 1);
        assert_eq!(stats.decode_histo[latency_bucket(1500)], 1);
        assert_eq!(stats.service_histo[latency_bucket(2500)], 1);
        let back = ServerStats::from_payload(&stats.to_payload()).expect("parse");
        assert_eq!(back, stats);
    }

    /// The v4 latency block in bytes: bucket-count byte + three histograms.
    const V4_BLOCK: usize = 1 + 3 * LATENCY_BUCKETS * 8;

    #[test]
    fn stats_payload_v1_still_parses() {
        let m = ServerMetrics::new();
        m.record_requests(3);
        m.record_connection_open();
        m.record_request_shed();
        let stats = m.snapshot();
        let mut v1 = stats.to_payload();
        // Strip the v2 connection, v3 robustness and v4 latency blocks.
        v1.truncate(v1.len() - 8 * 8 - V4_BLOCK);
        v1[0] = 1;
        let back = ServerStats::from_payload(&v1).expect("v1 payload parses");
        assert_eq!(back.decode_requests, 3);
        assert_eq!(back.connections_active, 0, "v1 has no connection block");
        assert_eq!(back.requests_shed, 0);
        assert_eq!(back.panics_caught, 0);
    }

    #[test]
    fn stats_payload_v2_still_parses() {
        let m = ServerMetrics::new();
        m.record_requests(4);
        m.record_connection_open();
        m.record_request_shed();
        m.record_panic_caught();
        m.record_deadline_expired();
        let stats = m.snapshot();
        let mut v2 = stats.to_payload();
        v2.truncate(v2.len() - 3 * 8 - V4_BLOCK); // strip the v3 + v4 blocks
        v2[0] = 2;
        let back = ServerStats::from_payload(&v2).expect("v2 payload parses");
        assert_eq!(back.decode_requests, 4);
        assert_eq!(back.connections_accepted, 1, "v2 keeps its connection block");
        assert_eq!(back.requests_shed, 1);
        assert_eq!(back.panics_caught, 0, "v2 has no robustness block");
        assert_eq!((back.worker_respawns, back.deadlines_expired), (0, 0));
    }

    #[test]
    fn stats_payload_v3_still_parses() {
        let m = ServerMetrics::new();
        m.record_requests(6);
        m.record_panic_caught();
        m.record_queue_wait(900);
        m.record_service(1800);
        let stats = m.snapshot();
        let mut v3 = stats.to_payload();
        v3.truncate(v3.len() - V4_BLOCK); // strip the v4 latency block
        v3[0] = 3;
        let back = ServerStats::from_payload(&v3).expect("v3 payload parses");
        assert_eq!(back.decode_requests, 6);
        assert_eq!(back.panics_caught, 1, "v3 keeps its robustness block");
        assert_eq!(back.queue_wait_us, 900, "the v1 sum accumulator survives");
        assert_eq!(back.queue_wait_histo, [0; LATENCY_BUCKETS], "v3 has no latency block");
        assert_eq!(back.service_histo, [0; LATENCY_BUCKETS]);
    }

    #[test]
    fn stats_payload_rejects_malformations() {
        let payload = ServerMetrics::new().snapshot().to_payload();
        assert!(ServerStats::from_payload(&payload[..payload.len() - 1]).is_err(), "truncated");
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(ServerStats::from_payload(&trailing).is_err(), "trailing byte");
        let mut bad_version = payload.clone();
        bad_version[0] = 9;
        assert!(ServerStats::from_payload(&bad_version).is_err(), "unknown version");
        let mut bad_buckets = payload.clone();
        bad_buckets[1 + 9 * 8] = 3;
        assert!(ServerStats::from_payload(&bad_buckets).is_err(), "bucket count");
        let mut bad_latency = payload;
        let count_at = bad_latency.len() - V4_BLOCK;
        bad_latency[count_at] = 7;
        assert!(ServerStats::from_payload(&bad_latency).is_err(), "latency bucket count");
    }

    #[test]
    fn latency_buckets_split_exactly_at_powers_of_two() {
        // Bucket 0 is the zero bucket; bucket i >= 1 holds [2^(i-1), 2^i).
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 1);
        for i in 1..LATENCY_BUCKETS - 2 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(latency_bucket(lo), i, "lower boundary of bucket {i}");
            assert_eq!(latency_bucket(hi), i, "upper boundary of bucket {i}");
            assert_eq!(latency_bucket(hi + 1), i + 1, "first sample past bucket {i}");
            assert_eq!(latency_bucket_upper_us(i), hi);
        }
        // Everything at or past 2^(LATENCY_BUCKETS-2) lands in the last
        // bucket, including u64::MAX.
        let last_lo = 1u64 << (LATENCY_BUCKETS - 2);
        assert_eq!(latency_bucket(last_lo), LATENCY_BUCKETS - 1);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(latency_bucket_upper_us(LATENCY_BUCKETS - 1), last_lo);
        assert_eq!(latency_bucket_upper_us(0), 0);
    }

    #[test]
    fn latency_percentiles_read_the_right_buckets() {
        let mut h = [0u64; LATENCY_BUCKETS];
        assert_eq!(latency_percentile_us(&h, 0.5), 0, "empty histogram reads 0");
        // 90 samples in [256, 512), 9 in [4096, 8192), 1 in [65536, 131072).
        h[latency_bucket(300)] = 90;
        h[latency_bucket(5000)] = 9;
        h[latency_bucket(100_000)] = 1;
        assert_eq!(latency_percentile_us(&h, 0.50), 511);
        assert_eq!(latency_percentile_us(&h, 0.90), 511);
        assert_eq!(latency_percentile_us(&h, 0.99), 8191);
        assert_eq!(latency_percentile_us(&h, 0.999), 131_071);
        assert_eq!(latency_percentile_us(&h, 1.0), 131_071);
        // A single sample answers every quantile with its own bucket.
        let mut one = [0u64; LATENCY_BUCKETS];
        one[latency_bucket(42)] = 1;
        assert_eq!(latency_percentile_us(&one, 0.01), 63);
        assert_eq!(latency_percentile_us(&one, 0.999), 63);
    }
}

//! Blocking client for the `easz` decode protocol — the edge side of the
//! wire, or any consumer that wants decoded frames back from a server.

use crate::metrics::ServerStats;
use crate::protocol::{self, EngineTier, ErrorCode, WireError};
use crate::trace::TraceReport;
use easz_image::ImageU8;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Capped exponential backoff with seeded jitter — the client half of the
/// server's failure model (`BUSY` is an explicit "retry later, with
/// backoff").
///
/// The policy drives two retry sites, both idempotent by construction:
/// connect attempts ([`EaszClient::connect_with`]) and single-container
/// decode requests answered with `BUSY` or a dead socket
/// ([`EaszClient::decode`] / [`EaszClient::decode_tiered`] on a client
/// built [`with_retry`](EaszClient::with_retry)). Batch requests are never
/// retried automatically: a batch interrupted mid-reply has delivered
/// partial results the caller may have acted on.
///
/// Delays are a pure function of `(policy, attempt)` — the jitter comes
/// from a seeded xorshift, not the clock — so tests replay schedules
/// exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (`0` = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_delay: Duration,
    /// Ceiling on any single backoff delay (pre-jitter).
    pub max_delay: Duration,
    /// Seed for the jitter stream: each delay is scaled into
    /// `[50%, 100%]` of its exponential value by a deterministic draw.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The no-retry policy: every failure is final. This is what
    /// [`EaszClient::connect`] and [`EaszClient::from_stream`] start with,
    /// keeping the fail-fast behaviour unless a policy is opted into.
    pub fn none() -> Self {
        Self { max_retries: 0, ..Self::default() }
    }

    /// The backoff before retry `attempt` (0-based): `base_delay * 2^n`
    /// capped at `max_delay`, then jittered into `[50%, 100%]` by a draw
    /// seeded from `(jitter_seed, attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt.min(31)).unwrap_or(u32::MAX))
            .min(self.max_delay);
        let capped_us = exp.as_micros().min(u64::MAX as u128) as u64;
        // Split-mix then xorshift, as everywhere else in this workspace.
        let mut x = self
            .jitter_seed
            .wrapping_add(u64::from(attempt) + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x0123_4567_89AB_CDEF)
            | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let half = capped_us / 2;
        Duration::from_micros(half + x % (capped_us - half + 1))
    }
}

/// Writes one frame, surviving the partial-progress failure modes a
/// backpressured or nonblocking-reactor peer exposes: short writes keep
/// going from where they left off, `Interrupted` (EINTR) retries
/// immediately, and `WouldBlock`/`TimedOut` — a socket send timeout firing
/// mid-frame while the server's reply buffer backs up — retries after a
/// short yield instead of abandoning the stream mid-frame (which would
/// desynchronise the framing for every later request).
///
/// `std::io::Write::write_all` already covers short writes and EINTR, but
/// treats `WouldBlock`/`TimedOut` as fatal — and a frame abandoned halfway
/// is unrecoverable for a length-prefixed protocol.
fn write_frame_resilient(w: &mut impl Write, frame_type: u8, payload: &[u8]) -> io::Result<()> {
    let frame = protocol::frame_bytes(frame_type, payload);
    let mut sent = 0;
    while sent < frame.len() {
        match w.write(&frame[sent..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting frame bytes",
                ))
            }
            Ok(n) => sent += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                // The peer is applying backpressure; pause briefly and
                // resume from the same offset.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    loop {
        match w.flush() {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Failure of a client call.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (including the server closing mid-reply).
    Io(io::Error),
    /// The server answered the *whole request* with a typed error frame.
    /// Per-container errors inside a batch are returned inline instead.
    Remote(WireError),
    /// The server sent a reply this client cannot interpret.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport: {e}"),
            Self::Remote(e) => write!(f, "server error: {e}"),
            Self::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Remote(e) => Some(e),
            Self::Protocol(_) => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<protocol::FrameReadError> for ClientError {
    fn from(e: protocol::FrameReadError) -> Self {
        match e {
            protocol::FrameReadError::Io(e) => Self::Io(e),
            oversize @ protocol::FrameReadError::Oversize { .. } => {
                Self::Protocol(oversize.to_string())
            }
        }
    }
}

/// A blocking connection to an [`EaszServer`](crate::EaszServer).
///
/// One request is in flight at a time; replies arrive in request order, so
/// the client never needs correlation ids.
#[derive(Debug)]
pub struct EaszClient {
    stream: TcpStream,
    max_reply_len: usize,
    /// Set when the reply stream desynchronises (an over-limit reply whose
    /// payload was never consumed): every later request would read pixel
    /// bytes as frame headers, so the client refuses instead.
    poisoned: bool,
    /// Backoff applied to `BUSY` replies and dead-socket resends on
    /// idempotent requests; [`RetryPolicy::none`] unless opted into.
    retry: RetryPolicy,
    /// The peer we connected to, kept so a retry can re-dial after the
    /// server dropped the connection (e.g. an admission-control `BUSY`
    /// that closes, or a crashed-and-restarted server).
    addr: Option<SocketAddr>,
}

impl EaszClient {
    /// Connects to a decode server. Fails fast; see
    /// [`connect_with`](Self::connect_with) for retrying connects.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self::from_stream(TcpStream::connect(addr)?))
    }

    /// Connects with retry: connection failures back off per `policy`
    /// until an attempt succeeds or the retry budget is spent. The
    /// returned client keeps the policy, so `BUSY` replies and dead
    /// sockets on idempotent requests retry with the same backoff.
    ///
    /// # Errors
    ///
    /// The final attempt's connection failure once `policy.max_retries`
    /// retries are exhausted.
    pub fn connect_with(addr: impl ToSocketAddrs, policy: RetryPolicy) -> io::Result<Self> {
        let mut attempt = 0;
        let stream = loop {
            match TcpStream::connect(&addr) {
                Ok(stream) => break stream,
                Err(e) => {
                    if attempt >= policy.max_retries {
                        return Err(e);
                    }
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                }
            }
        };
        Ok(Self::from_stream(stream).with_retry(policy))
    }

    /// Wraps an already-connected stream (e.g. for tests driving both
    /// halves over a loopback pair).
    pub fn from_stream(stream: TcpStream) -> Self {
        let addr = stream.peer_addr().ok();
        Self { stream, max_reply_len: 256 << 20, poisoned: false, retry: RetryPolicy::none(), addr }
    }

    /// Sets the retry policy for subsequent idempotent requests
    /// ([`decode`](Self::decode) and [`decode_tiered`](Self::decode_tiered)):
    /// `BUSY` replies and dead-socket transport failures are retried with
    /// the policy's backoff, re-dialing the peer when the connection died.
    /// Batch requests never retry automatically (partial replies may
    /// already have been delivered).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Caps the reply payload size this client will accept. The default of
    /// 256 MiB clears the largest reply a conforming server can send: the
    /// container bounds canvases to `easz_codecs::MAX_PIXELS` (2^26), so an
    /// `IMAGE` payload is at most `3 * 2^26 + 9` bytes ≈ 201 MiB.
    pub fn with_max_reply_len(mut self, max_reply_len: usize) -> Self {
        self.max_reply_len = max_reply_len;
        self
    }

    /// Round-trips a `PING`, returning the server's protocol version.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures; see [`ClientError`].
    pub fn ping(&mut self) -> Result<u8, ClientError> {
        self.ensure_usable()?;
        write_frame_resilient(&mut self.stream, protocol::PING, &[protocol::PROTOCOL_VERSION])?;
        let (frame_type, payload) = self.read_reply()?;
        match frame_type {
            protocol::PONG if payload.len() == 1 => Ok(payload[0]),
            protocol::PONG => {
                Err(ClientError::Protocol(format!("pong payload of {} bytes", payload.len())))
            }
            other => Err(self.unexpected(other, &payload)),
        }
    }

    /// Round-trips a `STATS` request, returning the server's metrics
    /// snapshot (counters since server start; see
    /// [`ServerStats`]).
    ///
    /// # Errors
    ///
    /// Transport and protocol failures; see [`ClientError`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        self.ensure_usable()?;
        write_frame_resilient(&mut self.stream, protocol::STATS, &[])?;
        let (frame_type, payload) = self.read_reply()?;
        match frame_type {
            protocol::STATS_REPLY => {
                ServerStats::from_payload(&payload).map_err(ClientError::Protocol)
            }
            other => Err(self.unexpected(other, &payload)),
        }
    }

    /// Round-trips a `TRACE` request, draining the server's recent trace
    /// spans, slow-request log and decode-stage accumulators (see
    /// [`TraceReport`]). A server running with tracing disabled answers
    /// with a valid empty report, so callers need no capability probe.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures; see [`ClientError`].
    pub fn trace(&mut self) -> Result<TraceReport, ClientError> {
        self.ensure_usable()?;
        write_frame_resilient(&mut self.stream, protocol::TRACE, &[])?;
        let (frame_type, payload) = self.read_reply()?;
        match frame_type {
            protocol::TRACE_REPLY => {
                TraceReport::from_payload(&payload).map_err(ClientError::Protocol)
            }
            other => Err(self.unexpected(other, &payload)),
        }
    }

    /// Sends one serialized `.easz` container and returns the decoded
    /// image.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] carrying the server's typed error frame for
    /// undecodable containers, otherwise transport/protocol failures.
    /// Under a [`with_retry`](Self::with_retry) policy, `BUSY` replies and
    /// dead-socket failures are retried with backoff first.
    pub fn decode(&mut self, container: &[u8]) -> Result<ImageU8, ClientError> {
        self.image_request_with_retry(protocol::DECODE, container)
    }

    /// As [`decode`](Self::decode), but names the engine tier explicitly
    /// (`DECODE_TIERED`), overriding the container's standing preference:
    /// [`EngineTier::QuantizedInt8`] requests the fast ε/PSNR-bounded
    /// decode, [`EngineTier::Reference`] forces the bit-exact f32 one.
    ///
    /// # Errors
    ///
    /// As [`decode`](Self::decode); additionally, a server predating the
    /// tiered frames answers with `UNKNOWN_FRAME` and closes.
    pub fn decode_tiered(
        &mut self,
        container: &[u8],
        tier: EngineTier,
    ) -> Result<ImageU8, ClientError> {
        let mut payload = Vec::with_capacity(1 + container.len());
        payload.push(tier.wire_byte());
        payload.extend_from_slice(container);
        self.image_request_with_retry(protocol::DECODE_TIERED, &payload)
    }

    /// One request/reply round expecting an `IMAGE` back, wrapped in the
    /// client's [`RetryPolicy`]: `BUSY` replies back off and resend, dead
    /// sockets re-dial the remembered peer address and resend. Safe only
    /// because a single-container decode is idempotent — the server holds
    /// no state for it and the reply is a pure function of the payload.
    fn image_request_with_retry(
        &mut self,
        frame: u8,
        payload: &[u8],
    ) -> Result<ImageU8, ClientError> {
        let mut attempt = 0;
        loop {
            match self.image_request_once(frame, payload) {
                Err(e) if attempt < self.retry.max_retries && Self::retryable(&e) => {
                    std::thread::sleep(self.retry.delay(attempt));
                    attempt += 1;
                    if matches!(e, ClientError::Io(_)) {
                        // The socket is gone; a failed re-dial leaves the
                        // dead stream in place, so the next attempt fails
                        // fast and keeps consuming the retry budget.
                        let _ = self.reconnect();
                    }
                }
                other => return other,
            }
        }
    }

    fn image_request_once(&mut self, frame: u8, payload: &[u8]) -> Result<ImageU8, ClientError> {
        self.ensure_usable()?;
        write_frame_resilient(&mut self.stream, frame, payload)?;
        let (frame_type, payload) = self.read_reply()?;
        match frame_type {
            protocol::IMAGE => protocol::decode_image(&payload).map_err(ClientError::Protocol),
            other => Err(self.unexpected(other, &payload)),
        }
    }

    /// The failures the server's failure model declares retryable: an
    /// explicit `BUSY` shed, or transport errors that mean the connection
    /// died cleanly between requests (so the request provably never
    /// produced a reply this client consumed).
    fn retryable(e: &ClientError) -> bool {
        match e {
            ClientError::Remote(err) => err.code == ErrorCode::Busy,
            ClientError::Io(io) => matches!(
                io.kind(),
                io::ErrorKind::BrokenPipe
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::UnexpectedEof
            ),
            ClientError::Protocol(_) => false,
        }
    }

    /// Re-dials the peer recorded at connect time, replacing the dead
    /// stream and clearing the poison flag (the new connection's framing
    /// starts clean).
    fn reconnect(&mut self) -> io::Result<()> {
        let addr = self.addr.ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "peer address unknown; cannot re-dial")
        })?;
        self.stream = TcpStream::connect(addr)?;
        self.poisoned = false;
        Ok(())
    }

    /// Sends a batch of serialized containers in one frame and collects one
    /// result per container, in order. Server-side, containers sharing a
    /// mask share a single transformer forward — this is the cheap way to
    /// decode many streams.
    ///
    /// # Errors
    ///
    /// The outer `Result` fails only for whole-request problems (transport,
    /// an over-limit batch, protocol violations); per-container decode
    /// failures come back inline as [`WireError`]s.
    pub fn decode_batch(
        &mut self,
        containers: &[&[u8]],
    ) -> Result<Vec<Result<ImageU8, WireError>>, ClientError> {
        self.decode_batch_frame(protocol::DECODE_BATCH, None, containers)
    }

    /// As [`decode_batch`](Self::decode_batch), but decodes every container
    /// in the batch on the named engine tier (`DECODE_BATCH_TIERED`),
    /// overriding each container's standing preference.
    ///
    /// # Errors
    ///
    /// As [`decode_batch`](Self::decode_batch); additionally, a server
    /// predating the tiered frames answers with `UNKNOWN_FRAME` and closes.
    pub fn decode_batch_tiered(
        &mut self,
        containers: &[&[u8]],
        tier: EngineTier,
    ) -> Result<Vec<Result<ImageU8, WireError>>, ClientError> {
        self.decode_batch_frame(protocol::DECODE_BATCH_TIERED, Some(tier), containers)
    }

    fn decode_batch_frame(
        &mut self,
        frame: u8,
        tier: Option<EngineTier>,
        containers: &[&[u8]],
    ) -> Result<Vec<Result<ImageU8, WireError>>, ClientError> {
        self.ensure_usable()?;
        let batch = protocol::encode_batch(containers);
        let payload = match tier {
            None => batch,
            Some(tier) => {
                let mut tiered = Vec::with_capacity(1 + batch.len());
                tiered.push(tier.wire_byte());
                tiered.extend_from_slice(&batch);
                tiered
            }
        };
        write_frame_resilient(&mut self.stream, frame, &payload)?;
        let mut results = Vec::with_capacity(containers.len());
        while results.len() < containers.len() {
            let (frame_type, payload) = self.read_reply()?;
            match frame_type {
                protocol::IMAGE => {
                    // An unparseable image is a protocol bug, not a remote
                    // decode failure; abort the whole call.
                    let img = protocol::decode_image(&payload).map_err(ClientError::Protocol)?;
                    results.push(Ok(img));
                }
                protocol::ERROR => {
                    let err = WireError::from_payload(&payload).map_err(ClientError::Protocol)?;
                    // Per-container codes occupy a reply position: the
                    // container class (1..=15), UNKNOWN_MODEL (36), a shed
                    // slot (BUSY, 35), and the robustness pair INTERNAL
                    // (37) / DEADLINE_EXCEEDED (38). Only envelope
                    // failures — PROTOCOL, OVERSIZE, UNKNOWN_FRAME — abort
                    // the whole call with a single frame.
                    if matches!(
                        err.code,
                        ErrorCode::Protocol | ErrorCode::Oversize | ErrorCode::UnknownFrame
                    ) {
                        return Err(ClientError::Remote(err));
                    }
                    results.push(Err(err));
                }
                other => return Err(self.unexpected(other, &payload)),
            }
        }
        Ok(results)
    }

    /// Fails fast once the connection is poisoned (checked before every
    /// request so not even the request frame is written).
    fn ensure_usable(&self) -> Result<(), ClientError> {
        if self.poisoned {
            return Err(ClientError::Protocol(
                "connection poisoned by an earlier over-limit reply; reconnect".into(),
            ));
        }
        Ok(())
    }

    fn read_reply(&mut self) -> Result<(u8, Vec<u8>), ClientError> {
        match protocol::read_frame(&mut self.stream, self.max_reply_len) {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ))),
            Err(oversize @ protocol::FrameReadError::Oversize { .. }) => {
                // The announced payload was not consumed, so the stream can
                // never be re-synchronised: poison this client (mirroring
                // the server, which closes on its framing violations).
                self.poisoned = true;
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                Err(ClientError::Protocol(oversize.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Folds a reply that does not match the request into the right error:
    /// error frames become [`ClientError::Remote`], anything else is a
    /// protocol violation.
    fn unexpected(&self, frame_type: u8, payload: &[u8]) -> ClientError {
        if frame_type == protocol::ERROR {
            match WireError::from_payload(payload) {
                Ok(err) => ClientError::Remote(err),
                Err(m) => ClientError::Protocol(m),
            }
        } else {
            ClientError::Protocol(format!("unexpected reply frame 0x{frame_type:02x}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that takes one byte at a time and fails with a scripted
    /// error before each accepted byte — the worst-case flaky peer.
    struct FlakyWriter {
        written: Vec<u8>,
        /// One entry per upcoming `write` call: `Some(kind)` fails, `None`
        /// accepts a single byte. Exhausted script = accept.
        script: Vec<Option<io::ErrorKind>>,
        flushes: usize,
    }

    impl Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match if self.script.is_empty() { None } else { Some(self.script.remove(0)) } {
                Some(Some(kind)) => Err(io::Error::new(kind, "scripted failure")),
                _ => {
                    self.written.push(buf[0]);
                    Ok(1)
                }
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            self.flushes += 1;
            Ok(())
        }
    }

    #[test]
    fn resilient_writer_survives_eintr_and_wouldblock_mid_frame() {
        use io::ErrorKind::{Interrupted, TimedOut, WouldBlock};
        let mut w = FlakyWriter {
            written: Vec::new(),
            // Interrupt before the header, stall twice inside the payload,
            // time out once near the end: every byte must still land, in
            // order, exactly once.
            script: vec![
                Some(Interrupted),
                None,
                None,
                Some(WouldBlock),
                None,
                None,
                None,
                Some(WouldBlock),
                Some(TimedOut),
                None,
            ],
            flushes: 0,
        };
        write_frame_resilient(&mut w, protocol::DECODE, b"abcdef").expect("resilient write");
        assert_eq!(w.written, protocol::frame_bytes(protocol::DECODE, b"abcdef"));
        assert_eq!(w.flushes, 1);
    }

    #[test]
    fn resilient_writer_reports_write_zero_and_real_errors() {
        struct Zero;
        impl Write for Zero {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_frame_resilient(&mut Zero, protocol::PING, &[1]).expect_err("write zero");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);

        let mut broken = FlakyWriter {
            written: Vec::new(),
            script: vec![None, Some(io::ErrorKind::BrokenPipe)],
            flushes: 0,
        };
        let err =
            write_frame_resilient(&mut broken, protocol::PING, &[1]).expect_err("broken pipe");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn retry_policy_delays_are_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            jitter_seed: 42,
        };
        // Deterministic: the same (policy, attempt) always yields the same
        // delay, and a different seed yields a different schedule.
        let schedule: Vec<Duration> = (0..8).map(|n| policy.delay(n)).collect();
        assert_eq!(schedule, (0..8).map(|n| policy.delay(n)).collect::<Vec<_>>());
        let reseeded = RetryPolicy { jitter_seed: 43, ..policy.clone() };
        assert_ne!(schedule, (0..8).map(|n| reseeded.delay(n)).collect::<Vec<_>>());
        // Jitter bounds: each delay lands in [50%, 100%] of the capped
        // exponential value.
        for (n, d) in schedule.iter().enumerate() {
            let exp =
                (Duration::from_millis(10) * (1 << n.min(3)) as u32).min(Duration::from_millis(80));
            assert!(
                *d >= exp / 2 && *d <= exp,
                "attempt {n}: {d:?} outside [{:?}, {exp:?}]",
                exp / 2
            );
        }
        // Huge attempt numbers must not overflow, and stay within the cap.
        assert!(policy.delay(u32::MAX) <= Duration::from_millis(80));
    }

    /// A scripted peer: binds a listener and runs `serve` on a thread,
    /// returning the address and the join handle.
    fn scripted_server(
        serve: impl FnOnce(std::net::TcpListener) + Send + 'static,
    ) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        (addr, std::thread::spawn(move || serve(listener)))
    }

    fn tiny_image_payload() -> (ImageU8, Vec<u8>) {
        let img = ImageU8::from_vec(2, 1, easz_image::Channels::Gray, vec![7, 250]);
        let payload = protocol::encode_image(&img);
        (img, payload)
    }

    #[test]
    fn busy_replies_are_retried_with_backoff_until_the_shed_clears() {
        let (img, image_payload) = tiny_image_payload();
        let (addr, server) = scripted_server(move |listener| {
            let (mut conn, _) = listener.accept().expect("accept");
            // Shed the first two sends, then serve the third.
            for _ in 0..2 {
                let (frame, _) =
                    protocol::read_frame(&mut conn, 1 << 20).expect("read").expect("open");
                assert_eq!(frame, protocol::DECODE);
                let busy = WireError { code: ErrorCode::Busy, message: "shed".into() };
                protocol::write_frame(&mut conn, protocol::ERROR, &busy.to_payload())
                    .expect("busy frame");
            }
            let (frame, _) = protocol::read_frame(&mut conn, 1 << 20).expect("read").expect("open");
            assert_eq!(frame, protocol::DECODE);
            protocol::write_frame(&mut conn, protocol::IMAGE, &image_payload).expect("image frame");
        });
        let policy = RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            jitter_seed: 7,
        };
        let mut client = EaszClient::connect_with(addr, policy).expect("connect");
        let restored = client.decode(b"container-bytes").expect("decode after retries");
        assert_eq!(restored, img);
        server.join().expect("server thread");
    }

    #[test]
    fn busy_replies_without_a_policy_fail_fast() {
        let (addr, server) = scripted_server(|listener| {
            let (mut conn, _) = listener.accept().expect("accept");
            let _ = protocol::read_frame(&mut conn, 1 << 20).expect("read").expect("open");
            let busy = WireError { code: ErrorCode::Busy, message: "shed".into() };
            protocol::write_frame(&mut conn, protocol::ERROR, &busy.to_payload())
                .expect("busy frame");
        });
        let mut client = EaszClient::connect(addr).expect("connect");
        match client.decode(b"container-bytes") {
            Err(ClientError::Remote(err)) => assert_eq!(err.code, ErrorCode::Busy),
            other => panic!("expected fail-fast BUSY, got {other:?}"),
        }
        server.join().expect("server thread");
    }

    #[test]
    fn dead_socket_resend_re_dials_the_peer() {
        let (img, image_payload) = tiny_image_payload();
        let (addr, server) = scripted_server(move |listener| {
            // First connection: take the request, close without replying —
            // the crashed-server case.
            let (mut conn, _) = listener.accept().expect("accept 1");
            let _ = protocol::read_frame(&mut conn, 1 << 20).expect("read").expect("open");
            drop(conn);
            // Second connection: the re-dialed client resends; serve it.
            let (mut conn, _) = listener.accept().expect("accept 2");
            let (frame, _) = protocol::read_frame(&mut conn, 1 << 20).expect("read").expect("open");
            assert_eq!(frame, protocol::DECODE);
            protocol::write_frame(&mut conn, protocol::IMAGE, &image_payload).expect("image frame");
        });
        let policy = RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            jitter_seed: 11,
        };
        let mut client = EaszClient::connect_with(addr, policy).expect("connect");
        let restored = client.decode(b"container-bytes").expect("decode after re-dial");
        assert_eq!(restored, img);
        server.join().expect("server thread");
    }

    #[test]
    fn connect_with_retries_until_the_listener_appears() {
        // Reserve a port, free it, and only re-bind after the client has
        // started retrying against the closed port.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve");
        let addr = listener.local_addr().expect("local addr");
        drop(listener);
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let listener = std::net::TcpListener::bind(addr).expect("re-bind");
            let _conn = listener.accept().expect("accept");
        });
        let policy = RetryPolicy {
            max_retries: 200,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
            jitter_seed: 3,
        };
        let client = EaszClient::connect_with(addr, policy).expect("connect with retry");
        assert!(client.addr.is_some());
        server.join().expect("server thread");
    }
}

//! Blocking client for the `easz` decode protocol — the edge side of the
//! wire, or any consumer that wants decoded frames back from a server.

use crate::metrics::ServerStats;
use crate::protocol::{self, EngineTier, WireError};
use easz_image::ImageU8;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Writes one frame, surviving the partial-progress failure modes a
/// backpressured or nonblocking-reactor peer exposes: short writes keep
/// going from where they left off, `Interrupted` (EINTR) retries
/// immediately, and `WouldBlock`/`TimedOut` — a socket send timeout firing
/// mid-frame while the server's reply buffer backs up — retries after a
/// short yield instead of abandoning the stream mid-frame (which would
/// desynchronise the framing for every later request).
///
/// `std::io::Write::write_all` already covers short writes and EINTR, but
/// treats `WouldBlock`/`TimedOut` as fatal — and a frame abandoned halfway
/// is unrecoverable for a length-prefixed protocol.
fn write_frame_resilient(w: &mut impl Write, frame_type: u8, payload: &[u8]) -> io::Result<()> {
    let frame = protocol::frame_bytes(frame_type, payload);
    let mut sent = 0;
    while sent < frame.len() {
        match w.write(&frame[sent..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting frame bytes",
                ))
            }
            Ok(n) => sent += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                // The peer is applying backpressure; pause briefly and
                // resume from the same offset.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    loop {
        match w.flush() {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Failure of a client call.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (including the server closing mid-reply).
    Io(io::Error),
    /// The server answered the *whole request* with a typed error frame.
    /// Per-container errors inside a batch are returned inline instead.
    Remote(WireError),
    /// The server sent a reply this client cannot interpret.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport: {e}"),
            Self::Remote(e) => write!(f, "server error: {e}"),
            Self::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Remote(e) => Some(e),
            Self::Protocol(_) => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<protocol::FrameReadError> for ClientError {
    fn from(e: protocol::FrameReadError) -> Self {
        match e {
            protocol::FrameReadError::Io(e) => Self::Io(e),
            oversize @ protocol::FrameReadError::Oversize { .. } => {
                Self::Protocol(oversize.to_string())
            }
        }
    }
}

/// A blocking connection to an [`EaszServer`](crate::EaszServer).
///
/// One request is in flight at a time; replies arrive in request order, so
/// the client never needs correlation ids.
#[derive(Debug)]
pub struct EaszClient {
    stream: TcpStream,
    max_reply_len: usize,
    /// Set when the reply stream desynchronises (an over-limit reply whose
    /// payload was never consumed): every later request would read pixel
    /// bytes as frame headers, so the client refuses instead.
    poisoned: bool,
}

impl EaszClient {
    /// Connects to a decode server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self::from_stream(TcpStream::connect(addr)?))
    }

    /// Wraps an already-connected stream (e.g. for tests driving both
    /// halves over a loopback pair).
    pub fn from_stream(stream: TcpStream) -> Self {
        Self { stream, max_reply_len: 256 << 20, poisoned: false }
    }

    /// Caps the reply payload size this client will accept. The default of
    /// 256 MiB clears the largest reply a conforming server can send: the
    /// container bounds canvases to `easz_codecs::MAX_PIXELS` (2^26), so an
    /// `IMAGE` payload is at most `3 * 2^26 + 9` bytes ≈ 201 MiB.
    pub fn with_max_reply_len(mut self, max_reply_len: usize) -> Self {
        self.max_reply_len = max_reply_len;
        self
    }

    /// Round-trips a `PING`, returning the server's protocol version.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures; see [`ClientError`].
    pub fn ping(&mut self) -> Result<u8, ClientError> {
        self.ensure_usable()?;
        write_frame_resilient(&mut self.stream, protocol::PING, &[protocol::PROTOCOL_VERSION])?;
        let (frame_type, payload) = self.read_reply()?;
        match frame_type {
            protocol::PONG if payload.len() == 1 => Ok(payload[0]),
            protocol::PONG => {
                Err(ClientError::Protocol(format!("pong payload of {} bytes", payload.len())))
            }
            other => Err(self.unexpected(other, &payload)),
        }
    }

    /// Round-trips a `STATS` request, returning the server's metrics
    /// snapshot (counters since server start; see
    /// [`ServerStats`]).
    ///
    /// # Errors
    ///
    /// Transport and protocol failures; see [`ClientError`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        self.ensure_usable()?;
        write_frame_resilient(&mut self.stream, protocol::STATS, &[])?;
        let (frame_type, payload) = self.read_reply()?;
        match frame_type {
            protocol::STATS_REPLY => {
                ServerStats::from_payload(&payload).map_err(ClientError::Protocol)
            }
            other => Err(self.unexpected(other, &payload)),
        }
    }

    /// Sends one serialized `.easz` container and returns the decoded
    /// image.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] carrying the server's typed error frame for
    /// undecodable containers, otherwise transport/protocol failures.
    pub fn decode(&mut self, container: &[u8]) -> Result<ImageU8, ClientError> {
        self.ensure_usable()?;
        write_frame_resilient(&mut self.stream, protocol::DECODE, container)?;
        let (frame_type, payload) = self.read_reply()?;
        match frame_type {
            protocol::IMAGE => protocol::decode_image(&payload).map_err(ClientError::Protocol),
            other => Err(self.unexpected(other, &payload)),
        }
    }

    /// As [`decode`](Self::decode), but names the engine tier explicitly
    /// (`DECODE_TIERED`), overriding the container's standing preference:
    /// [`EngineTier::QuantizedInt8`] requests the fast ε/PSNR-bounded
    /// decode, [`EngineTier::Reference`] forces the bit-exact f32 one.
    ///
    /// # Errors
    ///
    /// As [`decode`](Self::decode); additionally, a server predating the
    /// tiered frames answers with `UNKNOWN_FRAME` and closes.
    pub fn decode_tiered(
        &mut self,
        container: &[u8],
        tier: EngineTier,
    ) -> Result<ImageU8, ClientError> {
        self.ensure_usable()?;
        let mut payload = Vec::with_capacity(1 + container.len());
        payload.push(tier.wire_byte());
        payload.extend_from_slice(container);
        write_frame_resilient(&mut self.stream, protocol::DECODE_TIERED, &payload)?;
        let (frame_type, payload) = self.read_reply()?;
        match frame_type {
            protocol::IMAGE => protocol::decode_image(&payload).map_err(ClientError::Protocol),
            other => Err(self.unexpected(other, &payload)),
        }
    }

    /// Sends a batch of serialized containers in one frame and collects one
    /// result per container, in order. Server-side, containers sharing a
    /// mask share a single transformer forward — this is the cheap way to
    /// decode many streams.
    ///
    /// # Errors
    ///
    /// The outer `Result` fails only for whole-request problems (transport,
    /// an over-limit batch, protocol violations); per-container decode
    /// failures come back inline as [`WireError`]s.
    pub fn decode_batch(
        &mut self,
        containers: &[&[u8]],
    ) -> Result<Vec<Result<ImageU8, WireError>>, ClientError> {
        self.decode_batch_frame(protocol::DECODE_BATCH, None, containers)
    }

    /// As [`decode_batch`](Self::decode_batch), but decodes every container
    /// in the batch on the named engine tier (`DECODE_BATCH_TIERED`),
    /// overriding each container's standing preference.
    ///
    /// # Errors
    ///
    /// As [`decode_batch`](Self::decode_batch); additionally, a server
    /// predating the tiered frames answers with `UNKNOWN_FRAME` and closes.
    pub fn decode_batch_tiered(
        &mut self,
        containers: &[&[u8]],
        tier: EngineTier,
    ) -> Result<Vec<Result<ImageU8, WireError>>, ClientError> {
        self.decode_batch_frame(protocol::DECODE_BATCH_TIERED, Some(tier), containers)
    }

    fn decode_batch_frame(
        &mut self,
        frame: u8,
        tier: Option<EngineTier>,
        containers: &[&[u8]],
    ) -> Result<Vec<Result<ImageU8, WireError>>, ClientError> {
        self.ensure_usable()?;
        let batch = protocol::encode_batch(containers);
        let payload = match tier {
            None => batch,
            Some(tier) => {
                let mut tiered = Vec::with_capacity(1 + batch.len());
                tiered.push(tier.wire_byte());
                tiered.extend_from_slice(&batch);
                tiered
            }
        };
        write_frame_resilient(&mut self.stream, frame, &payload)?;
        let mut results = Vec::with_capacity(containers.len());
        while results.len() < containers.len() {
            let (frame_type, payload) = self.read_reply()?;
            match frame_type {
                protocol::IMAGE => {
                    // An unparseable image is a protocol bug, not a remote
                    // decode failure; abort the whole call.
                    let img = protocol::decode_image(&payload).map_err(ClientError::Protocol)?;
                    results.push(Ok(img));
                }
                protocol::ERROR => {
                    let err = WireError::from_payload(&payload).map_err(ClientError::Protocol)?;
                    if err.code.value() >= protocol::ErrorCode::Protocol.value() {
                        // Whole-request failure (the batch itself was
                        // rejected): the server sends exactly one frame.
                        return Err(ClientError::Remote(err));
                    }
                    results.push(Err(err));
                }
                other => return Err(self.unexpected(other, &payload)),
            }
        }
        Ok(results)
    }

    /// Fails fast once the connection is poisoned (checked before every
    /// request so not even the request frame is written).
    fn ensure_usable(&self) -> Result<(), ClientError> {
        if self.poisoned {
            return Err(ClientError::Protocol(
                "connection poisoned by an earlier over-limit reply; reconnect".into(),
            ));
        }
        Ok(())
    }

    fn read_reply(&mut self) -> Result<(u8, Vec<u8>), ClientError> {
        match protocol::read_frame(&mut self.stream, self.max_reply_len) {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ))),
            Err(oversize @ protocol::FrameReadError::Oversize { .. }) => {
                // The announced payload was not consumed, so the stream can
                // never be re-synchronised: poison this client (mirroring
                // the server, which closes on its framing violations).
                self.poisoned = true;
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                Err(ClientError::Protocol(oversize.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Folds a reply that does not match the request into the right error:
    /// error frames become [`ClientError::Remote`], anything else is a
    /// protocol violation.
    fn unexpected(&self, frame_type: u8, payload: &[u8]) -> ClientError {
        if frame_type == protocol::ERROR {
            match WireError::from_payload(payload) {
                Ok(err) => ClientError::Remote(err),
                Err(m) => ClientError::Protocol(m),
            }
        } else {
            ClientError::Protocol(format!("unexpected reply frame 0x{frame_type:02x}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that takes one byte at a time and fails with a scripted
    /// error before each accepted byte — the worst-case flaky peer.
    struct FlakyWriter {
        written: Vec<u8>,
        /// One entry per upcoming `write` call: `Some(kind)` fails, `None`
        /// accepts a single byte. Exhausted script = accept.
        script: Vec<Option<io::ErrorKind>>,
        flushes: usize,
    }

    impl Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match if self.script.is_empty() { None } else { Some(self.script.remove(0)) } {
                Some(Some(kind)) => Err(io::Error::new(kind, "scripted failure")),
                _ => {
                    self.written.push(buf[0]);
                    Ok(1)
                }
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            self.flushes += 1;
            Ok(())
        }
    }

    #[test]
    fn resilient_writer_survives_eintr_and_wouldblock_mid_frame() {
        use io::ErrorKind::{Interrupted, TimedOut, WouldBlock};
        let mut w = FlakyWriter {
            written: Vec::new(),
            // Interrupt before the header, stall twice inside the payload,
            // time out once near the end: every byte must still land, in
            // order, exactly once.
            script: vec![
                Some(Interrupted),
                None,
                None,
                Some(WouldBlock),
                None,
                None,
                None,
                Some(WouldBlock),
                Some(TimedOut),
                None,
            ],
            flushes: 0,
        };
        write_frame_resilient(&mut w, protocol::DECODE, b"abcdef").expect("resilient write");
        assert_eq!(w.written, protocol::frame_bytes(protocol::DECODE, b"abcdef"));
        assert_eq!(w.flushes, 1);
    }

    #[test]
    fn resilient_writer_reports_write_zero_and_real_errors() {
        struct Zero;
        impl Write for Zero {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_frame_resilient(&mut Zero, protocol::PING, &[1]).expect_err("write zero");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);

        let mut broken = FlakyWriter {
            written: Vec::new(),
            script: vec![None, Some(io::ErrorKind::BrokenPipe)],
            flushes: 0,
        };
        let err =
            write_frame_resilient(&mut broken, protocol::PING, &[1]).expect_err("broken pipe");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }
}

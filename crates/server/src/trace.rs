//! Low-overhead request tracing: per-request spans, a sampled ring of
//! recent traces, an always-capture slow-request log, and the wire codec
//! for the `TRACE` / `TRACE_REPLY` frame pair (`docs/FORMAT.md` §2.7).
//!
//! # Design
//!
//! A request's life is described by a [`SpanCtx`]: a small `Copy` struct
//! created when its frame is assembled off the socket and carried *by
//! value* alongside the request through admission, the batch queue, decode
//! and the reply path. Each milestone calls [`SpanCtx::stamp`], writing a
//! relative microsecond offset into a fixed `[u32; 8]` — no allocation, no
//! shared state, one monotonic clock read.
//!
//! Only [`Tracer::finish`] touches shared state, and only for spans that
//! are *kept*: every `sample_every`-th request, plus any request whose
//! end-to-end time crosses `slow_threshold_us` (slow requests are always
//! captured, regardless of sampling). Kept spans land in a fixed-capacity
//! ring of per-slot mutexes — writers contend only when they hash to the
//! same slot — and slow spans additionally enter a bounded slow-request
//! log. Nothing on this path allocates after construction.
//!
//! When tracing is disabled (the default — the server simply has no
//! `Tracer`), none of this exists: request structs carry `None` where the
//! span would be and every instrumented site reduces to an inlined
//! `Option` check, the same off-path discipline as [`fault`](crate::fault)
//! (gated at runtime rather than compile time, because the inspector must
//! work against release builds). The bit-identity and chaos suites run in
//! that state and are untouched by this module.
//!
//! The decoder-side half lives in `easz-core`
//! ([`DecodeStage`](easz_core::DecodeStage)): the server installs a
//! [`StageSink`](easz_core::StageSink) routing per-stage wall times into
//! [`Tracer::record_decode_stage`] accumulators, reported in the same
//! [`TraceReport`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use easz_core::{DecodeStage, DECODE_STAGES};

/// Number of [`TraceStage`] milestones stamped into a span.
pub const TRACE_STAGES: usize = 8;

/// Sentinel for a stage a request never reached (e.g. a shed request is
/// finished before `Enqueued`).
pub const STAMP_UNSET: u32 = u32::MAX;

/// Version byte leading a `TRACE_REPLY` payload.
pub const TRACE_PAYLOAD_VERSION: u8 = 1;

/// Milestones of a request's life inside the server, stamped in order.
///
/// The span itself starts when the request frame is fully assembled off
/// the socket, so "frame-assembled" is offset 0 rather than a stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStage {
    /// Passed admission control (gateway accepted the request).
    Admitted = 0,
    /// Entered the batch queue.
    Enqueued = 1,
    /// The batching window it waited in closed.
    WindowClosed = 2,
    /// Its batch was handed to a decode worker.
    Dispatched = 3,
    /// Decode of its batch group began.
    DecodeStart = 4,
    /// Decode of its batch group finished.
    DecodeEnd = 5,
    /// The reply was queued for its connection.
    ReplyQueued = 6,
    /// The reply bytes were handed to the socket.
    ReplyWritten = 7,
}

impl TraceStage {
    /// All stages, in pipeline order.
    pub const ALL: [TraceStage; TRACE_STAGES] = [
        TraceStage::Admitted,
        TraceStage::Enqueued,
        TraceStage::WindowClosed,
        TraceStage::Dispatched,
        TraceStage::DecodeStart,
        TraceStage::DecodeEnd,
        TraceStage::ReplyQueued,
        TraceStage::ReplyWritten,
    ];

    /// Stable lowercase name, as rendered by `easz-top`.
    pub fn name(self) -> &'static str {
        match self {
            Self::Admitted => "admitted",
            Self::Enqueued => "enqueued",
            Self::WindowClosed => "window-closed",
            Self::Dispatched => "dispatched",
            Self::DecodeStart => "decode-start",
            Self::DecodeEnd => "decode-end",
            Self::ReplyQueued => "reply-queued",
            Self::ReplyWritten => "reply-written",
        }
    }

    /// Dense index into a span's stamp array.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Tuning knobs for a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Slots in the recent-span ring. `0` disables the ring (slow capture
    /// still works).
    pub capacity: usize,
    /// Keep every N-th request's span (`1` keeps all, `0` keeps none
    /// except slow requests).
    pub sample_every: u64,
    /// End-to-end threshold above which a span is always captured and
    /// logged as slow. `0` disables slow capture.
    pub slow_threshold_us: u64,
    /// Bound on the slow-request log; oldest entries are evicted.
    pub slow_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { capacity: 512, sample_every: 16, slow_threshold_us: 50_000, slow_capacity: 32 }
    }
}

/// Per-request trace context, carried by value with the request.
///
/// `Copy` and fixed-size: creating and stamping one never allocates, and
/// it crosses thread boundaries inside `Job` structs and reply closures
/// without synchronisation.
#[derive(Debug, Clone, Copy)]
pub struct SpanCtx {
    /// Monotonic request sequence number (per tracer).
    pub id: u64,
    /// Request frame type (`protocol::DECODE` etc.).
    pub frame: u8,
    /// Connection token the request arrived on.
    pub source: u64,
    start: Instant,
    stamps: [u32; TRACE_STAGES],
}

impl SpanCtx {
    /// Records "stage happened now" as µs since the frame was assembled.
    #[inline]
    pub fn stamp(&mut self, stage: TraceStage) {
        let us = self.start.elapsed().as_micros().min(u128::from(STAMP_UNSET - 1)) as u32;
        self.stamps[stage.index()] = us;
    }

    /// Microseconds since the span began.
    #[inline]
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Whether `stage` has been stamped on this context.
    pub fn stamped(&self, stage: TraceStage) -> bool {
        self.stamps[stage.index()] != STAMP_UNSET
    }
}

/// A completed span, as stored in the ring / slow log and sent over the
/// wire in a [`TraceReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// Request sequence number.
    pub id: u64,
    /// Connection token the request arrived on.
    pub source: u64,
    /// Span start, µs since the tracer was created.
    pub start_us: u64,
    /// Request frame type.
    pub frame: u8,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Per-stage offsets (µs since span start); [`STAMP_UNSET`] where the
    /// request never reached the stage.
    pub stamps: [u32; TRACE_STAGES],
}

impl TraceSpan {
    /// Bytes one span occupies in a `TRACE_REPLY` payload.
    pub(crate) const WIRE_LEN: usize = 8 + 8 + 8 + 1 + 1 + TRACE_STAGES * 4;

    /// End-to-end time: the latest stamped offset (µs).
    pub fn total_us(&self) -> u32 {
        self.stamps.iter().copied().filter(|&s| s != STAMP_UNSET).max().unwrap_or(0)
    }

    /// The stamped offset for `stage`, if the request reached it.
    pub fn stage_us(&self, stage: TraceStage) -> Option<u32> {
        let s = self.stamps[stage.index()];
        (s != STAMP_UNSET).then_some(s)
    }
}

/// The serving tier's trace collector. One per server; shared by both
/// front ends.
pub struct Tracer {
    cfg: TraceConfig,
    epoch: Instant,
    seq: AtomicU64,
    /// Recent-span ring: per-slot mutexes so concurrent finishers only
    /// contend when they land on the same slot.
    slots: Box<[Mutex<Option<TraceSpan>>]>,
    head: AtomicU64,
    slow: Mutex<VecDeque<TraceSpan>>,
    spans_finished: AtomicU64,
    spans_kept: AtomicU64,
    slow_captured: AtomicU64,
    stage_counts: [AtomicU64; DECODE_STAGES],
    stage_total_us: [AtomicU64; DECODE_STAGES],
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("cfg", &self.cfg)
            .field("spans_finished", &self.spans_finished.load(Ordering::Relaxed))
            .field("spans_kept", &self.spans_kept.load(Ordering::Relaxed))
            .field("slow_captured", &self.slow_captured.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// Builds a tracer. All captures after this point are allocation-free:
    /// the ring and the slow log are sized here, once.
    pub fn new(cfg: TraceConfig) -> Self {
        Self {
            cfg,
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            slots: (0..cfg.capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            // One spare slot so eviction can pop before pushing.
            slow: Mutex::new(VecDeque::with_capacity(cfg.slow_capacity + 1)),
            spans_finished: AtomicU64::new(0),
            spans_kept: AtomicU64::new(0),
            slow_captured: AtomicU64::new(0),
            stage_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_total_us: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The configuration this tracer was built with.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Opens a span for a freshly assembled request frame.
    #[inline]
    pub fn begin(&self, frame: u8, source: u64) -> SpanCtx {
        SpanCtx {
            id: self.seq.fetch_add(1, Ordering::Relaxed),
            frame,
            source,
            start: Instant::now(),
            stamps: [STAMP_UNSET; TRACE_STAGES],
        }
    }

    /// Closes a span. Kept (and possibly slow-logged) if it is a sampling
    /// hit or crossed the slow threshold; dropped on the floor otherwise.
    pub fn finish(&self, ctx: SpanCtx, ok: bool) {
        self.spans_finished.fetch_add(1, Ordering::Relaxed);
        let total_us = ctx.elapsed_us();
        let sampled = self.cfg.sample_every > 0 && ctx.id.is_multiple_of(self.cfg.sample_every);
        let slow = self.cfg.slow_threshold_us > 0 && total_us >= self.cfg.slow_threshold_us;
        if !sampled && !slow {
            return;
        }
        let span = TraceSpan {
            id: ctx.id,
            source: ctx.source,
            start_us: ctx
                .start
                .checked_duration_since(self.epoch)
                .map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64),
            frame: ctx.frame,
            ok,
            stamps: ctx.stamps,
        };
        self.spans_kept.fetch_add(1, Ordering::Relaxed);
        if !self.slots.is_empty() {
            let at = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
            *self.slots[at].lock().unwrap_or_else(|e| e.into_inner()) = Some(span);
        }
        if slow && self.cfg.slow_capacity > 0 {
            self.slow_captured.fetch_add(1, Ordering::Relaxed);
            let mut log = self.slow.lock().unwrap_or_else(|e| e.into_inner());
            if log.len() >= self.cfg.slow_capacity {
                log.pop_front();
            }
            log.push_back(span);
        }
    }

    /// Accumulates one decode-stage sample (routed here from the
    /// [`StageSink`](easz_core::StageSink) the server installs on its
    /// decoders).
    pub fn record_decode_stage(&self, stage: DecodeStage, us: u64) {
        self.stage_counts[stage.index()].fetch_add(1, Ordering::Relaxed);
        self.stage_total_us[stage.index()].fetch_add(us, Ordering::Relaxed);
    }

    /// Drains the recent-span ring (emptying it) and snapshots the slow
    /// log and decode-stage accumulators (both retained, so successive
    /// polls keep seeing the latest slow requests and running totals).
    pub fn drain(&self) -> TraceReport {
        let mut recent: Vec<TraceSpan> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).take())
            .collect();
        recent.sort_unstable_by_key(|s| s.id);
        let slow: Vec<TraceSpan> = {
            let log = self.slow.lock().unwrap_or_else(|e| e.into_inner());
            log.iter().copied().collect()
        };
        TraceReport {
            recent,
            slow,
            decode_stages: std::array::from_fn(|i| {
                (
                    self.stage_counts[i].load(Ordering::Relaxed),
                    self.stage_total_us[i].load(Ordering::Relaxed),
                )
            }),
        }
    }

    /// Spans finished / kept / slow-captured since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.spans_finished.load(Ordering::Relaxed),
            self.spans_kept.load(Ordering::Relaxed),
            self.slow_captured.load(Ordering::Relaxed),
        )
    }
}

/// One drain of a [`Tracer`], as carried by a `TRACE_REPLY` frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Recent sampled spans, oldest first (drained: each appears once
    /// across successive polls).
    pub recent: Vec<TraceSpan>,
    /// Latest slow requests, oldest first (retained across polls).
    pub slow: Vec<TraceSpan>,
    /// Decode-stage accumulators `(count, total µs)`, indexed by
    /// [`DecodeStage`](easz_core::DecodeStage).
    pub decode_stages: [(u64, u64); DECODE_STAGES],
}

impl TraceReport {
    /// Serializes into a `TRACE_REPLY` frame payload (layout in
    /// `docs/FORMAT.md` §2.7).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            3 + DECODE_STAGES * 16
                + 2
                + self.recent.len() * TraceSpan::WIRE_LEN
                + 2
                + self.slow.len() * TraceSpan::WIRE_LEN,
        );
        out.push(TRACE_PAYLOAD_VERSION);
        out.push(TRACE_STAGES as u8);
        out.push(DECODE_STAGES as u8);
        for (count, total_us) in &self.decode_stages {
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&total_us.to_le_bytes());
        }
        for list in [&self.recent, &self.slow] {
            out.extend_from_slice(&(list.len().min(u16::MAX as usize) as u16).to_le_bytes());
            for span in list.iter().take(u16::MAX as usize) {
                out.extend_from_slice(&span.id.to_le_bytes());
                out.extend_from_slice(&span.source.to_le_bytes());
                out.extend_from_slice(&span.start_us.to_le_bytes());
                out.push(span.frame);
                out.push(span.ok as u8);
                for stamp in &span.stamps {
                    out.extend_from_slice(&stamp.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parses a `TRACE_REPLY` frame payload.
    ///
    /// # Errors
    ///
    /// A description of the malformation (unknown version, mismatched
    /// stage counts, bad `ok` flag, short or trailing bytes).
    pub fn from_payload(payload: &[u8]) -> Result<Self, String> {
        let mut r = TraceReader { payload, pos: 0 };
        let version = r.u8()?;
        if version == 0 || version > TRACE_PAYLOAD_VERSION {
            return Err(format!("unknown trace payload version {version}"));
        }
        let n_stages = r.u8()? as usize;
        if n_stages != TRACE_STAGES {
            return Err(format!("trace spans carry {n_stages} stages, expected {TRACE_STAGES}"));
        }
        let n_decode = r.u8()? as usize;
        if n_decode != DECODE_STAGES {
            return Err(format!(
                "trace report has {n_decode} decode stages, expected {DECODE_STAGES}"
            ));
        }
        let mut decode_stages = [(0u64, 0u64); DECODE_STAGES];
        for entry in &mut decode_stages {
            *entry = (r.u64()?, r.u64()?);
        }
        let mut lists: [Vec<TraceSpan>; 2] = [Vec::new(), Vec::new()];
        for list in &mut lists {
            let count = r.u16()? as usize;
            list.reserve_exact(count);
            for _ in 0..count {
                let id = r.u64()?;
                let source = r.u64()?;
                let start_us = r.u64()?;
                let frame = r.u8()?;
                let ok = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(format!("trace span ok flag is {other}, expected 0|1")),
                };
                let mut stamps = [STAMP_UNSET; TRACE_STAGES];
                for stamp in &mut stamps {
                    *stamp = r.u32()?;
                }
                list.push(TraceSpan { id, source, start_us, frame, ok, stamps });
            }
        }
        if r.pos != payload.len() {
            return Err(format!(
                "{} trailing bytes after the trace payload",
                payload.len() - r.pos
            ));
        }
        let [recent, slow] = lists;
        Ok(Self { recent, slow, decode_stages })
    }
}

/// Cursor over a trace payload with typed, bounds-checked reads.
struct TraceReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl TraceReader<'_> {
    fn u8(&mut self) -> Result<u8, String> {
        let b = *self
            .payload
            .get(self.pos)
            .ok_or_else(|| format!("trace payload truncated at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, String> {
        let end = self.pos + 2;
        let bytes = self
            .payload
            .get(self.pos..end)
            .ok_or_else(|| format!("trace payload truncated at byte {}", self.pos))?;
        self.pos = end;
        Ok(u16::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let bytes = self
            .payload
            .get(self.pos..end)
            .ok_or_else(|| format!("trace payload truncated at byte {}", self.pos))?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let end = self.pos + 8;
        let bytes = self
            .payload
            .get(self.pos..end)
            .ok_or_else(|| format!("trace payload truncated at byte {}", self.pos))?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished_span(tracer: &Tracer, frame: u8, ok: bool) -> SpanCtx {
        let mut ctx = tracer.begin(frame, 7);
        for stage in TraceStage::ALL {
            ctx.stamp(stage);
        }
        tracer.finish(ctx, ok);
        ctx
    }

    #[test]
    fn sampling_keeps_every_nth_span() {
        let tracer = Tracer::new(TraceConfig {
            capacity: 64,
            sample_every: 4,
            slow_threshold_us: 0,
            slow_capacity: 0,
        });
        for _ in 0..16 {
            finished_span(&tracer, crate::protocol::DECODE, true);
        }
        let report = tracer.drain();
        assert_eq!(report.recent.len(), 4, "ids 0,4,8,12");
        assert!(report.recent.windows(2).all(|w| w[0].id < w[1].id), "oldest first");
        assert_eq!(report.recent[0].id % 4, 0);
        assert!(report.slow.is_empty());
        // Drained: a second poll sees nothing new.
        assert!(tracer.drain().recent.is_empty());
    }

    #[test]
    fn slow_requests_are_always_captured() {
        // sample_every = 0 keeps nothing by sampling; threshold of 1µs
        // makes every request slow.
        let tracer = Tracer::new(TraceConfig {
            capacity: 8,
            sample_every: 0,
            slow_threshold_us: 1,
            slow_capacity: 4,
        });
        for i in 0..6 {
            let mut ctx = tracer.begin(crate::protocol::DECODE, 100 + i);
            std::thread::sleep(std::time::Duration::from_micros(50));
            ctx.stamp(TraceStage::ReplyWritten);
            tracer.finish(ctx, true);
        }
        let report = tracer.drain();
        assert_eq!(report.slow.len(), 4, "slow log bounded, oldest evicted");
        assert_eq!(report.slow.last().unwrap().id, 5);
        assert!(report.recent.len() >= 4, "slow spans also land in the ring");
        let (finished, kept, slow) = tracer.counters();
        assert_eq!((finished, kept, slow), (6, 6, 6));
        // Slow log is retained across polls.
        assert_eq!(tracer.drain().slow.len(), 4);
    }

    #[test]
    fn unsampled_fast_spans_are_dropped() {
        let tracer = Tracer::new(TraceConfig {
            capacity: 8,
            sample_every: 0,
            slow_threshold_us: 60_000_000,
            slow_capacity: 4,
        });
        finished_span(&tracer, crate::protocol::DECODE, true);
        let (finished, kept, slow) = tracer.counters();
        assert_eq!((finished, kept, slow), (1, 0, 0));
        assert!(tracer.drain().recent.is_empty());
    }

    #[test]
    fn ring_overwrites_oldest() {
        let tracer = Tracer::new(TraceConfig {
            capacity: 4,
            sample_every: 1,
            slow_threshold_us: 0,
            slow_capacity: 0,
        });
        for _ in 0..10 {
            finished_span(&tracer, crate::protocol::PING, true);
        }
        let report = tracer.drain();
        assert_eq!(report.recent.len(), 4);
        assert_eq!(report.recent.iter().map(|s| s.id).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn span_stamps_are_monotonic_and_total_is_last() {
        let tracer = Tracer::new(TraceConfig { sample_every: 1, ..TraceConfig::default() });
        let mut ctx = tracer.begin(crate::protocol::DECODE, 3);
        for stage in TraceStage::ALL {
            ctx.stamp(stage);
        }
        tracer.finish(ctx, true);
        let report = tracer.drain();
        let span = report.recent[0];
        let stamps = span.stamps;
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "stamps in order: {stamps:?}");
        assert_eq!(span.total_us(), stamps[TraceStage::ReplyWritten.index()]);
        assert_eq!(span.stage_us(TraceStage::Admitted), Some(stamps[0]));
    }

    #[test]
    fn unreached_stages_read_back_as_none() {
        let tracer = Tracer::new(TraceConfig { sample_every: 1, ..TraceConfig::default() });
        let mut ctx = tracer.begin(crate::protocol::DECODE, 3);
        ctx.stamp(TraceStage::Admitted);
        tracer.finish(ctx, false);
        let span = tracer.drain().recent[0];
        assert!(!span.ok);
        assert_eq!(span.stage_us(TraceStage::Enqueued), None);
        assert_eq!(span.total_us(), span.stamps[TraceStage::Admitted.index()]);
    }

    #[test]
    fn decode_stage_accumulators_sum_by_stage() {
        let tracer = Tracer::new(TraceConfig::default());
        tracer.record_decode_stage(DecodeStage::Forward, 100);
        tracer.record_decode_stage(DecodeStage::Forward, 50);
        tracer.record_decode_stage(DecodeStage::Parse, 7);
        let report = tracer.drain();
        assert_eq!(report.decode_stages[DecodeStage::Forward.index()], (2, 150));
        assert_eq!(report.decode_stages[DecodeStage::Parse.index()], (1, 7));
        assert_eq!(report.decode_stages[DecodeStage::Plan.index()], (0, 0));
    }

    fn sample_report() -> TraceReport {
        let tracer = Tracer::new(TraceConfig {
            capacity: 16,
            sample_every: 1,
            slow_threshold_us: 1,
            slow_capacity: 4,
        });
        let mut ctx = tracer.begin(crate::protocol::DECODE, 42);
        ctx.stamp(TraceStage::Admitted);
        ctx.stamp(TraceStage::Enqueued);
        std::thread::sleep(std::time::Duration::from_micros(50));
        ctx.stamp(TraceStage::ReplyWritten);
        tracer.finish(ctx, true);
        let mut ctx = tracer.begin(crate::protocol::DECODE_BATCH, 43);
        ctx.stamp(TraceStage::Admitted);
        tracer.finish(ctx, false);
        tracer.record_decode_stage(DecodeStage::Forward, 1234);
        tracer.drain()
    }

    #[test]
    fn trace_payload_round_trips() {
        let report = sample_report();
        assert!(!report.recent.is_empty());
        assert!(!report.slow.is_empty());
        let parsed = TraceReport::from_payload(&report.to_payload()).expect("round trip");
        assert_eq!(parsed, report);
        // Empty reports round-trip too.
        let empty = TraceReport::default();
        assert_eq!(TraceReport::from_payload(&empty.to_payload()).unwrap(), empty);
    }

    #[test]
    fn malformed_trace_payloads_are_rejected() {
        let good = sample_report().to_payload();
        assert!(TraceReport::from_payload(&good).is_ok());

        let mut bad_version = good.clone();
        bad_version[0] = TRACE_PAYLOAD_VERSION + 1;
        assert!(TraceReport::from_payload(&bad_version).unwrap_err().contains("version"));
        bad_version[0] = 0;
        assert!(TraceReport::from_payload(&bad_version).is_err());

        let mut bad_stages = good.clone();
        bad_stages[1] = 5;
        assert!(TraceReport::from_payload(&bad_stages).unwrap_err().contains("stages"));

        let mut bad_decode = good.clone();
        bad_decode[2] = 9;
        assert!(TraceReport::from_payload(&bad_decode).unwrap_err().contains("decode"));

        // Every truncation point is caught.
        for len in 0..good.len() {
            assert!(TraceReport::from_payload(&good[..len]).is_err(), "truncated at {len}");
        }

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(TraceReport::from_payload(&trailing).unwrap_err().contains("trailing"));

        // A span count pointing past the end of the payload is a
        // truncation, not a crash.
        let mut huge_count = good.clone();
        let counts_at = 3 + DECODE_STAGES * 16;
        huge_count[counts_at..counts_at + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(TraceReport::from_payload(&huge_count).is_err());

        // Corrupt ok flag inside the first span.
        let mut bad_ok = good.clone();
        let ok_at = counts_at + 2 + 8 + 8 + 8 + 1;
        bad_ok[ok_at] = 2;
        assert!(TraceReport::from_payload(&bad_ok).unwrap_err().contains("ok flag"));
    }

    #[test]
    fn span_wire_len_matches_encoder() {
        let mut report = TraceReport::default();
        report.recent.push(TraceSpan {
            id: 1,
            source: 2,
            start_us: 3,
            frame: 0x01,
            ok: true,
            stamps: [STAMP_UNSET; TRACE_STAGES],
        });
        let base = TraceReport::default().to_payload().len();
        assert_eq!(report.to_payload().len(), base + TraceSpan::WIRE_LEN);
    }
}

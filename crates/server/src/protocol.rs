//! The `easz` framing protocol: length-prefixed frames carrying `.easz`
//! containers to a decode server and decoded images (or typed errors) back.
//!
//! The normative specification — frame layout, type and error-code tables,
//! connection rules — lives in [`docs/FORMAT.md`] at the repository root;
//! this module is its executable form. Both sides of the connection use the
//! same primitives: [`write_frame`] / [`read_frame`] move whole frames,
//! [`encode_image`] / [`decode_image`] and [`encode_batch`] /
//! [`decode_batch_payload`] translate the structured payloads.
//!
//! A frame is `type (1 byte) | payload length (u32 LE) | payload`. Frame
//! types with the high bit clear are requests, with the high bit set are
//! responses. All integers are little-endian, matching the `.easz`
//! container itself.
//!
//! [`docs/FORMAT.md`]: https://example.invalid/easz/docs/FORMAT.md

use easz_core::EaszError;
use easz_image::{Channels, ImageU8};
use std::io::{self, Read, Write};

/// Protocol version spoken by this build; carried in `PING`/`PONG` payloads
/// so peers can detect mismatches before decoding anything.
pub const PROTOCOL_VERSION: u8 = 1;

/// Bytes of a frame header: 1 type byte + 4 length bytes.
pub const FRAME_HEADER_LEN: usize = 5;

/// Request: payload is one `.easz` container; answered with [`IMAGE`] or
/// [`ERROR`].
pub const DECODE: u8 = 0x01;
/// Request: payload is a [batch](encode_batch) of `.easz` containers;
/// answered with exactly one [`IMAGE`] or [`ERROR`] frame per container, in
/// order.
pub const DECODE_BATCH: u8 = 0x02;
/// Request: payload is the client's 1-byte protocol version; answered with
/// [`PONG`].
pub const PING: u8 = 0x03;
/// Request: empty payload; answered with [`STATS_REPLY`] carrying a
/// [`ServerStats`](crate::ServerStats) snapshot.
pub const STATS: u8 = 0x04;
/// Request: a 1-byte [`EngineTier`] then one `.easz` container; as
/// [`DECODE`], with the named tier overriding the container's standing
/// engine preference for this request.
pub const DECODE_TIERED: u8 = 0x05;
/// Request: a 1-byte [`EngineTier`] then a [batch](encode_batch) payload;
/// as [`DECODE_BATCH`], with every container decoded on the named tier.
pub const DECODE_BATCH_TIERED: u8 = 0x06;
/// Request: empty payload; answered with [`TRACE_REPLY`] draining the
/// server's recent sampled trace spans and its slow-request log
/// (`docs/FORMAT.md` §2.7).
pub const TRACE: u8 = 0x07;
/// Response: payload is a [decoded image](encode_image).
pub const IMAGE: u8 = 0x81;
/// Response to [`PING`]: payload is the server's 1-byte protocol version.
pub const PONG: u8 = 0x83;
/// Response to [`STATS`]: payload is a serialized
/// [`ServerStats`](crate::ServerStats) snapshot (`docs/FORMAT.md` §2.5).
pub const STATS_REPLY: u8 = 0x84;
/// Response to [`TRACE`]: payload is a serialized
/// [`TraceReport`](crate::TraceReport) (`docs/FORMAT.md` §2.7).
pub const TRACE_REPLY: u8 = 0x85;
/// Response: payload is an [error code](ErrorCode) byte, a u16 LE message
/// length, and the UTF-8 message.
pub const ERROR: u8 = 0xEE;

/// The engine-tier byte carried by [`DECODE_TIERED`] /
/// [`DECODE_BATCH_TIERED`] requests (`docs/FORMAT.md` §2.6).
///
/// Tier bytes are append-only; a server receiving a reserved byte answers
/// with one [`ErrorCode::Protocol`] error and keeps the connection open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum EngineTier {
    /// The bit-exact f32 decode — byte-identical to what [`DECODE`]
    /// returns for a container without the quantized opt-in flag.
    #[default]
    Reference = 0,
    /// The int8 quantized tier: deterministic, ε/PSNR-bounded divergence
    /// from [`Reference`](EngineTier::Reference).
    QuantizedInt8 = 1,
}

impl EngineTier {
    /// The raw wire byte.
    pub fn wire_byte(self) -> u8 {
        self as u8
    }

    /// Parses a wire byte back into a tier (`None` for reserved bytes).
    pub fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(Self::Reference),
            1 => Some(Self::QuantizedInt8),
            _ => None,
        }
    }

    /// The decode engine this tier selects.
    pub fn engine(self) -> easz_core::DecodeEngine {
        match self {
            Self::Reference => easz_core::DecodeEngine::TapeFree,
            Self::QuantizedInt8 => easz_core::DecodeEngine::QuantizedInt8,
        }
    }
}

/// Typed wire identity of everything that can go wrong server-side.
///
/// Codes `1..=15` mirror [`EaszError`] variants (the container was framed
/// correctly but could not be decoded; the connection stays usable). Codes
/// `32..` are protocol-level; [`ErrorCode::Oversize`] and
/// [`ErrorCode::UnknownFrame`] additionally mean the server closed the
/// connection, since framing can no longer be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Container does not start with the `EASZ` magic.
    BadMagic = 1,
    /// Container format version this server cannot parse.
    UnsupportedVersion = 2,
    /// Container shorter than its header or announced sections.
    Truncated = 3,
    /// Structurally invalid container or payload/geometry disagreement.
    Malformed = 4,
    /// Mask side channel unparseable or inconsistent with the header.
    MaskChannel = 5,
    /// The bitstream names a codec the server's registry does not hold.
    UnknownCodec = 6,
    /// The server's model serves a different patch geometry.
    GeometryMismatch = 7,
    /// The inner codec rejected its bitstream.
    Codec = 8,
    /// The header encodes a configuration violating an Easz invariant.
    InvalidConfig = 9,
    /// A well-framed request the server cannot honour (bad ping length,
    /// malformed or too-large batch payload). Connection stays open.
    Protocol = 32,
    /// A frame announced a payload longer than the server accepts. The
    /// connection is closed after this error.
    Oversize = 33,
    /// The frame type byte is not one this server knows. The connection is
    /// closed after this error.
    UnknownFrame = 34,
    /// The server is saturated and shed this work instead of queueing it.
    /// For a decode request refused by admission control the connection
    /// stays open (retry later, ideally with backoff); for a connection
    /// refused at accept the server closes right after this frame.
    Busy = 35,
    /// The container names a zoo model id this server does not serve. The
    /// connection stays open; other model ids keep decoding.
    UnknownModel = 36,
    /// The decode panicked inside the server; the panic was caught at an
    /// isolation boundary and only this request failed. The connection
    /// stays open and the worker pool recovers.
    Internal = 37,
    /// The request's per-decode deadline expired before the gateway could
    /// schedule it; the job was swept unstarted. The connection stays open
    /// — retry with backoff, the server is overloaded or stalled.
    DeadlineExceeded = 38,
}

impl ErrorCode {
    /// The raw wire byte.
    pub fn value(self) -> u8 {
        self as u8
    }

    /// Parses a wire byte back into a code.
    pub fn from_byte(byte: u8) -> Option<Self> {
        use ErrorCode::*;
        Some(match byte {
            1 => BadMagic,
            2 => UnsupportedVersion,
            3 => Truncated,
            4 => Malformed,
            5 => MaskChannel,
            6 => UnknownCodec,
            7 => GeometryMismatch,
            8 => Codec,
            9 => InvalidConfig,
            32 => Protocol,
            33 => Oversize,
            34 => UnknownFrame,
            35 => Busy,
            36 => UnknownModel,
            37 => Internal,
            38 => DeadlineExceeded,
            _ => return None,
        })
    }

    /// The code a decode failure is reported under.
    pub fn of(error: &EaszError) -> Self {
        match error {
            EaszError::BadMagic => Self::BadMagic,
            EaszError::UnsupportedVersion(_) => Self::UnsupportedVersion,
            EaszError::Truncated { .. } => Self::Truncated,
            EaszError::Malformed(_) => Self::Malformed,
            EaszError::MaskChannel(_) => Self::MaskChannel,
            EaszError::UnknownCodec(_) => Self::UnknownCodec,
            EaszError::GeometryMismatch { .. } => Self::GeometryMismatch,
            EaszError::Codec(_) => Self::Codec,
            EaszError::InvalidConfig(_) => Self::InvalidConfig,
            EaszError::UnknownModel(_) => Self::UnknownModel,
            EaszError::Internal(_) => Self::Internal,
            EaszError::DeadlineExceeded => Self::DeadlineExceeded,
            // `EaszError` is non-exhaustive; anything a future core adds is
            // at least a malformed-input report until it gets its own code.
            _ => Self::Malformed,
        }
    }
}

/// An error frame as it travels the wire: typed code plus human-readable
/// detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Typed failure class.
    pub code: ErrorCode,
    /// Human-readable detail (never needed to interpret `code`).
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Builds the wire form of a decode failure.
    pub fn from_easz(error: &EaszError) -> Self {
        Self { code: ErrorCode::of(error), message: error.to_string() }
    }

    /// Serializes into an [`ERROR`] frame payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let msg = self.message.as_bytes();
        let len = msg.len().min(u16::MAX as usize);
        let mut out = Vec::with_capacity(3 + len);
        out.push(self.code.value());
        out.extend_from_slice(&(len as u16).to_le_bytes());
        out.extend_from_slice(&msg[..len]);
        out
    }

    /// Parses an [`ERROR`] frame payload.
    pub fn from_payload(payload: &[u8]) -> Result<Self, String> {
        if payload.len() < 3 {
            return Err(format!("error payload of {} bytes is too short", payload.len()));
        }
        let code = ErrorCode::from_byte(payload[0])
            .ok_or_else(|| format!("unknown error code {}", payload[0]))?;
        let len = u16::from_le_bytes([payload[1], payload[2]]) as usize;
        if payload.len() != 3 + len {
            return Err(format!("error payload length {} != announced {}", payload.len() - 3, len));
        }
        let message = String::from_utf8_lossy(&payload[3..]).into_owned();
        Ok(Self { code, message })
    }
}

/// Failure while reading a frame off a connection.
#[derive(Debug)]
pub enum FrameReadError {
    /// The transport failed (including mid-frame EOF).
    Io(io::Error),
    /// The header announced a payload beyond the reader's limit. The
    /// payload bytes were *not* consumed, so the stream is unsynchronized.
    Oversize {
        /// Announced payload length.
        announced: usize,
        /// The reader's limit.
        limit: usize,
    },
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "frame read: {e}"),
            Self::Oversize { announced, limit } => {
                write!(f, "frame announces {announced} payload bytes, limit is {limit}")
            }
        }
    }
}

impl std::error::Error for FrameReadError {}

impl From<io::Error> for FrameReadError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes one frame.
///
/// # Panics
///
/// Panics if `payload` exceeds `u32::MAX` bytes (a caller bug — decoded
/// images are bounded far below this by the container's canvas limit).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, frame_type: u8, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= u32::MAX as usize, "frame payload too large to announce");
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0] = frame_type;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    // Fault hook (compiles out of default builds): tear the payload across
    // two flushed writes so the peer must reassemble the frame from partial
    // reads — the wire-level shape of a short write.
    if let Some(split) = crate::fault::write_split(payload.len()) {
        w.write_all(&payload[..split])?;
        w.flush()?;
        w.write_all(&payload[split..])?;
        return w.flush();
    }
    w.write_all(payload)?;
    w.flush()
}

/// Serializes one frame into owned bytes — the header of [`write_frame`]
/// followed by the payload. This is what a readiness-driven writer queues
/// into a connection's outbound buffer when it cannot block on a stream.
///
/// # Panics
///
/// As [`write_frame`], if `payload` exceeds `u32::MAX` bytes.
pub fn frame_bytes(frame_type: u8, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= u32::MAX as usize, "frame payload too large to announce");
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.push(frame_type);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads one frame, returning `Ok(None)` on a clean end-of-stream (the peer
/// closed between frames).
///
/// # Errors
///
/// [`FrameReadError::Oversize`] if the header announces more than
/// `max_payload` bytes (nothing past the header is consumed), otherwise
/// transport errors — a connection dropped *inside* a frame surfaces as
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(
    r: &mut impl Read,
    max_payload: usize,
) -> Result<Option<(u8, Vec<u8>)>, FrameReadError> {
    let mut first = [0u8; 1];
    loop {
        // Fault hook (compiles out of default builds): a simulated transport
        // EINTR takes the same retry branch a real one would.
        if crate::fault::read_interrupted() {
            continue;
        }
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let mut rest = [0u8; FRAME_HEADER_LEN - 1];
    r.read_exact(&mut rest)?;
    let announced = u32::from_le_bytes(rest) as usize;
    if announced > max_payload {
        return Err(FrameReadError::Oversize { announced, limit: max_payload });
    }
    let mut payload = vec![0u8; announced];
    r.read_exact(&mut payload)?;
    Ok(Some((first[0], payload)))
}

/// Serializes a decoded image into an [`IMAGE`] frame payload: u32 LE
/// width, u32 LE height, a channel-count byte (`1` = grayscale, `3` = RGB),
/// then `width * height * channels` interleaved 8-bit samples.
pub fn encode_image(img: &ImageU8) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + img.data().len());
    out.extend_from_slice(&(img.width() as u32).to_le_bytes());
    out.extend_from_slice(&(img.height() as u32).to_le_bytes());
    out.push(img.channels().count() as u8);
    out.extend_from_slice(img.data());
    out
}

/// Parses an [`IMAGE`] frame payload.
///
/// # Errors
///
/// A description of the malformation (short payload, channel byte other
/// than 1 or 3, sample count disagreeing with the announced dimensions).
pub fn decode_image(payload: &[u8]) -> Result<ImageU8, String> {
    if payload.len() < 9 {
        return Err(format!("image payload of {} bytes is too short", payload.len()));
    }
    let width = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")) as usize;
    let height = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes")) as usize;
    let channels = match payload[8] {
        1 => Channels::Gray,
        3 => Channels::Rgb,
        other => return Err(format!("channel byte {other} is neither 1 nor 3")),
    };
    let expected = width
        .checked_mul(height)
        .and_then(|p| p.checked_mul(channels.count()))
        .ok_or_else(|| "image dimensions overflow".to_string())?;
    if payload.len() - 9 != expected {
        return Err(format!("{} samples for a {width}x{height} image", payload.len() - 9));
    }
    Ok(ImageU8::from_vec(width, height, channels, payload[9..].to_vec()))
}

/// Serializes containers into a [`DECODE_BATCH`] payload: u32 LE count,
/// then per container a u32 LE length and the container bytes.
pub fn encode_batch(containers: &[&[u8]]) -> Vec<u8> {
    let total: usize = containers.iter().map(|c| 4 + c.len()).sum();
    let mut out = Vec::with_capacity(4 + total);
    out.extend_from_slice(&(containers.len() as u32).to_le_bytes());
    for c in containers {
        out.extend_from_slice(&(c.len() as u32).to_le_bytes());
        out.extend_from_slice(c);
    }
    out
}

/// Parses a [`DECODE_BATCH`] payload back into container byte ranges.
///
/// # Errors
///
/// A description of the malformation (truncated entries, trailing bytes, or
/// more than `max_batch` containers).
pub fn decode_batch_payload(payload: &[u8], max_batch: usize) -> Result<Vec<&[u8]>, String> {
    if payload.len() < 4 {
        return Err("batch payload shorter than its count".into());
    }
    let count = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")) as usize;
    if count > max_batch {
        return Err(format!("batch of {count} containers exceeds the limit of {max_batch}"));
    }
    let mut containers = Vec::with_capacity(count);
    let mut offset = 4usize;
    for i in 0..count {
        if payload.len() - offset < 4 {
            return Err(format!("batch entry {i} is missing its length prefix"));
        }
        let len =
            u32::from_le_bytes(payload[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        offset += 4;
        if payload.len() - offset < len {
            return Err(format!("batch entry {i} announces {len} bytes past the payload end"));
        }
        containers.push(&payload[offset..offset + len]);
        offset += len;
    }
    if offset != payload.len() {
        return Err(format!("{} trailing bytes after the batch entries", payload.len() - offset));
    }
    Ok(containers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_bytes_matches_write_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, DECODE, b"payload").expect("write");
        assert_eq!(frame_bytes(DECODE, b"payload"), wire);
        assert_eq!(frame_bytes(PING, &[]), [PING, 0, 0, 0, 0]);
    }

    #[test]
    fn frame_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, DECODE, b"hello").expect("write");
        write_frame(&mut wire, PING, &[PROTOCOL_VERSION]).expect("write");
        let mut r = wire.as_slice();
        let (ty, payload) = read_frame(&mut r, 1024).expect("read").expect("frame");
        assert_eq!((ty, payload.as_slice()), (DECODE, b"hello".as_slice()));
        let (ty, payload) = read_frame(&mut r, 1024).expect("read").expect("frame");
        assert_eq!((ty, payload.as_slice()), (PING, [PROTOCOL_VERSION].as_slice()));
        assert!(read_frame(&mut r, 1024).expect("clean eof").is_none());
    }

    #[test]
    fn oversize_announcement_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, DECODE, &[0u8; 100]).expect("write");
        match read_frame(&mut wire.as_slice(), 99) {
            Err(FrameReadError::Oversize { announced: 100, limit: 99 }) => {}
            other => panic!("expected oversize, got {other:?}"),
        }
    }

    #[test]
    fn mid_frame_eof_is_an_io_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, DECODE, b"hello").expect("write");
        wire.truncate(wire.len() - 2);
        match read_frame(&mut wire.as_slice(), 1024) {
            Err(FrameReadError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn image_payload_round_trip() {
        let img = ImageU8::from_vec(3, 2, Channels::Rgb, (0..18).collect());
        let payload = encode_image(&img);
        let back = decode_image(&payload).expect("parse");
        assert_eq!(back.width(), 3);
        assert_eq!(back.height(), 2);
        assert_eq!(back.data(), img.data());
    }

    #[test]
    fn image_payload_rejects_malformations() {
        let img = ImageU8::from_vec(2, 2, Channels::Gray, vec![0; 4]);
        let good = encode_image(&img);
        assert!(decode_image(&good[..5]).is_err(), "short payload");
        let mut bad_channels = good.clone();
        bad_channels[8] = 2;
        assert!(decode_image(&bad_channels).is_err(), "channel byte 2");
        let mut extra = good;
        extra.push(0);
        assert!(decode_image(&extra).is_err(), "trailing sample");
    }

    #[test]
    fn batch_payload_round_trip() {
        let parts: [&[u8]; 3] = [b"one", b"", b"three"];
        let payload = encode_batch(&parts);
        let back = decode_batch_payload(&payload, 8).expect("parse");
        assert_eq!(back, parts);
        assert!(decode_batch_payload(&payload, 2).is_err(), "over the batch limit");
    }

    #[test]
    fn batch_payload_rejects_malformations() {
        let payload = encode_batch(&[b"abc".as_slice()]);
        assert!(decode_batch_payload(&payload[..2], 8).is_err(), "missing count");
        assert!(decode_batch_payload(&payload[..6], 8).is_err(), "missing entry length");
        assert!(decode_batch_payload(&payload[..payload.len() - 1], 8).is_err(), "short entry");
        let mut trailing = payload;
        trailing.push(9);
        assert!(decode_batch_payload(&trailing, 8).is_err(), "trailing bytes");
    }

    #[test]
    fn error_codes_round_trip_and_cover_easz_errors() {
        for code in [
            ErrorCode::BadMagic,
            ErrorCode::UnsupportedVersion,
            ErrorCode::Truncated,
            ErrorCode::Malformed,
            ErrorCode::MaskChannel,
            ErrorCode::UnknownCodec,
            ErrorCode::GeometryMismatch,
            ErrorCode::Codec,
            ErrorCode::InvalidConfig,
            ErrorCode::Protocol,
            ErrorCode::Oversize,
            ErrorCode::UnknownFrame,
            ErrorCode::Busy,
            ErrorCode::UnknownModel,
            ErrorCode::Internal,
            ErrorCode::DeadlineExceeded,
        ] {
            assert_eq!(ErrorCode::from_byte(code.value()), Some(code));
        }
        assert_eq!(ErrorCode::from_byte(0), None);
        assert_eq!(ErrorCode::Internal.value(), 37);
        assert_eq!(ErrorCode::DeadlineExceeded.value(), 38);
        assert_eq!(ErrorCode::of(&EaszError::BadMagic), ErrorCode::BadMagic);
        assert_eq!(ErrorCode::of(&EaszError::UnknownModel(7)), ErrorCode::UnknownModel);
        assert_eq!(ErrorCode::of(&EaszError::Internal("x".into())), ErrorCode::Internal);
        assert_eq!(ErrorCode::of(&EaszError::DeadlineExceeded), ErrorCode::DeadlineExceeded);
        assert_eq!(
            ErrorCode::of(&EaszError::Truncated { needed: 46, got: 0 }),
            ErrorCode::Truncated
        );
    }

    #[test]
    fn engine_tier_bytes_round_trip_and_reserved_bytes_are_none() {
        for tier in [EngineTier::Reference, EngineTier::QuantizedInt8] {
            assert_eq!(EngineTier::from_byte(tier.wire_byte()), Some(tier));
        }
        assert_eq!(EngineTier::from_byte(2), None);
        assert_eq!(EngineTier::from_byte(0xFF), None);
        assert_eq!(EngineTier::default(), EngineTier::Reference);
        assert_eq!(EngineTier::Reference.engine(), easz_core::DecodeEngine::TapeFree);
        assert_eq!(EngineTier::QuantizedInt8.engine(), easz_core::DecodeEngine::QuantizedInt8);
    }

    #[test]
    fn wire_error_round_trip() {
        let e = WireError { code: ErrorCode::UnknownCodec, message: "no codec#9".into() };
        let back = WireError::from_payload(&e.to_payload()).expect("parse");
        assert_eq!(back, e);
        assert!(WireError::from_payload(&[1]).is_err(), "short payload");
        assert!(WireError::from_payload(&[0, 0, 0]).is_err(), "unknown code");
    }
}

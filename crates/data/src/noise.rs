//! Seeded value noise (single-octave and fractal) used to give synthetic
//! images natural-texture statistics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic value-noise field over a 2-D lattice.
///
/// ```
/// use easz_data::noise::ValueNoise;
/// let n = ValueNoise::new(7, 16.0);
/// let a = n.sample(1.5, 2.5);
/// let b = n.sample(1.5, 2.5);
/// assert_eq!(a, b); // deterministic
/// assert!((0.0..=1.0).contains(&a));
/// ```
#[derive(Debug, Clone)]
pub struct ValueNoise {
    seed: u64,
    /// Lattice cell size in pixels.
    scale: f32,
}

impl ValueNoise {
    /// Creates a noise field with the given seed and lattice scale (pixels
    /// per lattice cell).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(seed: u64, scale: f32) -> Self {
        assert!(scale > 0.0, "noise scale must be positive");
        Self { seed, scale }
    }

    /// Hash of a lattice point to a value in `[0, 1]`.
    fn lattice(&self, xi: i64, yi: i64) -> f32 {
        let mut h = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((xi as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((yi as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Samples the noise at pixel coordinates (smoothstep-interpolated).
    pub fn sample(&self, x: f32, y: f32) -> f32 {
        let fx = x / self.scale;
        let fy = y / self.scale;
        let x0 = fx.floor();
        let y0 = fy.floor();
        let tx = smooth(fx - x0);
        let ty = smooth(fy - y0);
        let (xi, yi) = (x0 as i64, y0 as i64);
        let v00 = self.lattice(xi, yi);
        let v10 = self.lattice(xi + 1, yi);
        let v01 = self.lattice(xi, yi + 1);
        let v11 = self.lattice(xi + 1, yi + 1);
        let a = v00 + (v10 - v00) * tx;
        let b = v01 + (v11 - v01) * tx;
        a + (b - a) * ty
    }
}

fn smooth(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Fractal (multi-octave) value noise in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct FractalNoise {
    octaves: Vec<ValueNoise>,
    amplitudes: Vec<f32>,
    norm: f32,
}

impl FractalNoise {
    /// Builds `octaves` layers starting at `base_scale` pixels, halving the
    /// scale and the amplitude (persistence 0.5) per octave.
    ///
    /// # Panics
    ///
    /// Panics if `octaves` is zero or `base_scale` is not positive.
    pub fn new(seed: u64, base_scale: f32, octaves: usize) -> Self {
        assert!(octaves > 0, "need at least one octave");
        let mut layers = Vec::with_capacity(octaves);
        let mut amplitudes = Vec::with_capacity(octaves);
        let mut scale = base_scale;
        let mut amp = 1.0f32;
        for i in 0..octaves {
            layers.push(ValueNoise::new(seed.wrapping_add(i as u64 * 7919), scale.max(1.0)));
            amplitudes.push(amp);
            scale /= 2.0;
            amp /= 2.0;
        }
        let norm = amplitudes.iter().sum();
        Self { octaves: layers, amplitudes, norm }
    }

    /// Samples the fractal noise at pixel coordinates.
    pub fn sample(&self, x: f32, y: f32) -> f32 {
        let mut acc = 0.0;
        for (layer, &amp) in self.octaves.iter().zip(&self.amplitudes) {
            acc += amp * layer.sample(x, y);
        }
        acc / self.norm
    }
}

/// A convenience seeded RNG for dataset generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws a random sub-seed from an RNG (to decorrelate generator stages).
pub fn sub_seed(rng: &mut StdRng) -> u64 {
    rng.gen()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_in_unit_range() {
        let n = FractalNoise::new(3, 32.0, 4);
        for i in 0..500 {
            let v = n.sample(i as f32 * 0.73, i as f32 * 1.31);
            assert!((0.0..=1.0).contains(&v), "sample {v}");
        }
    }

    #[test]
    fn noise_is_smooth_locally() {
        let n = ValueNoise::new(9, 16.0);
        let a = n.sample(10.0, 10.0);
        let b = n.sample(10.5, 10.0);
        assert!((a - b).abs() < 0.25, "adjacent samples differ too much: {a} vs {b}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = ValueNoise::new(1, 8.0);
        let b = ValueNoise::new(2, 8.0);
        let diffs = (0..100)
            .filter(|&i| {
                let x = i as f32 * 3.7;
                (a.sample(x, x) - b.sample(x, x)).abs() > 1e-3
            })
            .count();
        assert!(diffs > 50, "seeds should decorrelate, only {diffs} samples differ");
    }

    #[test]
    fn noise_has_variance() {
        let n = ValueNoise::new(4, 8.0);
        let samples: Vec<f32> =
            (0..256).map(|i| n.sample((i % 16) as f32 * 5.0, (i / 16) as f32 * 5.0)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var =
            samples.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / samples.len() as f32;
        assert!(var > 0.01, "noise variance too small: {var}");
    }
}

//! # easz-data
//!
//! Seeded synthetic image datasets for the Easz reproduction (Mao et al.,
//! DAC 2025). Stand-ins for the paper's corpora:
//!
//! * [`Dataset::CifarLike`] — 32×32 pretraining tiles (CIFAR-10 role),
//! * [`Dataset::KodakLike`] — 768×512 test photographs (Kodak role),
//! * [`Dataset::ClicLike`] — 1152×768 high-detail test images (CLIC role).
//!
//! Scenes are painted procedurally (gradient backgrounds, anti-aliased
//! geometry, fractal texture, sensor noise) so that they carry the
//! natural-image statistics — smooth regions, strong edges, mid-frequency
//! texture — that the paper's comparisons depend on, while remaining exactly
//! reproducible from a seed. See `DESIGN.md` §1 for the substitution notes.
//!
//! ```
//! use easz_data::Dataset;
//! let img = Dataset::KodakLike.image(3);
//! assert_eq!((img.width(), img.height()), (768, 512));
//! ```

#![warn(missing_docs)]

mod datasets;
pub mod noise;
pub mod scene;

pub use datasets::{sample_patches, Dataset};

//! Named synthetic datasets standing in for CIFAR-10, Kodak and CLIC.
//!
//! The paper pretrains on CIFAR-10 (32×32 tiles) and evaluates on Kodak
//! (768×512) and CLIC (larger, more detailed photographs). The stand-ins
//! reproduce the *sizes* and the broad content statistics; see DESIGN.md §1
//! for the substitution rationale.

use crate::scene::{generate_scene, SceneConfig};
use easz_image::ImageF32;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which synthetic corpus to draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// 32×32 training tiles (CIFAR-10 stand-in).
    CifarLike,
    /// 768×512 photographic test images (Kodak stand-in).
    KodakLike,
    /// 1152×768 higher-detail test images (CLIC stand-in).
    ClicLike,
    /// 32×32 heavily textured tiles (foliage/fabric-dominated content) —
    /// the "textured" fine-tuning domain of the model zoo.
    TexturedLike,
    /// 32×32 flat, near-noiseless tiles (documents, walls, synthetic UI) —
    /// the "flat" fine-tuning domain of the model zoo.
    FlatLike,
}

impl Dataset {
    /// Image dimensions `(width, height)` for this dataset.
    pub fn dimensions(self) -> (usize, usize) {
        match self {
            Dataset::CifarLike | Dataset::TexturedLike | Dataset::FlatLike => (32, 32),
            Dataset::KodakLike => (768, 512),
            Dataset::ClicLike => (1152, 768),
        }
    }

    /// The per-image scene configuration.
    fn scene_config(self) -> SceneConfig {
        let (width, height) = self.dimensions();
        match self {
            Dataset::CifarLike => SceneConfig {
                width,
                height,
                objects: 3,
                texture: 0.3,
                micro_detail: 0.22,
                sensor_noise: 0.015,
            },
            Dataset::KodakLike => SceneConfig {
                width,
                height,
                objects: 10,
                texture: 0.3,
                micro_detail: 0.22,
                sensor_noise: 0.008,
            },
            Dataset::ClicLike => SceneConfig {
                width,
                height,
                objects: 16,
                texture: 0.4,
                micro_detail: 0.24,
                sensor_noise: 0.006,
            },
            // The two fine-tuning domains deliberately sit at opposite ends
            // of the texture/detail axis so the zoo's per-domain models have
            // genuinely different statistics to specialise to.
            Dataset::TexturedLike => SceneConfig {
                width,
                height,
                objects: 2,
                texture: 0.85,
                micro_detail: 0.38,
                sensor_noise: 0.015,
            },
            Dataset::FlatLike => SceneConfig {
                width,
                height,
                objects: 4,
                texture: 0.02,
                micro_detail: 0.02,
                sensor_noise: 0.004,
            },
        }
    }

    /// Generates image `index` of this dataset (deterministic).
    pub fn image(self, index: usize) -> ImageF32 {
        let tag = match self {
            Dataset::CifarLike => 0x1000_0000u64,
            Dataset::KodakLike => 0x2000_0000u64,
            Dataset::ClicLike => 0x3000_0000u64,
            Dataset::TexturedLike => 0x4000_0000u64,
            Dataset::FlatLike => 0x5000_0000u64,
        };
        generate_scene(&self.scene_config(), tag + index as u64)
    }

    /// Generates the first `count` images.
    pub fn images(self, count: usize) -> Vec<ImageF32> {
        (0..count).map(|i| self.image(i)).collect()
    }
}

/// Samples `count` random square patches of side `size` from a slice of
/// images (the training-batch source).
///
/// # Panics
///
/// Panics if `images` is empty or any image is smaller than `size`.
pub fn sample_patches(images: &[ImageF32], size: usize, count: usize, seed: u64) -> Vec<ImageF32> {
    assert!(!images.is_empty(), "need at least one source image");
    let mut r = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let img = &images[r.gen_range(0..images.len())];
        assert!(
            img.width() >= size && img.height() >= size,
            "image {}x{} smaller than patch {size}",
            img.width(),
            img.height()
        );
        let x0 = r.gen_range(0..=img.width() - size);
        let y0 = r.gen_range(0..=img.height() - size);
        out.push(img.crop(x0, y0, size, size));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_dimensions_match_paper_sources() {
        assert_eq!(Dataset::CifarLike.dimensions(), (32, 32));
        assert_eq!(Dataset::KodakLike.dimensions(), (768, 512));
        let (w, h) = Dataset::ClicLike.dimensions();
        assert!(w > 768 && h > 512, "CLIC-like should be larger than Kodak-like");
    }

    #[test]
    fn images_are_deterministic_and_distinct() {
        let a = Dataset::KodakLike.image(0);
        let b = Dataset::KodakLike.image(0);
        let c = Dataset::KodakLike.image(1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.width(), 768);
        assert_eq!(a.height(), 512);
    }

    #[test]
    fn datasets_are_decorrelated() {
        let a = Dataset::CifarLike.image(0);
        let b = Dataset::CifarLike.image(1);
        assert_ne!(a, b);
    }

    #[test]
    fn finetuning_domains_sit_at_opposite_texture_extremes() {
        // Mean absolute horizontal gradient as a cheap texture proxy: the
        // textured domain must be markedly busier than the flat one, or the
        // zoo's per-domain specialisation has nothing to learn.
        let energy = |d: Dataset| {
            let mut acc = 0.0f64;
            let mut count = 0usize;
            for img in d.images(6) {
                for y in 0..img.height() {
                    for x in 0..img.width() - 1 {
                        acc += (img.get(x + 1, y, 0) - img.get(x, y, 0)).abs() as f64;
                        count += 1;
                    }
                }
            }
            acc / count as f64
        };
        let textured = energy(Dataset::TexturedLike);
        let flat = energy(Dataset::FlatLike);
        assert!(
            textured > flat * 3.0,
            "domains must be statistically distinct: textured {textured:.4} flat {flat:.4}"
        );
        assert_eq!(Dataset::TexturedLike.dimensions(), (32, 32));
        assert_eq!(Dataset::FlatLike.dimensions(), (32, 32));
    }

    #[test]
    fn sample_patches_shape_and_determinism() {
        let imgs = Dataset::CifarLike.images(4);
        let p1 = sample_patches(&imgs, 16, 8, 42);
        let p2 = sample_patches(&imgs, 16, 8, 42);
        assert_eq!(p1.len(), 8);
        assert_eq!(p1, p2);
        assert!(p1.iter().all(|p| p.width() == 16 && p.height() == 16));
    }

    #[test]
    #[should_panic(expected = "smaller than patch")]
    fn sample_patches_rejects_oversize() {
        let imgs = Dataset::CifarLike.images(1);
        let _ = sample_patches(&imgs, 64, 1, 0);
    }
}

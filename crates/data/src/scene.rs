//! Procedural natural-image-like scene painting.
//!
//! The generators compose the three ingredients that drive every comparison
//! in the paper: smooth shaded regions (sky/walls), strong edges (object
//! boundaries) and mid-frequency texture (foliage, fabric). Mild sensor
//! noise is added last so images are not unrealistically clean.

use crate::noise::{rng, sub_seed, FractalNoise};
use easz_image::{Channels, ImageF32};
use rand::rngs::StdRng;
use rand::Rng;

/// Knobs for [`generate_scene`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneConfig {
    /// Output width in pixels.
    pub width: usize,
    /// Output height in pixels.
    pub height: usize,
    /// Number of geometric objects painted over the background.
    pub objects: usize,
    /// Texture strength in `[0, 1]` (mid-frequency fractal texture).
    pub texture: f32,
    /// Pixel-scale luminance detail amplitude in `[0, 1]`. This is the
    /// content that 2x downsampling destroys but Easz's kept pixels
    /// preserve exactly — without it, synthetic scenes are unrealistically
    /// easy for super-resolution (Table I's comparison would invert).
    pub micro_detail: f32,
    /// Standard deviation of the additive sensor noise.
    pub sensor_noise: f32,
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self {
            width: 256,
            height: 256,
            objects: 8,
            texture: 0.25,
            micro_detail: 0.08,
            sensor_noise: 0.01,
        }
    }
}

/// Paints one deterministic scene for `seed`.
///
/// The same `(config, seed)` pair always produces the identical image, so
/// experiments are exactly reproducible.
///
/// # Panics
///
/// Panics if the configured size is zero.
pub fn generate_scene(config: &SceneConfig, seed: u64) -> ImageF32 {
    assert!(config.width > 0 && config.height > 0, "scene size must be nonzero");
    let mut r = rng(seed);
    let (w, h) = (config.width, config.height);
    let mut img = ImageF32::new(w, h, Channels::Rgb);

    // 1. Background: a smooth two-point colour gradient plus low-frequency
    //    illumination noise.
    let c0 = random_color(&mut r);
    let c1 = random_color(&mut r);
    let angle: f32 = r.gen_range(0.0..std::f32::consts::TAU);
    let (dx, dy) = (angle.cos(), angle.sin());
    let illum = FractalNoise::new(sub_seed(&mut r), (w.max(h) as f32 / 2.0).max(8.0), 2);
    for y in 0..h {
        for x in 0..w {
            let t = ((x as f32 * dx + y as f32 * dy) / (w + h) as f32 + 0.5).clamp(0.0, 1.0);
            let shade = 0.85 + 0.3 * illum.sample(x as f32, y as f32);
            for c in 0..3 {
                let v = (c0[c] + (c1[c] - c0[c]) * t) * shade;
                img.set(x, y, c, v.clamp(0.0, 1.0));
            }
        }
    }

    // 2. Objects: anti-aliased ellipses and rotated rectangles with their own
    //    flat-ish colour, creating the strong edges codecs must preserve.
    for _ in 0..config.objects {
        paint_object(&mut img, &mut r);
    }

    // 3. Texture: fractal noise modulating luma.
    if config.texture > 0.0 {
        let tex = FractalNoise::new(sub_seed(&mut r), 24.0, 4);
        let strength = config.texture * 0.25;
        for y in 0..h {
            for x in 0..w {
                let m = 1.0 + strength * (tex.sample(x as f32, y as f32) - 0.5) * 2.0;
                for c in 0..3 {
                    let v = img.get(x, y, c) * m;
                    img.set(x, y, c, v.clamp(0.0, 1.0));
                }
            }
        }
    }

    // 3b. Pixel-scale luminance detail (fine texture: fabric weave, grain,
    //     foliage speckle). Two layers: a 2-px value-noise component (at the
    //     Nyquist limit of a 2x downsample) and a 1-px component that no
    //     downsample-upsample path can recover. Added equally to all
    //     channels so chroma stays smooth, like real sensors after
    //     demosaicing.
    if config.micro_detail > 0.0 {
        let near = crate::noise::ValueNoise::new(sub_seed(&mut r), 2.0);
        let fine = crate::noise::ValueNoise::new(sub_seed(&mut r), 1.0);
        let amp = config.micro_detail;
        for y in 0..h {
            for x in 0..w {
                let dv = amp
                    * (0.5 * (near.sample(x as f32, y as f32) - 0.5)
                        + 0.5 * (fine.sample(x as f32, y as f32) - 0.5));
                for c in 0..3 {
                    let v = img.get(x, y, c) + dv;
                    img.set(x, y, c, v.clamp(0.0, 1.0));
                }
            }
        }
    }

    // 4. Sensor noise.
    if config.sensor_noise > 0.0 {
        for v in img.data_mut() {
            let u1: f32 = r.gen_range(1e-7f32..1.0);
            let u2: f32 = r.gen_range(0.0f32..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            *v = (*v + z * config.sensor_noise).clamp(0.0, 1.0);
        }
    }
    img
}

fn random_color(r: &mut StdRng) -> [f32; 3] {
    // Bias towards natural, desaturated palettes.
    let base: f32 = r.gen_range(0.15..0.85);
    [
        (base + r.gen_range(-0.25..0.25f32)).clamp(0.0, 1.0),
        (base + r.gen_range(-0.25..0.25f32)).clamp(0.0, 1.0),
        (base + r.gen_range(-0.25..0.25f32)).clamp(0.0, 1.0),
    ]
}

fn paint_object(img: &mut ImageF32, r: &mut StdRng) {
    let (w, h) = (img.width() as f32, img.height() as f32);
    let cx = r.gen_range(0.0..w);
    let cy = r.gen_range(0.0..h);
    let rx = r.gen_range(w * 0.04..w * 0.25);
    let ry = r.gen_range(h * 0.04..h * 0.25);
    let rot: f32 = r.gen_range(0.0..std::f32::consts::PI);
    let color = random_color(r);
    let rectangular = r.gen_bool(0.4);
    let (sin, cos) = rot.sin_cos();
    let x0 = ((cx - rx.max(ry) - 2.0).floor().max(0.0)) as usize;
    let x1 = ((cx + rx.max(ry) + 2.0).ceil().min(w - 1.0)) as usize;
    let y0 = ((cy - rx.max(ry) - 2.0).floor().max(0.0)) as usize;
    let y1 = ((cy + rx.max(ry) + 2.0).ceil().min(h - 1.0)) as usize;
    for y in y0..=y1 {
        for x in x0..=x1 {
            let ox = x as f32 - cx;
            let oy = y as f32 - cy;
            let u = (ox * cos + oy * sin) / rx;
            let v = (-ox * sin + oy * cos) / ry;
            // Signed "distance" to the shape boundary (approximate).
            let d =
                if rectangular { u.abs().max(v.abs()) - 1.0 } else { (u * u + v * v).sqrt() - 1.0 };
            // Anti-aliased coverage over ~1.5px falloff.
            let edge = rx.min(ry).max(1.0);
            let cover = (0.5 - d * edge / 1.5).clamp(0.0, 1.0);
            if cover > 0.0 {
                for (c, &fg) in color.iter().enumerate() {
                    let bg = img.get(x, y, c);
                    img.set(x, y, c, bg + (fg - bg) * cover);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = SceneConfig { width: 64, height: 48, ..Default::default() };
        let a = generate_scene(&cfg, 5);
        let b = generate_scene(&cfg, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_produce_different_images() {
        let cfg = SceneConfig { width: 64, height: 48, ..Default::default() };
        let a = generate_scene(&cfg, 1);
        let b = generate_scene(&cfg, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn values_in_unit_interval() {
        let cfg = SceneConfig { width: 96, height: 64, ..Default::default() };
        let img = generate_scene(&cfg, 11);
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn scene_has_edges_and_smooth_regions() {
        // Natural-image statistics sanity check: the gradient-magnitude
        // histogram should be heavy at ~0 (smooth areas) with a tail (edges).
        let cfg = SceneConfig { width: 128, height: 128, sensor_noise: 0.0, ..Default::default() };
        let img = generate_scene(&cfg, 23);
        let y = easz_image::color::luma(&img);
        let mut small = 0usize;
        let mut large = 0usize;
        for yy in 1..127 {
            for xx in 1..127 {
                let g = (y.get(xx + 1, yy, 0) - y.get(xx, yy, 0)).abs()
                    + (y.get(xx, yy + 1, 0) - y.get(xx, yy, 0)).abs();
                if g < 0.06 {
                    small += 1;
                }
                if g > 0.2 {
                    large += 1;
                }
            }
        }
        assert!(small > 4000, "expected smooth regions, got {small}");
        assert!(large > 20, "expected edges, got {large}");
    }
}

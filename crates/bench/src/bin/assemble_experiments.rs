//! Assembles `EXPERIMENTS.md` from the archived harness outputs in
//! `target/easz-results/`, pairing each with the paper's reported values
//! and the shape verdict. Run after `scripts/run_all_experiments.sh`.

use std::fmt::Write as _;
use std::path::PathBuf;

struct Section {
    file: &'static str,
    title: &'static str,
    paper: &'static str,
    shape: &'static str,
}

const SECTIONS: &[Section] = &[
    Section {
        file: "fig1_edge_gap",
        title: "Fig. 1 — the edge gap (TX2, 512×768)",
        paper: "transmission 151-163 ms; load 286 / 552 / 1361 / 11600 ms; \
                encode 374 / 413 / 17952 / 18015 ms (Ballé-fact., Ballé-hyper., MBT, Cheng)",
        shape: "load and encode dwarf transmission by 1-2 orders of magnitude \
                for the autoregressive codecs; magnitudes calibrated within ~15%",
    },
    Section {
        file: "fig3_mask_vs_random",
        title: "Fig. 3 — proposed vs random masks",
        paper: "proposed mask: higher JPEG file-saving ratio and lower reconstruction \
                MSE than random masks at every erase ratio (10-30%), p ∈ {1, 2}",
        shape: "easz rows dominate rand rows on both columns",
    },
    Section {
        file: "table1_sr_comparison",
        title: "Table I / Fig. 4 — Easz vs super-resolution",
        paper: "PSNR 28.96 vs 24.85-25.35; MS-SSIM 0.96 vs 0.93-0.94; model 8.7 MB vs 67 MB",
        shape: "Easz above every SR row on PSNR and MS-SSIM with a ~8x smaller model",
    },
    Section {
        file: "fig6_efficiency",
        title: "Fig. 6 — efficiency on the TX2 testbed",
        paper: "erase+squeeze ≈ 0.7% of end-to-end, reconstruction ≈ 74%, Easz ≈ 2.5 s vs \
                ~20 s; power −71.3% / −59.9% with 0 GPU W; memory 1.05 / 1.93 / 1.98 GB",
        shape: "same breakdown structure, same power/memory orderings",
    },
    Section {
        file: "fig7_ablation",
        title: "Fig. 7(a)(b) — mask strategy through JPEG/BPG",
        paper: "codec+Easz(proposed) reaches better BPP at the same BRISQUE than the \
                plain codec; proposed mask beats random",
        shape: "+easz bpp below plain at comparable brisque; proposed <= random",
    },
    Section {
        file: "fig7_patch_size",
        title: "Fig. 7(c) — erase-block size and ratio",
        paper: "MSE rises with erase ratio; b=1 slowest/best, b=4 ~2x faster and ~2x worse \
                than b=2; b=2 recommended",
        shape: "same monotonicities and ordering",
    },
    Section {
        file: "fig7_finetune",
        title: "Fig. 7(d) — fine-tuning on the target domain",
        paper: "losses fall with fine-tuning for patch sizes 1, 2 and 4",
        shape: "every curve decreases",
    },
    Section {
        file: "table2_enhancement",
        title: "Table II — enhancement of existing codecs",
        paper: "at ~0.4 bpp (Kodak) / ~0.3 bpp (CLIC): +Easz lowers BRISQUE by 7-21 points \
                and PI slightly, raises TReS, at equal-or-lower BPP for all four codecs",
        shape: "+easz improves the perceptual metrics at matched bpp for every codec",
    },
    Section {
        file: "fig8_end_to_end",
        title: "Fig. 8 — end-to-end perception and latency across bitrates",
        paper: "JPEG+Easz matches or beats MBT on BRISQUE/PI/TReS, approaches Cheng; \
                end-to-end latency 2568 ms avg, −89% vs MBT/Cheng",
        shape: "jpeg+easz far above plain jpeg, in the neural codecs' band; latency ~10x lower",
    },
    Section {
        file: "ablation_extras",
        title: "Extra ablations (beyond the paper)",
        paper: "n/a — design-choice checks called out in DESIGN.md §4",
        shape: "horizontal ≈ vertical squeeze; constrained sampler at or below delta=0 MSE",
    },
];

fn main() -> std::io::Result<()> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let results = root.join("target/easz-results");
    let mut out = String::new();
    out.push_str(
        "# EXPERIMENTS — paper vs. measured\n\n\
         One archived run of every table and figure harness (`cargo bench -p easz-bench`).\n\
         Absolute numbers are not expected to match the authors' physical testbed — data is\n\
         synthetic, neural codecs are simulated and the testbed is analytic (DESIGN.md §1) —\n\
         the **shape** line under each section records the qualitative claim that must (and\n\
         does) reproduce. Regenerate with `scripts/run_all_experiments.sh` followed by\n\
         `cargo run --release -p easz-bench --bin assemble_experiments`.\n",
    );
    for s in SECTIONS {
        let _ = write!(
            out,
            "\n## {}\n\n**Paper:** {}\n\n**Shape target:** {}\n\n",
            s.title, s.paper, s.shape
        );
        let path = results.join(format!("{}.txt", s.file));
        match std::fs::read_to_string(&path) {
            Ok(body) => {
                out.push_str("**Measured (this machine):**\n\n```text\n");
                out.push_str(body.trim_end());
                out.push_str("\n```\n");
            }
            Err(_) => {
                let _ = writeln!(
                    out,
                    "*(no archived run found — run `cargo bench -p easz-bench --bench {}`)*",
                    s.file
                );
            }
        }
    }
    out.push_str(
        "\n## Kernel micro-benchmarks\n\nSee `cargo bench -p easz-bench --bench \
         criterion_kernels` for DCT / entropy-coder / mask / squeeze / transformer-forward \
         timings on this machine (criterion reports under `target/criterion/`).\n",
    );
    out.push_str(
        "\n## Known deviations from the paper\n\n\
         * **Absolute bitrates** sit higher than the paper's 0.3-1.2 bpp sweep: the synthetic\n\
           scenes carry deliberately irreducible pixel-scale detail (DESIGN.md §1), so the\n\
           matched-rate experiments run at 0.7-2.0 bpp. Orderings are unaffected.\n\
         * **Table I MS-SSIM at r = 0.25**: the quick bench reconstructor (trained ~1-2 min on\n\
           CPU, vs the paper's 5000 GPU epochs) leaves mild block structure in in-painted\n\
           regions, so at the paper's erase ratio its MS-SSIM lands below the SwinIR/BSRGAN\n\
           stand-ins even though PSNR is above all three. At r = 0.125 Easz leads the paper's\n\
           three SR baselines on both metrics, as in the paper.\n\
         * **Cheng-anchor load latency** (Fig. 1) uses a calibrated per-model initialisation\n\
           term (the paper's 11.6 s includes framework graph-build for the GMM + attention\n\
           stack, which an analytic model cannot derive from first principles).\n\
         * **TReS / PI / BRISQUE absolute values** follow our recalibrated scoring rules\n\
           (DESIGN.md §1); polarity and distortion sensitivity match the originals.\n\
         * **Grain synthesis** (`EaszConfig::synthesize_grain`, on by default) stands in for\n\
           the texture richness a fully-trained perceptual decoder produces; Table I reports\n\
           the PSNR-optimal (grain-off) decoding mode, the perceptual experiments the default.\n\
         * **Fig. 3's proposed-vs-random separation is noise-limited** at our training scale:\n\
           the ordering holds at the paper's 25% erase ratio but mixes at other ratios,\n\
           because the reconstructor's structure error (not mask adjacency) dominates MSE.\n\
           File-saving ratios are near-identical by construction (both families erase T\n\
           sub-patches per row). The paper's clearer curves need its 5000-epoch model.\n",
    );
    std::fs::write(root.join("EXPERIMENTS.md"), out)?;
    println!("EXPERIMENTS.md assembled");
    Ok(())
}

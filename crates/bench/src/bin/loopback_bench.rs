//! Serving-tier loopback bench: a thousand concurrent connections, one
//! `DECODE` each, against the thread-per-connection front end and the epoll
//! reactor. Both servers run the same gateway (queue deep enough that
//! nothing sheds — a `BUSY` reply panics the sweep), so the measured
//! difference is the connection layer itself.
//!
//! This lives in its own binary, not `decode_bench`, on purpose: linking
//! the server stack into `decode_bench` measurably perturbs its in-process
//! kernel numbers (code layout), and a sweep churns through a thousand
//! sockets — and, on the threaded path, a thousand thread stacks — which
//! would pollute interleaved kernel rounds. Run `decode_bench` first; this
//! binary then splices its rows and summary ratio into the fresh
//! `BENCH_decode.json`.
//!
//! ```text
//! cargo run --release -p easz-bench --bin decode_bench             # step 1
//! cargo run --release -p easz-bench --bin loopback_bench           # step 2
//! cargo run --release -p easz-bench --bin loopback_bench -- --quick
//! cargo run --release -p easz-bench --bin loopback_bench -- --diag # metrics, no patch
//! ```
//!
//! `--diag` prints each server's metrics snapshot (batch-width histogram,
//! queue-wait/decode/service percentiles from the always-on log2 latency
//! histograms) after the sweeps and skips the JSON patch — the tool that
//! caught the reactor's shallow accept backlog.

use easz_codecs::{JpegLikeCodec, Quality};
use easz_core::{EaszConfig, EaszEncoder, Reconstructor, ReconstructorConfig};
use easz_data::Dataset;
use easz_server::{protocol, EaszServer, GatewayConfig, ReactorConfig};
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Connections per sweep — the "thousands of senders" regime the reactor
/// front end exists for.
const CONNS: usize = 1024;

/// One measured front end: sweep iterations and their total wall time.
struct Row {
    name: String,
    iters: u64,
    total_ns: u128,
}

impl Row {
    /// Wall-clock per *served connection* (one container each).
    fn ns_per_container(&self) -> f64 {
        self.total_ns as f64 / (self.iters as f64 * CONNS as f64)
    }

    fn containers_per_sec(&self) -> f64 {
        1e9 / self.ns_per_container()
    }
}

/// One loopback sweep: open `CONNS` connections, write one `DECODE` on each
/// (the 8 fleet mask seeds cycled), then read every reply back. Panics on
/// anything but an `IMAGE` frame, so a dropped or shed reply fails the
/// bench instead of flattering it.
fn sweep(addr: SocketAddr, wires: &[Vec<u8>]) {
    let mut socks = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let mut sock = TcpStream::connect(addr).expect("loopback connect");
        sock.set_read_timeout(Some(Duration::from_secs(120))).expect("read timeout");
        protocol::write_frame(&mut sock, protocol::DECODE, &wires[i % wires.len()])
            .expect("loopback write");
        socks.push(sock);
    }
    for (i, sock) in socks.iter_mut().enumerate() {
        let (ty, _payload) =
            protocol::read_frame(sock, 1 << 24).expect("loopback read").expect("reply frame");
        assert_eq!(ty, protocol::IMAGE, "connection {i} must be answered with its image");
    }
}

/// The mixed-mask fleet wires (matches `decode_bench`'s fleet scenario:
/// distinct mask seeds, same geometry, tile32).
fn fleet_wires(count: usize, side: usize) -> Vec<Vec<u8>> {
    let codec = JpegLikeCodec::new();
    (0..count)
        .map(|i| {
            let encoder =
                EaszEncoder::new(EaszConfig { mask_seed: 1 + i as u64, ..EaszConfig::default() })
                    .expect("encoder");
            let img = Dataset::KodakLike.image(i).crop(0, 0, side, side);
            encoder.compress(&img, &codec, Quality::new(75)).expect("compress").to_bytes()
        })
        .collect()
}

/// One front end under measurement: name, sweep routine, completed
/// iterations, accumulated wall time.
type SweepCase<'a> = (String, Box<dyn FnMut() + 'a>, u64, u128);

/// Interleaved-round timing over the front ends (same discipline as
/// `decode_bench::run_cases`): order rotates per round so host drift is
/// spread across both, and each routine runs once un-timed to warm the
/// servers' plan caches and arenas.
fn run_rounds(cases: &mut [SweepCase<'_>], rounds: usize) -> Vec<Row> {
    for (_, routine, _, _) in cases.iter_mut() {
        routine();
    }
    for round in 0..rounds {
        for idx in 0..cases.len() {
            let case = &mut cases[(round + idx) % cases.len()];
            let start = Instant::now();
            case.1();
            case.2 += 1;
            case.3 += start.elapsed().as_nanos();
        }
    }
    cases.iter().map(|c| Row { name: c.0.clone(), iters: c.2, total_ns: c.3 }).collect()
}

/// Splices the measured rows (and, when the reactor ran, the
/// reactor-vs-threaded summary ratio), plus each front end's p50/p99
/// service-time percentiles, into the `BENCH_decode.json` that
/// `decode_bench` wrote. Refuses to patch twice: re-run `decode_bench`
/// for a fresh file first.
fn patch_json(rows: &[Row], speedup: Option<f64>, latency: &[(&str, &easz_server::ServerStats)]) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decode.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {} (run decode_bench first): {e}", path.display()));
    assert!(
        !text.contains("\"mode\": \"loopback\""),
        "{} already holds loopback rows; re-run decode_bench for a fresh file",
        path.display()
    );

    let mut inserted = String::new();
    for r in rows {
        let _ = write!(
            inserted,
            ",\n    {{ \"name\": \"{}\", \"engine\": \"tape_free\", \"mode\": \"loopback\", \"tile_px\": 32, \"batch\": {CONNS}, \"iters\": {}, \"total_ns\": {}, \"ns_per_container\": {:.1}, \"containers_per_sec\": {:.2} }}",
            r.name,
            r.iters,
            r.total_ns,
            r.ns_per_container(),
            r.containers_per_sec(),
        );
    }
    inserted.push('\n');
    let results_end = "\n  ],\n  \"summary\": {\n";
    assert!(text.contains(results_end), "unrecognized BENCH_decode.json layout");
    let mut patched =
        text.replacen(results_end, &format!("{}  ],\n  \"summary\": {{\n", inserted), 1);
    let mut summary_rows = String::new();
    if !latency.is_empty() {
        let fields: Vec<String> = latency
            .iter()
            .map(|(name, snap)| {
                format!(
                    "\"{name}\": {{ \"p50\": {}, \"p99\": {} }}",
                    snap.service_percentile_us(0.50),
                    snap.service_percentile_us(0.99)
                )
            })
            .collect();
        let _ = writeln!(
            summary_rows,
            "    \"loopback_service_latency_us\": {{ {} }},",
            fields.join(", ")
        );
    }
    if let Some(ratio) = speedup {
        let _ = writeln!(
            summary_rows,
            "    \"loopback_reactor_speedup_vs_threaded\": {{ \"x{CONNS}\": {ratio:.3} }},"
        );
    }
    if !summary_rows.is_empty() {
        let summary_start = "  \"summary\": {\n";
        patched = patched.replacen(summary_start, &format!("  \"summary\": {{\n{summary_rows}"), 1);
    }
    std::fs::write(&path, patched).expect("write BENCH_decode.json");
    println!("patched {}", path.display());
}

/// Service-time percentile lines for one front end, read from the always-on
/// log2 latency histograms — the same numbers `easz-top` renders live.
fn print_latency_diag(name: &str, snap: &easz_server::ServerStats) {
    eprintln!(
        "{name}:  queue-wait p50={} p99={}  decode p50={} p99={}  service p50={} p99={} (µs)",
        snap.queue_wait_percentile_us(0.50),
        snap.queue_wait_percentile_us(0.99),
        snap.decode_percentile_us(0.50),
        snap.decode_percentile_us(0.99),
        snap.service_percentile_us(0.50),
        snap.service_percentile_us(0.99),
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 3 } else { 8 };
    let model = Arc::new(Reconstructor::new(ReconstructorConfig::fast()));
    let wires = fleet_wires(8, 32);
    let gateway = GatewayConfig {
        max_batch: 8,
        max_wait_us: 2_000,
        workers: 2,
        queue_depth: 2 * CONNS,
        adaptive_wait: true,
        deadline_us: 0,
    };

    let threaded = EaszServer::new(model.clone())
        .with_gateway(gateway.clone())
        .spawn("127.0.0.1:0")
        .expect("spawn threaded loopback server");
    let reactor = if cfg!(target_os = "linux") {
        Some(
            EaszServer::new(model.clone())
                .with_gateway(gateway)
                .with_reactor(ReactorConfig { max_connections: 2 * CONNS, ..Default::default() })
                .spawn("127.0.0.1:0")
                .expect("spawn reactor loopback server"),
        )
    } else {
        None
    };

    let mut cases: Vec<SweepCase<'_>> = Vec::new();
    {
        let (addr, wires) = (threaded.addr(), &wires);
        cases.push((
            format!("loopback_x{CONNS}_threaded"),
            Box::new(move || sweep(addr, wires)),
            0,
            0,
        ));
    }
    if let Some(handle) = &reactor {
        let (addr, wires) = (handle.addr(), &wires);
        cases.push((
            format!("loopback_x{CONNS}_reactor"),
            Box::new(move || sweep(addr, wires)),
            0,
            0,
        ));
    }
    let rows = run_rounds(&mut cases, rounds);
    drop(cases);

    let diag = std::env::args().any(|a| a == "--diag");
    let threaded_snap = threaded.metrics().snapshot();
    let reactor_snap = reactor.as_ref().map(|h| h.metrics().snapshot());
    if diag {
        let t = &threaded_snap;
        eprintln!(
            "threaded: batches={} widths={:?} decode_us={} queue_wait_us={} ewma={}",
            t.batches_dispatched, t.batch_widths, t.decode_us, t.queue_wait_us, t.arrival_ewma_us
        );
        print_latency_diag("threaded", t);
    }
    if let Some(handle) = reactor {
        let snap = reactor_snap.as_ref().expect("reactor snapshot");
        if diag {
            eprintln!(
                "reactor:  batches={} widths={:?} decode_us={} queue_wait_us={} ewma={}",
                snap.batches_dispatched,
                snap.batch_widths,
                snap.decode_us,
                snap.queue_wait_us,
                snap.arrival_ewma_us
            );
            print_latency_diag("reactor", snap);
        }
        let shed = snap.requests_shed;
        assert_eq!(shed, 0, "the loopback sweep must complete without shedding");
        handle.shutdown().expect("reactor loopback shutdown");
    }
    threaded.shutdown().expect("threaded loopback shutdown");

    println!("== loopback_bench ({}) ==", if quick { "quick" } else { "full" });
    for r in &rows {
        println!(
            "{:<28} {:>10.1} µs/conn  ({:>8.1} conns/s, {} sweeps)",
            r.name,
            r.ns_per_container() / 1e3,
            r.containers_per_sec(),
            r.iters
        );
    }
    let speedup = rows
        .iter()
        .find(|r| r.name.ends_with("_reactor"))
        .map(|r| rows[0].ns_per_container() / r.ns_per_container());
    if let Some(ratio) = speedup {
        println!("loopback x{CONNS} served connections, reactor vs threaded: {ratio:.2}x");
    }
    if !diag {
        let mut latency: Vec<(&str, &easz_server::ServerStats)> =
            vec![("threaded", &threaded_snap)];
        if let Some(snap) = &reactor_snap {
            latency.push(("reactor", snap));
        }
        patch_json(&rows, speedup, &latency);
    }
}

//! `.easz` decode-throughput bench with machine-readable output: serial and
//! batched decode, tape (`Graph`) vs tape-free (`InferenceSession`) engines.
//!
//! Writes `BENCH_decode.json` at the repository root — the perf trajectory
//! future PRs regress against — and prints a human summary. Both engines are
//! measured from the same binary on the same containers, so the ratios are
//! apples-to-apples on whatever machine runs this.
//!
//! ```text
//! cargo run --release -p easz-bench --bin decode_bench            # full
//! cargo run --release -p easz-bench --bin decode_bench -- --quick # CI
//! ```

use easz_codecs::{JpegLikeCodec, Quality};
use easz_core::{
    patch_tokens, DecodeEngine, DecodePlan, EaszConfig, EaszDecoder, EaszEncoded, EaszEncoder,
    Patchified, Reconstructor, ReconstructorConfig, TokenBatch,
};
use easz_data::Dataset;
use easz_tensor::ScratchArena;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One measured configuration.
struct Row {
    name: String,
    engine: &'static str,
    mode: &'static str,
    tile_px: usize,
    batch: usize,
    iters: u64,
    total_ns: u128,
}

impl Row {
    fn ns_per_container(&self) -> f64 {
        self.total_ns as f64 / (self.iters as f64 * self.batch as f64)
    }

    fn containers_per_sec(&self) -> f64 {
        1e9 / self.ns_per_container()
    }
}

/// A measurement case: a routine plus the row metadata it produces.
struct Case<'a> {
    name: String,
    engine: &'static str,
    mode: &'static str,
    tile_px: usize,
    batch: usize,
    routine: Box<dyn FnMut() + 'a>,
    iters: u64,
    total_ns: u128,
}

/// Times every case in interleaved rounds (case order rotates within one
/// round-robin sweep per round) so slow clock/thermal drift on the host is
/// spread evenly across cases instead of biasing whichever ran last.
fn run_cases(cases: &mut [Case<'_>], per_round: Duration, rounds: usize) -> Vec<Row> {
    for case in cases.iter_mut() {
        (case.routine)(); // warm caches, plans and arenas once
    }
    for round in 0..rounds {
        for idx in 0..cases.len() {
            let case = &mut cases[(round + idx) % cases.len()];
            let start = Instant::now();
            let mut iters = 0u64;
            while start.elapsed() < per_round || iters == 0 {
                (case.routine)();
                iters += 1;
            }
            case.iters += iters;
            case.total_ns += start.elapsed().as_nanos();
        }
    }
    cases
        .iter()
        .map(|c| Row {
            name: c.name.clone(),
            engine: c.engine,
            mode: c.mode,
            tile_px: c.tile_px,
            batch: c.batch,
            iters: c.iters,
            total_ns: c.total_ns,
        })
        .collect()
}

/// Same-geometry containers with distinct content (one encoder config =>
/// one shared mask => batched decode runs a single forward per call).
fn containers(count: usize, side: usize) -> Vec<EaszEncoded> {
    let encoder = EaszEncoder::new(EaszConfig::default()).expect("encoder");
    let codec = JpegLikeCodec::new();
    (0..count)
        .map(|i| {
            let img = Dataset::KodakLike.image(i).crop(0, 0, side, side);
            encoder.compress(&img, &codec, Quality::new(75)).expect("compress")
        })
        .collect()
}

/// The mixed-mask fleet: one container per *distinct* mask seed (same
/// geometry and erase ratio, different erase positions) — the realistic
/// many-sender shape that only the multi-mask fused forward can batch.
fn fleet_containers(count: usize, side: usize) -> Vec<EaszEncoded> {
    let codec = JpegLikeCodec::new();
    let fleet: Vec<EaszEncoded> = (0..count)
        .map(|i| {
            let encoder =
                EaszEncoder::new(EaszConfig { mask_seed: 1 + i as u64, ..EaszConfig::default() })
                    .expect("encoder");
            let img = Dataset::KodakLike.image(i).crop(0, 0, side, side);
            encoder.compress(&img, &codec, Quality::new(75)).expect("compress")
        })
        .collect();
    for pair in fleet.windows(2) {
        assert_ne!(pair[0].mask_bytes, pair[1].mask_bytes, "fleet seeds must differ in mask");
    }
    fleet
}

fn json_escape_free(name: &str) -> &str {
    // Row names are generated below from [a-z0-9_]; keep it that way.
    debug_assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    name
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (per_round, rounds) =
        if quick { (Duration::from_millis(150), 3usize) } else { (Duration::from_millis(500), 6) };
    let model = Reconstructor::new(ReconstructorConfig::fast());
    let cfg = *model.config();
    let decoder = EaszDecoder::new(&model);
    let codec = JpegLikeCodec::new();

    // Containers per scenario: tile32 is a single patch (the paper's IoT
    // sensor regime), tile64 is 4 patches.
    let enc32 = containers(1, 32);
    let enc64 = containers(1, 64);
    let enc32x8 = containers(8, 32);
    let enc64x4 = containers(4, 64);
    let fleet32x8 = fleet_containers(8, 32);
    // Forward-only inputs: the transformer stage in isolation (1 patch).
    let mask = EaszConfig::default().make_mask();
    let geometry = cfg.geometry();
    let img = Dataset::KodakLike.image(0).crop(0, 0, 32, 32);
    let patched = Patchified::from_image(&img, geometry);
    let tokens: Vec<Vec<Vec<f32>>> =
        patched.patches.iter().map(|p| patch_tokens(p, geometry)).collect();
    let batch = TokenBatch::from_patches(&tokens);
    let plan = DecodePlan::new(&mask);
    let arena = std::cell::RefCell::new(ScratchArena::new());

    let mut cases: Vec<Case<'_>> = Vec::new();
    for (enc, tile, engine, ename) in [
        (&enc32, 32usize, DecodeEngine::Graph, "graph"),
        (&enc32, 32, DecodeEngine::TapeFree, "tape_free"),
        (&enc32, 32, DecodeEngine::QuantizedInt8, "quant"),
        (&enc64, 64, DecodeEngine::Graph, "graph"),
        (&enc64, 64, DecodeEngine::TapeFree, "tape_free"),
        (&enc64, 64, DecodeEngine::QuantizedInt8, "quant"),
    ] {
        let decoder = &decoder;
        let codec = &codec;
        cases.push(Case {
            name: format!("tile{tile}_serial_x1_{ename}"),
            engine: ename,
            mode: "serial",
            tile_px: tile,
            batch: 1,
            routine: Box::new(move || {
                for e in enc {
                    decoder.decode_with_engine(e, codec, engine).expect("decode");
                }
            }),
            iters: 0,
            total_ns: 0,
        });
    }
    // The mixed-mask fleet: per-connection serial decode (what a fleet
    // cost before the gateway) vs one fused multi-mask batch (what a
    // gateway window costs now). Same containers, distinct mask seeds.
    for (mode, mname) in [("serial", "fleet_serial"), ("batch", "fleet_batch")] {
        let (decoder, enc) = (&decoder, &fleet32x8);
        let routine: Box<dyn FnMut()> = if mode == "serial" {
            Box::new(move || {
                for e in enc {
                    decoder.decode(e).expect("fleet serial decode");
                }
            })
        } else {
            Box::new(move || {
                for r in decoder.decode_batch(enc) {
                    r.expect("fleet batched decode");
                }
            })
        };
        cases.push(Case {
            name: format!("tile32_{mname}_x8_tape_free"),
            engine: "tape_free",
            mode: if mode == "serial" { "serial" } else { "batch" },
            tile_px: 32,
            batch: 8,
            routine,
            iters: 0,
            total_ns: 0,
        });
    }
    // The same fleet on the int8 tier: per-stream serial quantized decode
    // and one fused multi-mask quantized window.
    {
        let (decoder, enc) = (&decoder, &fleet32x8);
        let engines = vec![DecodeEngine::QuantizedInt8; fleet32x8.len()];
        cases.push(Case {
            name: "tile32_fleet_serial_x8_quant".into(),
            engine: "quant",
            mode: "serial",
            tile_px: 32,
            batch: 8,
            routine: Box::new(move || {
                for e in enc {
                    decoder.decode_as(e, DecodeEngine::QuantizedInt8).expect("fleet quant decode");
                }
            }),
            iters: 0,
            total_ns: 0,
        });
        cases.push(Case {
            name: "tile32_fleet_batch_x8_quant".into(),
            engine: "quant",
            mode: "batch",
            tile_px: 32,
            batch: 8,
            routine: Box::new(move || {
                for r in decoder.decode_batch_with(enc, &engines) {
                    r.expect("fleet quant batched decode");
                }
            }),
            iters: 0,
            total_ns: 0,
        });
    }
    for (enc, tile, bsz) in [(&enc32x8, 32usize, 8usize), (&enc64x4, 64, 4)] {
        let decoder = &decoder;
        cases.push(Case {
            name: format!("tile{tile}_serial_x{bsz}_tape_free"),
            engine: "tape_free",
            mode: "serial",
            tile_px: tile,
            batch: bsz,
            routine: Box::new(move || {
                for e in enc {
                    decoder.decode(e).expect("serial decode");
                }
            }),
            iters: 0,
            total_ns: 0,
        });
        cases.push(Case {
            name: format!("tile{tile}_batch_x{bsz}_tape_free"),
            engine: "tape_free",
            mode: "batch",
            tile_px: tile,
            batch: bsz,
            routine: Box::new(move || {
                for r in decoder.decode_batch(enc) {
                    r.expect("batched decode");
                }
            }),
            iters: 0,
            total_ns: 0,
        });
    }
    // The transformer forward in isolation (what the engines actually
    // change), tape vs tape-free.
    {
        let (m, batch, mask) = (&model, &batch, &mask);
        cases.push(Case {
            name: "forward_x1_graph".into(),
            engine: "graph",
            mode: "forward",
            tile_px: 32,
            batch: 1,
            routine: Box::new(move || {
                let _ = m.reconstruct_tokens_graph(batch, mask);
            }),
            iters: 0,
            total_ns: 0,
        });
        let (model, plan, arena) = (&model, &plan, &arena);
        cases.push(Case {
            name: "forward_x1_tape_free".into(),
            engine: "tape_free",
            mode: "forward",
            tile_px: 32,
            batch: 1,
            routine: Box::new(move || {
                let _ = model.infer_tokens(batch, plan, &mut arena.borrow_mut());
            }),
            iters: 0,
            total_ns: 0,
        });
        let quant_arena = std::cell::RefCell::new(ScratchArena::new());
        cases.push(Case {
            name: "forward_x1_quant".into(),
            engine: "quant",
            mode: "forward",
            tile_px: 32,
            batch: 1,
            routine: Box::new(move || {
                let _ = model.infer_tokens_quant(batch, plan, &mut quant_arena.borrow_mut());
            }),
            iters: 0,
            total_ns: 0,
        });
    }

    let rows = run_cases(&mut cases, per_round, rounds);

    let lookup =
        |name: &str| -> &Row { rows.iter().find(|r| r.name == name).expect("row recorded") };
    let speedup = |base: &str, new: &str| -> f64 {
        lookup(base).ns_per_container() / lookup(new).ns_per_container()
    };
    let serial32 = speedup("tile32_serial_x1_graph", "tile32_serial_x1_tape_free");
    let fwd = speedup("forward_x1_graph", "forward_x1_tape_free");
    let serial64 = speedup("tile64_serial_x1_graph", "tile64_serial_x1_tape_free");
    let batch32 = speedup("tile32_serial_x8_tape_free", "tile32_batch_x8_tape_free");
    let batch64 = speedup("tile64_serial_x4_tape_free", "tile64_batch_x4_tape_free");
    let fleet32 = speedup("tile32_fleet_serial_x8_tape_free", "tile32_fleet_batch_x8_tape_free");
    let quant32 = speedup("tile32_serial_x1_tape_free", "tile32_serial_x1_quant");
    let quant64 = speedup("tile64_serial_x1_tape_free", "tile64_serial_x1_quant");
    let quant_fwd = speedup("forward_x1_tape_free", "forward_x1_quant");
    let quant_fleet = speedup("tile32_fleet_batch_x8_tape_free", "tile32_fleet_batch_x8_quant");

    // Optional pre-PR baseline: `--pre-pr name=ns_per_container,...`, where
    // each name is either a full row name or a `*_tape_free` row minus that
    // suffix (the pre-quantized-tier anchor spelling). Values come
    // from running the *parent commit's* decode bench on the same machine
    // (identical container construction; scenario cases the parent lacks
    // are backported to it unchanged), anchoring the trajectory to the
    // decode path as it existed before this PR.
    let mut pre_pr: Vec<(String, f64)> = Vec::new();
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--pre-pr" {
            let spec = args.next().expect("--pre-pr needs name=ns,... values");
            for part in spec.split(',') {
                let (name, ns) = part.split_once('=').expect("--pre-pr entries are name=ns");
                pre_pr.push((name.to_string(), ns.parse::<f64>().expect("baseline ns")));
            }
        }
    }

    println!("== decode_bench ({}) ==", if quick { "quick" } else { "full" });
    for r in &rows {
        println!(
            "{:<28} {:>10.1} µs/container  ({:>8.1} containers/s, {} iters)",
            r.name,
            r.ns_per_container() / 1e3,
            r.containers_per_sec(),
            r.iters
        );
    }
    println!("serial x1 speedup tape-free vs graph: tile32 {serial32:.2}x, tile64 {serial64:.2}x");
    println!("forward-only x1 speedup tape-free vs graph: {fwd:.2}x");
    println!(
        "batch vs serial (tape-free):          tile32x8 {batch32:.2}x, tile64x4 {batch64:.2}x"
    );
    println!("mixed-mask fleet, fused vs per-connection serial: tile32x8 {fleet32:.2}x (headline)");
    println!(
        "int8 quantized tier vs tape-free f32:  serial tile32 {quant32:.2}x, tile64 {quant64:.2}x, \
         forward {quant_fwd:.2}x, fused fleet x8 {quant_fleet:.2}x"
    );
    let anchor = |name: &str| -> &Row {
        rows.iter()
            .find(|r| r.name == name)
            .or_else(|| rows.iter().find(|r| r.name == format!("{name}_tape_free")))
            .unwrap_or_else(|| panic!("--pre-pr anchor {name} matches no recorded row"))
    };
    for (name, base_ns) in &pre_pr {
        let now = anchor(name).ns_per_container();
        println!(
            "{name}: {:.2}x vs pre-PR decode path ({:.1} -> {:.1} µs)",
            base_ns / now,
            base_ns / 1e3,
            now / 1e3
        );
    }

    // --- BENCH_decode.json (schema documented in README "Performance") ---
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"schema\": \"easz/bench-decode/v1\",");
    let _ = writeln!(j, "  \"mode\": \"{}\",", if quick { "quick" } else { "full" });
    let _ = writeln!(
        j,
        "  \"model\": {{ \"config\": \"fast\", \"n\": {}, \"b\": {}, \"d_model\": {}, \"heads\": {}, \"ffn\": {}, \"blocks\": [{}, {}] }},",
        cfg.n, cfg.b, cfg.d_model, cfg.heads, cfg.ffn, cfg.encoder_blocks, cfg.decoder_blocks
    );
    let _ = writeln!(j, "  \"inner_codec\": \"jpeg_like_q75\",");
    j.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{ \"name\": \"{}\", \"engine\": \"{}\", \"mode\": \"{}\", \"tile_px\": {}, \"batch\": {}, \"iters\": {}, \"total_ns\": {}, \"ns_per_container\": {:.1}, \"containers_per_sec\": {:.2} }}{}",
            json_escape_free(&r.name),
            r.engine,
            r.mode,
            r.tile_px,
            r.batch,
            r.iters,
            r.total_ns,
            r.ns_per_container(),
            r.containers_per_sec(),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"summary\": {\n");
    let _ = writeln!(
        j,
        "    \"serial_x1_speedup_tape_free_vs_graph\": {{ \"tile32\": {serial32:.3}, \"tile64\": {serial64:.3} }},"
    );
    let _ = writeln!(j, "    \"forward_x1_speedup_tape_free_vs_graph\": {fwd:.3},");
    let _ = writeln!(
        j,
        "    \"batch_speedup_vs_serial_tape_free\": {{ \"tile32_x8\": {batch32:.3}, \"tile64_x4\": {batch64:.3} }},"
    );
    let _ = writeln!(
        j,
        "    \"mixed_fleet_batch_speedup_vs_serial\": {{ \"tile32_x8\": {fleet32:.3} }},"
    );
    let _ = writeln!(
        j,
        "    \"quantized_speedup_vs_tape_free\": {{ \"tile32_x1\": {quant32:.3}, \"tile64_x1\": {quant64:.3}, \"forward_x1\": {quant_fwd:.3}, \"fleet_batch_x8\": {quant_fleet:.3} }}{}",
        if pre_pr.is_empty() { "" } else { "," }
    );
    if !pre_pr.is_empty() {
        j.push_str("    \"pre_pr_baseline\": {\n");
        let _ = writeln!(
            j,
            "      \"source\": \"parent commit's decode bench (missing scenario cases backported unchanged), same machine and toolchain, identical containers\","
        );
        for (i, (name, base_ns)) in pre_pr.iter().enumerate() {
            let now = anchor(name).ns_per_container();
            let _ = writeln!(
                j,
                "      \"{}\": {{ \"ns_per_container\": {:.1}, \"speedup_vs_pre_pr\": {:.3} }}{}",
                json_escape_free(name),
                base_ns,
                base_ns / now,
                if i + 1 == pre_pr.len() { "" } else { "," }
            );
        }
        j.push_str("    }\n");
    }
    j.push_str("  }\n}\n");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decode.json");
    match std::fs::write(&path, &j) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

//! Scratch probe for calibration (not part of the benchmark suite).
use easz_bench::{bench_model, kodak_eval_set, mean};
use easz_codecs::{ImageCodec, JpegLikeCodec, Quality};
use easz_core::{EaszConfig, EaszDecoder, EaszEncoder};
use easz_metrics::brisque;

fn main() {
    let images = kodak_eval_set(2, 256, 192);
    let model = bench_model();
    let encoder = EaszEncoder::new(EaszConfig::default()).expect("encoder");
    let decoder = EaszDecoder::new(&model);
    let codec = JpegLikeCodec::new();
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "q", "jpeg bpp", "jpeg brq", "easz bpp", "easz brq"
    );
    for q in [1u8, 3, 5, 10, 20, 40, 70] {
        let (mut jb, mut jq, mut eb, mut eq) = (vec![], vec![], vec![], vec![]);
        for img in &images {
            let bytes = codec.encode(img, Quality::new(q)).unwrap();
            let dec = codec.decode(&bytes).unwrap();
            jb.push(bytes.len() as f64 * 8.0 / (img.width() * img.height()) as f64);
            jq.push(brisque(&dec));
            let enc = encoder.compress(img, &codec, Quality::new(q)).unwrap();
            let out = decoder.decode(&enc).unwrap();
            eb.push(enc.bpp());
            eq.push(brisque(&out));
        }
        println!(
            "{:<6} {:>10.3} {:>10.1} {:>10.3} {:>10.1}",
            q,
            mean(&jb),
            mean(&jq),
            mean(&eb),
            mean(&eq)
        );
    }
}

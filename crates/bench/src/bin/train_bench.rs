//! Data-parallel training throughput: full forward+backward+AdamW steps of
//! the quick-zoo recipe (4 gradient shards) driven by 1 worker vs 4 pool
//! workers, plus the serial tape path as the baseline. The parallel
//! trainer's contract is bit-identical results at any worker count, so the
//! digest of the trained weights is asserted across the measured
//! configurations — a sweep that diverged would be measuring two different
//! computations.
//!
//! Like `loopback_bench`, this splices its rows (and the 4-worker-vs-1
//! summary ratio) into the `BENCH_decode.json` that `decode_bench` wrote:
//!
//! ```text
//! cargo run --release -p easz-bench --bin decode_bench           # step 1
//! cargo run --release -p easz-bench --bin train_bench            # step 2
//! cargo run --release -p easz-bench --bin train_bench -- --quick
//! ```
//!
//! Read the ratio against the host: worker threads buy wall-clock only
//! when there are cores to run them, so on a single-core host the honest
//! number is ~1.0x (the determinism contract is then the whole point).

use easz_core::{ParallelTrainer, Reconstructor, ReconstructorConfig, TrainConfig, Trainer};
use easz_data::Dataset;
use easz_image::ImageF32;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Patches per optimisation step (must stay a multiple of the shard count).
const BATCH: usize = 16;
/// Gradient shards — recipe-pinned, like the zoo's fine-tune spec.
const SHARDS: usize = 4;

struct Row {
    name: String,
    steps: u64,
    total_ns: u128,
}

impl Row {
    fn ns_per_step(&self) -> f64 {
        self.total_ns as f64 / self.steps as f64
    }

    fn steps_per_sec(&self) -> f64 {
        1e9 / self.ns_per_step()
    }
}

fn model() -> Reconstructor {
    Reconstructor::new(ReconstructorConfig {
        n: 16,
        b: 4,
        d_model: 48,
        heads: 2,
        ffn: 96,
        ..ReconstructorConfig::fast()
    })
}

fn train_cfg() -> TrainConfig {
    TrainConfig { batch_size: BATCH, lr: 1e-3, seed: 31, ..TrainConfig::default() }
}

/// FNV-1a over the trained parameter bits: cheap cross-run equality proof.
fn weight_digest(model: &Reconstructor) -> u64 {
    let params = model.params();
    let mut h = 0xcbf29ce484222325u64;
    for id in params.ids() {
        for &v in params.value(id).data() {
            for b in v.to_bits().to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
        }
    }
    h
}

/// Runs `steps` parallel training steps on a fresh model, returning wall
/// time and the trained-weight digest.
fn run_parallel(corpus: &[ImageF32], workers: usize, steps: usize) -> (u128, u64) {
    let mut trainer = ParallelTrainer::new(model(), train_cfg(), SHARDS).with_workers(workers);
    let start = Instant::now();
    trainer.train(corpus, steps);
    (start.elapsed().as_nanos(), weight_digest(trainer.model()))
}

/// The serial tape-path baseline (one tape, no sharding).
fn run_serial(corpus: &[ImageF32], steps: usize) -> u128 {
    let mut trainer = Trainer::new(model(), train_cfg());
    let start = Instant::now();
    trainer.train(corpus, steps);
    start.elapsed().as_nanos()
}

/// Splices the training rows and the 4-worker speedup into
/// `BENCH_decode.json`. Refuses to patch twice.
fn patch_json(rows: &[Row], speedup: f64) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decode.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {} (run decode_bench first): {e}", path.display()));
    assert!(
        !text.contains("\"mode\": \"train\""),
        "{} already holds training rows; re-run decode_bench for a fresh file",
        path.display()
    );

    let mut inserted = String::new();
    for r in rows {
        let _ = write!(
            inserted,
            ",\n    {{ \"name\": \"{}\", \"engine\": \"tape\", \"mode\": \"train\", \"tile_px\": 16, \"batch\": {BATCH}, \"iters\": {}, \"total_ns\": {}, \"ns_per_container\": {:.1}, \"containers_per_sec\": {:.2} }}",
            r.name,
            r.steps,
            r.total_ns,
            r.ns_per_step(),
            r.steps_per_sec(),
        );
    }
    inserted.push('\n');
    let results_end = "\n  ],\n  \"summary\": {\n";
    assert!(text.contains(results_end), "unrecognized BENCH_decode.json layout");
    let mut patched =
        text.replacen(results_end, &format!("{}  ],\n  \"summary\": {{\n", inserted), 1);
    let summary_start = "  \"summary\": {\n";
    patched = patched.replacen(
        summary_start,
        &format!(
            "  \"summary\": {{\n    \"train_parallel_speedup_vs_1worker\": {{ \"x4\": {speedup:.3} }},\n"
        ),
        1,
    );
    std::fs::write(&path, patched).expect("write BENCH_decode.json");
    println!("patched {}", path.display());
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let diag = std::env::args().any(|a| a == "--diag");
    let (steps, rounds) = if quick { (6usize, 2usize) } else { (16, 4) };
    let corpus = Dataset::CifarLike.images(24);

    // Warm-up (thread pool, allocator, caches), plus the determinism gate:
    // 1-worker and 4-worker training must digest identically before any
    // timing is trusted.
    let (_, d1) = run_parallel(&corpus, 1, 4);
    let (_, d4) = run_parallel(&corpus, 4, 4);
    assert_eq!(
        d1, d4,
        "1-worker and 4-worker training diverged; the sweep would compare different computations"
    );
    run_serial(&corpus, 2);

    // Interleaved rounds, rotation spreads host drift across the cases.
    let mut totals = [0u128; 3]; // serial, 1 worker, 4 workers
    for round in 0..rounds {
        for idx in 0..3 {
            match (round + idx) % 3 {
                0 => totals[0] += run_serial(&corpus, steps),
                1 => totals[1] += run_parallel(&corpus, 1, steps).0,
                _ => totals[2] += run_parallel(&corpus, 4, steps).0,
            }
        }
    }
    let all_steps = (rounds * steps) as u64;
    let rows = vec![
        Row { name: "train_serial_tape".into(), steps: all_steps, total_ns: totals[0] },
        Row { name: "train_shards4_workers1".into(), steps: all_steps, total_ns: totals[1] },
        Row { name: "train_shards4_workers4".into(), steps: all_steps, total_ns: totals[2] },
    ];

    println!("== train_bench ({}) ==", if quick { "quick" } else { "full" });
    for r in &rows {
        println!(
            "{:<24} {:>10.2} ms/step  ({:>6.2} steps/s, {} steps)",
            r.name,
            r.ns_per_step() / 1e6,
            r.steps_per_sec(),
            r.steps
        );
    }
    let speedup = rows[1].ns_per_step() / rows[2].ns_per_step();
    println!(
        "4-shard training, 4 workers vs 1: {speedup:.2}x \
         (host parallelism: {} cores)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    if !diag {
        patch_json(&rows, speedup);
    }
}

//! # easz-bench
//!
//! Shared harness utilities for the per-figure/table benchmark binaries.
//! Each `[[bench]]` target (plain harness) regenerates one table or figure
//! of the paper and prints the same rows/series the paper reports; outputs
//! are also appended to `target/easz-results/` for EXPERIMENTS.md.
//!
//! Reproduction scope note: harnesses run on synthetic Kodak-like/CLIC-like
//! crops with the quick pretrained reconstructor, so absolute numbers are
//! not the paper's — the *shape* (orderings, rough factors, crossovers) is
//! the reproduction target (DESIGN.md §4).

#![warn(missing_docs)]

use easz_core::zoo::{self, PretrainSpec};
use easz_core::{Reconstructor, ReconstructorConfig, TrainConfig};
use easz_data::Dataset;
use easz_image::ImageF32;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Evaluation images: crops of Kodak-like scenes (full frames keep the
/// no-reference metrics honest but cost minutes; crops keep every harness
/// in seconds while preserving content statistics).
pub fn kodak_eval_set(count: usize, w: usize, h: usize) -> Vec<ImageF32> {
    (0..count).map(|i| Dataset::KodakLike.image(100 + i).crop(64, 64, w, h)).collect()
}

/// Evaluation images from the CLIC-like corpus.
pub fn clic_eval_set(count: usize, w: usize, h: usize) -> Vec<ImageF32> {
    (0..count).map(|i| Dataset::ClicLike.image(200 + i).crop(64, 64, w, h)).collect()
}

/// The shared bench-grade reconstructor (n=32, b=4): quick spec, cached.
pub fn bench_model() -> Arc<Reconstructor> {
    zoo::pretrained(PretrainSpec::quick())
}

/// A pretrained model for an alternative sub-patch size `b` on 16-pixel
/// patches (the Fig. 3 / Fig. 7c/d patch-size ablations).
pub fn bench_model_b(b: usize) -> Arc<Reconstructor> {
    let spec = PretrainSpec {
        model: ReconstructorConfig {
            n: 16,
            b,
            d_model: 48,
            heads: 4,
            ffn: 96,
            ..ReconstructorConfig::fast()
        },
        train: TrainConfig { batch_size: 8, lr: 1e-3, ..TrainConfig::default() },
        steps: 200,
        corpus: 32,
    };
    zoo::pretrained(spec)
}

/// Result sink: prints to stdout and appends to
/// `target/easz-results/<name>.txt`.
pub struct ResultSink {
    name: String,
    lines: Vec<String>,
}

impl ResultSink {
    /// Creates a sink for one experiment.
    pub fn new(name: &str) -> Self {
        let banner = format!("== {name} ==");
        println!("{banner}");
        Self { name: name.to_string(), lines: vec![banner] }
    }

    /// Emits one row.
    pub fn row(&mut self, line: impl AsRef<str>) {
        let line = line.as_ref();
        println!("{line}");
        self.lines.push(line.to_string());
    }

    /// Writes the collected rows to the results directory.
    pub fn flush(&self) {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/easz-results");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("{}.txt", self.name));
        if let Ok(mut f) = std::fs::File::create(&path) {
            for l in &self.lines {
                let _ = writeln!(f, "{l}");
            }
        }
    }
}

impl Drop for ResultSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_sets_have_requested_shape() {
        let set = kodak_eval_set(2, 128, 96);
        assert_eq!(set.len(), 2);
        assert!(set.iter().all(|i| i.width() == 128 && i.height() == 96));
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}

//! Fig. 3 — the proposed row-conditional mask vs unconstrained random
//! masks, across erase ratios 10-30% and sub-patch sizes p ∈ {1, 2}:
//! (a) file-saving ratio through JPEG (higher is better);
//! (b) reconstruction MSE on erased regions (lower is better).
//!
//! Shape target: the proposed sampler saves at least as many JPEG bytes and
//! reconstructs with lower MSE than random masks at every ratio.

use easz_bench::{bench_model_b, kodak_eval_set, mean, ResultSink};
use easz_codecs::{ImageCodec, JpegLikeCodec, Quality};
use easz_core::{erased_region_mse, EaszConfig, EaszEncoder, MaskStrategy, Orientation};

fn main() {
    let mut sink = ResultSink::new("fig3_mask_vs_random");
    let images = kodak_eval_set(3, 256, 192);
    let codec = JpegLikeCodec::new();
    let quality = Quality::new(60);

    // Baseline JPEG bytes per image (no erasure).
    let base_bytes: Vec<f64> =
        images.iter().map(|img| codec.encode(img, quality).expect("encode").len() as f64).collect();

    sink.row(format!(
        "{:<6} {:<6} {:<9} {:>18} {:>14}",
        "p(b)", "ratio", "mask", "file saving ratio", "recon MSE"
    ));
    for &b in &[1usize, 2] {
        let model = bench_model_b(b);
        for &ratio in &[0.125f64, 0.25, 0.3125] {
            for (label, strategy) in
                [("easz", MaskStrategy::Proposed), ("rand", MaskStrategy::Random)]
            {
                let cfg = EaszConfig {
                    n: 16,
                    b,
                    erase_ratio: ratio,
                    strategy,
                    orientation: Orientation::Horizontal,
                    mask_seed: 11,
                    synthesize_grain: true,
                    allow_quantized: false,
                    model_id: 0,
                };
                // File saving is edge-side only: no model needed.
                let encoder = EaszEncoder::new(cfg).expect("encoder");
                // (a) File saving through JPEG.
                let mut savings = Vec::new();
                for (img, base) in images.iter().zip(&base_bytes) {
                    let enc = encoder.compress(img, &codec, quality).expect("compress");
                    savings.push(1.0 - enc.total_bytes() as f64 / base);
                }
                // (b) Reconstruction MSE on erased regions.
                let mask = cfg.make_mask();
                let mse = erased_region_mse(&model, &images, &mask);
                sink.row(format!(
                    "{:<6} {:<6.3} {:<9} {:>18.4} {:>14.6}",
                    b,
                    ratio,
                    label,
                    mean(&savings),
                    mse
                ));
            }
        }
    }
    sink.row("shape check: easz rows should dominate rand rows (higher saving, lower MSE)");
}

//! Fig. 7(d) — fine-tuning the CIFAR-pretrained model on the target
//! (Kodak-like) domain: loss curves for b ∈ {1, 2, 4}.
//!
//! Shape target: every curve decreases; smaller blocks converge to lower
//! loss (their tokens carry more local correlation).

use easz_bench::{kodak_eval_set, ResultSink};
use easz_core::zoo::{pretrained, PretrainSpec};
use easz_core::{ReconstructorConfig, TrainConfig, Trainer};

fn main() {
    let mut sink = ResultSink::new("fig7_finetune");
    let corpus = kodak_eval_set(6, 128, 96);
    const STEPS: usize = 60;
    const REPORT_EVERY: usize = 10;
    sink.row(format!("{:<6} {:<8} {:>12}", "b", "step", "loss"));
    for &b in &[1usize, 2, 4] {
        let spec = PretrainSpec {
            model: ReconstructorConfig {
                n: 16,
                b,
                d_model: 48,
                heads: 4,
                ffn: 96,
                ..ReconstructorConfig::fast()
            },
            train: TrainConfig { batch_size: 8, lr: 1e-3, ..TrainConfig::default() },
            steps: 200,
            corpus: 32,
        };
        let pre = pretrained(spec);
        // Clone weights into a fresh trainer (the zoo instance is shared).
        let mut model = easz_core::Reconstructor::new(*pre.config());
        let mut buf = Vec::new();
        easz_tensor::save_params(pre.params(), &mut buf).expect("serialize");
        easz_tensor::load_params(model.params_mut(), &buf[..]).expect("load");
        let mut trainer =
            Trainer::new(model, TrainConfig { batch_size: 8, lr: 5e-4, ..TrainConfig::default() });
        let losses = trainer.finetune(&corpus, STEPS);
        for (i, chunk) in losses.chunks(REPORT_EVERY).enumerate() {
            let avg = chunk.iter().sum::<f32>() / chunk.len() as f32;
            sink.row(format!("{:<6} {:<8} {:>12.5}", b, (i + 1) * REPORT_EVERY, avg));
        }
    }
    sink.row("shape check: losses fall with steps for every b; smaller b ends lower");
}

//! Criterion micro-benchmarks of the computational kernels: DCT, entropy
//! coders, mask generation, squeeze, and the transformer forward pass.
//! These are the per-operation numbers behind the latency model constants.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use easz_codecs::dct::{dct16, dct8};
use easz_codecs::entropy::huffman::{encode_stream, histogram, HuffmanTable};
use easz_codecs::entropy::range::{BitModel, RangeEncoder};
use easz_core::{
    patch_tokens, squeeze_patch, MaskKind, Orientation, PatchGeometry, Reconstructor,
    ReconstructorConfig, RowSamplerConfig, TokenBatch,
};
use easz_data::Dataset;

fn bench_dct(c: &mut Criterion) {
    let block8: Vec<f32> = (0..64).map(|i| (i as f32 * 0.13).sin()).collect();
    let block16: Vec<f32> = (0..256).map(|i| (i as f32 * 0.07).cos()).collect();
    c.bench_function("dct8_forward", |b| b.iter(|| dct8().forward(std::hint::black_box(&block8))));
    c.bench_function("dct16_forward", |b| {
        b.iter(|| dct16().forward(std::hint::black_box(&block16)))
    });
}

fn bench_entropy(c: &mut Criterion) {
    let symbols: Vec<u8> = (0..4096u32).map(|i| ((i * 7) % 23) as u8).collect();
    let table = HuffmanTable::from_frequencies(&histogram(&symbols));
    c.bench_function("huffman_encode_4k", |b| {
        b.iter(|| encode_stream(std::hint::black_box(&table), std::hint::black_box(&symbols)))
    });
    let bits: Vec<u8> = (0..8192).map(|i| u8::from(i % 5 == 0)).collect();
    c.bench_function("range_encode_8k", |b| {
        b.iter_batched(
            || (RangeEncoder::new(), BitModel::new()),
            |(mut enc, mut m)| {
                for &bit in &bits {
                    enc.encode(bit, &mut m);
                }
                enc.finish()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_mask_and_squeeze(c: &mut Criterion) {
    let cfg = RowSamplerConfig::with_ratio(8, 0.25);
    c.bench_function("mask_row_conditional_8", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            MaskKind::RowConditional(cfg).generate(seed)
        })
    });
    let img = Dataset::KodakLike.image(0).crop(0, 0, 32, 32);
    let geometry = PatchGeometry::new(32, 4);
    let mask = MaskKind::RowConditional(cfg).generate(1);
    c.bench_function("squeeze_patch_32", |b| {
        b.iter(|| {
            squeeze_patch(
                std::hint::black_box(&img),
                geometry,
                std::hint::black_box(&mask),
                Orientation::Horizontal,
            )
        })
    });
}

fn bench_model_forward(c: &mut Criterion) {
    let model = Reconstructor::new(ReconstructorConfig::fast());
    let geometry = model.config().geometry();
    let img = Dataset::KodakLike.image(1).crop(0, 0, 64, 64);
    let patched = easz_core::Patchified::from_image(&img, geometry);
    let tokens: Vec<Vec<Vec<f32>>> =
        patched.patches.iter().map(|p| patch_tokens(p, geometry)).collect();
    let batch = TokenBatch::from_patches(&tokens);
    let mask = MaskKind::RowConditional(RowSamplerConfig::with_ratio(8, 0.25)).generate(2);
    c.bench_function("reconstruct_4_patches", |b| {
        b.iter(|| model.reconstruct_tokens(std::hint::black_box(&batch), &mask))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dct, bench_entropy, bench_mask_and_squeeze, bench_model_forward
}
criterion_main!(kernels);

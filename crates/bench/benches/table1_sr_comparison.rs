//! Table I — Easz vs super-resolution methods (SwinIR, realESRGAN,
//! BSRGAN stand-ins) on the Kodak-like set.
//!
//! Regime: SR methods transmit a 2× downsampled image and re-hallucinate
//! all pixels; Easz transmits an erased image and reconstructs only the
//! erased sub-patches. Reported at two points of Easz's flexible-reduction
//! knob (r = 0.125 and the paper's r = 0.25).
//!
//! Paper values: PSNR 28.96 (Easz) vs 24.85-25.35 (SR); MS-SSIM 0.96 vs
//! 0.93-0.94; model 8.7 MB vs 67 MB. Shape target: Easz above every SR row
//! on both metrics with a ~8x smaller model.

use easz_bench::{bench_model, kodak_eval_set, mean, ResultSink};
use easz_codecs::sr::{BicubicUpscaler, EnhancedUpscaler, Upscaler};
use easz_core::{
    EaszConfig, EaszDecoder, EaszEncoder, MaskStrategy, Orientation, Reconstructor,
    ReconstructorConfig,
};
use easz_image::resample::downsample2;
use easz_metrics::{ms_ssim, psnr};

fn main() {
    let mut sink = ResultSink::new("table1_sr_comparison");
    let images = kodak_eval_set(4, 256, 192);
    sink.row(format!("{:<16} {:>8} {:>10} {:>14}", "method", "PSNR", "MS-SSIM", "model size"));

    // Easz at two operating points of its flexible-reduction knob (the
    // paper's Table I runs a single fixed point; the flexibility is the
    // framework's selling point), no meaningful inner-codec loss.
    let model = bench_model();
    // Model-size accounting uses the paper-scale architecture (the bench
    // model is the same structure at reduced width).
    let paper_bytes = Reconstructor::new(ReconstructorConfig::paper()).model_bytes();
    for ratio in [0.125f64, 0.25] {
        let cfg = EaszConfig {
            erase_ratio: ratio,
            strategy: MaskStrategy::Proposed,
            orientation: Orientation::Horizontal,
            mask_seed: 5,
            // Table I measures PSNR/MS-SSIM: use PSNR-optimal decoding.
            synthesize_grain: false,
            ..EaszConfig::default()
        };
        let enc = EaszEncoder::new(cfg).expect("encoder");
        let dec = EaszDecoder::new(&model);
        let mut psnrs = Vec::new();
        let mut ssims = Vec::new();
        for img in &images {
            let (squeezed, mask) = enc.erase_and_squeeze(img);
            let recon = reconstruct_lossless(&enc, &dec, img, &squeezed, &mask);
            psnrs.push(psnr(img, &recon));
            ssims.push(ms_ssim(img, &recon));
        }
        sink.row(format!(
            "{:<16} {:>8.2} {:>10.4} {:>11.1} MB",
            format!("easz (r={ratio})"),
            mean(&psnrs),
            mean(&ssims),
            paper_bytes as f64 / (1024.0 * 1024.0)
        ));
    }

    // SR baselines: downsample 2x, upscale back.
    let upscalers: Vec<Box<dyn Upscaler>> = vec![
        Box::new(EnhancedUpscaler::swinir_sim()),
        Box::new(EnhancedUpscaler::real_esrgan_sim()),
        Box::new(EnhancedUpscaler::bsrgan_sim()),
        Box::new(BicubicUpscaler),
    ];
    for up in &upscalers {
        let mut psnrs = Vec::new();
        let mut ssims = Vec::new();
        for img in &images {
            let recon = up.upscale(&downsample2(img), img.width(), img.height());
            psnrs.push(psnr(img, &recon));
            ssims.push(ms_ssim(img, &recon));
        }
        sink.row(format!(
            "{:<16} {:>8.2} {:>10.4} {:>11.1} MB",
            up.name(),
            mean(&psnrs),
            mean(&ssims),
            up.model_bytes() as f64 / (1024.0 * 1024.0)
        ));
    }
    sink.row("shape check: easz row above all SR rows in PSNR and MS-SSIM, ~8x smaller model");
}

/// Easz reconstruction with a lossless inner path: unsqueeze + model, no
/// codec distortion (Table I isolates the reconstruction comparison).
fn reconstruct_lossless(
    encoder: &EaszEncoder,
    decoder: &EaszDecoder<'_>,
    original: &easz_image::ImageF32,
    _squeezed: &easz_image::ImageF32,
    _mask: &easz_core::EraseMask,
) -> easz_image::ImageF32 {
    // Route through compress/decode with a near-lossless JPEG setting;
    // q=100 keeps codec loss an order of magnitude below reconstruction
    // error, preserving the comparison.
    let codec = easz_codecs::JpegLikeCodec::new();
    let enc = encoder.compress(original, &codec, easz_codecs::Quality::new(100)).expect("compress");
    decoder.decode(&enc).expect("decode")
}

//! Fig. 7(c) — erase-block size (b ∈ {1, 2, 4}) and erase ratio (10-50%)
//! vs reconstruction MSE and inference time.
//!
//! Shape target: MSE rises with the erase ratio; smaller blocks
//! reconstruct better (higher local correlation) but run slower; b=2 is
//! the speed/quality sweet spot the paper recommends.

use easz_bench::{bench_model_b, kodak_eval_set, ResultSink};
use easz_core::{
    erased_region_mse, patch_tokens, MaskKind, Patchified, RowSamplerConfig, TokenBatch,
};
use std::time::Instant;

fn main() {
    let mut sink = ResultSink::new("fig7_patch_size");
    let images = kodak_eval_set(2, 128, 96);
    sink.row(format!("{:<4} {:<7} {:>12} {:>16}", "b", "ratio", "MSE", "infer time (ms)"));
    for &b in &[1usize, 2, 4] {
        let model = bench_model_b(b);
        let grid = model.config().geometry().grid();
        for &ratio in &[0.125f64, 0.25, 0.375, 0.5] {
            let mask =
                MaskKind::RowConditional(RowSamplerConfig::with_ratio(grid, ratio)).generate(17);
            let mse = erased_region_mse(&model, &images, &mask);
            // Inference time: one forward pass over the first image.
            let geometry = model.config().geometry();
            let patched = Patchified::from_image(&images[0], geometry);
            let tokens: Vec<Vec<Vec<f32>>> =
                patched.patches.iter().map(|p| patch_tokens(p, geometry)).collect();
            let batch = TokenBatch::from_patches(&tokens);
            let t0 = Instant::now();
            let _ = model.reconstruct_tokens(&batch, &mask);
            let infer_ms = t0.elapsed().as_secs_f64() * 1e3;
            sink.row(format!("{b:<4} {ratio:<7.3} {mse:>12.6} {infer_ms:>16.1}"));
        }
    }
    sink.row("shape check: MSE grows with ratio; b=1 slowest/best, b=4 fastest/worst");
}

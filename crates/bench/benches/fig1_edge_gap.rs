//! Fig. 1 — the edge gap: transmission vs model-load vs encode latency for
//! four neural codecs on the Jetson TX2.
//!
//! Paper values (512×768 image): transmission 151-163 ms; load 286 ms
//! (Ballé-fact.) to 11600 ms (Cheng); encode 374 ms (Ballé-fact.) to
//! 18015 ms (Cheng). Shape target: load and encode dwarf transmission by
//! 1-2 orders of magnitude for the autoregressive models.

use easz_bench::{kodak_eval_set, ResultSink};
use easz_codecs::{encode_to_bpp, ImageCodec, NeuralSimCodec, NeuralTier};
use easz_testbed::{Testbed, WorkloadProfile};

fn main() {
    let mut sink = ResultSink::new("fig1_edge_gap");
    let tb = Testbed::paper();
    // One Kodak-like frame at the paper's 512×768-scale; rate-targeted to
    // ~0.4 bpp like the paper's transmission bar.
    let img = &kodak_eval_set(1, 512, 384)[0];
    sink.row(format!(
        "{:<18} {:>16} {:>14} {:>18}",
        "codec", "transmit (ms)", "load (ms)", "edge encode (ms)"
    ));
    for tier in [
        NeuralTier::BalleFactorized,
        NeuralTier::BalleHyperprior,
        NeuralTier::Mbt,
        NeuralTier::ChengAnchor,
    ] {
        let codec = NeuralSimCodec::new(tier);
        let (_, enc) = encode_to_bpp(&codec, img, 0.8, img.width(), img.height(), 6)
            .expect("rate-targeted encode");
        // Scale payload to the paper's 512×768 canvas for the transmit bar.
        let paper_pixels = 512 * 768;
        let payload = (enc.bytes.len() as f64 * paper_pixels as f64
            / (img.width() * img.height()) as f64) as usize;
        let w = WorkloadProfile::neural(tier);
        let lat = tb.run(&w, paper_pixels, payload);
        let load = tb.edge_load_seconds(&w);
        sink.row(format!(
            "{:<18} {:>16.0} {:>14.0} {:>18.0}",
            codec.name(),
            lat.transmit_s * 1e3,
            load * 1e3,
            lat.compression_s * 1e3
        ));
    }
    sink.row("shape check: encode/load >> transmission for MBT & Cheng (paper: 18s vs 0.15s)");
}

//! Table II — compression-performance enhancement on the Kodak-like and
//! CLIC-like sets. The paper targets 0.4 / 0.3 bpp on real Kodak/CLIC; the
//! synthetic scenes carry more irreducible pixel detail, so the matched-rate
//! comparison here runs at 0.8 / 0.7 bpp (the codecs' reachable range): BPP, BRISQUE,
//! PI and TReS for JPEG / BPG / MBT / Cheng, original vs +Easz.
//!
//! Shape target: +Easz improves the perceptual metrics (lower BRISQUE/PI,
//! higher TReS) at equal-or-lower BPP for every codec on both datasets.

use easz_bench::{bench_model, clic_eval_set, kodak_eval_set, mean, ResultSink};
use easz_codecs::{
    encode_to_bpp, BpgLikeCodec, ImageCodec, JpegLikeCodec, NeuralSimCodec, NeuralTier,
};
use easz_core::{EaszConfig, EaszDecoder, EaszEncoder};
use easz_image::ImageF32;
use easz_metrics::{brisque, pi, tres};

struct Row {
    bpp: f64,
    brisque: f64,
    pi: f64,
    tres: f64,
}

fn eval_plain(codec: &dyn ImageCodec, images: &[ImageF32], target_bpp: f64) -> Row {
    let (mut bpps, mut bs, mut ps, mut ts) = (vec![], vec![], vec![], vec![]);
    for img in images {
        let (_, enc) = encode_to_bpp(codec, img, target_bpp, img.width(), img.height(), 6)
            .expect("rate-targeted encode");
        let dec = codec.decode(&enc.bytes).expect("decode");
        bpps.push(enc.bpp());
        bs.push(brisque(&dec));
        ps.push(pi(&dec));
        ts.push(tres(&dec));
    }
    Row { bpp: mean(&bpps), brisque: mean(&bs), pi: mean(&ps), tres: mean(&ts) }
}

fn eval_easz(
    encoder: &EaszEncoder,
    decoder: &EaszDecoder<'_>,
    codec: &dyn ImageCodec,
    images: &[ImageF32],
    target_bpp: f64,
) -> Row {
    let (mut bpps, mut bs, mut ps, mut ts) = (vec![], vec![], vec![], vec![]);
    for img in images {
        // Rate-target the *total* Easz bpp by searching the inner quality.
        let (_, enc) = encoder.compress_to_bpp(img, codec, target_bpp, 8).expect("rate search");
        let dec = decoder.decode(&enc).expect("decode");
        bpps.push(enc.bpp());
        bs.push(brisque(&dec));
        ps.push(pi(&dec));
        ts.push(tres(&dec));
    }
    Row { bpp: mean(&bpps), brisque: mean(&bs), pi: mean(&ps), tres: mean(&ts) }
}

fn main() {
    let mut sink = ResultSink::new("table2_enhancement");
    let model = bench_model();
    let encoder =
        EaszEncoder::new(EaszConfig { mask_seed: 21, ..EaszConfig::default() }).expect("encoder");
    let decoder = EaszDecoder::new(&model);
    let jpeg = JpegLikeCodec::new();
    let bpg = BpgLikeCodec::new();
    let mbt = NeuralSimCodec::new(NeuralTier::Mbt);
    let cheng = NeuralSimCodec::new(NeuralTier::ChengAnchor);
    let codecs: [(&str, &dyn ImageCodec); 4] =
        [("jpeg", &jpeg), ("bpg", &bpg), ("mbt", &mbt), ("cheng", &cheng)];
    let datasets: [(&str, Vec<ImageF32>, f64); 2] =
        [("kodak", kodak_eval_set(2, 256, 192), 0.8), ("clic", clic_eval_set(2, 256, 192), 0.7)];
    sink.row(format!(
        "{:<7} {:<7} {:<10} {:>7} {:>9} {:>7} {:>7}",
        "dataset", "codec", "variant", "bpp", "brisque", "pi", "tres"
    ));
    for (dname, images, target) in &datasets {
        for (cname, codec) in &codecs {
            let plain = eval_plain(*codec, images, *target);
            sink.row(format!(
                "{:<7} {:<7} {:<10} {:>7.3} {:>9.2} {:>7.2} {:>7.2}",
                dname, cname, "org", plain.bpp, plain.brisque, plain.pi, plain.tres
            ));
            let enhanced = eval_easz(&encoder, &decoder, *codec, images, *target);
            sink.row(format!(
                "{:<7} {:<7} {:<10} {:>7.3} {:>9.2} {:>7.2} {:>7.2}",
                dname, cname, "+easz", enhanced.bpp, enhanced.brisque, enhanced.pi, enhanced.tres
            ));
        }
    }
    sink.row("shape check: +easz lowers brisque/pi and raises tres at matched bpp, all codecs");
}

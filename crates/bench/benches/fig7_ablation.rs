//! Fig. 7(a)(b) — mask-strategy ablation through the full pipeline:
//! BPP vs BRISQUE for the plain codec, codec+Easz (proposed mask) and
//! codec+Easz (random mask), for JPEG-like and BPG-like inner codecs.
//!
//! Shape target: at matched BPP, +Easz(proposed) scores a lower (better)
//! BRISQUE than the plain codec, and the proposed mask beats the random
//! mask.

use easz_bench::{bench_model, kodak_eval_set, mean, ResultSink};
use easz_codecs::{BpgLikeCodec, ImageCodec, JpegLikeCodec, Quality};
use easz_core::{EaszConfig, EaszDecoder, EaszEncoder, MaskStrategy};
use easz_metrics::brisque;

fn main() {
    let mut sink = ResultSink::new("fig7_ablation");
    let images = kodak_eval_set(3, 256, 192);
    let model = bench_model();
    let jpeg = JpegLikeCodec::new();
    let bpg = BpgLikeCodec::new();
    let codecs: [(&str, &dyn ImageCodec, &[u8]); 2] =
        [("jpeg", &jpeg, &[15, 30, 50, 75]), ("bpg", &bpg, &[30, 45, 60, 75])];
    sink.row(format!("{:<6} {:<14} {:>4} {:>8} {:>10}", "codec", "variant", "q", "bpp", "brisque"));
    for (cname, codec, qualities) in codecs {
        for &q in qualities {
            let quality = Quality::new(q);
            // Plain codec.
            let (bpps, scores): (Vec<f64>, Vec<f64>) = images
                .iter()
                .map(|img| {
                    let bytes = codec.encode(img, quality).expect("encode");
                    let dec = codec.decode(&bytes).expect("decode");
                    (bytes.len() as f64 * 8.0 / (img.width() * img.height()) as f64, brisque(&dec))
                })
                .unzip();
            sink.row(format!(
                "{:<6} {:<14} {:>4} {:>8.3} {:>10.2}",
                cname,
                "plain",
                q,
                mean(&bpps),
                mean(&scores)
            ));
            // Easz variants.
            for (label, strategy) in
                [("+easz", MaskStrategy::Proposed), ("+random", MaskStrategy::Random)]
            {
                let cfg = EaszConfig { strategy, mask_seed: 3, ..EaszConfig::default() };
                let encoder = EaszEncoder::new(cfg).expect("encoder");
                let decoder = EaszDecoder::new(&model);
                let (bpps, scores): (Vec<f64>, Vec<f64>) = images
                    .iter()
                    .map(|img| {
                        let enc = encoder.compress(img, codec, quality).expect("compress");
                        let dec = decoder.decode(&enc).expect("decode");
                        (enc.bpp(), brisque(&dec))
                    })
                    .unzip();
                sink.row(format!(
                    "{:<6} {:<14} {:>4} {:>8.3} {:>10.2}",
                    cname,
                    label,
                    q,
                    mean(&bpps),
                    mean(&scores)
                ));
            }
        }
    }
    sink.row("shape check: +easz achieves lower bpp at similar brisque; proposed <= random");
}

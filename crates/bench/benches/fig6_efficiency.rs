//! Fig. 6 — efficiency on the Jetson TX2 testbed: (a) end-to-end latency
//! breakdown, (b) edge encode power, (c) edge encode memory, for Easz vs
//! MBT vs Cheng-Anchor.
//!
//! Paper values (512×768): Easz erase+squeeze ≈ 0.7% of end-to-end,
//! reconstruction ≈ 74%, total ≈ 2.5 s vs ~20 s for MBT/Cheng; power
//! reductions 71.3% / 59.9% with zero GPU draw; memory 1.05 vs
//! 1.93 / 1.98 GB.

use easz_bench::{kodak_eval_set, ResultSink};
use easz_codecs::{encode_to_bpp, JpegLikeCodec, NeuralSimCodec, NeuralTier};
use easz_core::{EaszConfig, EaszEncoder, ReconstructorConfig};
use easz_testbed::{Testbed, WorkloadProfile};

const PAPER_PIXELS: usize = 512 * 768;

fn main() {
    let mut sink = ResultSink::new("fig6_efficiency");
    let tb = Testbed::paper();
    let img = &kodak_eval_set(1, 512, 384)[0];
    let scale = PAPER_PIXELS as f64 / (img.width() * img.height()) as f64;

    // Real payload sizes at ~0.4 bpp for each scheme. Only transmitted
    // bytes matter here, so the model-free encoder suffices.
    let jpeg = JpegLikeCodec::new();
    let encoder = EaszEncoder::new(EaszConfig::default()).expect("encoder");
    let easz_payload = {
        let enc = encoder.compress(img, &jpeg, easz_codecs::Quality::new(60)).expect("easz");
        (enc.total_bytes() as f64 * scale) as usize
    };
    let neural_payload = |tier: NeuralTier| {
        let codec = NeuralSimCodec::new(tier);
        let (_, enc) = encode_to_bpp(&codec, img, 0.8, img.width(), img.height(), 6).expect("rate");
        (enc.bytes.len() as f64 * scale) as usize
    };

    let easz_w =
        WorkloadProfile::easz(&WorkloadProfile::jpeg_like(), &ReconstructorConfig::paper(), 0.25);
    let schemes: Vec<(String, WorkloadProfile, usize)> = vec![
        ("easz".into(), easz_w, easz_payload),
        ("mbt".into(), WorkloadProfile::neural(NeuralTier::Mbt), neural_payload(NeuralTier::Mbt)),
        (
            "cheng".into(),
            WorkloadProfile::neural(NeuralTier::ChengAnchor),
            neural_payload(NeuralTier::ChengAnchor),
        ),
    ];

    sink.row("-- (a) end-to-end latency breakdown (ms) --");
    sink.row(format!(
        "{:<8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "erase+sq", "compress", "transmit", "decomp", "recon", "total"
    ));
    for (name, w, payload) in &schemes {
        let lat = tb.run(w, PAPER_PIXELS, *payload);
        sink.row(format!(
            "{:<8} {:>12.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            name,
            lat.erase_squeeze_s * 1e3,
            lat.compression_s * 1e3,
            lat.transmit_s * 1e3,
            lat.decompression_s * 1e3,
            lat.reconstruction_s * 1e3,
            lat.total_s() * 1e3
        ));
    }

    sink.row("-- (b) edge encode power (W) --");
    sink.row(format!("{:<8} {:>8} {:>8} {:>8}", "scheme", "cpu", "gpu", "total"));
    for (name, w, _) in &schemes {
        let p = tb.edge_encode_power(w);
        sink.row(format!("{:<8} {:>8.2} {:>8.2} {:>8.2}", name, p.cpu_w, p.gpu_w, p.total_w()));
    }

    sink.row("-- (c) edge encode memory (GB) --");
    for (name, w, _) in &schemes {
        let mem = tb.edge_encode_memory(w, PAPER_PIXELS) as f64 / 1e9;
        sink.row(format!("{name:<8} {mem:>8.2}"));
    }
    sink.row("shape check: easz 0 GPU W, smallest memory, total latency ~10x below mbt/cheng");
}

//! Batched vs serial `.easz` decode throughput — the server-side
//! amortisation lever behind the `DECODE_BATCH` protocol frame.
//!
//! `EaszDecoder::decode_batch` concatenates the patches of every container
//! sharing an erase mask into one `TokenBatch`, so N streams cost one
//! transformer forward instead of N. Results are byte-identical to serial
//! decode (the decoder unit tests and `tests/server.rs` enforce that);
//! this harness measures the throughput side of the trade.
//!
//! The win is the per-forward fixed cost (graph and parameter-node setup,
//! mask gathers) amortised over the batch, so it concentrates where that
//! cost is a real fraction of the work: the paper's IoT regime of many
//! sensors streaming small tiles (one to a few patches per frame). Large
//! canvases already amortise the fixed cost over their own patches and
//! land at parity on a single core — there the batched forward's gain is
//! parallel-hardware utilisation, which this box cannot show.

use criterion::{criterion_group, criterion_main, Criterion};
use easz_codecs::{JpegLikeCodec, Quality};
use easz_core::{
    EaszConfig, EaszDecoder, EaszEncoded, EaszEncoder, Reconstructor, ReconstructorConfig,
};
use easz_data::Dataset;
use std::time::Duration;

/// Same-geometry containers with distinct content. One encoder config =>
/// one mask => `decode_batch` runs a single forward per call.
fn containers(count: usize, side: usize) -> Vec<EaszEncoded> {
    let encoder = EaszEncoder::new(EaszConfig::default()).expect("encoder");
    let codec = JpegLikeCodec::new();
    (0..count)
        .map(|i| {
            let img = Dataset::KodakLike.image(i).crop(0, 0, side, side);
            encoder.compress(&img, &codec, Quality::new(75)).expect("compress")
        })
        .collect()
}

fn bench_batched_vs_serial(c: &mut Criterion) {
    // Throughput, not quality, is under test: an untrained (deterministic)
    // model runs the same forward as a trained one.
    let model = Reconstructor::new(ReconstructorConfig::fast());
    let decoder = EaszDecoder::new(&model);
    for (side, tag) in [(32usize, "tile32"), (64, "tile64")] {
        for batch in [4usize, 8] {
            let encoded = containers(batch, side);
            c.bench_function(&format!("{tag}_serial_x{batch}"), |b| {
                b.iter(|| {
                    encoded
                        .iter()
                        .map(|e| decoder.decode(e).expect("serial decode"))
                        .collect::<Vec<_>>()
                })
            });
            c.bench_function(&format!("{tag}_batch_x{batch}"), |b| {
                b.iter(|| decoder.decode_batch(&encoded))
            });
        }
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(3));
    targets = bench_batched_vs_serial
);
criterion_main!(benches);

//! Design-choice ablations beyond the paper's figures (DESIGN.md §4):
//! (1) horizontal vs vertical squeeze, (2) zero-fill vs neighbour-fill
//! decoder input, (3) sensitivity to the sampler constraints δ / Δ.

use easz_bench::{bench_model, kodak_eval_set, mean, ResultSink};
use easz_codecs::{JpegLikeCodec, Quality};
use easz_core::{
    erased_region_mse, EaszConfig, EaszDecoder, EaszEncoder, MaskKind, Orientation,
    RowSamplerConfig,
};
use easz_metrics::psnr;

fn main() {
    let mut sink = ResultSink::new("ablation_extras");
    let images = kodak_eval_set(3, 256, 192);
    let model = bench_model();
    let jpeg = JpegLikeCodec::new();

    // (1) Squeeze orientation.
    sink.row("-- squeeze orientation (jpeg q60, ratio 0.25) --");
    sink.row(format!("{:<12} {:>8} {:>8}", "orientation", "bpp", "psnr"));
    for (label, orientation) in
        [("horizontal", Orientation::Horizontal), ("vertical", Orientation::Vertical)]
    {
        let cfg = EaszConfig { orientation, mask_seed: 31, ..EaszConfig::default() };
        let encoder = EaszEncoder::new(cfg).expect("encoder");
        let decoder = EaszDecoder::new(&model);
        let (mut bpps, mut psnrs) = (vec![], vec![]);
        for img in &images {
            let enc = encoder.compress(img, &jpeg, Quality::new(60)).expect("compress");
            let dec = decoder.decode(&enc).expect("decode");
            bpps.push(enc.bpp());
            psnrs.push(psnr(img, &dec));
        }
        sink.row(format!("{:<12} {:>8.3} {:>8.2}", label, mean(&bpps), mean(&psnrs)));
    }

    // (2) Constraint sensitivity: reconstruction MSE vs (delta, cap_delta).
    sink.row("-- sampler constraint sensitivity (ratio 0.25, b=4) --");
    sink.row(format!("{:<8} {:<8} {:>12}", "delta", "Delta", "recon MSE"));
    let grid = model.config().geometry().grid();
    for (delta, cap_delta) in [(0usize, 0usize), (1, 0), (1, 1), (2, 1)] {
        let mask =
            MaskKind::RowConditional(RowSamplerConfig { n_grid: grid, t: 2, delta, cap_delta })
                .generate(13);
        let mse = erased_region_mse(&model, &images, &mask);
        sink.row(format!("{delta:<8} {cap_delta:<8} {mse:>12.6}"));
    }
    sink.row("shape check: constrained samplers (delta>=1) at or below delta=0 MSE");
}

//! Mixed-mask fleet decode: per-connection serial vs one fused multi-mask
//! batch (`EaszDecoder::decode_batch` grouping by erase *count*), the
//! workload a gateway window hands the decode workers.
//!
//! The uniform-mask batch is measured alongside as the upper bound: the
//! closer the mixed-mask fusion sits to it, the cheaper the per-stream
//! gather/compose maps are.
//!
//! ```sh
//! cargo bench -p easz-bench --bench mixed_fleet
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use easz_codecs::{JpegLikeCodec, Quality};
use easz_core::{
    EaszConfig, EaszDecoder, EaszEncoded, EaszEncoder, Reconstructor, ReconstructorConfig,
};
use easz_data::Dataset;

/// One tile-32 container per mask seed; `distinct = false` reuses one seed
/// (the uniform-mask upper bound).
fn fleet(count: usize, distinct: bool) -> Vec<EaszEncoded> {
    let codec = JpegLikeCodec::new();
    (0..count)
        .map(|i| {
            let seed = if distinct { 1 + i as u64 } else { 1 };
            let encoder = EaszEncoder::new(EaszConfig { mask_seed: seed, ..EaszConfig::default() })
                .expect("encoder");
            let img = Dataset::KodakLike.image(i).crop(0, 0, 32, 32);
            encoder.compress(&img, &codec, Quality::new(75)).expect("compress")
        })
        .collect()
}

fn bench_mixed_fleet(c: &mut Criterion) {
    let model = Reconstructor::new(ReconstructorConfig::fast());
    let decoder = EaszDecoder::new(&model);
    let mixed = fleet(8, true);
    let uniform = fleet(8, false);

    c.bench_function("mixed_fleet_x8_tile32/serial_per_connection", |b| {
        b.iter(|| {
            for e in &mixed {
                decoder.decode(e).expect("serial decode");
            }
        })
    });
    c.bench_function("mixed_fleet_x8_tile32/fused_mixed_mask_batch", |b| {
        b.iter(|| {
            for r in decoder.decode_batch(&mixed) {
                r.expect("fused decode");
            }
        })
    });
    c.bench_function("mixed_fleet_x8_tile32/fused_uniform_mask_batch", |b| {
        b.iter(|| {
            for r in decoder.decode_batch(&uniform) {
                r.expect("uniform decode");
            }
        })
    });
}

criterion_group!(benches, bench_mixed_fleet);
criterion_main!(benches);

//! Fig. 8 — end-to-end compression performance across bitrates: BRISQUE /
//! PI / TReS vs BPP for JPEG, JPEG+Easz, MBT and Cheng (a-c), plus the
//! end-to-end latency on the testbed (d).
//!
//! Shape target: JPEG+Easz lifts plain JPEG to neural-codec territory on
//! the perceptual metrics while its latency stays ~10× below MBT/Cheng
//! (paper: 2568 ms average, an 89% reduction).

use easz_bench::{bench_model, kodak_eval_set, mean, ResultSink};
use easz_codecs::{encode_to_bpp, ImageCodec, JpegLikeCodec, NeuralSimCodec, NeuralTier};
use easz_core::{EaszConfig, EaszDecoder, EaszEncoder, ReconstructorConfig};
use easz_metrics::{brisque, pi, tres};
use easz_testbed::{Testbed, WorkloadProfile};

const PAPER_PIXELS: usize = 512 * 768;

fn main() {
    let mut sink = ResultSink::new("fig8_end_to_end");
    let images = kodak_eval_set(2, 256, 192);
    let model = bench_model();
    let encoder =
        EaszEncoder::new(EaszConfig { mask_seed: 9, ..EaszConfig::default() }).expect("encoder");
    let decoder = EaszDecoder::new(&model);
    let jpeg = JpegLikeCodec::new();
    let mbt = NeuralSimCodec::new(NeuralTier::Mbt);
    let cheng = NeuralSimCodec::new(NeuralTier::ChengAnchor);
    let tb = Testbed::paper();
    let targets = [0.8f64, 1.1, 1.5, 2.0];

    sink.row(format!(
        "{:<11} {:>7} {:>9} {:>7} {:>7} {:>14}",
        "scheme", "bpp", "brisque", "pi", "tres", "latency (ms)"
    ));
    for &target in &targets {
        // Plain JPEG.
        emit_plain(&mut sink, &tb, "jpeg", &jpeg, &images, target, &WorkloadProfile::jpeg_like());
        // JPEG + Easz.
        {
            let (mut bpps, mut bs, mut ps, mut ts, mut bytes) =
                (vec![], vec![], vec![], vec![], vec![]);
            for img in &images {
                let (_, enc) =
                    encoder.compress_to_bpp(img, &jpeg, target, 8).expect("rate-targeted easz");
                let dec = decoder.decode(&enc).expect("decode");
                bpps.push(enc.bpp());
                bs.push(brisque(&dec));
                ps.push(pi(&dec));
                ts.push(tres(&dec));
                bytes.push(enc.total_bytes() as f64);
            }
            let w = WorkloadProfile::easz(
                &WorkloadProfile::jpeg_like(),
                &ReconstructorConfig::paper(),
                0.25,
            );
            let scaled = (mean(&bytes) * PAPER_PIXELS as f64
                / (images[0].width() * images[0].height()) as f64)
                as usize;
            let lat = tb.run(&w, PAPER_PIXELS, scaled).total_s();
            sink.row(format!(
                "{:<11} {:>7.3} {:>9.2} {:>7.2} {:>7.2} {:>14.0}",
                "jpeg+easz",
                mean(&bpps),
                mean(&bs),
                mean(&ps),
                mean(&ts),
                lat * 1e3
            ));
        }
        // Neural baselines.
        emit_plain(
            &mut sink,
            &tb,
            "mbt",
            &mbt,
            &images,
            target,
            &WorkloadProfile::neural(NeuralTier::Mbt),
        );
        emit_plain(
            &mut sink,
            &tb,
            "cheng",
            &cheng,
            &images,
            target,
            &WorkloadProfile::neural(NeuralTier::ChengAnchor),
        );
        sink.row("");
    }
    sink.row("shape check (a-c): jpeg+easz ≈ neural codecs on perceptual metrics, >> jpeg");
    sink.row("shape check (d): jpeg+easz latency ~10x below mbt/cheng at every bpp");
}

fn emit_plain(
    sink: &mut ResultSink,
    tb: &Testbed,
    name: &str,
    codec: &dyn ImageCodec,
    images: &[easz_image::ImageF32],
    target: f64,
    workload: &WorkloadProfile,
) {
    let (mut bpps, mut bs, mut ps, mut ts, mut bytes) = (vec![], vec![], vec![], vec![], vec![]);
    for img in images {
        let (_, enc) =
            encode_to_bpp(codec, img, target, img.width(), img.height(), 6).expect("rate");
        let dec = codec.decode(&enc.bytes).expect("decode");
        bpps.push(enc.bpp());
        bs.push(brisque(&dec));
        ps.push(pi(&dec));
        ts.push(tres(&dec));
        bytes.push(enc.bytes.len() as f64);
    }
    let scaled = (mean(&bytes) * PAPER_PIXELS as f64
        / (images[0].width() * images[0].height()) as f64) as usize;
    let lat = tb.run(workload, PAPER_PIXELS, scaled).total_s();
    sink.row(format!(
        "{:<11} {:>7.3} {:>9.2} {:>7.2} {:>7.2} {:>14.0}",
        name,
        mean(&bpps),
        mean(&bs),
        mean(&ps),
        mean(&ts),
        lat * 1e3
    ));
}

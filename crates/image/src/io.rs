//! Minimal NetPBM (PPM/PGM binary) image I/O for examples and debugging.

use crate::image::{Channels, ImageU8};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};
use std::path::Path;

/// Error reading or writing a NetPBM file.
#[derive(Debug)]
pub enum PnmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed or unsupported file contents.
    Format(String),
}

impl fmt::Display for PnmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "pnm i/o error: {e}"),
            Self::Format(m) => write!(f, "invalid pnm file: {m}"),
        }
    }
}

impl Error for PnmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PnmError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes an image as binary PPM (`P6`, RGB) or PGM (`P5`, gray).
///
/// # Errors
///
/// Returns [`PnmError::Io`] on write failure.
pub fn write_pnm<W: Write>(img: &ImageU8, mut writer: W) -> Result<(), PnmError> {
    let magic = match img.channels() {
        Channels::Rgb => "P6",
        Channels::Gray => "P5",
    };
    write!(writer, "{magic}\n{} {}\n255\n", img.width(), img.height())?;
    writer.write_all(img.data())?;
    Ok(())
}

/// Writes an image to a `.ppm`/`.pgm` file, creating parent directories.
///
/// # Errors
///
/// Returns [`PnmError::Io`] on filesystem failure.
pub fn save_pnm(img: &ImageU8, path: impl AsRef<Path>) -> Result<(), PnmError> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    write_pnm(img, std::io::BufWriter::new(file))
}

fn read_token<R: BufRead>(reader: &mut R) -> Result<String, PnmError> {
    let mut tok = String::new();
    let mut in_comment = false;
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof && !tok.is_empty() => break,
            Err(e) => return Err(e.into()),
        }
        let c = byte[0] as char;
        if in_comment {
            if c == '\n' {
                in_comment = false;
            }
            continue;
        }
        if c == '#' {
            in_comment = true;
            continue;
        }
        if c.is_ascii_whitespace() {
            if tok.is_empty() {
                continue;
            }
            break;
        }
        tok.push(c);
    }
    Ok(tok)
}

/// Reads a binary PPM/PGM image.
///
/// # Errors
///
/// Returns [`PnmError::Format`] for malformed headers or truncated payloads.
pub fn read_pnm<R: BufRead>(mut reader: R) -> Result<ImageU8, PnmError> {
    let magic = read_token(&mut reader)?;
    let channels = match magic.as_str() {
        "P6" => Channels::Rgb,
        "P5" => Channels::Gray,
        other => return Err(PnmError::Format(format!("unsupported magic {other:?}"))),
    };
    let parse = |s: String| -> Result<usize, PnmError> {
        s.parse().map_err(|_| PnmError::Format(format!("bad integer {s:?}")))
    };
    let width = parse(read_token(&mut reader)?)?;
    let height = parse(read_token(&mut reader)?)?;
    let maxval = parse(read_token(&mut reader)?)?;
    if maxval != 255 {
        return Err(PnmError::Format(format!("only maxval 255 supported, got {maxval}")));
    }
    let mut data = vec![0u8; width * height * channels.count()];
    reader.read_exact(&mut data).map_err(|_| PnmError::Format("truncated pixel payload".into()))?;
    Ok(ImageU8::from_vec(width, height, channels, data))
}

/// Loads a `.ppm`/`.pgm` file.
///
/// # Errors
///
/// See [`read_pnm`].
pub fn load_pnm(path: impl AsRef<Path>) -> Result<ImageU8, PnmError> {
    let file = std::fs::File::open(path)?;
    read_pnm(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(channels: Channels) -> ImageU8 {
        let mut img = ImageU8::new(5, 3, channels);
        for (i, v) in img.data_mut().iter_mut().enumerate() {
            *v = (i * 17 % 256) as u8;
        }
        img
    }

    #[test]
    fn ppm_round_trip() {
        let img = sample(Channels::Rgb);
        let mut buf = Vec::new();
        write_pnm(&img, &mut buf).expect("write");
        let back = read_pnm(&buf[..]).expect("read");
        assert_eq!(img, back);
    }

    #[test]
    fn pgm_round_trip() {
        let img = sample(Channels::Gray);
        let mut buf = Vec::new();
        write_pnm(&img, &mut buf).expect("write");
        let back = read_pnm(&buf[..]).expect("read");
        assert_eq!(img, back);
    }

    #[test]
    fn comments_are_skipped() {
        let img = sample(Channels::Gray);
        let mut buf = Vec::new();
        buf.extend_from_slice(b"P5\n# a comment\n5 3\n# another\n255\n");
        buf.extend_from_slice(img.data());
        let back = read_pnm(&buf[..]).expect("read");
        assert_eq!(img, back);
    }

    #[test]
    fn bad_magic_is_error() {
        let err = read_pnm(&b"P9\n1 1\n255\nx"[..]).unwrap_err();
        assert!(matches!(err, PnmError::Format(_)));
    }

    #[test]
    fn truncated_payload_is_error() {
        let err = read_pnm(&b"P5\n4 4\n255\nxx"[..]).unwrap_err();
        assert!(matches!(err, PnmError::Format(_)));
    }
}

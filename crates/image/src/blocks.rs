//! Block decomposition utilities shared by the DCT codecs and the Easz
//! two-stage patchify.

use crate::image::ImageF32;

/// An iterator position over non-overlapping `size`×`size` blocks of an
/// image in raster order, with edge replication for partial blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGrid {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Block side length in pixels.
    pub size: usize,
}

impl BlockGrid {
    /// Creates a grid covering an image.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(width: usize, height: usize, size: usize) -> Self {
        assert!(size > 0, "block size must be nonzero");
        Self { width, height, size }
    }

    /// Number of block columns (ceiling division).
    pub fn cols(&self) -> usize {
        self.width.div_ceil(self.size)
    }

    /// Number of block rows (ceiling division).
    pub fn rows(&self) -> usize {
        self.height.div_ceil(self.size)
    }

    /// Total number of blocks.
    pub fn count(&self) -> usize {
        self.cols() * self.rows()
    }

    /// Pixel origin of block `(bx, by)`.
    pub fn origin(&self, bx: usize, by: usize) -> (usize, usize) {
        (bx * self.size, by * self.size)
    }
}

/// Extracts block `(bx, by)` of one channel as a row-major `size*size`
/// buffer, replicating edges for blocks that overhang the image.
pub fn extract_block(img: &ImageF32, grid: BlockGrid, bx: usize, by: usize, c: usize) -> Vec<f32> {
    let (x0, y0) = grid.origin(bx, by);
    let mut out = vec![0.0f32; grid.size * grid.size];
    for dy in 0..grid.size {
        for dx in 0..grid.size {
            out[dy * grid.size + dx] = img.get_clamped((x0 + dx) as isize, (y0 + dy) as isize, c);
        }
    }
    out
}

/// Writes a block buffer back into the image (clipping at image bounds).
pub fn place_block(
    img: &mut ImageF32,
    grid: BlockGrid,
    bx: usize,
    by: usize,
    c: usize,
    block: &[f32],
) {
    assert_eq!(block.len(), grid.size * grid.size, "block buffer size");
    let (x0, y0) = grid.origin(bx, by);
    for dy in 0..grid.size {
        let y = y0 + dy;
        if y >= img.height() {
            break;
        }
        for dx in 0..grid.size {
            let x = x0 + dx;
            if x >= img.width() {
                break;
            }
            img.set(x, y, c, block[dy * grid.size + dx]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Channels;

    fn checker(w: usize, h: usize) -> ImageF32 {
        let mut img = ImageF32::new(w, h, Channels::Gray);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, 0, ((x + y) % 2) as f32);
            }
        }
        img
    }

    #[test]
    fn grid_counts() {
        let g = BlockGrid::new(17, 9, 8);
        assert_eq!(g.cols(), 3);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.count(), 6);
        assert_eq!(g.origin(2, 1), (16, 8));
    }

    #[test]
    fn extract_place_round_trip_interior() {
        let img = checker(16, 16);
        let g = BlockGrid::new(16, 16, 8);
        let block = extract_block(&img, g, 1, 1, 0);
        let mut out = ImageF32::new(16, 16, Channels::Gray);
        place_block(&mut out, g, 1, 1, 0, &block);
        for y in 8..16 {
            for x in 8..16 {
                assert_eq!(out.get(x, y, 0), img.get(x, y, 0));
            }
        }
    }

    #[test]
    fn partial_blocks_replicate_and_clip() {
        let img = checker(10, 10);
        let g = BlockGrid::new(10, 10, 8);
        // Block (1,1) covers pixels 8..16; only 8..10 exist.
        let block = extract_block(&img, g, 1, 1, 0);
        assert_eq!(block[0], img.get(8, 8, 0));
        // Out-of-range region replicates the last row/column.
        assert_eq!(block[7], img.get(9, 8, 0));
        let mut out = checker(10, 10);
        place_block(&mut out, g, 1, 1, 0, &block); // must not panic
        assert_eq!(out.get(9, 9, 0), img.get(9, 9, 0));
    }
}

//! Image containers used across the Easz stack.

use std::fmt;

/// Number of colour channels in an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channels {
    /// Single-channel (luma) image.
    Gray,
    /// Three-channel RGB (or YCbCr) image.
    Rgb,
}

impl Channels {
    /// Channel count as a number.
    pub fn count(self) -> usize {
        match self {
            Channels::Gray => 1,
            Channels::Rgb => 3,
        }
    }
}

/// A floating-point image with interleaved channels and values nominally in
/// `[0, 1]`.
///
/// This is the working representation for every transform in the repo:
/// erase-and-squeeze, DCT codecs, metrics and the reconstruction model all
/// operate on `ImageF32`. 8-bit import/export lives at the edges.
///
/// ```
/// use easz_image::{Channels, ImageF32};
/// let img = ImageF32::new(4, 3, Channels::Rgb);
/// assert_eq!(img.width(), 4);
/// assert_eq!(img.height(), 3);
/// assert_eq!(img.data().len(), 4 * 3 * 3);
/// ```
#[derive(Clone, PartialEq)]
pub struct ImageF32 {
    width: usize,
    height: usize,
    channels: Channels,
    data: Vec<f32>,
}

impl fmt::Debug for ImageF32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ImageF32({}x{}, {:?})", self.width, self.height, self.channels)
    }
}

impl ImageF32 {
    /// Creates a black image.
    pub fn new(width: usize, height: usize, channels: Channels) -> Self {
        Self { width, height, channels, data: vec![0.0; width * height * channels.count()] }
    }

    /// Wraps raw interleaved data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height * channels`.
    pub fn from_vec(width: usize, height: usize, channels: Channels, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            width * height * channels.count(),
            "image data length mismatch for {width}x{height} {channels:?}"
        );
        Self { width, height, channels, data }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Channel layout.
    pub fn channels(&self) -> Channels {
        self.channels
    }

    /// Total pixel count (width × height).
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Interleaved sample buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable interleaved sample buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Sample at `(x, y)` for channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize, c: usize) -> f32 {
        let cc = self.channels.count();
        assert!(x < self.width && y < self.height && c < cc, "pixel ({x},{y},{c}) out of bounds");
        self.data[(y * self.width + x) * cc + c]
    }

    /// Sets the sample at `(x, y)` for channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: usize, v: f32) {
        let cc = self.channels.count();
        assert!(x < self.width && y < self.height && c < cc, "pixel ({x},{y},{c}) out of bounds");
        self.data[(y * self.width + x) * cc + c] = v;
    }

    /// Sample with edge replication for out-of-range coordinates.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize, c: usize) -> f32 {
        let xi = x.clamp(0, self.width as isize - 1) as usize;
        let yi = y.clamp(0, self.height as isize - 1) as usize;
        self.get(xi, yi, c)
    }

    /// Extracts one channel as a planar gray image.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn channel(&self, c: usize) -> ImageF32 {
        let cc = self.channels.count();
        assert!(c < cc, "channel {c} out of range");
        let mut out = ImageF32::new(self.width, self.height, Channels::Gray);
        for i in 0..self.pixels() {
            out.data[i] = self.data[i * cc + c];
        }
        out
    }

    /// Builds an RGB image from three gray planes of identical size.
    ///
    /// # Panics
    ///
    /// Panics if planes differ in size or are not gray.
    pub fn from_planes(r: &ImageF32, g: &ImageF32, b: &ImageF32) -> ImageF32 {
        for p in [r, g, b] {
            assert_eq!(p.channels, Channels::Gray, "planes must be gray");
            assert_eq!((p.width, p.height), (r.width, r.height), "plane size mismatch");
        }
        let mut out = ImageF32::new(r.width, r.height, Channels::Rgb);
        for i in 0..r.pixels() {
            out.data[i * 3] = r.data[i];
            out.data[i * 3 + 1] = g.data[i];
            out.data[i * 3 + 2] = b.data[i];
        }
        out
    }

    /// Clamps every sample to `[0, 1]` in place.
    pub fn clamp01(&mut self) {
        for v in &mut self.data {
            *v = v.clamp(0.0, 1.0);
        }
    }

    /// Crops a rectangle. Coordinates must be fully inside the image.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle exceeds the image bounds.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> ImageF32 {
        assert!(x0 + w <= self.width && y0 + h <= self.height, "crop out of bounds");
        let cc = self.channels.count();
        let mut out = ImageF32::new(w, h, self.channels);
        for y in 0..h {
            let src = ((y0 + y) * self.width + x0) * cc;
            let dst = y * w * cc;
            out.data[dst..dst + w * cc].copy_from_slice(&self.data[src..src + w * cc]);
        }
        out
    }

    /// Pastes `other` at `(x0, y0)`.
    ///
    /// # Panics
    ///
    /// Panics if `other` does not fit or channel layouts differ.
    pub fn paste(&mut self, other: &ImageF32, x0: usize, y0: usize) {
        assert_eq!(self.channels, other.channels, "paste channel mismatch");
        assert!(
            x0 + other.width <= self.width && y0 + other.height <= self.height,
            "paste out of bounds"
        );
        let cc = self.channels.count();
        for y in 0..other.height {
            let dst = ((y0 + y) * self.width + x0) * cc;
            let src = y * other.width * cc;
            self.data[dst..dst + other.width * cc]
                .copy_from_slice(&other.data[src..src + other.width * cc]);
        }
    }

    /// Pads to `(new_w, new_h)` by replicating the right/bottom edges.
    ///
    /// # Panics
    ///
    /// Panics if the new size is smaller than the current size.
    pub fn pad_replicate(&self, new_w: usize, new_h: usize) -> ImageF32 {
        assert!(new_w >= self.width && new_h >= self.height, "pad must enlarge");
        let cc = self.channels.count();
        let mut out = ImageF32::new(new_w, new_h, self.channels);
        for y in 0..new_h {
            let sy = y.min(self.height - 1);
            for x in 0..new_w {
                let sx = x.min(self.width - 1);
                for c in 0..cc {
                    out.set(x, y, c, self.get(sx, sy, c));
                }
            }
        }
        out
    }

    /// Converts to 8-bit with rounding and saturation.
    pub fn to_u8(&self) -> ImageU8 {
        ImageU8 {
            width: self.width,
            height: self.height,
            channels: self.channels,
            data: self.data.iter().map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8).collect(),
        }
    }

    /// Mean over all samples.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }
}

/// An 8-bit image with interleaved channels (the storage/transmission form).
#[derive(Clone, PartialEq)]
pub struct ImageU8 {
    width: usize,
    height: usize,
    channels: Channels,
    data: Vec<u8>,
}

impl fmt::Debug for ImageU8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ImageU8({}x{}, {:?})", self.width, self.height, self.channels)
    }
}

impl ImageU8 {
    /// Creates a black image.
    pub fn new(width: usize, height: usize, channels: Channels) -> Self {
        Self { width, height, channels, data: vec![0; width * height * channels.count()] }
    }

    /// Wraps raw interleaved data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height * channels`.
    pub fn from_vec(width: usize, height: usize, channels: Channels, data: Vec<u8>) -> Self {
        assert_eq!(
            data.len(),
            width * height * channels.count(),
            "image data length mismatch for {width}x{height} {channels:?}"
        );
        Self { width, height, channels, data }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Channel layout.
    pub fn channels(&self) -> Channels {
        self.channels
    }

    /// Interleaved sample buffer.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable interleaved sample buffer.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Converts to floating point in `[0, 1]`.
    pub fn to_f32(&self) -> ImageF32 {
        ImageF32 {
            width: self.width,
            height: self.height,
            channels: self.channels,
            data: self.data.iter().map(|&v| v as f32 / 255.0).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: usize, h: usize) -> ImageF32 {
        let mut img = ImageF32::new(w, h, Channels::Rgb);
        for y in 0..h {
            for x in 0..w {
                for c in 0..3 {
                    img.set(x, y, c, (x + y + c) as f32 / (w + h + 3) as f32);
                }
            }
        }
        img
    }

    #[test]
    fn u8_f32_round_trip() {
        let img = gradient(8, 6).to_u8();
        let back = img.to_f32().to_u8();
        assert_eq!(img, back);
    }

    #[test]
    fn crop_paste_round_trip() {
        let img = gradient(16, 12);
        let crop = img.crop(4, 2, 8, 6);
        assert_eq!(crop.width(), 8);
        let mut canvas = ImageF32::new(16, 12, Channels::Rgb);
        canvas.paste(&crop, 4, 2);
        for y in 2..8 {
            for x in 4..12 {
                assert_eq!(canvas.get(x, y, 1), img.get(x, y, 1));
            }
        }
    }

    #[test]
    fn channel_split_merge() {
        let img = gradient(5, 5);
        let (r, g, b) = (img.channel(0), img.channel(1), img.channel(2));
        let merged = ImageF32::from_planes(&r, &g, &b);
        assert_eq!(merged, img);
    }

    #[test]
    fn pad_replicates_edges() {
        let img = gradient(4, 4);
        let padded = img.pad_replicate(6, 7);
        assert_eq!(padded.get(5, 2, 0), img.get(3, 2, 0));
        assert_eq!(padded.get(2, 6, 0), img.get(2, 3, 0));
        assert_eq!(padded.get(5, 6, 0), img.get(3, 3, 0));
    }

    #[test]
    fn clamped_access() {
        let img = gradient(4, 4);
        assert_eq!(img.get_clamped(-3, -3, 0), img.get(0, 0, 0));
        assert_eq!(img.get_clamped(9, 9, 0), img.get(3, 3, 0));
    }

    #[test]
    #[should_panic(expected = "crop out of bounds")]
    fn crop_rejects_oob() {
        let _ = gradient(4, 4).crop(2, 2, 4, 4);
    }
}

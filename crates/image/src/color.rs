//! Colour-space conversion (full-range BT.601, the JPEG convention).

use crate::image::{Channels, ImageF32};

/// Converts one RGB pixel (each in `[0, 1]`) to YCbCr (each in `[0, 1]`,
/// chroma centred at 0.5).
#[inline]
pub fn rgb_to_ycbcr(r: f32, g: f32, b: f32) -> (f32, f32, f32) {
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = 0.5 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
    let cr = 0.5 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
    (y, cb, cr)
}

/// Inverse of [`rgb_to_ycbcr`].
#[inline]
pub fn ycbcr_to_rgb(y: f32, cb: f32, cr: f32) -> (f32, f32, f32) {
    let cb = cb - 0.5;
    let cr = cr - 0.5;
    let r = y + 1.402 * cr;
    let g = y - 0.344_136 * cb - 0.714_136 * cr;
    let b = y + 1.772 * cb;
    (r, g, b)
}

/// Converts a whole RGB image to YCbCr (same container, channel meaning
/// changes).
///
/// Gray images pass through unchanged.
pub fn image_rgb_to_ycbcr(img: &ImageF32) -> ImageF32 {
    if img.channels() == Channels::Gray {
        return img.clone();
    }
    let mut out = img.clone();
    for i in 0..img.pixels() {
        let d = img.data();
        let (y, cb, cr) = rgb_to_ycbcr(d[i * 3], d[i * 3 + 1], d[i * 3 + 2]);
        let o = out.data_mut();
        o[i * 3] = y;
        o[i * 3 + 1] = cb;
        o[i * 3 + 2] = cr;
    }
    out
}

/// Converts a whole YCbCr image back to RGB, clamping to `[0, 1]`.
///
/// Gray images pass through unchanged.
pub fn image_ycbcr_to_rgb(img: &ImageF32) -> ImageF32 {
    if img.channels() == Channels::Gray {
        return img.clone();
    }
    let mut out = img.clone();
    for i in 0..img.pixels() {
        let d = img.data();
        let (r, g, b) = ycbcr_to_rgb(d[i * 3], d[i * 3 + 1], d[i * 3 + 2]);
        let o = out.data_mut();
        o[i * 3] = r.clamp(0.0, 1.0);
        o[i * 3 + 1] = g.clamp(0.0, 1.0);
        o[i * 3 + 2] = b.clamp(0.0, 1.0);
    }
    out
}

/// Luma (Y) plane of an image; for gray images this is the image itself.
pub fn luma(img: &ImageF32) -> ImageF32 {
    match img.channels() {
        Channels::Gray => img.clone(),
        Channels::Rgb => {
            let mut out = ImageF32::new(img.width(), img.height(), Channels::Gray);
            for i in 0..img.pixels() {
                let d = img.data();
                out.data_mut()[i] = 0.299 * d[i * 3] + 0.587 * d[i * 3 + 1] + 0.114 * d[i * 3 + 2];
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_round_trip() {
        for &(r, g, b) in
            &[(1.0, 0.0, 0.0), (0.0, 1.0, 0.0), (0.0, 0.0, 1.0), (1.0, 1.0, 1.0), (0.0, 0.0, 0.0)]
        {
            let (y, cb, cr) = rgb_to_ycbcr(r, g, b);
            let (r2, g2, b2) = ycbcr_to_rgb(y, cb, cr);
            assert!((r - r2).abs() < 1e-3, "r {r} -> {r2}");
            assert!((g - g2).abs() < 1e-3, "g {g} -> {g2}");
            assert!((b - b2).abs() < 1e-3, "b {b} -> {b2}");
        }
    }

    #[test]
    fn gray_has_centered_chroma() {
        let (y, cb, cr) = rgb_to_ycbcr(0.5, 0.5, 0.5);
        assert!((y - 0.5).abs() < 1e-4);
        assert!((cb - 0.5).abs() < 1e-4);
        assert!((cr - 0.5).abs() < 1e-4);
    }

    #[test]
    fn image_round_trip_error_small() {
        let mut img = ImageF32::new(8, 8, Channels::Rgb);
        for (i, v) in img.data_mut().iter_mut().enumerate() {
            *v = ((i * 37 + 11) % 256) as f32 / 255.0;
        }
        let back = image_ycbcr_to_rgb(&image_rgb_to_ycbcr(&img));
        let max_err =
            img.data().iter().zip(back.data()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(max_err < 2e-3, "max error {max_err}");
    }

    #[test]
    fn luma_of_gray_is_identity() {
        let mut img = ImageF32::new(4, 4, Channels::Gray);
        img.data_mut()[5] = 0.7;
        assert_eq!(luma(&img), img);
    }
}

//! # easz-image
//!
//! Image containers and pixel-level primitives for the Easz reproduction
//! (Mao et al., DAC 2025): float/8-bit images, BT.601 colour conversion,
//! classical resampling filters, NetPBM I/O and block-grid utilities.
//!
//! Everything downstream — the erase-and-squeeze transform, the DCT codecs,
//! the quality metrics and the synthetic datasets — is built on
//! [`ImageF32`], an interleaved `f32` image with values nominally in `[0,1]`.
//!
//! ```
//! use easz_image::{Channels, ImageF32, resample};
//!
//! let img = ImageF32::new(64, 48, Channels::Rgb);
//! let half = resample::downsample2(&img);
//! let back = resample::resize(&half, 64, 48, resample::Filter::Bicubic);
//! assert_eq!(back.width(), 64);
//! ```

#![warn(missing_docs)]

pub mod blocks;
pub mod color;
mod image;
pub mod io;
pub mod resample;

pub use image::{Channels, ImageF32, ImageU8};

//! Image resampling: box down-sampling and bilinear/bicubic/Lanczos
//! up-sampling. These are the substrate for the super-resolution baselines
//! of Table I and for JPEG-style 4:2:0 chroma subsampling.

use crate::image::ImageF32;

/// Interpolation kernel for [`resize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Filter {
    /// Nearest-neighbour (blocky, used only in tests/diagnostics).
    Nearest,
    /// Bilinear interpolation.
    Bilinear,
    /// Catmull-Rom bicubic interpolation.
    Bicubic,
    /// Lanczos with a = 3 (highest quality of the classical filters).
    Lanczos3,
}

fn cubic(x: f32) -> f32 {
    // Catmull-Rom (B = 0, C = 0.5).
    let x = x.abs();
    if x < 1.0 {
        1.5 * x * x * x - 2.5 * x * x + 1.0
    } else if x < 2.0 {
        -0.5 * x * x * x + 2.5 * x * x - 4.0 * x + 2.0
    } else {
        0.0
    }
}

fn sinc(x: f32) -> f32 {
    if x.abs() < 1e-7 {
        1.0
    } else {
        let px = std::f32::consts::PI * x;
        px.sin() / px
    }
}

fn lanczos3(x: f32) -> f32 {
    if x.abs() >= 3.0 {
        0.0
    } else {
        sinc(x) * sinc(x / 3.0)
    }
}

/// Resizes an image to `(new_w, new_h)` with the given filter.
///
/// # Panics
///
/// Panics if a target dimension is zero.
pub fn resize(img: &ImageF32, new_w: usize, new_h: usize, filter: Filter) -> ImageF32 {
    assert!(new_w > 0 && new_h > 0, "resize target must be nonzero");
    let cc = img.channels().count();
    let mut out = ImageF32::new(new_w, new_h, img.channels());
    let sx = img.width() as f32 / new_w as f32;
    let sy = img.height() as f32 / new_h as f32;
    let (radius, kernel): (f32, fn(f32) -> f32) = match filter {
        Filter::Nearest => (0.5, |_| 1.0),
        Filter::Bilinear => (1.0, |x| (1.0 - x.abs()).max(0.0)),
        Filter::Bicubic => (2.0, cubic),
        Filter::Lanczos3 => (3.0, lanczos3),
    };
    // When down-sampling, widen the kernel to act as a proper low-pass.
    let kx = sx.max(1.0);
    let ky = sy.max(1.0);
    for oy in 0..new_h {
        let src_y = (oy as f32 + 0.5) * sy - 0.5;
        for ox in 0..new_w {
            let src_x = (ox as f32 + 0.5) * sx - 0.5;
            for c in 0..cc {
                if filter == Filter::Nearest {
                    let v = img.get_clamped(src_x.round() as isize, src_y.round() as isize, c);
                    out.set(ox, oy, c, v);
                    continue;
                }
                let mut acc = 0.0f32;
                let mut wsum = 0.0f32;
                let y0 = (src_y - radius * ky).floor() as isize;
                let y1 = (src_y + radius * ky).ceil() as isize;
                let x0 = (src_x - radius * kx).floor() as isize;
                let x1 = (src_x + radius * kx).ceil() as isize;
                for yy in y0..=y1 {
                    let wy = kernel((yy as f32 - src_y) / ky);
                    if wy == 0.0 {
                        continue;
                    }
                    for xx in x0..=x1 {
                        let wx = kernel((xx as f32 - src_x) / kx);
                        if wx == 0.0 {
                            continue;
                        }
                        let w = wx * wy;
                        acc += w * img.get_clamped(xx, yy, c);
                        wsum += w;
                    }
                }
                out.set(ox, oy, c, if wsum != 0.0 { acc / wsum } else { 0.0 });
            }
        }
    }
    out
}

/// 2× box down-sampling (exact averaging of 2×2 blocks).
///
/// Odd trailing rows/columns are averaged with edge replication.
pub fn downsample2(img: &ImageF32) -> ImageF32 {
    let (w, h) = (img.width().div_ceil(2), img.height().div_ceil(2));
    let cc = img.channels().count();
    let mut out = ImageF32::new(w, h, img.channels());
    for y in 0..h {
        for x in 0..w {
            for c in 0..cc {
                let mut acc = 0.0;
                for dy in 0..2 {
                    for dx in 0..2 {
                        acc += img.get_clamped((2 * x + dx) as isize, (2 * y + dy) as isize, c);
                    }
                }
                out.set(x, y, c, acc / 4.0);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Channels;

    fn ramp(w: usize, h: usize) -> ImageF32 {
        let mut img = ImageF32::new(w, h, Channels::Gray);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, 0, x as f32 / (w - 1) as f32);
            }
        }
        img
    }

    #[test]
    fn identity_resize_is_near_exact() {
        let img = ramp(16, 8);
        for f in [Filter::Bilinear, Filter::Bicubic, Filter::Lanczos3] {
            let r = resize(&img, 16, 8, f);
            let err =
                img.data().iter().zip(r.data()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
            assert!(err < 1e-4, "{f:?} identity error {err}");
        }
    }

    #[test]
    fn constant_image_stays_constant() {
        let mut img = ImageF32::new(9, 7, Channels::Rgb);
        for v in img.data_mut() {
            *v = 0.42;
        }
        for f in [Filter::Bilinear, Filter::Bicubic, Filter::Lanczos3] {
            let up = resize(&img, 20, 13, f);
            for &v in up.data() {
                assert!((v - 0.42).abs() < 1e-4, "{f:?} broke constancy: {v}");
            }
        }
    }

    #[test]
    fn down_then_up_preserves_low_frequency() {
        let img = ramp(32, 32);
        let down = downsample2(&img);
        assert_eq!(down.width(), 16);
        let up = resize(&down, 32, 32, Filter::Bicubic);
        let mse: f32 =
            img.data().iter().zip(up.data()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
                / img.data().len() as f32;
        assert!(mse < 1e-3, "linear ramp should survive 2x round trip, mse {mse}");
    }

    #[test]
    fn lanczos_beats_bilinear_on_ramp_roundtrip() {
        // A smooth signal upsampled back should favour wider kernels.
        let img = ramp(64, 4);
        let down = downsample2(&img);
        let err = |f: Filter| {
            let up = resize(&down, 64, 4, f);
            img.data().iter().zip(up.data()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
        };
        assert!(err(Filter::Lanczos3) <= err(Filter::Bilinear) + 1e-3);
    }
}

//! The versioned `.easz` wire container — the transmitted form of an
//! Easz-compressed image.
//!
//! [`EaszEncoded`] used to be an in-memory struct of loose fields; this
//! module gives it a self-describing binary layout so a sensor can hand the
//! bytes to a radio and a server can decode them with *no* out-of-band
//! agreement beyond "it is an `.easz` stream". The header names the inner
//! codec by [`CodecId`], so the decoder resolves it from a
//! [`CodecRegistry`](easz_codecs::CodecRegistry) instead of trusting the
//! caller to pass the matching codec.
//!
//! The **normative byte layout lives in `docs/FORMAT.md`** at the
//! repository root (§1, "The `.easz` container"), together with the field
//! semantics, reserved values, `FORMAT_VERSION` bump rules, and the TCP
//! framing protocol that carries containers to an `easz-serve` decode
//! server. This module is the container's executable form; where the two
//! disagree, the spec wins and this file has a bug.
//!
//! In brief: a fixed [`HEADER_LEN`]-byte header (magic, version, codec id,
//! geometry, provenance) followed by the mask side channel and the
//! inner-codec payload. The container is *exact* — header plus announced
//! section lengths must equal the buffer length, so truncation and
//! trailing garbage are both detected — and every field is validated on
//! parse with typed [`EaszError`]s: untrusted bytes can never panic the
//! server.
//!
//! The mask seed, erase ratio and quality fields are not consumed by
//! decoding (the transmitted mask drives it); they are carried so the
//! container is a lossless serialization of [`EaszEncoded`]
//! (`from_bytes(to_bytes(e)) == e`) and an encode's provenance survives the
//! wire. If the 17 bytes ever matter at IoT scale, move them to an optional
//! section in a future `FORMAT_VERSION` (see the spec's bump rules).

use crate::config::{EaszConfig, MaskStrategy};
use crate::error::EaszError;
use crate::mask::EraseMask;
use crate::squeeze::Orientation;
use easz_codecs::{CodecId, Quality};

/// Container magic, `"EASZ"`.
pub const MAGIC: [u8; 4] = *b"EASZ";
/// The baseline container format version.
pub const FORMAT_VERSION: u8 = 1;
/// The newest container format version this build parses. Version 2 keeps
/// the byte layout of version 1 identically and assigns meaning to flag
/// bit 2 (the quantized-tier opt-in, spec §1.4). Version 3 assigns the
/// formerly reserved header byte 9 as the zoo **model id** (spec §1.5).
/// Writers emit the lowest version that can express a container, so every
/// pre-existing container stays byte-identical.
pub const FORMAT_VERSION_MAX: u8 = 3;
/// The highest version whose features a container may use while staying at
/// version 2 (quantized-tier flag, no model id).
const FORMAT_VERSION_QUANT: u8 = 2;
/// Fixed header length in bytes (sections follow).
pub const HEADER_LEN: usize = 46;

const FLAG_GRAIN: u8 = 1 << 0;
const FLAG_VERTICAL: u8 = 1 << 1;
/// Version-2 flag: the edge opts this container into the server's int8
/// quantized decode tier (ε/PSNR-bounded, not bit-exact).
const FLAG_QUANT: u8 = 1 << 2;
/// Per-side dimension bound shared with the inner codecs; the total canvas
/// is additionally bounded by [`easz_codecs::MAX_PIXELS`] so a small
/// untrusted header can never drive a huge allocation. The encoder
/// enforces both, so every container it emits is parseable.
pub(crate) const MAX_SIDE: usize = 1 << 20;

/// The transmitted form of an Easz-compressed image.
///
/// Produced by [`EaszEncoder::compress`](crate::EaszEncoder::compress);
/// serialize with [`to_bytes`](Self::to_bytes), parse with
/// [`from_bytes`](Self::from_bytes), decode with
/// [`EaszDecoder::decode`](crate::EaszDecoder::decode).
#[derive(Debug, Clone, PartialEq)]
pub struct EaszEncoded {
    /// Inner-codec bitstream of the squeezed image.
    pub payload: Vec<u8>,
    /// Serialized erase mask (the paper's ~128-byte side channel).
    pub mask_bytes: Vec<u8>,
    /// Original image width.
    pub width: usize,
    /// Original image height.
    pub height: usize,
    /// Configuration used at the edge (the server needs `n`, `b` and the
    /// orientation to undo the squeeze).
    pub config: EaszConfig,
    /// Inner codec quality used.
    pub quality: Quality,
    /// Wire identity of the inner codec that produced [`payload`](Self::payload).
    pub codec_id: CodecId,
}

impl EaszEncoded {
    /// Total transmitted bytes (header + payload + mask side channel).
    pub fn total_bytes(&self) -> usize {
        HEADER_LEN + self.payload.len() + self.mask_bytes.len()
    }

    /// Bits per pixel against the original canvas, container overhead and
    /// mask included — the accounting the paper uses.
    pub fn bpp(&self) -> f64 {
        self.total_bytes() as f64 * 8.0 / (self.width * self.height).max(1) as f64
    }

    /// The decode engine this container's standing preference selects: the
    /// int8 quantized tier iff the edge opted in
    /// ([`EaszConfig::allow_quantized`], flag bit 2), the bit-exact f32
    /// engine otherwise. Tiered server requests override this per call.
    pub fn preferred_engine(&self) -> crate::DecodeEngine {
        if self.config.allow_quantized {
            crate::DecodeEngine::QuantizedInt8
        } else {
            crate::DecodeEngine::TapeFree
        }
    }

    /// Serializes to the `.easz` container (see the module docs for the
    /// byte layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_bytes());
        out.extend_from_slice(&MAGIC);
        let mut flags = 0u8;
        if self.config.synthesize_grain {
            flags |= FLAG_GRAIN;
        }
        if self.config.orientation == Orientation::Vertical {
            flags |= FLAG_VERTICAL;
        }
        if self.config.allow_quantized {
            flags |= FLAG_QUANT;
        }
        // Lowest sufficient version: a nonzero model id is the only
        // version-3 feature and the quantized-tier flag the only version-2
        // one, so containers using neither stay version 1 byte-for-byte.
        let version = if self.config.model_id != 0 {
            FORMAT_VERSION_MAX
        } else if flags & FLAG_QUANT != 0 {
            FORMAT_VERSION_QUANT
        } else {
            FORMAT_VERSION
        };
        out.push(version);
        out.push(self.codec_id.value());
        out.push(self.quality.value());
        out.push(self.config.strategy.wire_byte());
        out.push(flags);
        // Byte 9: the zoo model id from version 3 on; reserved-must-be-0
        // before that. Id 0 writes the identical byte either way.
        out.push(self.config.model_id);
        out.extend_from_slice(&(self.config.n as u16).to_le_bytes());
        out.extend_from_slice(&(self.config.b as u16).to_le_bytes());
        out.extend_from_slice(&(self.width as u32).to_le_bytes());
        out.extend_from_slice(&(self.height as u32).to_le_bytes());
        out.extend_from_slice(&self.config.mask_seed.to_le_bytes());
        out.extend_from_slice(&self.config.erase_ratio.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.mask_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.mask_bytes);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and validates an `.easz` container.
    ///
    /// Round-trips exactly: `EaszEncoded::from_bytes(&e.to_bytes()) == Ok(e)`.
    ///
    /// # Errors
    ///
    /// Typed [`EaszError`]s for every malformation: wrong magic, unknown
    /// version, truncation, invalid header fields, inconsistent section
    /// lengths, or a mask side channel that does not parse or disagrees
    /// with the header geometry. Never panics on untrusted input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EaszError> {
        if bytes.len() < HEADER_LEN {
            return Err(EaszError::Truncated { needed: HEADER_LEN, got: bytes.len() });
        }
        if bytes[0..4] != MAGIC {
            return Err(EaszError::BadMagic);
        }
        let version = bytes[4];
        if !(FORMAT_VERSION..=FORMAT_VERSION_MAX).contains(&version) {
            return Err(EaszError::UnsupportedVersion(version));
        }
        let codec_id = CodecId(bytes[5]);
        let quality = Quality::try_new(bytes[6]).map_err(EaszError::Codec)?;
        let strategy = MaskStrategy::from_wire_byte(bytes[7])?;
        let flags = bytes[8];
        // Each version rejects the flag bits it has not assigned: that is
        // the escape hatch that lets a later version give them meaning.
        let known = if version >= 2 {
            FLAG_GRAIN | FLAG_VERTICAL | FLAG_QUANT
        } else {
            FLAG_GRAIN | FLAG_VERTICAL
        };
        if flags & !known != 0 {
            return Err(EaszError::Malformed(format!(
                "unknown flag bits 0x{flags:02x} for version {version}"
            )));
        }
        // Byte 9 is the zoo model id from version 3 on; versions 1 and 2
        // keep rejecting nonzero values exactly as when it was reserved —
        // that rejection is what made reassigning the byte safe.
        let model_id = if version >= 3 { bytes[9] } else { 0 };
        if version < 3 && bytes[9] != 0 {
            return Err(EaszError::Malformed(format!("reserved byte 0x{:02x} != 0", bytes[9])));
        }
        let read_u16 = |off: usize| u16::from_le_bytes([bytes[off], bytes[off + 1]]) as usize;
        let read_u32 = |off: usize| {
            u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4-byte slice")) as usize
        };
        let n = read_u16(10);
        let b = read_u16(12);
        let width = read_u32(14);
        let height = read_u32(18);
        let mask_seed = u64::from_le_bytes(bytes[22..30].try_into().expect("8-byte slice"));
        let erase_ratio =
            f64::from_bits(u64::from_le_bytes(bytes[30..38].try_into().expect("8-byte slice")));
        let mask_len = read_u32(38);
        let payload_len = read_u32(42);

        if width == 0
            || height == 0
            || width > MAX_SIDE
            || height > MAX_SIDE
            || width.checked_mul(height).is_none_or(|px| px > easz_codecs::MAX_PIXELS)
        {
            return Err(EaszError::Malformed(format!("implausible canvas {width}x{height}")));
        }
        let config = EaszConfig {
            n,
            b,
            erase_ratio,
            strategy,
            orientation: if flags & FLAG_VERTICAL != 0 {
                Orientation::Vertical
            } else {
                Orientation::Horizontal
            },
            mask_seed,
            synthesize_grain: flags & FLAG_GRAIN != 0,
            allow_quantized: flags & FLAG_QUANT != 0,
            model_id,
        };
        config.validate()?;

        let needed = HEADER_LEN
            .checked_add(mask_len)
            .and_then(|v| v.checked_add(payload_len))
            .ok_or_else(|| EaszError::Malformed("section lengths overflow".into()))?;
        if bytes.len() < needed {
            return Err(EaszError::Truncated { needed, got: bytes.len() });
        }
        if bytes.len() > needed {
            return Err(EaszError::Malformed(format!(
                "{} trailing bytes after sections",
                bytes.len() - needed
            )));
        }
        let mask_bytes = bytes[HEADER_LEN..HEADER_LEN + mask_len].to_vec();
        let payload = bytes[HEADER_LEN + mask_len..needed].to_vec();

        // The mask side channel must parse and match the announced grid so
        // a corrupt container is rejected here, not deep inside decode.
        let mask = EraseMask::from_bytes(&mask_bytes).map_err(EaszError::MaskChannel)?;
        if mask.n_grid() != n / b {
            return Err(EaszError::MaskChannel(format!(
                "mask grid {} does not match header grid {}",
                mask.n_grid(),
                n / b
            )));
        }

        Ok(Self { payload, mask_bytes, width, height, config, quality, codec_id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EaszConfig;

    fn sample() -> EaszEncoded {
        let config = EaszConfig::default();
        EaszEncoded {
            payload: vec![7u8; 300],
            mask_bytes: config.make_mask().to_bytes(),
            width: 96,
            height: 64,
            config,
            quality: Quality::new(75),
            codec_id: CodecId::JPEG_LIKE,
        }
    }

    #[test]
    fn exact_round_trip() {
        let enc = sample();
        let bytes = enc.to_bytes();
        assert_eq!(bytes.len(), enc.total_bytes());
        let back = EaszEncoded::from_bytes(&bytes).expect("parse");
        assert_eq!(back, enc);
    }

    #[test]
    fn vertical_and_no_grain_round_trip_via_flags() {
        let mut enc = sample();
        enc.config.orientation = Orientation::Vertical;
        enc.config.synthesize_grain = false;
        let back = EaszEncoded::from_bytes(&enc.to_bytes()).expect("parse");
        assert_eq!(back.config.orientation, Orientation::Vertical);
        assert!(!back.config.synthesize_grain);
    }

    #[test]
    fn header_overhead_is_charged_in_bpp() {
        let enc = sample();
        let sections = (enc.payload.len() + enc.mask_bytes.len()) as f64 * 8.0 / (96.0 * 64.0);
        assert!(enc.bpp() > sections, "header bytes must be part of the rate accounting");
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let bytes = sample().to_bytes();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(EaszEncoded::from_bytes(&bad), Err(EaszError::BadMagic)));
        let mut bad = bytes;
        bad[4] = 99;
        assert!(matches!(EaszEncoded::from_bytes(&bad), Err(EaszError::UnsupportedVersion(99))));
    }

    #[test]
    fn quantized_opt_in_writes_version_2_and_round_trips() {
        let mut enc = sample();
        enc.config.allow_quantized = true;
        let bytes = enc.to_bytes();
        assert_eq!(bytes[4], FORMAT_VERSION_QUANT, "quant opt-in needs version 2");
        assert_eq!(bytes[8] & FLAG_QUANT, FLAG_QUANT);
        let back = EaszEncoded::from_bytes(&bytes).expect("parse v2");
        assert_eq!(back, enc);
        assert!(back.config.allow_quantized);
        assert_eq!(back.preferred_engine(), crate::DecodeEngine::QuantizedInt8);
    }

    #[test]
    fn containers_without_quant_opt_in_stay_version_1() {
        // The compatibility contract: nothing about this change may move a
        // single byte of a pre-existing container.
        let enc = sample();
        assert!(!enc.config.allow_quantized);
        let bytes = enc.to_bytes();
        assert_eq!(bytes[4], FORMAT_VERSION);
        assert_eq!(bytes[8] & FLAG_QUANT, 0);
        assert_eq!(enc.preferred_engine(), crate::DecodeEngine::TapeFree);
    }

    #[test]
    fn version_1_still_rejects_the_quant_flag_bit() {
        // Bit 2 only has meaning from version 2 on; a v1 container carrying
        // it is malformed, exactly as before this version existed.
        let mut bytes = sample().to_bytes();
        assert_eq!(bytes[4], FORMAT_VERSION);
        bytes[8] |= FLAG_QUANT;
        assert!(matches!(EaszEncoded::from_bytes(&bytes), Err(EaszError::Malformed(_))));
        // And every version still rejects the genuinely reserved bits 3-7.
        for version in [FORMAT_VERSION, FORMAT_VERSION_QUANT, FORMAT_VERSION_MAX] {
            let mut bad = sample().to_bytes();
            bad[4] = version;
            bad[8] |= 1 << 5;
            assert!(matches!(EaszEncoded::from_bytes(&bad), Err(EaszError::Malformed(_))));
        }
    }

    #[test]
    fn version_2_without_quant_flag_parses_leniently() {
        // Readers accept any v2 container; writers just never emit this
        // form (they pick the lowest sufficient version).
        let mut bytes = sample().to_bytes();
        bytes[4] = FORMAT_VERSION_QUANT;
        let back = EaszEncoded::from_bytes(&bytes).expect("lenient v2 parse");
        assert!(!back.config.allow_quantized);
    }

    #[test]
    fn nonzero_model_id_writes_version_3_and_round_trips() {
        let mut enc = sample();
        enc.config.model_id = 7;
        let bytes = enc.to_bytes();
        assert_eq!(bytes[4], FORMAT_VERSION_MAX, "nonzero model id needs version 3");
        assert_eq!(bytes[9], 7);
        let back = EaszEncoded::from_bytes(&bytes).expect("parse v3");
        assert_eq!(back, enc);
        assert_eq!(back.config.model_id, 7);
    }

    #[test]
    fn model_id_zero_keeps_pre_zoo_containers_byte_identical() {
        // The compatibility contract of the version-3 bump: the generic
        // model (id 0) writes the exact bytes the pre-zoo encoder wrote.
        let enc = sample();
        assert_eq!(enc.config.model_id, 0);
        let bytes = enc.to_bytes();
        assert_eq!(bytes[4], FORMAT_VERSION);
        assert_eq!(bytes[9], 0);
        let mut quant = sample();
        quant.config.allow_quantized = true;
        assert_eq!(quant.to_bytes()[4], FORMAT_VERSION_QUANT);
    }

    #[test]
    fn versions_before_3_still_reject_a_nonzero_byte_9() {
        // Byte 9 only names a model from version 3 on; earlier versions
        // treat any nonzero value as the malformed reserved byte they
        // always rejected.
        for version in [FORMAT_VERSION, FORMAT_VERSION_QUANT] {
            let mut bytes = sample().to_bytes();
            bytes[4] = version;
            bytes[9] = 1;
            match EaszEncoded::from_bytes(&bytes) {
                Err(EaszError::Malformed(m)) => assert!(m.contains("reserved"), "got {m:?}"),
                other => panic!("v{version} nonzero byte 9 must be malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn version_3_composes_model_id_with_the_quant_tier() {
        let mut enc = sample();
        enc.config.model_id = 2;
        enc.config.allow_quantized = true;
        let bytes = enc.to_bytes();
        assert_eq!(bytes[4], FORMAT_VERSION_MAX);
        assert_eq!(bytes[8] & FLAG_QUANT, FLAG_QUANT);
        let back = EaszEncoded::from_bytes(&bytes).expect("parse v3 quant");
        assert_eq!(back, enc);
        assert_eq!(back.preferred_engine(), crate::DecodeEngine::QuantizedInt8);
    }

    #[test]
    fn rejects_canvases_over_the_pixel_budget() {
        // Per-side-legal but terabyte-scale canvases must die at parse,
        // before anything downstream sizes a buffer from them.
        let mut bytes = sample().to_bytes();
        bytes[14..18].copy_from_slice(&(1u32 << 14).to_le_bytes());
        bytes[18..22].copy_from_slice(&(1u32 << 13).to_le_bytes());
        assert!(matches!(EaszEncoded::from_bytes(&bytes), Err(EaszError::Malformed(_))));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(EaszEncoded::from_bytes(&bytes), Err(EaszError::Malformed(_))));
    }

    #[test]
    fn rejects_mask_grid_mismatch() {
        let mut enc = sample();
        // A valid mask for the wrong grid (16x16 instead of 8x8).
        enc.mask_bytes =
            EaszConfig::builder().n(32).b(2).build().expect("cfg").make_mask().to_bytes();
        assert!(matches!(EaszEncoded::from_bytes(&enc.to_bytes()), Err(EaszError::MaskChannel(_))));
    }
}
